#include "bgp/route.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"
#include "util/ensure.h"

namespace bgpolicy::bgp {
namespace {

using testing::make_route;
using util::AsNumber;

TEST(Route, SelfOriginatedHasNoPath) {
  Route route;
  route.prefix = Prefix::parse("10.0.0.0/24");
  route.learned_from = AsNumber(7018);
  EXPECT_TRUE(route.self_originated());
  EXPECT_FALSE(route.next_hop_as());
  EXPECT_EQ(route.origin_as(), AsNumber(7018));
}

TEST(Route, LearnedRouteEndpoints) {
  const Route route = make_route(Prefix::parse("10.0.0.0/24"),
                                 {AsNumber(701), AsNumber(3356)});
  EXPECT_FALSE(route.self_originated());
  EXPECT_EQ(route.next_hop_as(), AsNumber(701));
  EXPECT_EQ(route.origin_as(), AsNumber(3356));
}

TEST(Route, CommunitiesStaySortedAndUnique) {
  Route route;
  route.add_community(Community(1, 300));
  route.add_community(Community(1, 100));
  route.add_community(Community(1, 200));
  route.add_community(Community(1, 100));  // duplicate
  ASSERT_EQ(route.communities.size(), 3u);
  EXPECT_EQ(route.communities[0], Community(1, 100));
  EXPECT_EQ(route.communities[2], Community(1, 300));
  EXPECT_TRUE(route.has_community(Community(1, 200)));
  EXPECT_FALSE(route.has_community(Community(1, 400)));
}

TEST(Route, ToStringMentionsKeyAttributes) {
  Route route = make_route(Prefix::parse("10.0.0.0/24"),
                           {AsNumber(701)}, 90);
  route.add_community(Community(7018, 1000));
  const std::string text = route.to_string();
  EXPECT_NE(text.find("10.0.0.0/24"), std::string::npos);
  EXPECT_NE(text.find("701"), std::string::npos);
  EXPECT_NE(text.find("lp 90"), std::string::npos);
  EXPECT_NE(text.find("7018:1000"), std::string::npos);
}

TEST(Route, OriginToString) {
  EXPECT_EQ(to_string(Origin::kIgp), "IGP");
  EXPECT_EQ(to_string(Origin::kEgp), "EGP");
  EXPECT_EQ(to_string(Origin::kIncomplete), "incomplete");
}

TEST(Ensure, ThrowsOnViolation) {
  EXPECT_NO_THROW(util::ensure(true, "fine"));
  EXPECT_THROW(util::ensure(false, "bad input"), std::invalid_argument);
  EXPECT_NO_THROW(util::ensure_state(true, "fine"));
  EXPECT_THROW(util::ensure_state(false, "bad state"), std::runtime_error);
}

}  // namespace
}  // namespace bgpolicy::bgp
