#include "bgp/community.h"

#include <gtest/gtest.h>

namespace bgpolicy::bgp {
namespace {

TEST(Community, PartsRoundTrip) {
  const Community c(12859, 1000);
  EXPECT_EQ(c.asn(), 12859);
  EXPECT_EQ(c.value(), 1000);
  EXPECT_EQ(c.raw(), (12859u << 16) | 1000u);
}

TEST(Community, ParseTable11Example) {
  // "12859:1000  Route received from AMS-IX peer" (paper Table 11).
  const Community c = Community::parse("12859:1000");
  EXPECT_EQ(c.asn(), 12859);
  EXPECT_EQ(c.value(), 1000);
  EXPECT_EQ(c.to_string(), "12859:1000");
}

TEST(Community, ParseRejectsMalformed) {
  EXPECT_FALSE(Community::try_parse(""));
  EXPECT_FALSE(Community::try_parse("12859"));
  EXPECT_FALSE(Community::try_parse("12859:"));
  EXPECT_FALSE(Community::try_parse(":1000"));
  EXPECT_FALSE(Community::try_parse("70000:1"));
  EXPECT_FALSE(Community::try_parse("1:2:3"));
  EXPECT_THROW((void)Community::parse("bad"), std::invalid_argument);
}

TEST(Community, WellKnownValues) {
  EXPECT_EQ(kNoExport.raw(), 0xFFFFFF01u);
  EXPECT_EQ(kNoAdvertise.raw(), 0xFFFFFF02u);
  EXPECT_TRUE(is_well_known(kNoExport));
  EXPECT_TRUE(is_well_known(kNoAdvertise));
  EXPECT_FALSE(is_well_known(Community(12859, 1000)));
  EXPECT_EQ(kNoExport.to_string(), "no-export");
}

TEST(Community, OrderingIsByRawValue) {
  EXPECT_LT(Community(1, 2), Community(1, 3));
  EXPECT_LT(Community(1, 65535), Community(2, 0));
}

}  // namespace
}  // namespace bgpolicy::bgp
