#include "bgp/aspath.h"

#include <gtest/gtest.h>

namespace bgpolicy::bgp {
namespace {

using util::AsNumber;

TEST(AsPath, ParseAndFormat) {
  const AsPath path = AsPath::parse("7018 701 3356");
  EXPECT_EQ(path.length(), 3u);
  EXPECT_EQ(path.to_string(), "7018 701 3356");
  EXPECT_EQ(path.at(0), AsNumber(7018));
  EXPECT_EQ(path.at(2), AsNumber(3356));
}

TEST(AsPath, ParseToleratesExtraSpaces) {
  EXPECT_EQ(AsPath::parse("  1   2  3 ").to_string(), "1 2 3");
}

TEST(AsPath, ParseRejectsGarbage) {
  EXPECT_THROW(AsPath::parse("1 two 3"), std::invalid_argument);
}

TEST(AsPath, EmptyPathHasNoEndpoints) {
  const AsPath path;
  EXPECT_TRUE(path.empty());
  EXPECT_FALSE(path.next_hop_as());
  EXPECT_FALSE(path.origin_as());
}

TEST(AsPath, EndpointsAreFrontAndBack) {
  const AsPath path = AsPath::parse("7018 701 3356");
  EXPECT_EQ(path.next_hop_as(), AsNumber(7018));
  EXPECT_EQ(path.origin_as(), AsNumber(3356));
}

TEST(AsPath, ContainsDetectsLoops) {
  const AsPath path = AsPath::parse("1 2 3");
  EXPECT_TRUE(path.contains(AsNumber(2)));
  EXPECT_FALSE(path.contains(AsNumber(4)));
}

TEST(AsPath, PrependAddsToFront) {
  const AsPath path = AsPath::parse("2 3");
  EXPECT_EQ(path.prepend(AsNumber(1)).to_string(), "1 2 3");
  // Prepending the same AS several times is AS-path prepending, a
  // traffic-engineering knob from Section 2.2.2 of the paper.
  EXPECT_EQ(path.prepend(AsNumber(1), 3).to_string(), "1 1 1 2 3");
}

TEST(AsPath, PrependDoesNotMutateOriginal) {
  const AsPath path = AsPath::parse("2 3");
  (void)path.prepend(AsNumber(1));
  EXPECT_EQ(path.to_string(), "2 3");
}

TEST(AsPath, HasAdjacentFindsOrderedPairs) {
  const AsPath path = AsPath::parse("1 2 3");
  EXPECT_TRUE(path.has_adjacent(AsNumber(1), AsNumber(2)));
  EXPECT_TRUE(path.has_adjacent(AsNumber(2), AsNumber(3)));
  EXPECT_FALSE(path.has_adjacent(AsNumber(2), AsNumber(1)));
  EXPECT_FALSE(path.has_adjacent(AsNumber(1), AsNumber(3)));
}

TEST(AsPath, EqualityAndHash) {
  const AsPath a = AsPath::parse("1 2 3");
  const AsPath b = AsPath::parse("1 2 3");
  const AsPath c = AsPath::parse("1 2");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<AsPath>{}(a), std::hash<AsPath>{}(b));
}

}  // namespace
}  // namespace bgpolicy::bgp
