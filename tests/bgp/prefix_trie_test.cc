#include "bgp/prefix_trie.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/rng.h"

namespace bgpolicy::bgp {
namespace {

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.insert(Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(Prefix::parse("10.0.0.0/8"), 2));  // overwrite
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find(Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(Prefix::parse("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.find(Prefix::parse("10.0.0.0/16")), nullptr);
  EXPECT_TRUE(trie.erase(Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, DistinguishesLengthsOnSameNetwork) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(Prefix::parse("10.0.0.0/16"), 16);
  trie.insert(Prefix::parse("10.0.0.0/24"), 24);
  EXPECT_EQ(*trie.find(Prefix::parse("10.0.0.0/8")), 8);
  EXPECT_EQ(*trie.find(Prefix::parse("10.0.0.0/16")), 16);
  EXPECT_EQ(*trie.find(Prefix::parse("10.0.0.0/24")), 24);
}

TEST(PrefixTrie, LongestMatch) {
  PrefixTrie<std::string> trie;
  trie.insert(Prefix::parse("0.0.0.0/0"), "default");
  trie.insert(Prefix::parse("12.0.0.0/8"), "block");
  trie.insert(Prefix::parse("12.10.0.0/16"), "sub");
  EXPECT_EQ(*trie.longest_match(0x0C0A0101), "sub");
  EXPECT_EQ(*trie.longest_match(0x0C000001), "block");
  EXPECT_EQ(*trie.longest_match(0x7F000001), "default");
}

TEST(PrefixTrie, LongestMatchWithoutDefaultReturnsNull) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("12.0.0.0/8"), 1);
  EXPECT_EQ(trie.longest_match(0x7F000001), nullptr);
}

TEST(PrefixTrie, CoveringEnumeration) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("12.0.0.0/8"), 1);
  trie.insert(Prefix::parse("12.10.0.0/16"), 2);
  trie.insert(Prefix::parse("12.10.1.0/24"), 3);
  trie.insert(Prefix::parse("13.0.0.0/8"), 4);

  std::vector<int> seen;
  trie.for_each_covering(Prefix::parse("12.10.1.0/24"),
                         [&](const Prefix&, const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(PrefixTrie, StrictCoveringExcludesSelf) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("12.10.1.0/24"), 3);
  EXPECT_FALSE(trie.has_strict_covering(Prefix::parse("12.10.1.0/24")));
  trie.insert(Prefix::parse("12.0.0.0/19"), 1);
  // The paper's aggregation example: 12.10.1.0/24 inside 12.0.0.0/19...
  // (/19 does not cover 12.10.x; use the real containment)
  EXPECT_FALSE(trie.has_strict_covering(Prefix::parse("12.10.1.0/24")));
  trie.insert(Prefix::parse("12.0.0.0/8"), 0);
  EXPECT_TRUE(trie.has_strict_covering(Prefix::parse("12.10.1.0/24")));
}

TEST(PrefixTrie, CoveredEnumeration) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("12.0.0.0/8"), 1);
  trie.insert(Prefix::parse("12.10.0.0/16"), 2);
  trie.insert(Prefix::parse("12.10.1.0/24"), 3);
  trie.insert(Prefix::parse("13.0.0.0/8"), 4);

  std::vector<int> seen;
  trie.for_each_covered(Prefix::parse("12.10.0.0/16"),
                        [&](const Prefix&, const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{2, 3}));
}

TEST(PrefixTrie, ForEachVisitsAllInAddressOrder) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::parse("13.0.0.0/8"), 2);
  trie.insert(Prefix::parse("12.0.0.0/8"), 1);
  trie.insert(Prefix::parse("14.0.0.0/8"), 3);
  std::vector<int> seen;
  trie.for_each([&](const Prefix&, const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

// Property: trie agrees with a brute-force map on random workloads.
class PrefixTrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTrieProperty, MatchesBruteForce) {
  util::Rng rng(GetParam());
  PrefixTrie<std::uint32_t> trie;
  std::map<Prefix, std::uint32_t> reference;

  for (int i = 0; i < 300; ++i) {
    const auto network = static_cast<std::uint32_t>(rng.uniform(0, 0xFFFFFFFF));
    const auto length = static_cast<std::uint8_t>(rng.uniform(4, 28));
    const Prefix p(network, length);
    const auto value = static_cast<std::uint32_t>(i);
    trie.insert(p, value);
    reference[p] = value;
  }
  EXPECT_EQ(trie.size(), reference.size());

  // Exact lookups agree.
  for (const auto& [prefix, value] : reference) {
    ASSERT_NE(trie.find(prefix), nullptr);
    EXPECT_EQ(*trie.find(prefix), value);
  }

  // Covering sets agree with brute force for sampled queries.
  for (int q = 0; q < 50; ++q) {
    const auto network = static_cast<std::uint32_t>(rng.uniform(0, 0xFFFFFFFF));
    const Prefix query(network, 24);
    std::vector<std::uint32_t> expected;
    for (const auto& [prefix, value] : reference) {
      if (prefix.covers(query)) expected.push_back(value);
    }
    std::vector<std::uint32_t> actual;
    trie.for_each_covering(
        query, [&](const Prefix&, const std::uint32_t& v) { actual.push_back(v); });
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTrieProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace bgpolicy::bgp
