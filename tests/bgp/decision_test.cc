#include "bgp/decision.h"

#include <gtest/gtest.h>

#include <span>

#include "testing/fixtures.h"

namespace bgpolicy::bgp {
namespace {

using testing::make_route;
using util::AsNumber;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");

TEST(Decision, Step1LocalPrefDominatesShorterPath) {
  // The paper's central observation: local preference (step 1) overrides
  // the shortest-AS-path default.  A longer customer path with higher
  // local-pref beats a shorter peer path.
  const Route customer =
      make_route(kPrefix, {AsNumber(4), AsNumber(5), AsNumber(6)}, 120);
  const Route peer = make_route(kPrefix, {AsNumber(7)}, 100);
  const auto cmp = compare_routes(customer, peer);
  EXPECT_LT(cmp.preference, 0);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kLocalPref);
}

TEST(Decision, Step2ShorterPathWinsAtEqualPref) {
  const Route shorter = make_route(kPrefix, {AsNumber(4)}, 100);
  const Route longer = make_route(kPrefix, {AsNumber(5), AsNumber(6)}, 100);
  const auto cmp = compare_routes(shorter, longer);
  EXPECT_LT(cmp.preference, 0);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kAsPathLength);
}

TEST(Decision, Step3LowerOriginWins) {
  Route igp = make_route(kPrefix, {AsNumber(4)}, 100);
  Route egp = make_route(kPrefix, {AsNumber(5)}, 100);
  igp.origin = Origin::kIgp;
  egp.origin = Origin::kEgp;
  const auto cmp = compare_routes(igp, egp);
  EXPECT_LT(cmp.preference, 0);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kOrigin);
}

TEST(Decision, Step4MedComparedOnlyWithinSameNeighbor) {
  Route low_med = make_route(kPrefix, {AsNumber(4), AsNumber(9)}, 100);
  Route high_med = make_route(kPrefix, {AsNumber(4), AsNumber(8)}, 100);
  low_med.med = 5;
  high_med.med = 50;
  const auto same = compare_routes(low_med, high_med);
  EXPECT_LT(same.preference, 0);
  EXPECT_EQ(same.decided_by, DecisionStep::kMed);

  // Different next-hop AS: MED is skipped; the tie moves to later steps.
  Route other = make_route(kPrefix, {AsNumber(5), AsNumber(8)}, 100);
  other.med = 50;
  const auto different = compare_routes(low_med, other);
  EXPECT_NE(different.decided_by, DecisionStep::kMed);
}

TEST(Decision, Step5EbgpBeatsIbgp) {
  Route ebgp = make_route(kPrefix, {AsNumber(4)}, 100);
  Route ibgp = make_route(kPrefix, {AsNumber(5)}, 100);
  ebgp.from_ebgp = true;
  ibgp.from_ebgp = false;
  const auto cmp = compare_routes(ebgp, ibgp);
  EXPECT_LT(cmp.preference, 0);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kEbgp);
}

TEST(Decision, Step6LowerIgpMetricWins) {
  Route near = make_route(kPrefix, {AsNumber(4)}, 100);
  Route far = make_route(kPrefix, {AsNumber(5)}, 100);
  near.igp_metric = 10;
  far.igp_metric = 99;
  const auto cmp = compare_routes(near, far);
  EXPECT_LT(cmp.preference, 0);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kIgpMetric);
}

TEST(Decision, Step7RouterIdBreaksFinalTie) {
  Route a = make_route(kPrefix, {AsNumber(4)}, 100);
  Route b = make_route(kPrefix, {AsNumber(5)}, 100);
  a.router_id = 4;
  b.router_id = 5;
  const auto cmp = compare_routes(a, b);
  EXPECT_LT(cmp.preference, 0);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kRouterId);
}

TEST(Decision, IdenticalRoutesTie) {
  const Route a = make_route(kPrefix, {AsNumber(4)}, 100);
  const auto cmp = compare_routes(a, a);
  EXPECT_EQ(cmp.preference, 0);
  EXPECT_EQ(cmp.decided_by, DecisionStep::kTie);
}

TEST(Decision, SelectBestEmptyIsNull) {
  EXPECT_FALSE(select_best(std::span<const Route>{}));
  EXPECT_FALSE(select_best(RouteColumns{}));
}

TEST(Decision, SelectBestPicksHighestPref) {
  std::vector<Route> candidates{
      make_route(kPrefix, {AsNumber(4)}, 90),
      make_route(kPrefix, {AsNumber(5)}, 120),
      make_route(kPrefix, {AsNumber(6)}, 100),
  };
  const auto best = select_best(candidates);
  ASSERT_TRUE(best);
  EXPECT_EQ(*best, 1u);
}

TEST(Decision, SelectBestStepOrderMatchesPaper) {
  // Steps are strictly ordered: a pref winner is never dethroned by a
  // shorter path, shorter path never by origin, etc.
  Route pref_winner = make_route(kPrefix, {AsNumber(1), AsNumber(2)}, 110);
  Route short_path = make_route(kPrefix, {AsNumber(3)}, 100);
  short_path.origin = Origin::kIgp;
  pref_winner.origin = Origin::kIncomplete;
  std::vector<Route> candidates{short_path, pref_winner};
  const auto best = select_best(candidates);
  ASSERT_TRUE(best);
  EXPECT_EQ(candidates[*best].local_pref, 110u);
}

// Property: select_best is invariant under rotation of the candidate list
// when routes are fully distinguishable (no exact ties).
class DecisionRotation : public ::testing::TestWithParam<int> {};

TEST_P(DecisionRotation, WinnerIndependentOfOrder) {
  std::vector<Route> candidates{
      make_route(kPrefix, {AsNumber(4)}, 90),
      make_route(kPrefix, {AsNumber(5)}, 120),
      make_route(kPrefix, {AsNumber(6), AsNumber(7)}, 120),
      make_route(kPrefix, {AsNumber(8)}, 100),
  };
  std::rotate(candidates.begin(), candidates.begin() + GetParam(),
              candidates.end());
  const auto best = select_best(candidates);
  ASSERT_TRUE(best);
  EXPECT_EQ(candidates[*best].learned_from, AsNumber(5));
}

INSTANTIATE_TEST_SUITE_P(Rotations, DecisionRotation,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace bgpolicy::bgp
