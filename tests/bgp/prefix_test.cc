#include "bgp/prefix.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace bgpolicy::bgp {
namespace {

TEST(Prefix, DefaultIsZeroSlashZero) {
  const Prefix p;
  EXPECT_EQ(p.network(), 0u);
  EXPECT_EQ(p.length(), 0u);
  EXPECT_EQ(p.to_string(), "0.0.0.0/0");
}

TEST(Prefix, ParsesCanonicalText) {
  const Prefix p = Prefix::parse("12.10.1.0/24");
  EXPECT_EQ(p.length(), 24u);
  EXPECT_EQ(p.to_string(), "12.10.1.0/24");
}

TEST(Prefix, ConstructorClearsHostBits) {
  const Prefix p(0x0C0A01FF, 24);  // 12.10.1.255/24
  EXPECT_EQ(p.to_string(), "12.10.1.0/24");
}

TEST(Prefix, ParseClearsHostBits) {
  EXPECT_EQ(Prefix::parse("10.1.1.1/24").to_string(), "10.1.1.0/24");
}

TEST(Prefix, RejectsMalformedText) {
  EXPECT_FALSE(Prefix::try_parse(""));
  EXPECT_FALSE(Prefix::try_parse("10.0.0.0"));
  EXPECT_FALSE(Prefix::try_parse("10.0.0/8"));
  EXPECT_FALSE(Prefix::try_parse("10.0.0.0/33"));
  EXPECT_FALSE(Prefix::try_parse("256.0.0.0/8"));
  EXPECT_FALSE(Prefix::try_parse("10.0.0.0/8 "));
  EXPECT_FALSE(Prefix::try_parse("a.b.c.d/8"));
  EXPECT_THROW((void)Prefix::parse("nonsense"), std::invalid_argument);
}

TEST(Prefix, RejectsLengthOver32) {
  EXPECT_THROW(Prefix(0, 33), std::invalid_argument);
}

TEST(Prefix, MaskMatchesLength) {
  EXPECT_EQ(Prefix(0, 0).mask(), 0u);
  EXPECT_EQ(Prefix::parse("10.0.0.0/8").mask(), 0xFF000000u);
  EXPECT_EQ(Prefix::parse("10.0.0.0/32").mask(), 0xFFFFFFFFu);
}

TEST(Prefix, ContainsAddress) {
  const Prefix p = Prefix::parse("12.0.0.0/19");
  EXPECT_TRUE(p.contains(0x0C000001));
  EXPECT_TRUE(p.contains(0x0C001FFF));
  EXPECT_FALSE(p.contains(0x0C002000));
}

TEST(Prefix, CoversIsReflexiveAndOrdered) {
  const Prefix wide = Prefix::parse("12.0.0.0/19");
  const Prefix narrow = Prefix::parse("12.0.1.0/24");
  EXPECT_TRUE(wide.covers(wide));
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
}

TEST(Prefix, MoreSpecificIsStrict) {
  const Prefix wide = Prefix::parse("12.0.0.0/19");
  const Prefix narrow = Prefix::parse("12.0.1.0/24");
  // The paper's splitting example: 12.10.1.0/24 out of 12.0.0.0/19.
  EXPECT_TRUE(narrow.is_more_specific_of(wide));
  EXPECT_FALSE(wide.is_more_specific_of(narrow));
  EXPECT_FALSE(wide.is_more_specific_of(wide));
}

TEST(Prefix, ParentHalvesTheLength) {
  const Prefix p = Prefix::parse("10.0.1.0/24");
  const auto parent = p.parent();
  ASSERT_TRUE(parent);
  EXPECT_EQ(parent->to_string(), "10.0.0.0/23");
  EXPECT_FALSE(Prefix().parent());
}

TEST(Prefix, SplitProducesTwoHalves) {
  const auto halves = Prefix::parse("10.0.0.0/23").split();
  ASSERT_TRUE(halves);
  EXPECT_EQ(halves->first.to_string(), "10.0.0.0/24");
  EXPECT_EQ(halves->second.to_string(), "10.0.1.0/24");
  EXPECT_FALSE(Prefix::parse("10.0.0.0/32").split());
}

TEST(Prefix, SubnetIndexing) {
  const Prefix block = Prefix::parse("12.0.0.0/16");
  EXPECT_EQ(block.subnet_count(24), 256u);
  EXPECT_EQ(block.subnet(24, 0).to_string(), "12.0.0.0/24");
  EXPECT_EQ(block.subnet(24, 255).to_string(), "12.0.255.0/24");
  EXPECT_THROW((void)block.subnet(24, 256), std::invalid_argument);
  EXPECT_THROW((void)block.subnet(8, 0), std::invalid_argument);
}

TEST(Prefix, OrderingSortsParentsBeforeChildren) {
  const Prefix parent = Prefix::parse("10.0.0.0/16");
  const Prefix child = Prefix::parse("10.0.0.0/24");
  const Prefix later = Prefix::parse("10.0.1.0/24");
  std::set<Prefix> sorted{later, child, parent};
  auto it = sorted.begin();
  EXPECT_EQ(*it++, parent);
  EXPECT_EQ(*it++, child);
  EXPECT_EQ(*it++, later);
}

TEST(Prefix, HashDistinguishesLengths) {
  std::unordered_set<Prefix> set;
  set.insert(Prefix::parse("10.0.0.0/8"));
  set.insert(Prefix::parse("10.0.0.0/16"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Prefix, FormatIpv4) {
  EXPECT_EQ(format_ipv4(0xC0A80101), "192.168.1.1");
  EXPECT_EQ(format_ipv4(0), "0.0.0.0");
  EXPECT_EQ(format_ipv4(0xFFFFFFFF), "255.255.255.255");
}

// Round-trip property over a deterministic sweep of prefixes.
class PrefixRoundTrip : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(PrefixRoundTrip, ParseFormatsBack) {
  const std::uint8_t length = GetParam();
  const std::uint32_t base = 0x0A000000;
  for (std::uint32_t salt = 0; salt < 32; ++salt) {
    const Prefix p(base + (salt << 16) + (salt << 5), length);
    EXPECT_EQ(Prefix::parse(p.to_string()), p);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixRoundTrip,
                         ::testing::Values(0, 1, 7, 8, 15, 16, 19, 22, 23, 24,
                                           30, 31, 32));

}  // namespace
}  // namespace bgpolicy::bgp
