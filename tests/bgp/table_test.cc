#include "bgp/table.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace bgpolicy::bgp {
namespace {

using testing::make_route;
using util::AsNumber;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");
const Prefix kOther = Prefix::parse("10.0.1.0/24");

TEST(BgpTable, StartsEmpty) {
  const BgpTable table{AsNumber(7018)};
  EXPECT_EQ(table.owner(), AsNumber(7018));
  EXPECT_EQ(table.prefix_count(), 0u);
  EXPECT_EQ(table.route_count(), 0u);
  EXPECT_FALSE(table.contains(kPrefix));
  EXPECT_EQ(table.best(kPrefix), nullptr);
}

TEST(BgpTable, AddAndLookup) {
  BgpTable table{AsNumber(7018)};
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.add(make_route(kPrefix, {AsNumber(5)}, 120));
  table.add(make_route(kOther, {AsNumber(4)}, 100));
  EXPECT_EQ(table.prefix_count(), 2u);
  EXPECT_EQ(table.route_count(), 3u);
  EXPECT_EQ(table.routes(kPrefix).size(), 2u);
  const Route* best = table.best(kPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, AsNumber(5));
}

TEST(BgpTable, SameNeighborReplacesImplicitWithdraw) {
  BgpTable table{AsNumber(7018)};
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.add(make_route(kPrefix, {AsNumber(4)}, 70));
  EXPECT_EQ(table.route_count(), 1u);
  EXPECT_EQ(table.best(kPrefix)->local_pref, 70u);
}

TEST(BgpTable, WithdrawRemovesOnlyThatNeighbor) {
  BgpTable table{AsNumber(7018)};
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.add(make_route(kPrefix, {AsNumber(5)}, 120));
  table.withdraw(kPrefix, AsNumber(5));
  EXPECT_EQ(table.route_count(), 1u);
  EXPECT_EQ(table.best(kPrefix)->learned_from, AsNumber(4));
  table.withdraw(kPrefix, AsNumber(4));
  EXPECT_FALSE(table.contains(kPrefix));
  EXPECT_EQ(table.prefix_count(), 0u);
}

TEST(BgpTable, WithdrawMissingIsNoOp) {
  BgpTable table{AsNumber(7018)};
  table.withdraw(kPrefix, AsNumber(4));
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.withdraw(kPrefix, AsNumber(9));
  EXPECT_EQ(table.route_count(), 1u);
}

TEST(BgpTable, ForEachBestVisitsOnePerPrefix) {
  BgpTable table{AsNumber(7018)};
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.add(make_route(kPrefix, {AsNumber(5)}, 120));
  table.add(make_route(kOther, {AsNumber(4)}, 100));
  std::size_t count = 0;
  table.for_each_best([&](const Route& best) {
    ++count;
    if (best.prefix == kPrefix) EXPECT_EQ(best.learned_from, AsNumber(5));
  });
  EXPECT_EQ(count, 2u);
}

TEST(BgpTable, PrefixesReturnsAll) {
  BgpTable table{AsNumber(7018)};
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.add(make_route(kOther, {AsNumber(4)}, 100));
  auto prefixes = table.prefixes();
  EXPECT_EQ(prefixes.size(), 2u);
}

// add_batch is the batch-load fast path: same observable semantics as
// calling add() per route, including implicit-withdraw replacement within
// the batch and against pre-existing routes.
TEST(BgpTable, AddBatchMatchesSequentialAdd) {
  std::vector<Route> batch;
  batch.push_back(make_route(kPrefix, {AsNumber(4)}, 100));
  batch.push_back(make_route(kPrefix, {AsNumber(5)}, 120));
  batch.push_back(make_route(kOther, {AsNumber(4)}, 90));
  batch.push_back(make_route(kPrefix, {AsNumber(4)}, 70));  // replaces #1
  batch.push_back(make_route(kOther, {AsNumber(6)}, 110));

  BgpTable sequential{AsNumber(7018)};
  BgpTable batched{AsNumber(7018)};
  // Both tables start with a pre-existing route that the batch replaces.
  sequential.add(make_route(kOther, {AsNumber(6)}, 50));
  batched.add(make_route(kOther, {AsNumber(6)}, 50));
  for (const Route& route : batch) sequential.add(route);
  batched.add_batch(std::move(batch));

  EXPECT_EQ(batched.prefix_count(), sequential.prefix_count());
  EXPECT_EQ(batched.route_count(), sequential.route_count());
  for (const Prefix& prefix : {kPrefix, kOther}) {
    const auto expected = sequential.routes(prefix);
    const auto actual = batched.routes(prefix);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].learned_from, expected[i].learned_from);
      EXPECT_EQ(actual[i].local_pref, expected[i].local_pref);
    }
  }
  EXPECT_EQ(batched.best(kPrefix)->learned_from, AsNumber(5));
  EXPECT_EQ(batched.routes(kOther).size(), 2u);
  EXPECT_EQ(batched.best(kOther)->local_pref, 110u);
}

TEST(BgpTable, AddBatchEmptyIsNoOp) {
  BgpTable table{AsNumber(7018)};
  table.add_batch({});
  EXPECT_EQ(table.route_count(), 0u);
}

}  // namespace
}  // namespace bgpolicy::bgp
