#include "bgp/table.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace bgpolicy::bgp {
namespace {

using testing::make_route;
using util::AsNumber;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");
const Prefix kOther = Prefix::parse("10.0.1.0/24");

TEST(BgpTable, StartsEmpty) {
  const BgpTable table{AsNumber(7018)};
  EXPECT_EQ(table.owner(), AsNumber(7018));
  EXPECT_EQ(table.prefix_count(), 0u);
  EXPECT_EQ(table.route_count(), 0u);
  EXPECT_FALSE(table.contains(kPrefix));
  EXPECT_EQ(table.best(kPrefix), nullptr);
}

TEST(BgpTable, AddAndLookup) {
  BgpTable table{AsNumber(7018)};
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.add(make_route(kPrefix, {AsNumber(5)}, 120));
  table.add(make_route(kOther, {AsNumber(4)}, 100));
  EXPECT_EQ(table.prefix_count(), 2u);
  EXPECT_EQ(table.route_count(), 3u);
  EXPECT_EQ(table.routes(kPrefix).size(), 2u);
  const Route* best = table.best(kPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, AsNumber(5));
}

TEST(BgpTable, SameNeighborReplacesImplicitWithdraw) {
  BgpTable table{AsNumber(7018)};
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.add(make_route(kPrefix, {AsNumber(4)}, 70));
  EXPECT_EQ(table.route_count(), 1u);
  EXPECT_EQ(table.best(kPrefix)->local_pref, 70u);
}

TEST(BgpTable, WithdrawRemovesOnlyThatNeighbor) {
  BgpTable table{AsNumber(7018)};
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.add(make_route(kPrefix, {AsNumber(5)}, 120));
  table.withdraw(kPrefix, AsNumber(5));
  EXPECT_EQ(table.route_count(), 1u);
  EXPECT_EQ(table.best(kPrefix)->learned_from, AsNumber(4));
  table.withdraw(kPrefix, AsNumber(4));
  EXPECT_FALSE(table.contains(kPrefix));
  EXPECT_EQ(table.prefix_count(), 0u);
}

TEST(BgpTable, WithdrawMissingIsNoOp) {
  BgpTable table{AsNumber(7018)};
  table.withdraw(kPrefix, AsNumber(4));
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.withdraw(kPrefix, AsNumber(9));
  EXPECT_EQ(table.route_count(), 1u);
}

TEST(BgpTable, ForEachBestVisitsOnePerPrefix) {
  BgpTable table{AsNumber(7018)};
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.add(make_route(kPrefix, {AsNumber(5)}, 120));
  table.add(make_route(kOther, {AsNumber(4)}, 100));
  std::size_t count = 0;
  table.for_each_best([&](const Route& best) {
    ++count;
    if (best.prefix == kPrefix) EXPECT_EQ(best.learned_from, AsNumber(5));
  });
  EXPECT_EQ(count, 2u);
}

TEST(BgpTable, PrefixesReturnsAll) {
  BgpTable table{AsNumber(7018)};
  table.add(make_route(kPrefix, {AsNumber(4)}, 100));
  table.add(make_route(kOther, {AsNumber(4)}, 100));
  auto prefixes = table.prefixes();
  EXPECT_EQ(prefixes.size(), 2u);
}

}  // namespace
}  // namespace bgpolicy::bgp
