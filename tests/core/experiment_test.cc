// The staged experiment API contract (ISSUE 3): staged artifacts
// reassemble into a Pipeline byte-identical to run_pipeline's at any
// thread count, downstream stages re-run against cached upstream artifacts
// (verified by stage-run counters), and sweeps are thread-count
// independent with upstream work shared per distinct scenario.
#include "core/experiment.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/artifact_codec.h"
#include "io/binary_table.h"

namespace bgpolicy::core {
namespace {

using util::AsNumber;

std::string table_bytes(const bgp::BgpTable& table) {
  const auto bytes = io::serialize_table(table);
  return std::string(bytes.begin(), bytes.end());
}

// Byte-level digest of every product run_pipeline assembles.  Tables are
// serialized through the io layer; relationships/tiers go through the
// canonical serializers.
std::string pipeline_digest(const Pipeline& pipe) {
  std::string out;
  out += "collector\n" + table_bytes(pipe.sim.collector);
  for (const AsNumber as : sorted_looking_glass(pipe.sim)) {
    out += "lg " + util::to_string(as) + "\n" +
           table_bytes(pipe.sim.looking_glass.at(as));
  }
  out += "unconverged=" + std::to_string(pipe.sim.unconverged_prefixes);
  out += " events=" + std::to_string(pipe.sim.process_events);
  out += " origs=" + std::to_string(pipe.originations.size());
  out += " best_only=" + std::to_string(pipe.sim.best_only.size()) + "\n";
  out += pipe.irr_text;
  out += asrel::canonical_serialize(pipe.inferred);
  out += asrel::canonical_serialize(pipe.tiers);
  out += "paths=" + std::to_string(pipe.paths.path_count());
  out += " adjacencies=" + std::to_string(pipe.paths.adjacency_count());
  out += "\n";
  return out;
}

TEST(Experiment, StagedRoundtripMatchesRunPipelineAtEveryThreadCount) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const Pipeline reference = run_pipeline(Scenario::small(91), threads);

    RunOptions options;
    options.threads = threads;
    options.until = Stage::kInfer;
    Experiment experiment(Scenario::small(91), options);
    experiment.run();

    // Each stage ran exactly once.
    EXPECT_EQ(experiment.counters().synthesize, 1u);
    EXPECT_EQ(experiment.counters().simulate, 1u);
    EXPECT_EQ(experiment.counters().observe, 1u);
    EXPECT_EQ(experiment.counters().infer, 1u);
    EXPECT_EQ(experiment.counters().analyze, 0u);

    const Pipeline copied = experiment.to_pipeline();
    EXPECT_EQ(pipeline_digest(copied), pipeline_digest(reference))
        << "staged reassembly differs from run_pipeline at threads="
        << threads;

    const Pipeline moved = std::move(experiment).into_pipeline();
    EXPECT_EQ(pipeline_digest(moved), pipeline_digest(reference));
  }
}

TEST(Experiment, RerunInferReusesCachedUpstreamArtifacts) {
  Experiment experiment(Scenario::small(7));
  const std::string irr_before = experiment.observations().irr_text;
  const std::string first =
      asrel::canonical_serialize(experiment.inference().inferred);

  // Same params, different knob: the peer-detection ablation must change
  // the classification, without re-running any upstream stage.
  asrel::GaoParams no_peers;
  no_peers.detect_peers = false;
  const std::string second =
      asrel::canonical_serialize(experiment.rerun_infer(no_peers).inferred);
  EXPECT_NE(second, first);

  EXPECT_EQ(experiment.counters().synthesize, 1u);
  EXPECT_EQ(experiment.counters().simulate, 1u);
  EXPECT_EQ(experiment.counters().observe, 1u);
  EXPECT_EQ(experiment.counters().infer, 2u);
  EXPECT_EQ(experiment.observations().irr_text, irr_before);

  // Re-running with the original params restores the original products —
  // the cached Observations are bit-for-bit stable across Infer variants.
  asrel::GaoParams original;
  original.threads = experiment.threads();
  EXPECT_EQ(asrel::canonical_serialize(
                experiment.rerun_infer(original).inferred),
            first);
}

TEST(Experiment, StageSelectionStopsWhereAsked) {
  RunOptions options;
  options.until = Stage::kSimulate;
  Experiment experiment(Scenario::small(7), options);
  experiment.run();
  EXPECT_EQ(experiment.counters().synthesize, 1u);
  EXPECT_EQ(experiment.counters().simulate, 1u);
  EXPECT_EQ(experiment.counters().observe, 0u);
  EXPECT_EQ(experiment.counters().infer, 0u);
  EXPECT_EQ(experiment.counters().analyze, 0u);

  const Experiment& finished = experiment;
  EXPECT_GT(finished.sim().sim.collector.prefix_count(), 0u);
  EXPECT_THROW((void)finished.observations(), std::logic_error);
  EXPECT_THROW((void)finished.inference(), std::logic_error);
}

TEST(Experiment, AnalyzeStageMatchesSuiteOverPipeline) {
  RunOptions options;
  options.threads = 1;
  Experiment experiment(Scenario::small(42), options);
  const std::string staged = canonical_serialize(experiment.analyses());
  EXPECT_EQ(experiment.counters().analyze, 1u);

  const Pipeline pipe = run_pipeline(Scenario::small(42), 1);
  const std::string direct = canonical_serialize(
      run_analysis_suite(pipe, recorded_vantages(pipe), 1));
  EXPECT_EQ(staged, direct);
}

std::string run_digest(const SweepRun& run) {
  return run.label + "\n" +
         asrel::canonical_serialize(run.inference.inferred) +
         asrel::canonical_serialize(run.inference.tiers) +
         canonical_serialize(run.analyses);
}

std::vector<SweepVariant> sweep_variants() {
  SweepVariant base;
  base.label = "base";
  base.scenario = Scenario::small(5);

  SweepVariant no_peers = base;
  no_peers.label = "no-peers";
  no_peers.options.gao = asrel::GaoParams{};
  no_peers.options.gao->detect_peers = false;

  SweepVariant other_seed;
  other_seed.label = "seed9";
  other_seed.scenario = Scenario::small(9);

  // Same world as `base`, different thread knob: must share its upstream
  // cache entry (thread counts never change artifact bytes).
  SweepVariant threaded = base;
  threaded.label = "threaded";
  threaded.scenario.propagation.threads = 3;

  return {base, no_peers, other_seed, threaded};
}

TEST(Sweep, ReusesUpstreamArtifactsPerDistinctScenario) {
  const std::vector<SweepVariant> variants = sweep_variants();
  const SweepReport report = sweep(variants, 1);

  ASSERT_EQ(report.runs.size(), 4u);
  EXPECT_EQ(report.distinct_scenarios, 2u);
  // The stage-run ledger: upstream stages once per distinct scenario,
  // Infer/Analyze once per variant.
  EXPECT_EQ(report.counters.synthesize, 2u);
  EXPECT_EQ(report.counters.simulate, 2u);
  EXPECT_EQ(report.counters.observe, 2u);
  EXPECT_EQ(report.counters.infer, 4u);
  EXPECT_EQ(report.counters.analyze, 4u);

  // Results merge in request order.
  EXPECT_EQ(report.runs[0].label, "base");
  EXPECT_EQ(report.runs[1].label, "no-peers");
  EXPECT_EQ(report.runs[2].label, "seed9");
  EXPECT_EQ(report.runs[3].label, "threaded");

  // Cache-key relationships.
  EXPECT_EQ(report.runs[0].scenario_key, report.runs[1].scenario_key);
  EXPECT_EQ(report.runs[0].scenario_key, report.runs[3].scenario_key);
  EXPECT_NE(report.runs[0].scenario_key, report.runs[2].scenario_key);

  // Identical scenario + params => identical products; a changed inference
  // knob or seed => different ones.
  EXPECT_EQ(asrel::canonical_serialize(report.runs[0].inference.inferred),
            asrel::canonical_serialize(report.runs[3].inference.inferred));
  EXPECT_NE(asrel::canonical_serialize(report.runs[0].inference.inferred),
            asrel::canonical_serialize(report.runs[1].inference.inferred));
  EXPECT_NE(asrel::canonical_serialize(report.runs[0].inference.inferred),
            asrel::canonical_serialize(report.runs[2].inference.inferred));
}

TEST(Experiment, ChunkSizeAndThreadsNeverChangeArtifacts) {
  // The task-graph Simulate path (forced by threads >= 2) must produce
  // byte-identical artifacts at every chunk size, all equal to the
  // sequential seed program's.
  RunOptions reference_options;
  reference_options.threads = 1;
  Experiment reference(Scenario::small(17), reference_options);
  reference.run(Stage::kObserve);
  const std::string reference_sim(
      [](const std::vector<std::uint8_t>& b) {
        return std::string(b.begin(), b.end());
      }(io::encode(reference.sim())));
  const std::string reference_obs(
      [](const std::vector<std::uint8_t>& b) {
        return std::string(b.begin(), b.end());
      }(io::encode(reference.observations())));

  for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                  std::size_t{5}, std::size_t{100000}}) {
    RunOptions options;
    options.threads = 3;
    options.sim_chunk_prefixes = chunk;
    Experiment experiment(Scenario::small(17), options);
    experiment.run(Stage::kObserve);
    const std::vector<std::uint8_t> sim_bytes = io::encode(experiment.sim());
    const std::vector<std::uint8_t> obs_bytes =
        io::encode(experiment.observations());
    EXPECT_EQ(std::string(sim_bytes.begin(), sim_bytes.end()), reference_sim)
        << "SimArtifact differs at chunk size " << chunk;
    EXPECT_EQ(std::string(obs_bytes.begin(), obs_bytes.end()), reference_obs)
        << "Observations differ at chunk size " << chunk;
    EXPECT_EQ(experiment.sim_chunks().computed, experiment.sim_chunks().total);

    // Invalidate-and-rerun starts a fresh chunk ledger (computed + loaded
    // always equals total) and reproduces the same bytes.
    experiment.invalidate(Stage::kSimulate);
    experiment.run(Stage::kSimulate);
    EXPECT_EQ(experiment.sim_chunks().computed, experiment.sim_chunks().total);
    EXPECT_EQ(experiment.sim_chunks().loaded, 0u);
    const std::vector<std::uint8_t> again = io::encode(experiment.sim());
    EXPECT_EQ(std::string(again.begin(), again.end()), reference_sim);
  }
}

TEST(Sweep, StreamsCompletionsWhileMergingInRequestOrder) {
  const std::vector<SweepVariant> variants = sweep_variants();

  // Sequential execution completes variants in request order — the
  // deterministic anchor for completion_index.
  const SweepReport sequential = sweep(variants, 1);
  for (std::size_t i = 0; i < sequential.runs.size(); ++i) {
    EXPECT_EQ(sequential.runs[i].completion_index, i);
  }

  // Parallel execution streams in some order (a permutation), but the
  // report still merges in request order with identical products.
  const SweepReport sharded = sweep(variants, 4);
  std::vector<std::size_t> seen(sharded.runs.size(), 0);
  for (std::size_t i = 0; i < sharded.runs.size(); ++i) {
    EXPECT_EQ(sharded.runs[i].label, variants[i].label);
    ASSERT_LT(sharded.runs[i].completion_index, seen.size());
    ++seen[sharded.runs[i].completion_index];
  }
  for (const std::size_t count : seen) EXPECT_EQ(count, 1u);
}

TEST(Sweep, OutputIndependentOfThreadCount) {
  const std::vector<SweepVariant> variants = sweep_variants();
  const SweepReport sequential = sweep(variants, 1);
  const SweepReport sharded = sweep(variants, 4);

  ASSERT_EQ(sequential.runs.size(), sharded.runs.size());
  for (std::size_t i = 0; i < sequential.runs.size(); ++i) {
    EXPECT_EQ(run_digest(sequential.runs[i]), run_digest(sharded.runs[i]))
        << "sweep run " << i << " differs between thread counts";
  }
  EXPECT_EQ(sharded.counters.synthesize, sequential.counters.synthesize);
  EXPECT_EQ(sharded.counters.infer, sequential.counters.infer);
}

TEST(ScenarioCacheKey, SeparatesWorldsAndIgnoresThreadKnobs) {
  const Scenario a = Scenario::small(5);
  Scenario b = Scenario::small(5);
  EXPECT_EQ(scenario_cache_key(a), scenario_cache_key(b));

  b.propagation.threads = 7;  // thread knobs never change artifacts
  EXPECT_EQ(scenario_cache_key(a), scenario_cache_key(b));

  b = Scenario::small(5);
  b.topo_params.stub_count += 1;
  EXPECT_NE(scenario_cache_key(a), scenario_cache_key(b));

  b = Scenario::small(5);
  b.irr_params.coverage += 1e-9;  // exact bit-pattern, no double rounding
  EXPECT_NE(scenario_cache_key(a), scenario_cache_key(b));

  EXPECT_NE(scenario_cache_key(Scenario::small(5)),
            scenario_cache_key(Scenario::small(6)));
}

}  // namespace
}  // namespace bgpolicy::core
