#include "core/persistence.h"

#include <gtest/gtest.h>

#include "sim/policy_gen.h"
#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

TEST(Persistence, Fig3SingleUnitOscillation) {
  // One toggleable unit flipped every step: the SA count at D alternates.
  Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  const Prefix prefix = Prefix::parse("10.0.0.0/24");
  sim::ExportRule rule;
  rule.prefix = prefix;
  rule.action = sim::ExportAction::kDeny;
  policies.at_mut(fig.a).export_.add_rule_for(fig.b, rule);

  sim::GroundTruth truth;
  truth.origin_units.push_back({fig.a, prefix, fig.b, true, false});
  sim::ChurnParams churn_params;
  churn_params.flip_fraction = 1.0;
  sim::ChurnSimulator churn(fig.graph, policies, {{prefix, fig.a}},
                            std::move(truth), {fig.d}, churn_params);

  const auto study = run_persistence_study(churn, fig.d, fig.graph,
                                           oracle_from(fig.graph), 4);
  ASSERT_EQ(study.series.size(), 4u);
  EXPECT_EQ(study.series[0].sa_prefixes, 1u);
  EXPECT_EQ(study.series[1].sa_prefixes, 0u);
  EXPECT_EQ(study.series[2].sa_prefixes, 1u);
  EXPECT_EQ(study.series[3].sa_prefixes, 0u);
  // The prefix was present all 4 steps but SA only half the time: shifted.
  EXPECT_EQ(study.ever_sa, 1u);
  EXPECT_EQ(study.shifted_total, 1u);
  ASSERT_EQ(study.uptime_histogram.size(), 1u);
  EXPECT_EQ(study.uptime_histogram.front().uptime, 4u);
  EXPECT_EQ(study.uptime_histogram.front().shifted, 1u);
  EXPECT_EQ(study.uptime_histogram.front().remaining_sa, 0u);
}

TEST(Persistence, StableSaPrefixRemains) {
  // No flips: the SA prefix stays SA every step.
  Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  const Prefix prefix = Prefix::parse("10.0.0.0/24");
  sim::ExportRule rule;
  rule.prefix = prefix;
  rule.action = sim::ExportAction::kDeny;
  policies.at_mut(fig.a).export_.add_rule_for(fig.b, rule);

  sim::GroundTruth truth;  // no toggleable units -> step() changes nothing
  sim::ChurnSimulator churn(fig.graph, policies, {{prefix, fig.a}},
                            std::move(truth), {fig.d}, {});
  const auto study = run_persistence_study(churn, fig.d, fig.graph,
                                           oracle_from(fig.graph), 5);
  EXPECT_EQ(study.ever_sa, 1u);
  EXPECT_EQ(study.shifted_total, 0u);
  ASSERT_EQ(study.uptime_histogram.size(), 1u);
  EXPECT_EQ(study.uptime_histogram.front().remaining_sa, 1u);
  for (const auto& snap : study.series) {
    EXPECT_EQ(snap.sa_prefixes, 1u);
    EXPECT_EQ(snap.total_prefixes, 1u);
  }
}

// Fig. 6/7 shape on the shared pipeline world: SA counts stay in a stable
// band and only a minority of ever-SA prefixes shift within a "month".
TEST(Persistence, PipelineFig6Fig7Shape) {
  const auto& pipe = shared_pipeline();
  sim::ChurnParams churn_params;
  churn_params.flip_fraction = 0.02;
  sim::ChurnSimulator churn(pipe.topo.graph, pipe.gen.policies,
                            pipe.originations, pipe.gen.truth,
                            {AsNumber(1)}, churn_params);
  const auto study = run_persistence_study(churn, AsNumber(1),
                                           pipe.inferred_graph,
                                           pipe.inferred_oracle(), 10);
  ASSERT_EQ(study.series.size(), 10u);
  // Fig. 6 shape: SA prefixes are a persistent, roughly stable minority.
  for (const auto& snap : study.series) {
    EXPECT_GT(snap.sa_prefixes, 0u);
    EXPECT_LT(snap.sa_prefixes, snap.customer_prefixes);
  }
  const double first = static_cast<double>(study.series.front().sa_prefixes);
  const double last = static_cast<double>(study.series.back().sa_prefixes);
  EXPECT_LT(std::abs(first - last) / first, 0.6) << "SA count should be stable";
  // Fig. 7 shape: some prefixes shift, but "most of them are stable".
  EXPECT_GT(study.ever_sa, 0u);
  EXPECT_LT(study.percent_shifted, 50.0);
}

// The persistence-sharding determinism contract: churn stepping is
// sequential, the per-snapshot SA analysis shards over snapshots, and the
// study serializes byte-identically for threads ∈ {1, 4, 0}.
TEST(Persistence, ShardedSnapshotAnalysisIsThreadCountIndependent) {
  const auto& pipe = shared_pipeline();
  const auto study_at = [&](std::size_t threads) {
    sim::ChurnParams churn_params;
    churn_params.flip_fraction = 0.02;
    sim::ChurnSimulator churn(pipe.topo.graph, pipe.gen.policies,
                              pipe.originations, pipe.gen.truth,
                              {AsNumber(1)}, churn_params);
    return canonical_serialize(run_persistence_study(
        churn, AsNumber(1), pipe.inferred_graph, pipe.inferred_oracle(), 8,
        threads));
  };
  const std::string reference = study_at(1);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t threads : {std::size_t{4}, std::size_t{0}}) {
    EXPECT_EQ(study_at(threads), reference)
        << "persistence study differs at threads=" << threads;
  }
}

}  // namespace
}  // namespace bgpolicy::core
