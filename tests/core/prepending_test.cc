#include "core/prepending.h"

#include <gtest/gtest.h>

#include "sim/propagation.h"
#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::AsPath;
using bgp::Prefix;
using util::AsNumber;

TEST(PrependDepth, DetectsRuns) {
  EXPECT_EQ(prepend_depth(AsPath::parse("1 2 3")), 0u);
  EXPECT_EQ(prepend_depth(AsPath::parse("1 2 2 3")), 1u);
  EXPECT_EQ(prepend_depth(AsPath::parse("1 2 2 2 3")), 2u);
  EXPECT_EQ(prepend_depth(AsPath::parse("1 1 2 3 3 3")), 2u);
  EXPECT_EQ(prepend_depth(AsPath()), 0u);
  EXPECT_EQ(prepend_depth(AsPath::parse("7")), 0u);
}

TEST(Prepending, AnalyzesTable) {
  bgp::BgpTable table{AsNumber(9)};
  table.add(make_route(Prefix::parse("10.0.0.0/24"),
                       {AsNumber(2), AsNumber(3)}));
  table.add(make_route(Prefix::parse("10.0.1.0/24"),
                       {AsNumber(2), AsNumber(3), AsNumber(3), AsNumber(3)}));
  const auto result = analyze_prepending(table);
  EXPECT_EQ(result.total_routes, 2u);
  EXPECT_EQ(result.prepended_routes, 1u);
  EXPECT_DOUBLE_EQ(result.percent_prepended, 50.0);
  EXPECT_TRUE(result.prepending_ases.contains(AsNumber(3)));
  EXPECT_FALSE(result.prepending_ases.contains(AsNumber(2)));
  EXPECT_EQ(result.depth_histogram.at(2), 1u);
}

TEST(Prepending, EnginePropagatesPrependedPaths) {
  // A prepends twice toward B: B's path to the prefix is "a a a"; C's
  // stays "a".  B still prefers the (longer) customer route by local-pref.
  Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  const Prefix prefix = Prefix::parse("10.0.0.0/24");
  sim::ExportRule rule;
  rule.prefix = prefix;
  rule.action = sim::ExportAction::kPrepend;
  rule.prepend_times = 2;
  policies.at_mut(fig.a).export_.add_rule_for(fig.b, rule);

  const sim::PropagationEngine engine(fig.graph, policies);
  const auto state = engine.propagate({prefix, fig.a});
  const bgp::Route* at_b = state.best_at(fig.b);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->learned_from, fig.a);
  EXPECT_EQ(at_b->path.length(), 3u);
  EXPECT_EQ(prepend_depth(at_b->path), 2u);
  const bgp::Route* at_c = state.best_at(fig.c);
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->path.length(), 1u);

  // Upstream of B, path length decides: D prefers the unprepended chain
  // via E?  No — D's customer route via B wins on local-pref regardless;
  // but D's path through B carries the prepending.
  const bgp::Route* at_d = state.best_at(fig.d);
  ASSERT_NE(at_d, nullptr);
  EXPECT_EQ(at_d->learned_from, fig.b);
  EXPECT_EQ(prepend_depth(at_d->path), 2u);
}

TEST(Prepending, PrependSteersEqualPrefChoice) {
  // At the peer level (equal local-pref), prepending diverts the choice:
  // give D two peer-ish options by a custom graph.
  topo::AsGraph g;
  const AsNumber o{10}, left{20}, right{30}, top{40};
  for (const auto as : {o, left, right, top}) g.add_as(as);
  g.add_provider_customer(left, o);
  g.add_provider_customer(right, o);
  g.add_provider_customer(top, left);
  g.add_provider_customer(top, right);

  auto policies = typical_policies(g);
  const Prefix prefix = Prefix::parse("10.0.0.0/24");
  // Without prepending, top picks the lower AS number (left=20).
  {
    const sim::PropagationEngine engine(g, policies);
    const auto state = engine.propagate({prefix, o});
    ASSERT_NE(state.best_at(top), nullptr);
    EXPECT_EQ(state.best_at(top)->learned_from, left);
  }
  // Prepending toward left makes the right-hand path shorter.
  sim::ExportRule rule;
  rule.prefix = prefix;
  rule.action = sim::ExportAction::kPrepend;
  rule.prepend_times = 2;
  policies.at_mut(o).export_.add_rule_for(left, rule);
  {
    const sim::PropagationEngine engine(g, policies);
    const auto state = engine.propagate({prefix, o});
    ASSERT_NE(state.best_at(top), nullptr);
    EXPECT_EQ(state.best_at(top)->learned_from, right)
        << "prepending must deprioritize the left link";
  }
}

TEST(Prepending, PipelinePrevalenceMatchesGroundTruth) {
  const auto& pipe = shared_pipeline();
  const auto result = analyze_prepending(pipe.sim.collector);
  // Every ground-truth prepender that is visible must be detected, and no
  // AS outside the truth set may appear (the engine only prepends on
  // configured rules).
  std::unordered_set<util::AsNumber> truth;
  for (const auto& unit : pipe.gen.truth.prepend_units) {
    truth.insert(unit.origin);
  }
  for (const auto as : result.prepending_ases) {
    EXPECT_TRUE(truth.contains(as))
        << util::to_string(as) << " prepends without a configured rule";
  }
  if (!truth.empty()) {
    EXPECT_GT(result.prepended_routes, 0u);
  }
}

}  // namespace
}  // namespace bgpolicy::core
