#include "core/export_inference.h"

#include <gtest/gtest.h>

#include "sim/propagation.h"
#include "sim/simulation.h"
#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");
const Prefix kOther = Prefix::parse("10.0.1.0/24");

// Runs the Fig. 3 world and returns D's best-route table.
struct Fig3World {
  Figure3 fig = figure3_graph();
  sim::PolicySet policies;
  bgp::BgpTable table_d{util::AsNumber(0)};
};

Fig3World run_fig3(bool withhold_from_b) {
  Fig3World w;
  w.policies = typical_policies(w.fig.graph);
  if (withhold_from_b) {
    sim::ExportRule rule;
    rule.prefix = kPrefix;
    rule.action = sim::ExportAction::kDeny;
    w.policies.at_mut(w.fig.a).export_.add_rule_for(w.fig.b, rule);
  }
  sim::VantageSpec spec;
  spec.best_only = {w.fig.d};
  const std::vector<sim::Origination> originations{{kPrefix, w.fig.a},
                                                   {kOther, w.fig.a}};
  auto result =
      sim::run_simulation(w.fig.graph, w.policies, originations, spec);
  w.table_d = std::move(result.best_only.at(w.fig.d));
  return w;
}

TEST(SaInference, Figure3SelectiveAnnouncementDetected) {
  const auto w = run_fig3(/*withhold_from_b=*/true);
  const auto analysis = infer_sa_prefixes(w.table_d, w.fig.d, w.fig.graph,
                                          oracle_from(w.fig.graph));
  // kPrefix arrives at D via peer E: SA.  kOther arrives via customer B.
  EXPECT_EQ(analysis.customer_prefixes, 2u);
  ASSERT_EQ(analysis.sa_count, 1u);
  const SaPrefix& sa = analysis.sa_prefixes.front();
  EXPECT_EQ(sa.prefix, kPrefix);
  EXPECT_EQ(sa.origin, w.fig.a);
  EXPECT_EQ(sa.next_hop, w.fig.e);
  EXPECT_EQ(sa.next_hop_rel, RelKind::kPeer);
  EXPECT_DOUBLE_EQ(analysis.percent_sa, 50.0);
}

TEST(SaInference, NoSelectiveAnnouncementNoSaPrefixes) {
  const auto w = run_fig3(/*withhold_from_b=*/false);
  const auto analysis = infer_sa_prefixes(w.table_d, w.fig.d, w.fig.graph,
                                          oracle_from(w.fig.graph));
  EXPECT_EQ(analysis.customer_prefixes, 2u);
  EXPECT_EQ(analysis.sa_count, 0u);
}

TEST(SaInference, NonCustomerOriginsAreOutOfScope) {
  // From E's point of view, A is NOT a customer (A sits under B/C only via
  // C; check: E is C's provider, so A IS in E's cone through C).  Use B's
  // vantage instead: origin E is not in B's cone.
  auto fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  sim::VantageSpec spec;
  spec.best_only = {fig.b};
  const std::vector<sim::Origination> originations{{kPrefix, fig.e}};
  auto result = sim::run_simulation(fig.graph, policies, originations, spec);
  const auto analysis =
      infer_sa_prefixes(result.best_only.at(fig.b), fig.b, fig.graph,
                        oracle_from(fig.graph));
  EXPECT_EQ(analysis.customer_prefixes, 0u);
  EXPECT_EQ(analysis.sa_count, 0u);
}

TEST(SaInference, FullRibAblationAgreesUnderTypicalPreferences) {
  // The paper's claim: best routes suffice because a customer route, when
  // present, wins by local preference.  Verify on the Fig. 3 world using
  // D's full Adj-RIB-In.
  auto fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  sim::ExportRule rule;
  rule.prefix = kPrefix;
  rule.action = sim::ExportAction::kDeny;
  policies.at_mut(fig.a).export_.add_rule_for(fig.b, rule);
  sim::VantageSpec spec;
  spec.looking_glass = {fig.d};
  spec.best_only = {fig.d};
  const std::vector<sim::Origination> originations{{kPrefix, fig.a},
                                                   {kOther, fig.a}};
  auto result = sim::run_simulation(fig.graph, policies, originations, spec);

  const auto from_best =
      infer_sa_prefixes(result.best_only.at(fig.d), fig.d, fig.graph,
                        oracle_from(fig.graph));
  const auto from_rib =
      sa_from_full_rib(result.looking_glass.at(fig.d), fig.d, fig.graph,
                       oracle_from(fig.graph));
  EXPECT_EQ(from_best.sa_count, from_rib.sa_count);
  EXPECT_EQ(from_best.customer_prefixes, from_rib.customer_prefixes);
}

TEST(SaInference, PerCustomerIntersection) {
  // Table 6 semantics: a prefix counts only when SA w.r.t. every provider.
  const auto& pipe = shared_pipeline();
  const std::vector<util::AsNumber> providers{
      util::AsNumber(1), util::AsNumber(3549), util::AsNumber(7018)};
  std::vector<const bgp::BgpTable*> tables;
  for (const auto p : providers) tables.push_back(&pipe.table_for(p));

  // Pick a few customers with many prefixes.
  std::vector<util::AsNumber> customers;
  for (const auto as : pipe.topo.stubs) {
    if (pipe.plan.count_for(as) >= 4) customers.push_back(as);
    if (customers.size() == 8) break;
  }
  ASSERT_FALSE(customers.empty());

  const auto rows = sa_per_customer(tables, providers, customers,
                                    pipe.inferred_graph, pipe.inferred_oracle());
  ASSERT_EQ(rows.size(), customers.size());
  for (const auto& row : rows) {
    EXPECT_LE(row.sa_count, row.prefix_count);
    // Cross-check: the intersection count cannot exceed any single
    // provider's SA count restricted to this customer.
    for (std::size_t i = 0; i < providers.size(); ++i) {
      const auto single = infer_sa_prefixes(*tables[i], providers[i],
                                            pipe.inferred_graph,
                                            pipe.inferred_oracle());
      std::size_t per_provider = 0;
      for (const auto& sa : single.sa_prefixes) {
        if (sa.origin == row.customer) ++per_provider;
      }
      // Absent prefixes count as SA in the intersection, so only a sanity
      // bound is available here.
      EXPECT_LE(row.sa_count, row.prefix_count);
      (void)per_provider;
    }
  }
}

// Ground-truth scoring: every detected SA prefix at a Tier-1 must trace to
// a configured behavior (origin/intermediate selective announcement,
// community cap, splitting, or aggregation).
TEST(SaInference, DetectedSaPrefixesHaveGroundTruthCause) {
  const auto& pipe = shared_pipeline();
  // Collect ground-truth "suppressed somewhere" prefixes.
  std::unordered_set<bgp::Prefix> truth_touched;
  for (const auto& unit : pipe.gen.truth.origin_units) {
    if (unit.withheld) truth_touched.insert(unit.prefix);
  }
  for (const auto& split : pipe.gen.truth.split_specifics) {
    truth_touched.insert(split);
  }
  for (const auto& [prefix, provider] : pipe.gen.truth.aggregated_by) {
    truth_touched.insert(prefix);
  }
  std::unordered_set<util::AsNumber> intermediate_origins;
  for (const auto& unit : pipe.gen.truth.intermediate_units) {
    intermediate_origins.insert(unit.customer);
  }

  const util::AsNumber vantage{1};
  const auto analysis =
      infer_sa_prefixes(pipe.table_for(vantage), vantage, pipe.inferred_graph,
                        pipe.inferred_oracle());
  std::size_t explained = 0;
  for (const auto& sa : analysis.sa_prefixes) {
    const bool direct = truth_touched.contains(sa.prefix);
    // Intermediate selective announcement suppresses whole customer cones;
    // check whether the origin sits under a suppressed customer.
    bool via_intermediate = intermediate_origins.contains(sa.origin);
    for (const auto mid : intermediate_origins) {
      if (pipe.topo.graph.contains(mid) &&
          pipe.topo.graph.in_customer_cone(mid, sa.origin)) {
        via_intermediate = true;
      }
    }
    if (direct || via_intermediate) ++explained;
  }
  ASSERT_GT(analysis.sa_count, 0u);
  EXPECT_GT(util::percent(explained, analysis.sa_count), 90.0)
      << "too many SA prefixes with no configured cause (false positives)";
}

}  // namespace
}  // namespace bgpolicy::core
