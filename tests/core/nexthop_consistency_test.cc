#include "core/nexthop_consistency.h"

#include <gtest/gtest.h>

#include "sim/router_partition.h"
#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

TEST(NextHopConsistency, FullyConsistentTable) {
  bgp::BgpTable table{AsNumber(5)};
  for (std::uint32_t i = 0; i < 10; ++i) {
    table.add(make_route(Prefix(0x0A000000 + (i << 8), 24),
                         {AsNumber(10), AsNumber(900)}, 120));
    table.add(make_route(Prefix(0x0A000000 + (i << 8), 24),
                         {AsNumber(20), AsNumber(900)}, 100));
  }
  const auto result = analyze_nexthop_consistency(table);
  EXPECT_EQ(result.total_routes, 20u);
  EXPECT_EQ(result.consistent_routes, 20u);
  EXPECT_DOUBLE_EQ(result.percent_consistent, 100.0);
  EXPECT_EQ(result.modal_pref.at(AsNumber(10)), 120u);
  EXPECT_EQ(result.modal_pref.at(AsNumber(20)), 100u);
}

TEST(NextHopConsistency, PerPrefixOverridesReduceConsistency) {
  bgp::BgpTable table{AsNumber(5)};
  for (std::uint32_t i = 0; i < 10; ++i) {
    const std::uint32_t lp = i < 8 ? 120 : 66;  // 2 of 10 prefixes pinned
    table.add(make_route(Prefix(0x0A000000 + (i << 8), 24),
                         {AsNumber(10), AsNumber(900)}, lp));
  }
  const auto result = analyze_nexthop_consistency(table);
  EXPECT_EQ(result.modal_pref.at(AsNumber(10)), 120u);
  EXPECT_EQ(result.consistent_routes, 8u);
  EXPECT_DOUBLE_EQ(result.percent_consistent, 80.0);
}

TEST(NextHopConsistency, EmptyTable) {
  const bgp::BgpTable table{AsNumber(5)};
  const auto result = analyze_nexthop_consistency(table);
  EXPECT_EQ(result.total_routes, 0u);
  EXPECT_EQ(result.percent_consistent, 0.0);
}

// Fig. 2a shape: most vantages assign local preference per next-hop AS.
TEST(NextHopConsistency, PipelineFig2aShape) {
  const auto& pipe = shared_pipeline();
  std::size_t high = 0;
  std::size_t total = 0;
  for (const auto vantage : pipe.vantage.looking_glass) {
    const auto result =
        analyze_nexthop_consistency(pipe.sim.looking_glass.at(vantage));
    if (result.total_routes < 50) continue;
    ++total;
    if (result.percent_consistent > 85.0) ++high;
  }
  ASSERT_GT(total, 2u);
  EXPECT_EQ(high, total) << "every vantage should be next-hop keyed";
}

// Fig. 2b shape: per-router views of one AS stay mostly consistent, with
// deviant routers dipping.
TEST(NextHopConsistency, PipelineFig2bShape) {
  const auto& pipe = shared_pipeline();
  const AsNumber att{7018};
  ASSERT_TRUE(pipe.sim.looking_glass.contains(att));
  sim::RouterPartitionParams params;
  params.router_count = 30;
  const auto views =
      sim::partition_routers(pipe.sim.looking_glass.at(att), params);
  ASSERT_EQ(views.size(), 30u);
  std::size_t populated = 0;
  std::size_t consistent_routers = 0;
  for (const auto& view : views) {
    if (view.table.route_count() < 10) continue;
    ++populated;
    const auto result = analyze_nexthop_consistency(view.table);
    if (result.percent_consistent > 60.0) ++consistent_routers;
  }
  ASSERT_GT(populated, 5u);
  EXPECT_GT(util::percent(consistent_routers, populated), 80.0);
}

}  // namespace
}  // namespace bgpolicy::core
