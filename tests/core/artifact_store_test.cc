// The artifact store + resume contract (ISSUE 4): stage artifacts persist
// across Experiment instances (the cross-process cache, exercised here via
// fresh in-process experiments over one store), corrupted entries degrade
// to recomputation with identical products, thread knobs never change
// cache identity, and a killed-and-restarted sweep recomputes only the
// missing variants — verified by the stage-run/load ledgers — while
// producing byte-identical products.
//
// ISSUE 5 extends the contract to chunk granularity and bounded stores: a
// run killed *mid-Simulate* leaves its finished chunk artifacts behind and
// a restarted run recomputes only the missing chunks (byte-identical
// merged products), and gc() evicts least-recently-accessed entries while
// never touching pins (in-progress chunk protection) or fresh files.
#include "core/artifact_store.h"

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "asrel/relationships.h"
#include "asrel/tier_classify.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "io/artifact_codec.h"
#include "sim/simulation.h"

namespace bgpolicy::core {
namespace {

using util::AsNumber;

/// A store rooted in a fresh temp directory, removed on destruction.
class ScopedStore {
 public:
  ScopedStore() {
    static int counter = 0;
    root_ = std::filesystem::temp_directory_path() /
            ("bgpolicy-store-test-" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "-" + std::to_string(counter++));
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<ArtifactStore>(root_);
  }
  ~ScopedStore() {
    store_.reset();
    std::error_code ignored;
    std::filesystem::remove_all(root_, ignored);
  }

  ArtifactStore& operator*() { return *store_; }
  ArtifactStore* operator->() { return store_.get(); }
  ArtifactStore* get() { return store_.get(); }

 private:
  std::filesystem::path root_;
  std::unique_ptr<ArtifactStore> store_;
};

std::string products_digest(const InferenceProducts& inference,
                            const AnalysisSuite& analyses) {
  return asrel::canonical_serialize(inference.inferred) +
         asrel::canonical_serialize(inference.tiers) +
         canonical_serialize(analyses);
}

TEST(ArtifactStore, PutLoadContainsErase) {
  ScopedStore store;
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 250, 0, 7};

  EXPECT_FALSE(store->contains("some-key"));
  EXPECT_FALSE(store->load("some-key").has_value());

  EXPECT_TRUE(store->put("some-key", bytes));
  EXPECT_TRUE(store->contains("some-key"));
  EXPECT_EQ(store->load("some-key"), bytes);
  EXPECT_EQ(store->size(), 1u);

  // Same key, new content: replaced atomically.
  const std::vector<std::uint8_t> updated = {9, 9};
  EXPECT_TRUE(store->put("some-key", updated));
  EXPECT_EQ(store->load("some-key"), updated);
  EXPECT_EQ(store->size(), 1u);

  EXPECT_TRUE(store->erase("some-key"));
  EXPECT_FALSE(store->contains("some-key"));
  EXPECT_FALSE(store->erase("some-key"));
}

TEST(ArtifactStore, DigestIsStableAndContentSensitive) {
  const std::string a = stable_digest_hex(std::string_view("hello"));
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(a, stable_digest_hex(std::string_view("hello")));
  EXPECT_NE(a, stable_digest_hex(std::string_view("hellp")));
  EXPECT_NE(a, stable_digest_hex(std::string_view("")));
}

TEST(ArtifactStore, SecondExperimentLoadsEveryStage) {
  ScopedStore store;
  RunOptions options;
  options.threads = 1;
  options.store = store.get();

  Experiment first(Scenario::small(33), options);
  first.run();
  EXPECT_EQ(first.counters().synthesize, 1u);
  EXPECT_EQ(first.counters().analyze, 1u);
  EXPECT_EQ(first.loads().synthesize, 0u);
  EXPECT_EQ(store->size(), 5u);  // one artifact per stage

  // A fresh experiment over the same store: zero stage executions, five
  // loads, byte-identical products.
  Experiment second(Scenario::small(33), options);
  second.run();
  EXPECT_EQ(second.counters().synthesize, 0u);
  EXPECT_EQ(second.counters().simulate, 0u);
  EXPECT_EQ(second.counters().observe, 0u);
  EXPECT_EQ(second.counters().infer, 0u);
  EXPECT_EQ(second.counters().analyze, 0u);
  EXPECT_EQ(second.loads().synthesize, 1u);
  EXPECT_EQ(second.loads().simulate, 1u);
  EXPECT_EQ(second.loads().observe, 1u);
  EXPECT_EQ(second.loads().infer, 1u);
  EXPECT_EQ(second.loads().analyze, 1u);

  EXPECT_EQ(io::encode(second.sim()), io::encode(first.sim()));
  EXPECT_EQ(products_digest(second.inference(), second.analyses()),
            products_digest(first.inference(), first.analyses()));

  // A no-store run of the same scenario computes the same products — the
  // store never changes bytes, only who computes them.
  RunOptions plain;
  plain.threads = 1;
  Experiment reference(Scenario::small(33), plain);
  reference.run();
  EXPECT_EQ(products_digest(reference.inference(), reference.analyses()),
            products_digest(first.inference(), first.analyses()));
}

TEST(ArtifactStore, ThreadKnobsShareCacheEntries) {
  ScopedStore store;
  RunOptions sequential;
  sequential.threads = 1;
  sequential.store = store.get();
  Experiment first(Scenario::small(12), sequential);
  first.run(Stage::kInfer);
  const std::size_t populated = store->size();

  // A different worker count must hit the same keys (thread knobs are
  // excluded from cache identity) — all loads, no new entries.
  RunOptions threaded;
  threaded.threads = 3;
  threaded.store = store.get();
  Experiment second(Scenario::small(12), threaded);
  second.run(Stage::kInfer);
  EXPECT_EQ(second.counters().simulate, 0u);
  EXPECT_EQ(second.loads().simulate, 1u);
  EXPECT_EQ(second.loads().infer, 1u);
  EXPECT_EQ(store->size(), populated);
}

TEST(ArtifactStore, CorruptedEntryIsAMissAndHealsItself) {
  ScopedStore store;
  RunOptions options;
  options.threads = 1;
  options.store = store.get();
  Experiment first(Scenario::small(33), options);
  first.run();

  // Vandalize the synthesize artifact on disk.
  const std::string truth_key =
      [&] {
        // Recover the key by probing: the store file for synthesize is the
        // one whose bytes decode as GroundTruth.
        for (const auto& entry :
             std::filesystem::directory_iterator(store->root())) {
          std::ifstream in(entry.path(), std::ios::binary);
          std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
          std::span<const std::uint8_t> bytes(
              reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size());
          try {
            (void)io::decode_ground_truth(bytes);
            std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
            out << "vandalized beyond recognition";
            return entry.path().filename().string();
          } catch (const std::invalid_argument&) {
          }
        }
        return std::string();
      }();
  ASSERT_FALSE(truth_key.empty()) << "no ground-truth artifact found";

  // The next experiment recomputes Synthesize (corrupt = miss), re-stores
  // it, and — because the recomputed bytes digest identically — still
  // loads every downstream stage.
  Experiment healed(Scenario::small(33), options);
  healed.run();
  EXPECT_EQ(healed.counters().synthesize, 1u);
  EXPECT_EQ(healed.loads().synthesize, 0u);
  EXPECT_EQ(healed.counters().simulate, 0u);
  EXPECT_EQ(healed.loads().simulate, 1u);
  EXPECT_EQ(healed.loads().analyze, 1u);
  EXPECT_EQ(products_digest(healed.inference(), healed.analyses()),
            products_digest(first.inference(), first.analyses()));

  // And the store is healed: one more run loads everything again.
  Experiment third(Scenario::small(33), options);
  third.run();
  EXPECT_EQ(third.counters().synthesize, 0u);
  EXPECT_EQ(third.loads().synthesize, 1u);
}

TEST(ArtifactStore, EvictedSimEntryStillReusesCachedObservations) {
  ScopedStore store;
  RunOptions options;
  options.threads = 1;
  options.store = store.get();
  Experiment first(Scenario::small(33), options);
  first.run(Stage::kObserve);

  // Lose only the Simulate entry (a gc eviction of the biggest artifact).
  bool erased = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(store->root())) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    const std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size());
    try {
      (void)io::decode_sim_artifact(bytes);
      in.close();
      std::filesystem::remove(entry.path());
      erased = true;
      break;
    } catch (const std::invalid_argument&) {
    }
  }
  ASSERT_TRUE(erased) << "no sim artifact found to evict";

  // The next run must recompute Simulate (identical digest) but still
  // serve Observations from the store instead of redoing path indexing.
  Experiment second(Scenario::small(33), options);
  second.run(Stage::kObserve);
  EXPECT_EQ(second.counters().simulate, 1u);
  EXPECT_EQ(second.loads().simulate, 0u);
  EXPECT_EQ(second.counters().observe, 0u);
  EXPECT_EQ(second.loads().observe, 1u);
  EXPECT_EQ(io::encode(second.observations()), io::encode(first.observations()));
}

TEST(SimChunkCodec, RoundtripIsBytePure) {
  RunOptions options;
  options.threads = 1;
  Experiment experiment(Scenario::small(3), options);
  experiment.run(Stage::kSimulate);
  const GroundTruth& truth = experiment.truth();
  const sim::VantageSpec vantage =
      derive_vantage(experiment.scenario(), truth.topo);

  SimChunk chunk;
  chunk.begin = 0;
  chunk.end = std::min<std::size_t>(4, truth.originations.size());
  chunk.total = truth.originations.size();
  chunk.partial = sim::simulate_chunk(
      truth.topo.graph, truth.gen.policies, truth.originations, vantage,
      experiment.scenario().propagation,
      {0, static_cast<std::size_t>(chunk.end)});

  const std::vector<std::uint8_t> bytes = io::encode(chunk);
  const SimChunk decoded = io::decode_sim_chunk(bytes);
  EXPECT_EQ(decoded.begin, chunk.begin);
  EXPECT_EQ(decoded.end, chunk.end);
  EXPECT_EQ(decoded.total, chunk.total);
  EXPECT_EQ(io::encode(decoded), bytes);  // content-pure re-encode

  // Wrong-kind decode is rejected like every other artifact.
  EXPECT_THROW((void)io::decode_sim_artifact(bytes), std::invalid_argument);
}

TEST(SimChunkResume, KilledMidSimulateRecomputesOnlyMissingChunks) {
  const Scenario scenario = Scenario::small(21);
  RunOptions options;
  options.threads = 1;
  options.sim_chunk_prefixes = 4;

  // Reference: a complete run over its own store.
  ScopedStore full_store;
  RunOptions full_options = options;
  full_options.store = full_store.get();
  Experiment reference(scenario, full_options);
  reference.run(Stage::kSimulate);
  ASSERT_GT(reference.sim_chunks().total, 2u);
  EXPECT_EQ(reference.sim_chunks().computed, reference.sim_chunks().total);
  EXPECT_EQ(reference.sim_chunks().loaded, 0u);

  // Reconstruct the killed-mid-Simulate state in a second store:
  // Synthesize persisted, the leading chunks persisted (what a run flushes
  // as each chunk task completes), the trailing chunks and the merged
  // artifact lost with the process.
  ScopedStore store;
  options.store = store.get();
  Experiment setup(scenario, options);
  setup.run(Stage::kSynthesize);
  const GroundTruth& truth = setup.truth();
  const std::vector<util::IndexRange> ranges =
      sim_chunk_ranges(truth.originations.size(), 4);
  ASSERT_EQ(ranges.size(), reference.sim_chunks().total);
  const std::size_t persisted = ranges.size() / 2;
  const sim::VantageSpec vantage = derive_vantage(scenario, truth.topo);
  const std::string scenario_key = scenario_cache_key(scenario);
  for (std::size_t i = 0; i < persisted; ++i) {
    SimChunk chunk;
    chunk.begin = ranges[i].begin;
    chunk.end = ranges[i].end;
    chunk.total = truth.originations.size();
    chunk.partial = sim::simulate_chunk(truth.topo.graph, truth.gen.policies,
                                        truth.originations, vantage,
                                        scenario.propagation, ranges[i]);
    store->put(
        sim_chunk_store_key(scenario_key,
                            setup.stage_digest(Stage::kSynthesize), ranges[i],
                            truth.originations.size()),
        io::encode(chunk));
  }

  // Resume: the restarted run loads every persisted chunk and computes
  // only the missing ones — mid-stage resume, not per-variant resume.
  Experiment resumed(scenario, options);
  resumed.run(Stage::kSimulate);
  EXPECT_EQ(resumed.loads().synthesize, 1u);
  EXPECT_EQ(resumed.loads().simulate, 0u);  // no merged artifact yet
  EXPECT_EQ(resumed.counters().simulate, 1u);
  EXPECT_EQ(resumed.sim_chunks().total, ranges.size());
  EXPECT_EQ(resumed.sim_chunks().loaded, persisted);
  EXPECT_EQ(resumed.sim_chunks().computed, ranges.size() - persisted);

  // The merged product is byte-identical to the uninterrupted run's.
  EXPECT_EQ(io::encode(resumed.sim()), io::encode(reference.sim()));

  // The merged artifact superseded its chunks: a third run loads it whole
  // and schedules no chunk tasks at all.
  Experiment third(scenario, options);
  third.run(Stage::kSimulate);
  EXPECT_EQ(third.loads().simulate, 1u);
  EXPECT_EQ(third.counters().simulate, 0u);
  EXPECT_EQ(third.sim_chunks().total, 0u);
}

TEST(ArtifactStoreGc, EvictsLeastRecentlyAccessedFirst) {
  ScopedStore store;
  const std::vector<std::uint8_t> blob(100, 7);
  // Distinct timestamps even on coarse filesystem clocks.
  store->put("a", blob);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  store->put("b", blob);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  store->put("c", blob);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (void)store->load("a");  // a read counts as access: "a" is now newest

  EXPECT_EQ(store->total_bytes(), 300u);
  const auto result = store->gc(250, std::chrono::seconds(0));
  EXPECT_EQ(result.scanned, 3u);
  EXPECT_EQ(result.evicted, 1u);
  EXPECT_EQ(result.bytes_after, 200u);
  EXPECT_FALSE(store->contains("b"));  // oldest access evicted first
  EXPECT_TRUE(store->contains("a"));
  EXPECT_TRUE(store->contains("c"));

  // Already under target: a no-op.
  const auto idle = store->gc(250, std::chrono::seconds(0));
  EXPECT_EQ(idle.evicted, 0u);
}

TEST(ArtifactStoreGc, PinnedEntriesAndFreshEntriesSurvive) {
  ScopedStore store;
  const std::vector<std::uint8_t> blob(50, 1);
  store->put("pinned", blob);
  store->put("loose", blob);
  EXPECT_TRUE(store->pin("pinned"));
  EXPECT_TRUE(store->pinned("pinned"));

  // Fresh entries survive a min-age guard even unpinned.
  const auto guarded = store->gc(0, std::chrono::hours(1));
  EXPECT_EQ(guarded.evicted, 0u);

  // Without the age guard, only the pin protects.
  const auto result = store->gc(0, std::chrono::seconds(0));
  EXPECT_EQ(result.evicted, 1u);
  EXPECT_EQ(result.pinned_kept, 1u);
  EXPECT_TRUE(store->contains("pinned"));
  EXPECT_FALSE(store->contains("loose"));

  // Unpin (as the merge step does once the full artifact persists) and
  // the entry becomes evictable.
  EXPECT_TRUE(store->unpin("pinned"));
  EXPECT_FALSE(store->pinned("pinned"));
  EXPECT_EQ(store->gc(0, std::chrono::seconds(0)).evicted, 1u);
  EXPECT_EQ(store->size(), 0u);
}

TEST(ArtifactStoreGc, StalePinsAgeOut) {
  ScopedStore store;
  const std::vector<std::uint8_t> blob(10, 2);
  store->put("orphan", blob);
  store->pin("orphan");  // a killed run leaks this pin

  EXPECT_EQ(store->clear_stale_pins(std::chrono::hours(1)), 0u);  // too young
  EXPECT_EQ(store->clear_stale_pins(std::chrono::seconds(0)), 1u);
  EXPECT_FALSE(store->pinned("orphan"));
}

std::vector<SweepVariant> resume_variants() {
  SweepVariant base;
  base.label = "base";
  base.scenario = Scenario::small(5);

  SweepVariant no_peers = base;
  no_peers.label = "no-peers";
  no_peers.options.gao = asrel::GaoParams{};
  no_peers.options.gao->detect_peers = false;

  SweepVariant other_seed;
  other_seed.label = "seed9";
  other_seed.scenario = Scenario::small(9);

  return {base, no_peers, other_seed};
}

std::string sweep_digest(const SweepReport& report) {
  std::string out;
  for (const SweepRun& run : report.runs) {
    out += run.label + "\n" + products_digest(run.inference, run.analyses);
  }
  return out;
}

TEST(SweepResume, SecondRunLoadsEverythingAndMatchesByteForByte) {
  ScopedStore store;
  const std::vector<SweepVariant> variants = resume_variants();

  const SweepReport first = sweep(variants, 1, store.get());
  EXPECT_EQ(first.counters.synthesize, 2u);  // two distinct scenarios
  EXPECT_EQ(first.counters.infer, 3u);
  EXPECT_EQ(first.counters.analyze, 3u);
  EXPECT_EQ(first.loads.infer, 0u);
  for (const SweepRun& run : first.runs) {
    EXPECT_FALSE(run.store_infer_key.empty());
    EXPECT_FALSE(run.loaded_from_store());
  }

  const SweepReport second = sweep(variants, 1, store.get());
  EXPECT_EQ(second.counters.synthesize, 0u);
  EXPECT_EQ(second.counters.simulate, 0u);
  EXPECT_EQ(second.counters.observe, 0u);
  EXPECT_EQ(second.counters.infer, 0u);
  EXPECT_EQ(second.counters.analyze, 0u);
  EXPECT_EQ(second.loads.synthesize, 2u);
  EXPECT_EQ(second.loads.simulate, 2u);
  EXPECT_EQ(second.loads.observe, 2u);
  EXPECT_EQ(second.loads.infer, 3u);
  EXPECT_EQ(second.loads.analyze, 3u);
  EXPECT_EQ(sweep_digest(second), sweep_digest(first));

  // A storeless sweep computes identical products: resume never changes
  // bytes.
  const SweepReport reference = sweep(variants, 1);
  EXPECT_EQ(sweep_digest(reference), sweep_digest(first));
}

TEST(SweepResume, OnlyTheMissingVariantRecomputes) {
  ScopedStore store;
  const std::vector<SweepVariant> variants = resume_variants();
  const SweepReport first = sweep(variants, 1, store.get());

  // Delete exactly one variant's artifacts — the "killed before this
  // variant finished" state.
  ASSERT_TRUE(store->erase(first.runs[1].store_infer_key));
  ASSERT_TRUE(store->erase(first.runs[1].store_analyze_key));

  const SweepReport resumed = sweep(variants, 1, store.get());
  EXPECT_EQ(resumed.counters.synthesize, 0u);
  EXPECT_EQ(resumed.counters.simulate, 0u);
  EXPECT_EQ(resumed.counters.infer, 1u);  // just the erased variant
  EXPECT_EQ(resumed.counters.analyze, 1u);
  EXPECT_EQ(resumed.loads.infer, 2u);
  EXPECT_EQ(resumed.loads.analyze, 2u);
  EXPECT_TRUE(resumed.runs[0].loaded_from_store());
  EXPECT_FALSE(resumed.runs[1].loaded_from_store());
  EXPECT_TRUE(resumed.runs[2].loaded_from_store());
  EXPECT_EQ(sweep_digest(resumed), sweep_digest(first));
}

TEST(SweepResume, ErasedAnalyzeEntryReusesCachedInference) {
  ScopedStore store;
  const std::vector<SweepVariant> variants = resume_variants();
  const SweepReport first = sweep(variants, 1, store.get());

  // Lose only one variant's Analyze artifact: the variant keys are
  // per-stage, so the resumed run reuses the cached inference and
  // recomputes Analyze alone.
  ASSERT_TRUE(store->erase(first.runs[2].store_analyze_key));
  const SweepReport resumed = sweep(variants, 1, store.get());
  EXPECT_EQ(resumed.counters.infer, 0u);
  EXPECT_EQ(resumed.counters.analyze, 1u);
  EXPECT_EQ(resumed.loads.infer, 3u);
  EXPECT_EQ(resumed.loads.analyze, 2u);
  EXPECT_TRUE(resumed.runs[2].inference_loaded);
  EXPECT_FALSE(resumed.runs[2].analyses_loaded);
  EXPECT_EQ(sweep_digest(resumed), sweep_digest(first));
}

TEST(SweepResume, KilledSweepResumesAcrossVariantSubsets) {
  ScopedStore store;
  const std::vector<SweepVariant> variants = resume_variants();

  // "Kill" the sweep after the first two variants by only requesting them.
  const std::vector<SweepVariant> prefix(variants.begin(),
                                         variants.begin() + 2);
  const SweepReport partial = sweep(prefix, 1, store.get());
  EXPECT_EQ(partial.counters.infer, 2u);
  EXPECT_EQ(partial.counters.synthesize, 1u);  // prefix shares one scenario

  // The restarted full sweep loads the finished variants and computes only
  // the one that never ran (plus the second scenario's upstream).
  const SweepReport resumed = sweep(variants, 1, store.get());
  EXPECT_EQ(resumed.loads.infer, 2u);
  EXPECT_EQ(resumed.counters.infer, 1u);
  EXPECT_EQ(resumed.counters.synthesize, 1u);  // only seed9's upstream
  EXPECT_EQ(resumed.loads.synthesize, 1u);

  // Byte-identical to a sweep that was never killed.
  const SweepReport uninterrupted = sweep(variants, 1);
  EXPECT_EQ(sweep_digest(resumed), sweep_digest(uninterrupted));
}

TEST(SweepResume, SweepWithStoreIsThreadCountIndependent) {
  ScopedStore store_a;
  ScopedStore store_b;
  const std::vector<SweepVariant> variants = resume_variants();
  const SweepReport sequential = sweep(variants, 1, store_a.get());
  const SweepReport sharded = sweep(variants, 4, store_b.get());
  EXPECT_EQ(sweep_digest(sequential), sweep_digest(sharded));
}

}  // namespace
}  // namespace bgpolicy::core
