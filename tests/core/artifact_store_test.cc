// The artifact store + resume contract (ISSUE 4): stage artifacts persist
// across Experiment instances (the cross-process cache, exercised here via
// fresh in-process experiments over one store), corrupted entries degrade
// to recomputation with identical products, thread knobs never change
// cache identity, and a killed-and-restarted sweep recomputes only the
// missing variants — verified by the stage-run/load ledgers — while
// producing byte-identical products.
#include "core/artifact_store.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asrel/relationships.h"
#include "asrel/tier_classify.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "io/artifact_codec.h"

namespace bgpolicy::core {
namespace {

using util::AsNumber;

/// A store rooted in a fresh temp directory, removed on destruction.
class ScopedStore {
 public:
  ScopedStore() {
    static int counter = 0;
    root_ = std::filesystem::temp_directory_path() /
            ("bgpolicy-store-test-" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "-" + std::to_string(counter++));
    std::filesystem::remove_all(root_);
    store_ = std::make_unique<ArtifactStore>(root_);
  }
  ~ScopedStore() {
    store_.reset();
    std::error_code ignored;
    std::filesystem::remove_all(root_, ignored);
  }

  ArtifactStore& operator*() { return *store_; }
  ArtifactStore* operator->() { return store_.get(); }
  ArtifactStore* get() { return store_.get(); }

 private:
  std::filesystem::path root_;
  std::unique_ptr<ArtifactStore> store_;
};

std::string products_digest(const InferenceProducts& inference,
                            const AnalysisSuite& analyses) {
  return asrel::canonical_serialize(inference.inferred) +
         asrel::canonical_serialize(inference.tiers) +
         canonical_serialize(analyses);
}

TEST(ArtifactStore, PutLoadContainsErase) {
  ScopedStore store;
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 250, 0, 7};

  EXPECT_FALSE(store->contains("some-key"));
  EXPECT_FALSE(store->load("some-key").has_value());

  EXPECT_TRUE(store->put("some-key", bytes));
  EXPECT_TRUE(store->contains("some-key"));
  EXPECT_EQ(store->load("some-key"), bytes);
  EXPECT_EQ(store->size(), 1u);

  // Same key, new content: replaced atomically.
  const std::vector<std::uint8_t> updated = {9, 9};
  EXPECT_TRUE(store->put("some-key", updated));
  EXPECT_EQ(store->load("some-key"), updated);
  EXPECT_EQ(store->size(), 1u);

  EXPECT_TRUE(store->erase("some-key"));
  EXPECT_FALSE(store->contains("some-key"));
  EXPECT_FALSE(store->erase("some-key"));
}

TEST(ArtifactStore, DigestIsStableAndContentSensitive) {
  const std::string a = stable_digest_hex(std::string_view("hello"));
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(a, stable_digest_hex(std::string_view("hello")));
  EXPECT_NE(a, stable_digest_hex(std::string_view("hellp")));
  EXPECT_NE(a, stable_digest_hex(std::string_view("")));
}

TEST(ArtifactStore, SecondExperimentLoadsEveryStage) {
  ScopedStore store;
  RunOptions options;
  options.threads = 1;
  options.store = store.get();

  Experiment first(Scenario::small(33), options);
  first.run();
  EXPECT_EQ(first.counters().synthesize, 1u);
  EXPECT_EQ(first.counters().analyze, 1u);
  EXPECT_EQ(first.loads().synthesize, 0u);
  EXPECT_EQ(store->size(), 5u);  // one artifact per stage

  // A fresh experiment over the same store: zero stage executions, five
  // loads, byte-identical products.
  Experiment second(Scenario::small(33), options);
  second.run();
  EXPECT_EQ(second.counters().synthesize, 0u);
  EXPECT_EQ(second.counters().simulate, 0u);
  EXPECT_EQ(second.counters().observe, 0u);
  EXPECT_EQ(second.counters().infer, 0u);
  EXPECT_EQ(second.counters().analyze, 0u);
  EXPECT_EQ(second.loads().synthesize, 1u);
  EXPECT_EQ(second.loads().simulate, 1u);
  EXPECT_EQ(second.loads().observe, 1u);
  EXPECT_EQ(second.loads().infer, 1u);
  EXPECT_EQ(second.loads().analyze, 1u);

  EXPECT_EQ(io::encode(second.sim()), io::encode(first.sim()));
  EXPECT_EQ(products_digest(second.inference(), second.analyses()),
            products_digest(first.inference(), first.analyses()));

  // A no-store run of the same scenario computes the same products — the
  // store never changes bytes, only who computes them.
  RunOptions plain;
  plain.threads = 1;
  Experiment reference(Scenario::small(33), plain);
  reference.run();
  EXPECT_EQ(products_digest(reference.inference(), reference.analyses()),
            products_digest(first.inference(), first.analyses()));
}

TEST(ArtifactStore, ThreadKnobsShareCacheEntries) {
  ScopedStore store;
  RunOptions sequential;
  sequential.threads = 1;
  sequential.store = store.get();
  Experiment first(Scenario::small(12), sequential);
  first.run(Stage::kInfer);
  const std::size_t populated = store->size();

  // A different worker count must hit the same keys (thread knobs are
  // excluded from cache identity) — all loads, no new entries.
  RunOptions threaded;
  threaded.threads = 3;
  threaded.store = store.get();
  Experiment second(Scenario::small(12), threaded);
  second.run(Stage::kInfer);
  EXPECT_EQ(second.counters().simulate, 0u);
  EXPECT_EQ(second.loads().simulate, 1u);
  EXPECT_EQ(second.loads().infer, 1u);
  EXPECT_EQ(store->size(), populated);
}

TEST(ArtifactStore, CorruptedEntryIsAMissAndHealsItself) {
  ScopedStore store;
  RunOptions options;
  options.threads = 1;
  options.store = store.get();
  Experiment first(Scenario::small(33), options);
  first.run();

  // Vandalize the synthesize artifact on disk.
  const std::string truth_key =
      [&] {
        // Recover the key by probing: the store file for synthesize is the
        // one whose bytes decode as GroundTruth.
        for (const auto& entry :
             std::filesystem::directory_iterator(store->root())) {
          std::ifstream in(entry.path(), std::ios::binary);
          std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
          std::span<const std::uint8_t> bytes(
              reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size());
          try {
            (void)io::decode_ground_truth(bytes);
            std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
            out << "vandalized beyond recognition";
            return entry.path().filename().string();
          } catch (const std::invalid_argument&) {
          }
        }
        return std::string();
      }();
  ASSERT_FALSE(truth_key.empty()) << "no ground-truth artifact found";

  // The next experiment recomputes Synthesize (corrupt = miss), re-stores
  // it, and — because the recomputed bytes digest identically — still
  // loads every downstream stage.
  Experiment healed(Scenario::small(33), options);
  healed.run();
  EXPECT_EQ(healed.counters().synthesize, 1u);
  EXPECT_EQ(healed.loads().synthesize, 0u);
  EXPECT_EQ(healed.counters().simulate, 0u);
  EXPECT_EQ(healed.loads().simulate, 1u);
  EXPECT_EQ(healed.loads().analyze, 1u);
  EXPECT_EQ(products_digest(healed.inference(), healed.analyses()),
            products_digest(first.inference(), first.analyses()));

  // And the store is healed: one more run loads everything again.
  Experiment third(Scenario::small(33), options);
  third.run();
  EXPECT_EQ(third.counters().synthesize, 0u);
  EXPECT_EQ(third.loads().synthesize, 1u);
}

std::vector<SweepVariant> resume_variants() {
  SweepVariant base;
  base.label = "base";
  base.scenario = Scenario::small(5);

  SweepVariant no_peers = base;
  no_peers.label = "no-peers";
  no_peers.options.gao = asrel::GaoParams{};
  no_peers.options.gao->detect_peers = false;

  SweepVariant other_seed;
  other_seed.label = "seed9";
  other_seed.scenario = Scenario::small(9);

  return {base, no_peers, other_seed};
}

std::string sweep_digest(const SweepReport& report) {
  std::string out;
  for (const SweepRun& run : report.runs) {
    out += run.label + "\n" + products_digest(run.inference, run.analyses);
  }
  return out;
}

TEST(SweepResume, SecondRunLoadsEverythingAndMatchesByteForByte) {
  ScopedStore store;
  const std::vector<SweepVariant> variants = resume_variants();

  const SweepReport first = sweep(variants, 1, store.get());
  EXPECT_EQ(first.counters.synthesize, 2u);  // two distinct scenarios
  EXPECT_EQ(first.counters.infer, 3u);
  EXPECT_EQ(first.counters.analyze, 3u);
  EXPECT_EQ(first.loads.infer, 0u);
  for (const SweepRun& run : first.runs) {
    EXPECT_FALSE(run.store_infer_key.empty());
    EXPECT_FALSE(run.loaded_from_store());
  }

  const SweepReport second = sweep(variants, 1, store.get());
  EXPECT_EQ(second.counters.synthesize, 0u);
  EXPECT_EQ(second.counters.simulate, 0u);
  EXPECT_EQ(second.counters.observe, 0u);
  EXPECT_EQ(second.counters.infer, 0u);
  EXPECT_EQ(second.counters.analyze, 0u);
  EXPECT_EQ(second.loads.synthesize, 2u);
  EXPECT_EQ(second.loads.simulate, 2u);
  EXPECT_EQ(second.loads.observe, 2u);
  EXPECT_EQ(second.loads.infer, 3u);
  EXPECT_EQ(second.loads.analyze, 3u);
  EXPECT_EQ(sweep_digest(second), sweep_digest(first));

  // A storeless sweep computes identical products: resume never changes
  // bytes.
  const SweepReport reference = sweep(variants, 1);
  EXPECT_EQ(sweep_digest(reference), sweep_digest(first));
}

TEST(SweepResume, OnlyTheMissingVariantRecomputes) {
  ScopedStore store;
  const std::vector<SweepVariant> variants = resume_variants();
  const SweepReport first = sweep(variants, 1, store.get());

  // Delete exactly one variant's artifacts — the "killed before this
  // variant finished" state.
  ASSERT_TRUE(store->erase(first.runs[1].store_infer_key));
  ASSERT_TRUE(store->erase(first.runs[1].store_analyze_key));

  const SweepReport resumed = sweep(variants, 1, store.get());
  EXPECT_EQ(resumed.counters.synthesize, 0u);
  EXPECT_EQ(resumed.counters.simulate, 0u);
  EXPECT_EQ(resumed.counters.infer, 1u);  // just the erased variant
  EXPECT_EQ(resumed.counters.analyze, 1u);
  EXPECT_EQ(resumed.loads.infer, 2u);
  EXPECT_EQ(resumed.loads.analyze, 2u);
  EXPECT_TRUE(resumed.runs[0].loaded_from_store());
  EXPECT_FALSE(resumed.runs[1].loaded_from_store());
  EXPECT_TRUE(resumed.runs[2].loaded_from_store());
  EXPECT_EQ(sweep_digest(resumed), sweep_digest(first));
}

TEST(SweepResume, ErasedAnalyzeEntryReusesCachedInference) {
  ScopedStore store;
  const std::vector<SweepVariant> variants = resume_variants();
  const SweepReport first = sweep(variants, 1, store.get());

  // Lose only one variant's Analyze artifact: the variant keys are
  // per-stage, so the resumed run reuses the cached inference and
  // recomputes Analyze alone.
  ASSERT_TRUE(store->erase(first.runs[2].store_analyze_key));
  const SweepReport resumed = sweep(variants, 1, store.get());
  EXPECT_EQ(resumed.counters.infer, 0u);
  EXPECT_EQ(resumed.counters.analyze, 1u);
  EXPECT_EQ(resumed.loads.infer, 3u);
  EXPECT_EQ(resumed.loads.analyze, 2u);
  EXPECT_TRUE(resumed.runs[2].inference_loaded);
  EXPECT_FALSE(resumed.runs[2].analyses_loaded);
  EXPECT_EQ(sweep_digest(resumed), sweep_digest(first));
}

TEST(SweepResume, KilledSweepResumesAcrossVariantSubsets) {
  ScopedStore store;
  const std::vector<SweepVariant> variants = resume_variants();

  // "Kill" the sweep after the first two variants by only requesting them.
  const std::vector<SweepVariant> prefix(variants.begin(),
                                         variants.begin() + 2);
  const SweepReport partial = sweep(prefix, 1, store.get());
  EXPECT_EQ(partial.counters.infer, 2u);
  EXPECT_EQ(partial.counters.synthesize, 1u);  // prefix shares one scenario

  // The restarted full sweep loads the finished variants and computes only
  // the one that never ran (plus the second scenario's upstream).
  const SweepReport resumed = sweep(variants, 1, store.get());
  EXPECT_EQ(resumed.loads.infer, 2u);
  EXPECT_EQ(resumed.counters.infer, 1u);
  EXPECT_EQ(resumed.counters.synthesize, 1u);  // only seed9's upstream
  EXPECT_EQ(resumed.loads.synthesize, 1u);

  // Byte-identical to a sweep that was never killed.
  const SweepReport uninterrupted = sweep(variants, 1);
  EXPECT_EQ(sweep_digest(resumed), sweep_digest(uninterrupted));
}

TEST(SweepResume, SweepWithStoreIsThreadCountIndependent) {
  ScopedStore store_a;
  ScopedStore store_b;
  const std::vector<SweepVariant> variants = resume_variants();
  const SweepReport sequential = sweep(variants, 1, store_a.get());
  const SweepReport sharded = sweep(variants, 4, store_b.get());
  EXPECT_EQ(sweep_digest(sequential), sweep_digest(sharded));
}

}  // namespace
}  // namespace bgpolicy::core
