#include "core/import_inference.h"

#include <gtest/gtest.h>

#include "rpsl/generator.h"
#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

// A fixed oracle over a tiny neighbor set: 10=customer, 20=peer, 30=provider.
RelationshipOracle toy_oracle() {
  return [](AsNumber, AsNumber other) -> std::optional<RelKind> {
    switch (other.value()) {
      case 10: return RelKind::kCustomer;
      case 20: return RelKind::kPeer;
      case 30: return RelKind::kProvider;
      default: return std::nullopt;
    }
  };
}

bgp::Route route_from(std::uint32_t neighbor, const Prefix& prefix,
                      std::uint32_t lp) {
  return make_route(prefix, {AsNumber(neighbor), AsNumber(900)}, lp);
}

TEST(ImportTypicality, TypicalOrderingCounts) {
  bgp::BgpTable table{AsNumber(5)};
  const Prefix p = Prefix::parse("10.0.0.0/24");
  table.add(route_from(10, p, 120));
  table.add(route_from(20, p, 100));
  table.add(route_from(30, p, 80));
  const auto result = analyze_import_typicality(table, toy_oracle());
  EXPECT_EQ(result.comparable_prefixes, 1u);
  EXPECT_EQ(result.typical_prefixes, 1u);
  EXPECT_DOUBLE_EQ(result.percent_typical, 100.0);
}

TEST(ImportTypicality, AtypicalWhenPeerAtCustomerLevel) {
  bgp::BgpTable table{AsNumber(5)};
  const Prefix p = Prefix::parse("10.0.0.0/24");
  table.add(route_from(10, p, 120));
  table.add(route_from(20, p, 120));  // peer tied with customer: atypical
  const auto result = analyze_import_typicality(table, toy_oracle());
  EXPECT_EQ(result.comparable_prefixes, 1u);
  EXPECT_EQ(result.typical_prefixes, 0u);
}

TEST(ImportTypicality, AtypicalWhenProviderAbovePeer) {
  bgp::BgpTable table{AsNumber(5)};
  const Prefix p = Prefix::parse("10.0.0.0/24");
  table.add(route_from(20, p, 90));
  table.add(route_from(30, p, 95));  // provider above peer
  const auto result = analyze_import_typicality(table, toy_oracle());
  EXPECT_EQ(result.typical_prefixes, 0u);
}

TEST(ImportTypicality, SingleClassPrefixesNotComparable) {
  bgp::BgpTable table{AsNumber(5)};
  table.add(route_from(10, Prefix::parse("10.0.0.0/24"), 120));
  table.add(route_from(30, Prefix::parse("10.0.1.0/24"), 80));
  const auto result = analyze_import_typicality(table, toy_oracle());
  EXPECT_EQ(result.comparable_prefixes, 0u);
  EXPECT_EQ(result.percent_typical, 0.0);
}

TEST(ImportTypicality, UnknownNeighborsIgnored) {
  bgp::BgpTable table{AsNumber(5)};
  const Prefix p = Prefix::parse("10.0.0.0/24");
  table.add(route_from(10, p, 120));
  table.add(route_from(99, p, 500));  // oracle cannot classify 99
  const auto result = analyze_import_typicality(table, toy_oracle());
  EXPECT_EQ(result.comparable_prefixes, 0u);
}

TEST(ImportTypicality, ClassValuesAreDeduplicated) {
  bgp::BgpTable table{AsNumber(5)};
  table.add(route_from(10, Prefix::parse("10.0.0.0/24"), 120));
  table.add(route_from(10, Prefix::parse("10.0.1.0/24"), 120));
  const auto result = analyze_import_typicality(table, toy_oracle());
  ASSERT_TRUE(result.class_values.contains(RelKind::kCustomer));
  EXPECT_EQ(result.class_values.at(RelKind::kCustomer).size(), 1u);
}

TEST(IrrTypicality, PrefOrderingInverted) {
  rpsl::AutNum aut_num;
  aut_num.as = AsNumber(5);
  // RPSL pref: smaller = better.  customer 880 < peer 900 < provider 920.
  aut_num.imports.push_back({AsNumber(10), 880, "ANY"});
  aut_num.imports.push_back({AsNumber(20), 900, "ANY"});
  aut_num.imports.push_back({AsNumber(30), 920, "ANY"});
  const auto result = analyze_irr_typicality(aut_num, toy_oracle());
  EXPECT_EQ(result.neighbors_with_pref, 3u);
  EXPECT_EQ(result.comparable_pairs, 3u);
  EXPECT_EQ(result.typical_pairs, 3u);
  EXPECT_DOUBLE_EQ(result.percent_typical, 100.0);
}

TEST(IrrTypicality, AtypicalPairCounted) {
  rpsl::AutNum aut_num;
  aut_num.as = AsNumber(5);
  aut_num.imports.push_back({AsNumber(10), 920, "ANY"});  // customer worst!
  aut_num.imports.push_back({AsNumber(20), 900, "ANY"});
  aut_num.imports.push_back({AsNumber(30), 880, "ANY"});  // provider best!
  const auto result = analyze_irr_typicality(aut_num, toy_oracle());
  EXPECT_EQ(result.typical_pairs, 0u);
}

TEST(IrrTypicality, MissingPrefsAndUnknownNeighborsSkipped) {
  rpsl::AutNum aut_num;
  aut_num.as = AsNumber(5);
  aut_num.imports.push_back({AsNumber(10), std::nullopt, "ANY"});
  aut_num.imports.push_back({AsNumber(99), 900, "ANY"});
  aut_num.imports.push_back({AsNumber(20), 900, "ANY"});
  const auto result = analyze_irr_typicality(aut_num, toy_oracle());
  EXPECT_EQ(result.neighbors_with_pref, 1u);
  EXPECT_EQ(result.comparable_pairs, 0u);
}

TEST(IrrUsable, FreshnessAndSizeFilter) {
  rpsl::AutNum aut_num;
  aut_num.as = AsNumber(5);
  aut_num.changed_date = 20021001;
  for (int i = 0; i < 60; ++i) {
    aut_num.imports.push_back({AsNumber(100 + static_cast<std::uint32_t>(i)),
                               900, "ANY"});
  }
  EXPECT_TRUE(irr_object_usable(aut_num));
  aut_num.changed_date = 20011201;  // stale: paper discards pre-2002 objects
  EXPECT_FALSE(irr_object_usable(aut_num));
  aut_num.changed_date = 20021001;
  aut_num.imports.resize(10);  // too few neighbors
  EXPECT_FALSE(irr_object_usable(aut_num));
  EXPECT_TRUE(irr_object_usable(aut_num, 2002, 5));
}

// End-to-end shape: Table 2 — typicality high at every looking glass.
TEST(ImportTypicality, PipelineTable2Shape) {
  const auto& pipe = shared_pipeline();
  for (const auto vantage : pipe.vantage.looking_glass) {
    const auto result = analyze_import_typicality(
        pipe.sim.looking_glass.at(vantage), pipe.inferred_oracle());
    if (result.comparable_prefixes < 10) continue;
    EXPECT_GT(result.percent_typical, 85.0)
        << util::to_string(vantage) << " typicality collapsed";
  }
}

// End-to-end shape: Table 3 — IRR-registered policies are mostly typical.
TEST(IrrTypicality, PipelineTable3Shape) {
  const auto& pipe = shared_pipeline();
  std::size_t analyzed = 0;
  for (const auto& aut_num : pipe.irr_objects) {
    if (!irr_object_usable(aut_num, 2002, 10)) continue;
    const auto result = analyze_irr_typicality(aut_num, pipe.inferred_oracle());
    if (result.comparable_pairs < 10) continue;
    ++analyzed;
    // The pairwise metric is harsh: one bad neighbor taints every pair it
    // appears in.  The paper's Table 3 bottoms out at 80% on much larger
    // neighbor sets; at this scenario's size 60% is the equivalent floor.
    EXPECT_GT(result.percent_typical, 60.0) << util::to_string(aut_num.as);
  }
  EXPECT_GT(analyzed, 3u) << "IRR filter left nothing to analyze";
}

}  // namespace
}  // namespace bgpolicy::core
