// The inference-side determinism contract (the counterpart of
// sim_parallel_determinism_test): every inference product — inferred
// relationships, tier assignment, path index, and the per-table analysis
// suite — serializes byte-identically for threads ∈ {1, 2, 0}, where 1 is
// the exact sequential seed program and 0 resolves to hardware concurrency.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asrel/tier_classify.h"
#include "core/analysis_suite.h"
#include "core/pipeline.h"
#include "core/scenario.h"

namespace bgpolicy::core {
namespace {

struct InferenceProducts {
  std::string relationships;
  std::string tiers;
  std::size_t path_count = 0;
  std::size_t adjacency_count = 0;
  std::string analyses;
};

InferenceProducts products_at(std::size_t threads) {
  const Pipeline pipe = run_pipeline(Scenario::small(), threads);
  InferenceProducts out;
  out.relationships = asrel::canonical_serialize(pipe.inferred);
  out.tiers = asrel::canonical_serialize(pipe.tiers);
  out.path_count = pipe.paths.path_count();
  out.adjacency_count = pipe.paths.adjacency_count();
  out.analyses = canonical_serialize(
      run_analysis_suite(pipe, recorded_vantages(pipe), threads));
  return out;
}

TEST(InferenceDeterminism, ProductsIdenticalAcrossThreadCounts) {
  const InferenceProducts reference = products_at(1);
  ASSERT_FALSE(reference.relationships.empty());
  ASSERT_FALSE(reference.tiers.empty());
  ASSERT_GT(reference.path_count, 0u);
  ASSERT_GT(reference.adjacency_count, 0u);
  ASSERT_FALSE(reference.analyses.empty());

  for (const std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
    const InferenceProducts result = products_at(threads);
    EXPECT_EQ(result.relationships, reference.relationships)
        << "inferred relationships differ at threads=" << threads;
    EXPECT_EQ(result.tiers, reference.tiers)
        << "tier assignment differs at threads=" << threads;
    EXPECT_EQ(result.path_count, reference.path_count)
        << "path index size differs at threads=" << threads;
    EXPECT_EQ(result.adjacency_count, reference.adjacency_count)
        << "path index adjacencies differ at threads=" << threads;
    EXPECT_EQ(result.analyses, reference.analyses)
        << "analysis suite differs at threads=" << threads;
  }
}

// Sharded Gao voting must match the sequential classification on the raw
// path set too, not only end-to-end through the pipeline.
TEST(InferenceDeterminism, GaoVotingIdenticalOnSharedPathSet) {
  const Pipeline pipe = run_pipeline(Scenario::small(), 1);

  asrel::GaoInference gao;
  gao.add_table_paths(pipe.sim.collector);
  asrel::GaoParams params;
  params.threads = 1;
  const std::string reference = asrel::canonical_serialize(gao.infer(params));
  ASSERT_FALSE(reference.empty());

  for (const std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    params.threads = threads;
    EXPECT_EQ(asrel::canonical_serialize(gao.infer(params)), reference)
        << "Gao classification differs at threads=" << threads;
  }
}

}  // namespace
}  // namespace bgpolicy::core
