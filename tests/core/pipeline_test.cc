#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using bgpolicy::testing::shared_pipeline;
using util::AsNumber;

TEST(Scenario, CanonicalConfigsAreConsistent) {
  const Scenario big = Scenario::internet2002();
  EXPECT_EQ(big.topo_params.tier1_count, 10u);
  EXPECT_EQ(big.looking_glass.size(), 15u);   // the paper's 15 LG vantages
  EXPECT_EQ(big.verification_ases.size(), 9u);  // Table 4's 9 ASes
  EXPECT_EQ(big.policy_params.force_tagging.size(), 9u);
  const auto focus = Scenario::focus_tier1();
  EXPECT_EQ(focus.size(), 3u);

  const Scenario small = Scenario::small();
  EXPECT_LT(small.topo_params.stub_count, big.topo_params.stub_count);
}

TEST(Scenario, RegionLabelsAreDeterministicAndCoverAll) {
  std::map<std::string, int> counts;
  for (std::uint32_t as = 1; as < 500; ++as) {
    ++counts[region_of(AsNumber(as))];
    EXPECT_EQ(region_of(AsNumber(as)), region_of(AsNumber(as)));
  }
  EXPECT_GT(counts["NA"], counts["Au"]);
  EXPECT_GT(counts["Eu"], counts["As"]);
}

TEST(Pipeline, TablesRecordedForAllVantages) {
  const auto& pipe = shared_pipeline();
  for (const auto as : pipe.vantage.looking_glass) {
    EXPECT_TRUE(pipe.has_table(as));
    EXPECT_GT(pipe.table_for(as).prefix_count(), 0u);
  }
  for (const auto as : pipe.vantage.best_only) {
    EXPECT_TRUE(pipe.has_table(as));
  }
  EXPECT_FALSE(pipe.has_table(AsNumber(424242)));
  EXPECT_THROW((void)pipe.table_for(AsNumber(424242)), std::out_of_range);
}

TEST(Pipeline, CollectorSeesNearlyAllPrefixes) {
  const auto& pipe = shared_pipeline();
  EXPECT_GT(pipe.sim.collector.prefix_count(),
            pipe.originations.size() * 9 / 10);
  EXPECT_EQ(pipe.sim.unconverged_prefixes, 0u);
}

TEST(Pipeline, InferenceProductsPopulated) {
  const auto& pipe = shared_pipeline();
  EXPECT_GT(pipe.inferred.edge_count(), 100u);
  EXPECT_GT(pipe.inferred_graph.as_count(), 100u);
  EXPECT_FALSE(pipe.tiers.tier1.empty());
  EXPECT_GT(pipe.paths.path_count(), 500u);
  EXPECT_FALSE(pipe.irr_objects.empty());
}

TEST(Pipeline, IrrLookupFindsRegisteredAses) {
  const auto& pipe = shared_pipeline();
  std::size_t found = 0;
  for (const auto as : pipe.topo.graph.ases()) {
    if (pipe.irr_for(as) != nullptr) ++found;
  }
  const double coverage = static_cast<double>(found) /
                          static_cast<double>(pipe.topo.graph.as_count());
  EXPECT_NEAR(coverage, pipe.scenario.irr_params.coverage, 0.15);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto a = run_pipeline(Scenario::small(77));
  const auto b = run_pipeline(Scenario::small(77));
  EXPECT_EQ(a.sim.collector.route_count(), b.sim.collector.route_count());
  EXPECT_EQ(a.inferred.edge_count(), b.inferred.edge_count());
  EXPECT_EQ(a.irr_text, b.irr_text);
}

TEST(Pipeline, CommunityVerifiedNeighborsNonEmptyForVerificationAses) {
  const auto& pipe = shared_pipeline();
  for (const auto as_value : pipe.scenario.verification_ases) {
    const AsNumber as{as_value};
    if (!pipe.sim.looking_glass.contains(as)) continue;
    EXPECT_FALSE(pipe.community_verified_neighbors(as).empty())
        << util::to_string(as);
  }
}

TEST(Pipeline, CommunityVerificationRequiresLookingGlass) {
  const auto& pipe = shared_pipeline();
  EXPECT_THROW(pipe.community_verification(AsNumber(424242)),
               std::invalid_argument);
}

}  // namespace
}  // namespace bgpolicy::core
