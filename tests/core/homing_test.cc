#include "core/homing.h"

#include <gtest/gtest.h>

#include "core/export_inference.h"
#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

TEST(Homing, ClassifiesByProviderCount) {
  // Graph: origin 10 multihomed (providers 20, 30); origin 11 single-homed
  // (provider 20).
  topo::AsGraph g;
  for (std::uint32_t as : {10, 11, 20, 30, 40}) g.add_as(AsNumber(as));
  g.add_provider_customer(AsNumber(20), AsNumber(10));
  g.add_provider_customer(AsNumber(30), AsNumber(10));
  g.add_provider_customer(AsNumber(20), AsNumber(11));

  SaAnalysis analysis;
  analysis.provider = AsNumber(40);
  analysis.sa_prefixes.push_back(
      {Prefix::parse("10.0.0.0/24"), AsNumber(10), AsNumber(1), RelKind::kPeer});
  analysis.sa_prefixes.push_back(
      {Prefix::parse("10.0.1.0/24"), AsNumber(10), AsNumber(1), RelKind::kPeer});
  analysis.sa_prefixes.push_back(
      {Prefix::parse("10.0.2.0/24"), AsNumber(11), AsNumber(1), RelKind::kPeer});

  const auto result = analyze_homing(analysis, g);
  // Counted per AS, not per prefix: 10 (multihomed), 11 (single-homed).
  EXPECT_EQ(result.multihomed_ases, 1u);
  EXPECT_EQ(result.singlehomed_ases, 1u);
  EXPECT_DOUBLE_EQ(result.percent_multihomed, 50.0);
}

TEST(Homing, UnknownOriginCountsSingleHomed) {
  topo::AsGraph g;
  g.add_as(AsNumber(40));
  SaAnalysis analysis;
  analysis.provider = AsNumber(40);
  analysis.sa_prefixes.push_back(
      {Prefix::parse("10.0.0.0/24"), AsNumber(77), AsNumber(1), RelKind::kPeer});
  const auto result = analyze_homing(analysis, g);
  EXPECT_EQ(result.singlehomed_ases, 1u);
}

TEST(Homing, EmptyAnalysis) {
  topo::AsGraph g;
  const auto result = analyze_homing(SaAnalysis{}, g);
  EXPECT_EQ(result.multihomed_ases + result.singlehomed_ases, 0u);
  EXPECT_EQ(result.percent_multihomed, 0.0);
}

// Table 8 shape: the majority of SA-origin ASes are multihomed (~75% in
// the paper).
TEST(Homing, PipelineTable8Shape) {
  const auto& pipe = shared_pipeline();
  const AsNumber provider{1};
  const auto analysis =
      infer_sa_prefixes(pipe.table_for(provider), provider,
                        pipe.inferred_graph, pipe.inferred_oracle());
  ASSERT_GT(analysis.sa_count, 5u);
  const auto result = analyze_homing(analysis, pipe.inferred_graph);
  EXPECT_GT(result.percent_multihomed, 50.0)
      << "multihomed origins must dominate (paper: ~75%)";
}

}  // namespace
}  // namespace bgpolicy::core
