#include "core/path_availability.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");
const Prefix kOther = Prefix::parse("10.0.1.0/24");

// Fig. 3 world: D has two neighbors that could serve A's prefixes
// (customer B and peer E — E's cone contains A via C).
TEST(PathAvailability, FullAnnouncementUsesAllPotential) {
  Figure3 fig = figure3_graph();
  const auto policies = typical_policies(fig.graph);
  sim::VantageSpec spec;
  spec.looking_glass = {fig.d};
  const std::vector<sim::Origination> originations{{kPrefix, fig.a},
                                                   {kOther, fig.a}};
  auto sim = sim::run_simulation(fig.graph, policies, originations, spec);
  const auto result = analyze_path_availability(
      sim.looking_glass.at(fig.d), fig.d, fig.graph);
  EXPECT_EQ(result.customer_prefixes, 2u);
  // Potential: customer B + peer E = 2; both actually offer.
  EXPECT_DOUBLE_EQ(result.mean_potential, 2.0);
  EXPECT_DOUBLE_EQ(result.mean_available, 2.0);
  EXPECT_DOUBLE_EQ(result.availability_ratio, 1.0);
  EXPECT_EQ(result.single_path_prefixes, 0u);
}

TEST(PathAvailability, SelectiveAnnouncementShrinksAvailability) {
  Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  sim::ExportRule rule;
  rule.prefix = kPrefix;
  rule.action = sim::ExportAction::kDeny;
  policies.at_mut(fig.a).export_.add_rule_for(fig.b, rule);

  sim::VantageSpec spec;
  spec.looking_glass = {fig.d};
  const std::vector<sim::Origination> originations{{kPrefix, fig.a},
                                                   {kOther, fig.a}};
  auto sim = sim::run_simulation(fig.graph, policies, originations, spec);
  const auto result = analyze_path_availability(
      sim.looking_glass.at(fig.d), fig.d, fig.graph);
  EXPECT_EQ(result.customer_prefixes, 2u);
  // kPrefix lost the customer route: 1 available vs 2 potential.
  EXPECT_DOUBLE_EQ(result.mean_available, 1.5);
  EXPECT_DOUBLE_EQ(result.mean_potential, 2.0);
  EXPECT_LT(result.availability_ratio, 1.0);
  EXPECT_EQ(result.single_path_prefixes, 1u);
  EXPECT_EQ(result.available_histogram.at(1), 1u);
  EXPECT_EQ(result.available_histogram.at(2), 1u);
}

TEST(PathAvailability, EmptyTable) {
  const bgp::BgpTable empty{AsNumber(40)};
  topo::AsGraph g;
  g.add_as(AsNumber(40));
  const auto result = analyze_path_availability(empty, AsNumber(40), g);
  EXPECT_EQ(result.customer_prefixes, 0u);
  EXPECT_EQ(result.availability_ratio, 0.0);
}

// Pipeline shape: the paper's claim — policy removes a visible share of
// the paths the connectivity graph promises.
TEST(PathAvailability, PipelineShowsAvailabilityGap) {
  const auto& pipe = shared_pipeline();
  for (const auto as_value : Scenario::focus_tier1()) {
    const AsNumber vantage{as_value};
    if (!pipe.sim.looking_glass.contains(vantage)) continue;
    const auto result = analyze_path_availability(
        pipe.sim.looking_glass.at(vantage), vantage, pipe.inferred_graph);
    ASSERT_GT(result.customer_prefixes, 50u);
    EXPECT_GT(result.mean_potential, result.mean_available)
        << util::to_string(vantage)
        << ": connectivity should promise more than policy delivers";
    EXPECT_LT(result.availability_ratio, 1.0);
    EXPECT_GT(result.availability_ratio, 0.2)
        << "sanity: most potential should still be usable";
  }
}

}  // namespace
}  // namespace bgpolicy::core
