// Evaluator tests for core/spec_verify.h: route/unreachable checks
// against the event timeline, analysis-bound checks, digest pins, and
// the failure-reporting contract (a failing check carries an "observed"
// detail, never throws).
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/artifact_store.h"
#include "core/experiment.h"
#include "core/scenario_spec.h"
#include "core/spec_verify.h"
#include "io/artifact_codec.h"

namespace bgpolicy::core {
namespace {

// Chain world: 1 (tier1) -> 2 (tier2) -> 3 (stub), with a bypass
// provider 1 -> 3 so the stub survives losing its transit.
constexpr const char* kChainSpec = R"(scenario verify-lab
base default
topology {
  explicit
  as 1 tier1
  as 2 tier2
  as 3 stub
  provider 1 2
  provider 2 3
  provider 1 3
}
prefixes {
  originate 3 10.3.0.0/16
}
events {
  fail 1 3
  withdraw 3 10.3.0.0/16
  announce 3 10.3.0.0/16
  restore 1 3
}
verify {
  route 1 10.3.0.0/16 via 3 at 0
  route 1 10.3.0.0/16 path 2 3 at 1
  unreachable 1 10.3.0.0/16 at 2
  route 1 10.3.0.0/16 origin 3 at 3
  route 1 10.3.0.0/16 via 3
}
)";

ScenarioSpec chain_spec() { return ScenarioSpec::parse(kChainSpec, "chain"); }

TEST(SpecVerify, TimelineChecksPass) {
  ScenarioSpec spec = chain_spec();
  Experiment experiment(spec.scenario);
  const VerifyReport report = run_spec_checks(spec, experiment);
  EXPECT_EQ(report.source, "chain");
  ASSERT_EQ(report.results.size(), spec.checks.size());
  for (const CheckResult& result : report.results) {
    EXPECT_TRUE(result.passed)
        << describe_check(result.check) << " — " << result.detail;
  }
  EXPECT_TRUE(report.all_passed());
  EXPECT_EQ(report.failure_count(), 0u);
}

TEST(SpecVerify, FailingRouteCheckReportsObserved) {
  ScenarioSpec spec = chain_spec();
  spec.checks.clear();
  SpecCheck check;
  check.kind = SpecCheck::Kind::kRouteOrigin;
  check.vantage = 1;
  check.prefix = *bgp::Prefix::try_parse("10.3.0.0/16");
  check.expect_as = 2;  // wrong: the origin is 3
  spec.checks.push_back(check);

  Experiment experiment(spec.scenario);
  const VerifyReport report = run_spec_checks(spec, experiment);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].passed);
  EXPECT_NE(report.results[0].detail.find("3"), std::string::npos)
      << report.results[0].detail;
  EXPECT_EQ(report.failure_count(), 1u);
}

TEST(SpecVerify, UnreachableFailsWhenRouteExists) {
  ScenarioSpec spec = chain_spec();
  spec.checks.clear();
  SpecCheck check;
  check.kind = SpecCheck::Kind::kUnreachable;
  check.vantage = 1;
  check.prefix = *bgp::Prefix::try_parse("10.3.0.0/16");
  spec.checks.push_back(check);

  Experiment experiment(spec.scenario);
  const VerifyReport report = run_spec_checks(spec, experiment);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].passed);
}

TEST(SpecVerify, UnreachablePassesForUnknownPrefix) {
  ScenarioSpec spec = chain_spec();
  spec.checks.clear();
  SpecCheck check;
  check.kind = SpecCheck::Kind::kUnreachable;
  check.vantage = 1;
  check.prefix = *bgp::Prefix::try_parse("192.0.2.0/24");
  spec.checks.push_back(check);

  Experiment experiment(spec.scenario);
  const VerifyReport report = run_spec_checks(spec, experiment);
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_TRUE(report.results[0].passed) << report.results[0].detail;
}

TEST(SpecVerify, DigestPinMatchesEncodedArtifact) {
  ScenarioSpec spec = chain_spec();
  spec.checks.clear();
  Experiment experiment(spec.scenario);
  const std::string truth_digest =
      stable_digest_hex(io::encode(experiment.truth()));

  SpecCheck good;
  good.kind = SpecCheck::Kind::kDigest;
  good.stage = Stage::kSynthesize;
  good.digest = truth_digest;
  SpecCheck bad = good;
  bad.digest = std::string(32, 'f');
  spec.checks = {good, bad};

  const VerifyReport report = run_spec_checks(spec, experiment);
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_TRUE(report.results[0].passed) << report.results[0].detail;
  EXPECT_FALSE(report.results[1].passed);
  // The failure detail surfaces the observed digest for pin updates.
  EXPECT_NE(report.results[1].detail.find(truth_digest), std::string::npos)
      << report.results[1].detail;
}

TEST(SpecVerify, DescribeCheckIsStable) {
  const ScenarioSpec spec = chain_spec();
  ASSERT_GE(spec.checks.size(), 3u);
  EXPECT_EQ(describe_check(spec.checks[0]), "route 1 10.3.0.0/16 via 3 at 0");
  EXPECT_EQ(describe_check(spec.checks[2]), "unreachable 1 10.3.0.0/16 at 2");
  // The trailing check has no 'at' clause: evaluated at end of script.
  EXPECT_EQ(describe_check(spec.checks[4]), "route 1 10.3.0.0/16 via 3");
}

}  // namespace
}  // namespace bgpolicy::core
