#include "core/causes.h"

#include <gtest/gtest.h>

#include "core/export_inference.h"
#include "sim/simulation.h"
#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

// Fig. 3 world where A owns 10.0.0.0/23 and splits out 10.0.0.0/24:
// the covering /23 is announced to both providers, the /24 only to C.
TEST(Causes, SplittingDetected) {
  Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  const Prefix covering = Prefix::parse("10.0.0.0/23");
  const Prefix specific = Prefix::parse("10.0.0.0/24");
  sim::ExportRule rule;
  rule.prefix = specific;
  rule.action = sim::ExportAction::kDeny;
  policies.at_mut(fig.a).export_.add_rule_for(fig.b, rule);

  sim::VantageSpec spec;
  spec.best_only = {fig.d};
  const std::vector<sim::Origination> originations{{covering, fig.a},
                                                   {specific, fig.a}};
  auto sim = sim::run_simulation(fig.graph, policies, originations, spec);
  const auto& table = sim.best_only.at(fig.d);

  const auto analysis =
      infer_sa_prefixes(table, fig.d, fig.graph, oracle_from(fig.graph));
  ASSERT_EQ(analysis.sa_count, 1u);
  EXPECT_EQ(analysis.sa_prefixes.front().prefix, specific);

  PathIndex paths;
  paths.add_table(table);
  const auto causes = analyze_causes(analysis, table, paths, fig.graph,
                                     oracle_from(fig.graph));
  EXPECT_EQ(causes.splitting, 1u);
  EXPECT_EQ(causes.aggregating, 0u);
}

// Aggregation: A's prefix lives inside B's block; B absorbs it (never
// re-exports), so D sees it only via the peer E, covered by B's block route.
TEST(Causes, AggregationDetected) {
  Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  const Prefix block = Prefix::parse("12.0.0.0/16");
  const Prefix assigned = Prefix::parse("12.0.128.0/24");
  sim::ExportRule absorb;
  absorb.prefix = assigned;
  absorb.action = sim::ExportAction::kDeny;
  policies.at_mut(fig.b).export_.add_rule_any(absorb);

  sim::VantageSpec spec;
  spec.best_only = {fig.d};
  const std::vector<sim::Origination> originations{{block, fig.b},
                                                   {assigned, fig.a}};
  auto sim = sim::run_simulation(fig.graph, policies, originations, spec);
  const auto& table = sim.best_only.at(fig.d);

  const auto analysis =
      infer_sa_prefixes(table, fig.d, fig.graph, oracle_from(fig.graph));
  ASSERT_EQ(analysis.sa_count, 1u);

  PathIndex paths;
  paths.add_table(table);
  const auto causes = analyze_causes(analysis, table, paths, fig.graph,
                                     oracle_from(fig.graph));
  EXPECT_EQ(causes.aggregating, 1u);
  EXPECT_EQ(causes.splitting, 0u);
}

// Case 3 classification: plain withholding => "withheld from direct
// provider"; community-capped => "announced to direct provider".
TEST(Causes, Case3DistinguishesWithheldFromCapped) {
  for (const bool via_community : {false, true}) {
    Figure3 fig = figure3_graph();
    auto policies = typical_policies(fig.graph);
    const Prefix prefix = Prefix::parse("10.0.0.0/24");
    sim::ExportRule rule;
    rule.prefix = prefix;
    rule.action = via_community ? sim::ExportAction::kTagNoExportUpstream
                                : sim::ExportAction::kDeny;
    policies.at_mut(fig.a).export_.add_rule_for(fig.b, rule);

    sim::VantageSpec spec;
    spec.best_only = {fig.d};
    // B contributes its table to the collector, exposing the "B A"
    // adjacency when A announced to B (the paper's Oregon-based method).
    spec.collector_peers = {fig.b, fig.d};
    const std::vector<sim::Origination> originations{{prefix, fig.a}};
    auto sim = sim::run_simulation(fig.graph, policies, originations, spec);
    const auto& table = sim.best_only.at(fig.d);

    const auto analysis =
        infer_sa_prefixes(table, fig.d, fig.graph, oracle_from(fig.graph));
    ASSERT_EQ(analysis.sa_count, 1u) << "via_community=" << via_community;

    PathIndex paths;
    paths.add_table(sim.collector);
    const auto causes = analyze_causes(analysis, table, paths, fig.graph,
                                       oracle_from(fig.graph));
    ASSERT_EQ(causes.identified, 1u) << "via_community=" << via_community;
    if (via_community) {
      // B received the (tagged) announcement, so the B<-A adjacency is
      // observable in B's looking glass: the customer DID announce.
      EXPECT_EQ(causes.announce_to_direct, 1u);
      EXPECT_EQ(causes.withheld_from_direct, 0u);
    } else {
      EXPECT_EQ(causes.announce_to_direct, 0u);
      EXPECT_EQ(causes.withheld_from_direct, 1u);
    }
  }
}

// Table 9 shape at scale: splitting and aggregating are rare among SA
// prefixes; Case 3 dominates and mostly shows plain withholding.
TEST(Causes, PipelineTable9Shape) {
  const auto& pipe = shared_pipeline();
  const AsNumber provider{1};
  const auto analysis =
      infer_sa_prefixes(pipe.table_for(provider), provider,
                        pipe.inferred_graph, pipe.inferred_oracle());
  ASSERT_GT(analysis.sa_count, 5u);
  const auto causes =
      analyze_causes(analysis, pipe.table_for(provider), pipe.paths,
                     pipe.inferred_graph, pipe.inferred_oracle());
  EXPECT_LT(causes.splitting, analysis.sa_count / 2)
      << "splitting should not be the main cause (paper Table 9)";
  EXPECT_LT(causes.aggregating, analysis.sa_count)
      << "aggregation is an upper-bound estimate but not everything";
  EXPECT_GT(causes.identified, 0u);
  EXPECT_GT(causes.withheld_from_direct, 0u)
      << "plain selective announcing must appear (paper: ~79%)";
}

}  // namespace
}  // namespace bgpolicy::core
