#include "core/peer_export.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

TEST(PeerExport, DirectAnnouncementsCounted) {
  bgp::BgpTable table{AsNumber(1)};
  // Peer 20: both own prefixes arrive directly (path [20]).
  table.add(make_route(Prefix::parse("10.0.0.0/24"), {AsNumber(20)}));
  table.add(make_route(Prefix::parse("10.0.1.0/24"), {AsNumber(20)}));
  // Peer 30: one prefix arrives via a third party.
  table.add(make_route(Prefix::parse("10.1.0.0/24"), {AsNumber(30)}));
  table.add(
      make_route(Prefix::parse("10.1.1.0/24"), {AsNumber(20), AsNumber(30)}));

  const auto result = analyze_peer_export(table, AsNumber(1),
                                          {AsNumber(20), AsNumber(30)});
  EXPECT_EQ(result.peer_count, 2u);
  EXPECT_EQ(result.announcing_all, 1u);
  EXPECT_DOUBLE_EQ(result.percent_announcing, 50.0);
  for (const auto& row : result.rows) {
    if (row.peer == AsNumber(20)) {
      EXPECT_TRUE(row.announces_all);
      EXPECT_EQ(row.own_prefixes, 2u);
      EXPECT_EQ(row.direct, 2u);
    } else {
      EXPECT_FALSE(row.announces_all);
      EXPECT_EQ(row.own_prefixes, 2u);
      EXPECT_EQ(row.direct, 1u);
    }
  }
}

TEST(PeerExport, AnnouncingMostThreshold) {
  bgp::BgpTable table{AsNumber(1)};
  for (std::uint32_t i = 0; i < 10; ++i) {
    const Prefix p(0x0A000000 + (i << 8), 24);
    if (i < 9) {
      table.add(make_route(p, {AsNumber(20)}));
    } else {
      table.add(make_route(p, {AsNumber(30), AsNumber(20)}));
    }
  }
  const auto result = analyze_peer_export(table, AsNumber(1), {AsNumber(20)});
  EXPECT_EQ(result.announcing_all, 0u);
  EXPECT_EQ(result.announcing_most, 1u) << "9 of 10 direct is 'most'";
}

TEST(PeerExport, SilentPeerIsNotAnnouncing) {
  bgp::BgpTable table{AsNumber(1)};
  const auto result = analyze_peer_export(table, AsNumber(1), {AsNumber(20)});
  EXPECT_EQ(result.peer_count, 1u);
  EXPECT_EQ(result.announcing_all, 0u);
}

// Table 10 shape: most peers of the focus Tier-1s announce their own
// prefixes directly (86-100% in the paper).
class PipelinePeerExport : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PipelinePeerExport, MostPeersAnnounceDirectly) {
  const auto& pipe = shared_pipeline();
  const AsNumber provider{GetParam()};
  const auto peers = pipe.inferred_graph.peers(provider);
  ASSERT_FALSE(peers.empty());
  const auto result =
      analyze_peer_export(pipe.table_for(provider), provider, peers);
  EXPECT_GT(result.percent_announcing, 60.0) << util::to_string(provider);
  EXPECT_GE(result.announcing_most, result.announcing_all);
}

INSTANTIATE_TEST_SUITE_P(FocusTier1, PipelinePeerExport,
                         ::testing::Values(1, 3549, 7018));

}  // namespace
}  // namespace bgpolicy::core
