// Satellite equivalence suite: scenarios/small.scn is a knob-by-knob
// transcription of core::Scenario::small(42), and this test pins the
// spec language to the constructor — the parsed Scenario must compare
// equal, hash to the same scenario_cache_key, and produce byte-identical
// synthesize/simulate artifacts at 1, 2, and 8 worker threads.  If a
// knob is added to Scenario without a spec-language spelling (or
// small.scn drifts), this suite is the tripwire.
#include <array>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/artifact_store.h"
#include "core/experiment.h"
#include "core/scenario_spec.h"
#include "io/artifact_codec.h"

namespace bgpolicy::core {
namespace {

ScenarioSpec load_small_spec() {
  return ScenarioSpec::parse_file(std::filesystem::path(BGPOLICY_SCENARIO_DIR) /
                                  "small.scn");
}

TEST(ScenarioSpecEquivalence, SmallScnEqualsConstructor) {
  const ScenarioSpec spec = load_small_spec();
  const Scenario ctor = Scenario::small(42);
  EXPECT_EQ(spec.scenario, ctor)
      << "scenarios/small.scn no longer transcribes Scenario::small(42)";
}

TEST(ScenarioSpecEquivalence, SmallScnSharesCacheKey) {
  const ScenarioSpec spec = load_small_spec();
  const Scenario ctor = Scenario::small(42);
  EXPECT_EQ(scenario_cache_key(spec.scenario), scenario_cache_key(ctor))
      << "a spec-built small() must hit the same artifact-store entries";
}

TEST(ScenarioSpecEquivalence, ArtifactDigestsStableAcrossThreads) {
  const ScenarioSpec spec = load_small_spec();
  const std::array<std::size_t, 3> thread_counts{1, 2, 8};

  std::string truth_digest;
  std::string sim_digest;
  for (const std::size_t threads : thread_counts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Scenario scenario = spec.scenario;
    scenario.propagation.threads = threads;
    Experiment experiment(scenario);
    const std::string truth_here =
        stable_digest_hex(io::encode(experiment.truth()));
    const std::string sim_here =
        stable_digest_hex(io::encode(experiment.sim()));
    if (truth_digest.empty()) {
      truth_digest = truth_here;
      sim_digest = sim_here;
    } else {
      EXPECT_EQ(truth_here, truth_digest);
      EXPECT_EQ(sim_here, sim_digest);
    }
  }

  // And the run matches the digests pinned in the .scn verify block, so
  // the file's pins and this suite can never drift apart silently.
  bool saw_synthesize_pin = false;
  bool saw_simulate_pin = false;
  for (const SpecCheck& check : spec.checks) {
    if (check.kind != SpecCheck::Kind::kDigest) continue;
    if (check.stage == Stage::kSynthesize) {
      EXPECT_EQ(check.digest, truth_digest);
      saw_synthesize_pin = true;
    } else if (check.stage == Stage::kSimulate) {
      EXPECT_EQ(check.digest, sim_digest);
      saw_simulate_pin = true;
    }
  }
  EXPECT_TRUE(saw_synthesize_pin) << "small.scn lost its synthesize pin";
  EXPECT_TRUE(saw_simulate_pin) << "small.scn lost its simulate pin";
}

}  // namespace
}  // namespace bgpolicy::core
