// The sharded analysis suite must reproduce exactly what the direct
// per-table calls produce (the calls the bench binaries make one by one).
#include <gtest/gtest.h>

#include "core/analysis_suite.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

TEST(AnalysisSuite, MatchesDirectPerTableCalls) {
  const Pipeline& pipe = testing::shared_pipeline();
  const std::vector<AsNumber> vantages = recorded_vantages(pipe);
  ASSERT_FALSE(vantages.empty());

  const AnalysisSuite suite = run_analysis_suite(pipe, vantages, 2);
  ASSERT_EQ(suite.vantages.size(), vantages.size());

  const RelationshipOracle rels = pipe.inferred_oracle();
  for (const AsNumber as : vantages) {
    const VantageAnalysis* bundle = suite.find(as);
    ASSERT_NE(bundle, nullptr) << "missing bundle for AS " << as.value();
    EXPECT_EQ(bundle->vantage, as);

    const auto direct_sa =
        infer_sa_prefixes(pipe.table_for(as), as, pipe.inferred_graph, rels);
    EXPECT_EQ(bundle->sa.customer_prefixes, direct_sa.customer_prefixes);
    EXPECT_EQ(bundle->sa.sa_count, direct_sa.sa_count);

    const auto direct_homing = analyze_homing(direct_sa, pipe.inferred_graph);
    EXPECT_EQ(bundle->homing.multihomed_ases, direct_homing.multihomed_ases);
    EXPECT_EQ(bundle->homing.singlehomed_ases,
              direct_homing.singlehomed_ases);

    const auto direct_causes = analyze_causes(
        direct_sa, pipe.table_for(as), pipe.paths, pipe.inferred_graph, rels);
    EXPECT_EQ(bundle->causes.splitting, direct_causes.splitting);
    EXPECT_EQ(bundle->causes.aggregating, direct_causes.aggregating);
    EXPECT_EQ(bundle->causes.identified, direct_causes.identified);
    EXPECT_EQ(bundle->causes.announce_to_direct,
              direct_causes.announce_to_direct);
    EXPECT_EQ(bundle->causes.withheld_from_direct,
              direct_causes.withheld_from_direct);

    const bool is_lg = pipe.sim.looking_glass.contains(as);
    EXPECT_EQ(bundle->looking_glass, is_lg);
    EXPECT_EQ(bundle->import_typicality.has_value(), is_lg);
    EXPECT_EQ(bundle->sa_verification.has_value(), is_lg);
    if (is_lg) {
      const auto direct_import =
          analyze_import_typicality(pipe.table_for(as), rels);
      EXPECT_EQ(bundle->import_typicality->comparable_prefixes,
                direct_import.comparable_prefixes);
      EXPECT_EQ(bundle->import_typicality->typical_prefixes,
                direct_import.typical_prefixes);

      const auto direct_verify =
          verify_sa_prefixes(direct_sa, pipe.paths,
                             pipe.community_verified_neighbors(as), rels);
      EXPECT_EQ(bundle->sa_verification->verified, direct_verify.verified);
      EXPECT_EQ(bundle->sa_verification->step1_failures,
                direct_verify.step1_failures);
      EXPECT_EQ(bundle->sa_verification->step2_failures,
                direct_verify.step2_failures);
    }
  }
}

TEST(AnalysisSuite, CanonicalSerializationIsStableAcrossThreadCounts) {
  const Pipeline& pipe = testing::shared_pipeline();
  const std::vector<AsNumber> vantages = recorded_vantages(pipe);
  const std::string reference =
      canonical_serialize(run_analysis_suite(pipe, vantages, 1));
  ASSERT_FALSE(reference.empty());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
    EXPECT_EQ(canonical_serialize(run_analysis_suite(pipe, vantages, threads)),
              reference)
        << "analysis suite differs at threads=" << threads;
  }
}

}  // namespace
}  // namespace bgpolicy::core
