#include "core/path_index.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

const Prefix kP1 = Prefix::parse("10.0.0.0/24");
const Prefix kP2 = Prefix::parse("10.0.1.0/24");

bgp::BgpTable make_table() {
  bgp::BgpTable table{AsNumber(99)};
  table.add(make_route(kP1, {AsNumber(1), AsNumber(2), AsNumber(3)}));
  table.add(make_route(kP1, {AsNumber(4), AsNumber(3)}));
  table.add(make_route(kP2, {AsNumber(1), AsNumber(2), AsNumber(5)}));
  return table;
}

TEST(PathIndex, CountsDistinctPaths) {
  PathIndex index;
  index.add_table(make_table());
  EXPECT_EQ(index.path_count(), 3u);
  // Re-adding the same table adds nothing (dedup by prefix+path).
  index.add_table(make_table());
  EXPECT_EQ(index.path_count(), 3u);
}

TEST(PathIndex, PathsFromOrigin) {
  PathIndex index;
  index.add_table(make_table());
  const auto from3 = index.paths_from_origin(AsNumber(3));
  EXPECT_EQ(from3.size(), 2u);
  const auto from5 = index.paths_from_origin(AsNumber(5));
  ASSERT_EQ(from5.size(), 1u);
  EXPECT_EQ(from5.front().size(), 3u);
  EXPECT_TRUE(index.paths_from_origin(AsNumber(42)).empty());
}

TEST(PathIndex, PathsForPrefix) {
  PathIndex index;
  index.add_table(make_table());
  EXPECT_EQ(index.paths_for_prefix(kP1).size(), 2u);
  EXPECT_EQ(index.paths_for_prefix(kP2).size(), 1u);
  EXPECT_TRUE(index.paths_for_prefix(Prefix::parse("10.9.0.0/24")).empty());
}

TEST(PathIndex, AdjacencyIsOrdered) {
  PathIndex index;
  index.add_table(make_table());
  EXPECT_TRUE(index.has_adjacency(AsNumber(1), AsNumber(2)));
  EXPECT_TRUE(index.has_adjacency(AsNumber(2), AsNumber(3)));
  EXPECT_FALSE(index.has_adjacency(AsNumber(2), AsNumber(1)));
  EXPECT_FALSE(index.has_adjacency(AsNumber(1), AsNumber(3)));
}

TEST(PathIndex, SamePathDifferentPrefixBothIndexed) {
  bgp::BgpTable table{AsNumber(99)};
  table.add(make_route(kP1, {AsNumber(1), AsNumber(2)}));
  table.add(make_route(kP2, {AsNumber(1), AsNumber(2)}));
  PathIndex index;
  index.add_table(table);
  EXPECT_EQ(index.paths_for_prefix(kP1).size(), 1u);
  EXPECT_EQ(index.paths_for_prefix(kP2).size(), 1u);
}

TEST(PathIndex, SelfOriginatedRoutesSkipped) {
  bgp::BgpTable table{AsNumber(99)};
  bgp::Route self;
  self.prefix = kP1;
  self.learned_from = AsNumber(99);
  table.add(self);
  PathIndex index;
  index.add_table(table);
  EXPECT_EQ(index.path_count(), 0u);
}

}  // namespace
}  // namespace bgpolicy::core
