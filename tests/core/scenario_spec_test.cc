// Parser-robustness suite for the .scn scenario spec language
// (core/scenario_spec.h): round-trip identity (parse -> dump -> parse),
// rejection tests asserting exact line/column diagnostics, a
// deterministic random-mutation fuzz pass (the parser must never crash,
// only throw), and the synthesize-time vantage/override validation.
// CI runs this binary under ASan/UBSan (the sanitizer job's target list).
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenario_spec.h"

namespace bgpolicy::core {
namespace {

const std::filesystem::path kScenarioDir = BGPOLICY_SCENARIO_DIR;

// A compact spec exercising every block type.
constexpr const char* kFullSpec = R"(# exercise every block
scenario full-demo
base default

topology {
  explicit
  as 10 tier1
  as 20 tier1
  as 30 tier2
  as 50 stub
  peer 10 20
  provider 10 30
  provider 30 50
  provider 20 50
  threads 1
}

prefixes {
  originate 50 10.50.0.0/16
}

policy {
  tagging_as_prob 0
}

vantage {
  looking_glass 10
  best_only 20
}

override {
  prefer 50 30 90
  deny 30 10 10.50.0.0/16
  conditional 50 10.50.0.0/16 20 watch 30
  tagging 10 on
}

events {
  fail 30 50
  restore 30 50
}

verify {
  converged
  route 10 10.50.0.0/16 via 30 at 0
  unreachable 10 10.50.0.0/16 at 1
}
)";

SourceLoc error_loc(const std::string& text) {
  try {
    (void)ScenarioSpec::parse(text);
  } catch (const SpecError& error) {
    return error.where();
  }
  ADD_FAILURE() << "expected SpecError for:\n" << text;
  return {};
}

TEST(ScenarioSpecParse, FullSpecParses) {
  const ScenarioSpec spec = ScenarioSpec::parse(kFullSpec, "full.scn");
  EXPECT_EQ(spec.scenario.name, "full-demo");
  ASSERT_TRUE(spec.scenario.explicit_world.has_value());
  EXPECT_EQ(spec.scenario.explicit_world->ases.size(), 4u);
  EXPECT_EQ(spec.scenario.explicit_world->links.size(), 4u);
  EXPECT_EQ(spec.scenario.explicit_world->originations.size(), 1u);
  EXPECT_EQ(spec.scenario.overrides.size(), 4u);
  EXPECT_EQ(spec.events.size(), 2u);
  EXPECT_EQ(spec.checks.size(), 3u);
  EXPECT_EQ(spec.scenario.looking_glass, std::vector<std::uint32_t>{10});
  // Explicit worlds start policy-inert; the block opted one knob back in.
  EXPECT_EQ(spec.scenario.policy_params.origin_selective_as_prob, 0.0);
  EXPECT_EQ(spec.scenario.policy_params.tagging_as_prob, 0.0);
  // Event/check payloads.
  EXPECT_EQ(spec.events[0].kind, SpecEvent::Kind::kFailLink);
  EXPECT_EQ(spec.checks[1].kind, SpecCheck::Kind::kRouteVia);
  EXPECT_EQ(spec.checks[1].at_event, 0u);
  EXPECT_EQ(spec.checks[2].at_event, 1u);
  // Diagnostics carry positions.
  EXPECT_GT(spec.checks[1].loc.line, 0u);
}

TEST(ScenarioSpecParse, RoundTripIdentity) {
  const ScenarioSpec spec = ScenarioSpec::parse(kFullSpec);
  const std::string dumped = spec.dump();
  const ScenarioSpec again = ScenarioSpec::parse(dumped);
  EXPECT_EQ(spec, again) << dumped;
  // And dump is a fixpoint: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(dumped, again.dump());
}

TEST(ScenarioSpecParse, RoundTripWholeCorpus) {
  const std::vector<ScenarioSpec> corpus = load_spec_dir(kScenarioDir);
  ASSERT_GE(corpus.size(), 5u) << "scenario corpus shrank below the floor";
  for (const ScenarioSpec& spec : corpus) {
    SCOPED_TRACE(spec.source);
    EXPECT_FALSE(spec.checks.empty())
        << "corpus contract: every spec has a non-empty verify block";
    const ScenarioSpec again = ScenarioSpec::parse(spec.dump(), spec.source);
    EXPECT_EQ(spec, again);
  }
}

TEST(ScenarioSpecParse, CorpusVariantsFeedSweep) {
  const std::vector<ScenarioSpec> corpus = load_spec_dir(kScenarioDir);
  const std::vector<SweepVariant> variants = spec_sweep_variants(corpus);
  ASSERT_EQ(variants.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(variants[i].label, corpus[i].scenario.name);
    EXPECT_EQ(variants[i].scenario, corpus[i].scenario);
  }
}

// ---- rejection: exact line/column diagnostics -------------------------

TEST(ScenarioSpecReject, MissingHeader) {
  EXPECT_EQ(error_loc("topology {\n}\n"), (SourceLoc{1, 1}));
}

TEST(ScenarioSpecReject, UnknownBlock) {
  EXPECT_EQ(error_loc("scenario x\nfoo {\n}\n"), (SourceLoc{2, 1}));
}

TEST(ScenarioSpecReject, MissingBrace) {
  // "topology" spans columns 1-8; the missing '{' is reported just past it.
  EXPECT_EQ(error_loc("scenario x\ntopology\n"), (SourceLoc{2, 9}));
}

TEST(ScenarioSpecReject, UnknownKey) {
  EXPECT_EQ(error_loc("scenario x\ntopology {\n  frobnicate 3\n}\n"),
            (SourceLoc{3, 3}));
}

TEST(ScenarioSpecReject, MalformedInteger) {
  // "  tier1 zero": "zero" starts at column 9.
  EXPECT_EQ(error_loc("scenario x\ntopology {\n  tier1 zero\n}\n"),
            (SourceLoc{3, 9}));
}

TEST(ScenarioSpecReject, ProbabilityOutOfRange) {
  EXPECT_EQ(error_loc("scenario x\npolicy {\n  te_as_prob 1.5\n}\n"),
            (SourceLoc{3, 14}));
}

TEST(ScenarioSpecReject, DuplicateScalarKey) {
  EXPECT_EQ(
      error_loc("scenario x\ntopology {\n  seed 1\n  seed 2\n}\n"),
      (SourceLoc{4, 3}));
}

TEST(ScenarioSpecReject, DuplicateBlock) {
  EXPECT_EQ(error_loc("scenario x\npolicy {\n}\npolicy {\n}\n"),
            (SourceLoc{4, 1}));
}

TEST(ScenarioSpecReject, MalformedPrefix) {
  EXPECT_EQ(error_loc("scenario x\ntopology {\n  explicit\n  as 5 stub\n}\n"
                      "prefixes {\n  originate 5 10.0.0.0\n}\n"),
            (SourceLoc{7, 15}));
}

TEST(ScenarioSpecReject, GeneratorKnobInExplicitTopology) {
  EXPECT_EQ(error_loc("scenario x\ntopology {\n  explicit\n  as 5 stub\n"
                      "  tier1 4\n}\n"),
            (SourceLoc{5, 3}));
}

TEST(ScenarioSpecReject, UndeclaredAsInLink) {
  // "  provider 5 6": 6 is undeclared; its token starts at column 14.
  EXPECT_EQ(error_loc("scenario x\ntopology {\n  explicit\n  as 5 stub\n"
                      "  provider 5 6\n}\n"),
            (SourceLoc{5, 14}));
}

TEST(ScenarioSpecReject, AtClauseBeyondEventScript) {
  EXPECT_EQ(error_loc("scenario x\nverify {\n  unreachable 5 10.0.0.0/8 "
                      "at 3\n}\n"),
            (SourceLoc{3, 31}));
}

TEST(ScenarioSpecReject, BadDigest) {
  EXPECT_EQ(error_loc("scenario x\nverify {\n  digest simulate abc\n}\n"),
            (SourceLoc{3, 19}));
}

TEST(ScenarioSpecReject, BaseAfterBlock) {
  EXPECT_EQ(error_loc("scenario x\npolicy {\n}\nbase small\n"),
            (SourceLoc{4, 1}));
}

TEST(ScenarioSpecReject, UnterminatedBlock) {
  const std::string text = "scenario x\ntopology {\n  seed 1\n";
  // Parsing sees 4 lines (the trailing newline yields an empty one).
  EXPECT_EQ(error_loc(text), (SourceLoc{4, 1}));
}

TEST(ScenarioSpecReject, ErrorCarriesSourceAndMessage) {
  try {
    (void)ScenarioSpec::parse("scenario x\nbogus {\n}\n", "lab.scn");
    FAIL() << "expected SpecError";
  } catch (const SpecError& error) {
    EXPECT_EQ(error.source(), "lab.scn");
    EXPECT_EQ(std::string(error.what()).find("lab.scn:2:1: "), 0u);
    EXPECT_NE(error.message().find("bogus"), std::string::npos);
  }
}

// ---- fuzz: deterministic mutations must never crash -------------------

TEST(ScenarioSpecFuzz, MutatedSpecsNeverCrash) {
  std::vector<std::string> seeds{kFullSpec};
  for (const auto& entry : std::filesystem::directory_iterator(kScenarioDir)) {
    if (entry.path().extension() != ".scn") continue;
    std::string text;
    {
      std::ifstream in(entry.path());
      text.assign(std::istreambuf_iterator<char>(in), {});
    }
    seeds.push_back(std::move(text));
  }
  ASSERT_GE(seeds.size(), 2u);

  std::mt19937 rng(0xC0FFEE);  // fixed seed: the suite is deterministic
  std::size_t parsed_ok = 0;
  std::size_t rejected = 0;
  for (int round = 0; round < 400; ++round) {
    std::string text = seeds[rng() % seeds.size()];
    const int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      switch (rng() % 5) {
        case 0:  // flip a byte
          text[rng() % text.size()] =
              static_cast<char>(rng() % 96 + 32);
          break;
        case 1:  // truncate
          text.resize(rng() % text.size());
          break;
        case 2:  // delete a span
          text.erase(rng() % text.size(),
                     rng() % 16);
          break;
        case 3: {  // duplicate a span elsewhere
          const std::size_t from = rng() % text.size();
          const std::size_t len =
              std::min<std::size_t>(rng() % 32, text.size() - from);
          text.insert(rng() % text.size(), text.substr(from, len));
          break;
        }
        case 4:  // inject a hostile token
          text.insert(rng() % text.size(),
                      round % 2 == 0 ? "\n999999999999999999999 {"
                                     : " 1e309 ");
          break;
      }
    }
    try {
      const ScenarioSpec spec = ScenarioSpec::parse(text, "fuzz");
      ++parsed_ok;
      // Whatever survives parsing must survive dump -> parse too.
      (void)ScenarioSpec::parse(spec.dump(), "fuzz-redump");
    } catch (const SpecError&) {
      ++rejected;
    }
  }
  // The mutator must actually exercise both paths.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(parsed_ok + rejected, 400u);
}

// ---- required_stage ---------------------------------------------------

TEST(ScenarioSpec, RequiredStageTracksDeepestCheck) {
  const char* base = "scenario x\ntopology {\n  explicit\n  as 5 stub\n}\n";
  const auto with_verify = [&](const char* verify) {
    return ScenarioSpec::parse(std::string(base) + "verify {\n" + verify +
                               "\n}\n");
  };
  EXPECT_EQ(with_verify("  unreachable 5 10.0.0.0/8").required_stage(),
            Stage::kSynthesize);
  EXPECT_EQ(with_verify("  converged").required_stage(), Stage::kSimulate);
  EXPECT_EQ(with_verify("  inference_accuracy 50").required_stage(),
            Stage::kInfer);
  EXPECT_EQ(with_verify("  sa_prevalence 5 0 100").required_stage(),
            Stage::kAnalyze);
  EXPECT_EQ(with_verify(
                "  digest observe 00112233445566778899aabbccddeeff")
                .required_stage(),
            Stage::kObserve);
}

// ---- synthesize-time vantage/override validation (the silent-miss fix) --

TEST(ScenarioValidation, AbsentLookingGlassAsFailsSynthesize) {
  Scenario scenario = Scenario::small(42);
  scenario.looking_glass.push_back(999999);  // nowhere in the topology
  try {
    (void)synthesize(scenario);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("looking_glass"), std::string::npos) << what;
    EXPECT_NE(what.find("999999"), std::string::npos) << what;
  }
}

TEST(ScenarioValidation, AbsentVerificationAsFailsSynthesize) {
  Scenario scenario = Scenario::small(42);
  scenario.verification_ases.push_back(424242);
  EXPECT_THROW((void)synthesize(scenario), std::invalid_argument);
}

TEST(ScenarioValidation, AbsentOverrideNeighborFailsSynthesize) {
  Scenario scenario = Scenario::small(42);
  PolicyOverride o;
  o.kind = PolicyOverride::Kind::kPreferNeighbor;
  o.as = 1;
  o.neighbor = 987654;
  o.value = 140;
  scenario.overrides.push_back(o);
  EXPECT_THROW((void)synthesize(scenario), std::invalid_argument);
}

TEST(ScenarioValidation, ValidScenarioStillSynthesizes) {
  Scenario scenario = Scenario::small(42);
  const GroundTruth truth = synthesize(scenario);
  EXPECT_TRUE(truth.topo.graph.contains(util::AsNumber(1)));
}

}  // namespace
}  // namespace bgpolicy::core
