#include "core/sa_verification.h"

#include <gtest/gtest.h>

#include "core/export_inference.h"
#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::core {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");

// Hand-built verification scene based on Fig. 3: D's SA prefix (origin A,
// next hop peer E) with an active customer path D -> B -> A for another
// prefix of A's.
struct Scene {
  Figure3 fig = figure3_graph();
  SaAnalysis analysis;
  PathIndex paths;

  /// Oracle bound to this scene's graph; only valid while the scene lives.
  [[nodiscard]] RelationshipOracle rels() const {
    return oracle_from(fig.graph);
  }
};

Scene make_scene(bool active_path) {
  Scene s;
  s.analysis.provider = s.fig.d;
  SaPrefix sa;
  sa.prefix = kPrefix;
  sa.origin = s.fig.a;
  sa.next_hop = s.fig.e;
  sa.next_hop_rel = topo::RelKind::kPeer;
  s.analysis.sa_prefixes.push_back(sa);
  s.analysis.sa_count = 1;
  s.analysis.customer_prefixes = 2;

  bgp::BgpTable observed{AsNumber(999)};
  if (active_path) {
    // Another prefix of A's actually traverses D -> B -> A.
    observed.add(make_route(Prefix::parse("10.0.1.0/24"),
                            {s.fig.d, s.fig.b, s.fig.a}));
  }
  observed.add(make_route(kPrefix, {s.fig.d, s.fig.e, s.fig.c, s.fig.a}));
  s.paths.add_table(observed);
  return s;
}

TEST(SaVerification, VerifiedWithCommunityAndActivePath) {
  Scene s = make_scene(/*active_path=*/true);
  const std::unordered_set<AsNumber> verified{s.fig.e, s.fig.b};
  const auto result =
      verify_sa_prefixes(s.analysis, s.paths, verified, s.rels());
  EXPECT_EQ(result.sa_total, 1u);
  EXPECT_EQ(result.verified, 1u);
  EXPECT_DOUBLE_EQ(result.percent_verified, 100.0);
}

TEST(SaVerification, Step1FailsWithoutNextHopVerification) {
  Scene s = make_scene(true);
  const std::unordered_set<AsNumber> verified{s.fig.b};  // E missing
  const auto result =
      verify_sa_prefixes(s.analysis, s.paths, verified, s.rels());
  EXPECT_EQ(result.verified, 0u);
  EXPECT_EQ(result.step1_failures, 1u);
}

TEST(SaVerification, Step2FailsWithoutActivePath) {
  Scene s = make_scene(/*active_path=*/false);
  const std::unordered_set<AsNumber> verified{s.fig.e, s.fig.b};
  const auto result =
      verify_sa_prefixes(s.analysis, s.paths, verified, s.rels());
  EXPECT_EQ(result.verified, 0u);
  EXPECT_EQ(result.step2_failures, 1u);
}

TEST(SaVerification, Step2FailsWhenFirstEdgeUnverified) {
  Scene s = make_scene(true);
  const std::unordered_set<AsNumber> verified{s.fig.e};  // B missing
  const auto result =
      verify_sa_prefixes(s.analysis, s.paths, verified, s.rels());
  EXPECT_EQ(result.verified, 0u);
  EXPECT_EQ(result.step2_failures, 1u);
}

TEST(SaVerification, DirectCustomerSettledByStep1) {
  Scene s = make_scene(false);
  // Make the SA origin a *direct* customer of D: B originates the prefix.
  s.analysis.sa_prefixes.front().origin = s.fig.b;
  const std::unordered_set<AsNumber> verified{s.fig.e, s.fig.b};
  const auto result =
      verify_sa_prefixes(s.analysis, s.paths, verified, s.rels());
  EXPECT_EQ(result.verified, 1u);
}

// Table 7 shape: most SA prefixes at the focus Tier-1s verify.
class PipelineSaVerification : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(PipelineSaVerification, MostSaPrefixesVerify) {
  const auto& pipe = shared_pipeline();
  const AsNumber provider{GetParam()};
  const auto analysis =
      infer_sa_prefixes(pipe.table_for(provider), provider,
                        pipe.inferred_graph, pipe.inferred_oracle());
  if (analysis.sa_count < 5) GTEST_SKIP() << "not enough SA prefixes";
  const auto verified_neighbors =
      pipe.community_verified_neighbors(provider);
  const auto result = verify_sa_prefixes(analysis, pipe.paths,
                                         verified_neighbors,
                                         pipe.inferred_oracle());
  // The paper reports 95-97.6% (Table 7) on a world where origins announce
  // hundreds of prefixes, so an alternate "active" path almost always
  // exists.  At this test scenario's size many origins have 1-2 prefixes
  // and a single suppressed chain, which is unverifiable by construction
  // (the paper notes the same limitation); the bound reflects that.
  EXPECT_GT(result.percent_verified, 40.0)
      << util::to_string(provider) << ": " << result.step1_failures
      << " step-1 failures, " << result.step2_failures << " step-2 failures";
}

INSTANTIATE_TEST_SUITE_P(FocusTier1, PipelineSaVerification,
                         ::testing::Values(1, 3549, 7018));

}  // namespace
}  // namespace bgpolicy::core
