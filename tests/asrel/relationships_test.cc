#include "asrel/relationships.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace bgpolicy::asrel {
namespace {

using namespace bgpolicy::testing;

TEST(InferredRelationships, KeyNormalizesOrder) {
  EXPECT_EQ(InferredRelationships::key(kAs2, kAs1),
            std::make_pair(kAs1, kAs2));
  EXPECT_EQ(InferredRelationships::key(kAs1, kAs2),
            std::make_pair(kAs1, kAs2));
}

TEST(InferredRelationships, PerspectiveInversion) {
  InferredRelationships rels;
  rels.set(kAs1, kAs2, EdgeType::kLoProviderOfHi);  // AS1 provider of AS2
  EXPECT_EQ(rels.relationship(kAs1, kAs2), RelKind::kCustomer);
  EXPECT_EQ(rels.relationship(kAs2, kAs1), RelKind::kProvider);

  rels.set(kAs3, kAs4, EdgeType::kHiProviderOfLo);  // AS4 provider of AS3
  EXPECT_EQ(rels.relationship(kAs3, kAs4), RelKind::kProvider);
  EXPECT_EQ(rels.relationship(kAs4, kAs3), RelKind::kCustomer);
}

TEST(InferredRelationships, PeersAndSiblingsAreSymmetric) {
  InferredRelationships rels;
  rels.set(kAs1, kAs2, EdgeType::kPeer);
  rels.set(kAs3, kAs4, EdgeType::kSibling);
  EXPECT_EQ(rels.relationship(kAs1, kAs2), RelKind::kPeer);
  EXPECT_EQ(rels.relationship(kAs2, kAs1), RelKind::kPeer);
  EXPECT_EQ(rels.relationship(kAs3, kAs4), RelKind::kPeer);
}

TEST(InferredRelationships, UnknownPairIsNullopt) {
  InferredRelationships rels;
  EXPECT_FALSE(rels.relationship(kAs1, kAs2));
  EXPECT_FALSE(rels.edge(kAs1, kAs2));
}

TEST(InferredRelationships, SetOverwrites) {
  InferredRelationships rels;
  rels.set(kAs1, kAs2, EdgeType::kPeer);
  rels.set(kAs2, kAs1, EdgeType::kLoProviderOfHi);
  EXPECT_EQ(rels.edge_count(), 1u);
  EXPECT_EQ(rels.relationship(kAs1, kAs2), RelKind::kCustomer);
}

TEST(InferredRelationships, AccuracyAgainstTruth) {
  const auto g = figure1_graph();
  InferredRelationships rels;
  rels.set(kAs2, kAs4, EdgeType::kLoProviderOfHi);  // correct
  rels.set(kAs3, kAs4, EdgeType::kPeer);            // correct
  rels.set(kAs5, kAs2, EdgeType::kPeer);            // wrong (p2c in truth)
  rels.set(util::AsNumber(98), util::AsNumber(99),
           EdgeType::kPeer);  // not in truth graph: skipped
  EXPECT_NEAR(rels.accuracy_against(g), 2.0 / 3.0, 1e-9);
}

TEST(InferredRelationships, ToGraphRoundTrip) {
  InferredRelationships rels;
  rels.set(kAs1, kAs2, EdgeType::kLoProviderOfHi);
  rels.set(kAs2, kAs3, EdgeType::kPeer);
  rels.set(kAs3, kAs4, EdgeType::kSibling);
  const topo::AsGraph g = rels.to_graph();
  EXPECT_EQ(g.as_count(), 4u);
  EXPECT_EQ(g.relationship(kAs1, kAs2), RelKind::kCustomer);
  EXPECT_EQ(g.relationship(kAs2, kAs3), RelKind::kPeer);
  EXPECT_EQ(g.relationship(kAs3, kAs4), RelKind::kPeer);  // sibling -> peer
}

}  // namespace
}  // namespace bgpolicy::asrel
