#include "asrel/tier_classify.h"

#include <gtest/gtest.h>

#include "testing/pipeline_cache.h"

namespace bgpolicy::asrel {
namespace {

using bgpolicy::testing::shared_pipeline;
using util::AsNumber;

TEST(TierClassify, HandBuiltHierarchy) {
  InferredRelationships rels;
  // Core: 100 and 101 peer, both high degree via many customers.
  rels.set(AsNumber(100), AsNumber(101), EdgeType::kPeer);
  for (std::uint32_t i = 0; i < 20; ++i) {
    rels.set(AsNumber(100), AsNumber(200 + i), EdgeType::kLoProviderOfHi);
    rels.set(AsNumber(101), AsNumber(300 + i), EdgeType::kLoProviderOfHi);
  }
  // 200 is a big transit: 15 customers of its own.
  for (std::uint32_t i = 0; i < 15; ++i) {
    rels.set(AsNumber(200), AsNumber(400 + i), EdgeType::kLoProviderOfHi);
  }
  // 201 is a small transit with one customer.
  rels.set(AsNumber(201), AsNumber(500), EdgeType::kLoProviderOfHi);

  TierParams params;
  params.tier1_min_degree = 5;
  params.tier2_min_cone = 10;
  const TierAssignment tiers = classify_tiers(rels, params);

  EXPECT_EQ(tiers.level_of(AsNumber(100)), 1);
  EXPECT_EQ(tiers.level_of(AsNumber(101)), 1);
  EXPECT_EQ(tiers.level_of(AsNumber(200)), 2);
  EXPECT_EQ(tiers.level_of(AsNumber(201)), 3);
  EXPECT_EQ(tiers.level_of(AsNumber(500)), 4);
  EXPECT_EQ(tiers.level_of(AsNumber(999)), 4);  // unknown: stub by default
  EXPECT_EQ(tiers.tier1.size(), 2u);
}

TEST(TierClassify, PipelineTier1MatchesGroundTruth) {
  const auto& pipe = shared_pipeline();
  // Every inferred Tier-1 is a true Tier-1.
  for (const auto as : pipe.tiers.tier1) {
    EXPECT_EQ(pipe.topo.tier_of(as), topo::Tier::kTier1)
        << util::to_string(as);
  }
  // And most true Tier-1s are recovered.
  std::size_t recovered = 0;
  for (const auto as : pipe.topo.tier1) {
    if (pipe.tiers.level_of(as) == 1) ++recovered;
  }
  EXPECT_GE(recovered, pipe.topo.tier1.size() - 1);
}

TEST(TierClassify, StubsLandInLevel4) {
  const auto& pipe = shared_pipeline();
  std::size_t checked = 0;
  std::size_t correct = 0;
  for (const auto as : pipe.topo.stubs) {
    if (!pipe.inferred_graph.contains(as)) continue;
    ++checked;
    if (pipe.tiers.level_of(as) == 4) ++correct;
  }
  ASSERT_GT(checked, 50u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(checked), 0.9);
}

}  // namespace
}  // namespace bgpolicy::asrel
