#include "asrel/gao_inference.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/scenario.h"
#include "sim/policy_gen.h"
#include "sim/simulation.h"
#include "topology/prefix_alloc.h"
#include "topology/topology_gen.h"

namespace bgpolicy::asrel {
namespace {

using util::AsNumber;

TEST(GaoInference, IgnoresLoopsAndCollapsesPrepending) {
  GaoInference gao;
  gao.add_path(bgp::AsPath::parse("1 2 2 2 3"));  // prepending collapsed
  EXPECT_EQ(gao.path_count(), 1u);
  EXPECT_EQ(gao.degree(AsNumber(2)), 2u);
  gao.add_path(bgp::AsPath::parse("1 2 3 2"));  // loop: dropped
  EXPECT_EQ(gao.path_count(), 1u);
  gao.add_path(bgp::AsPath::parse("7"));  // too short
  EXPECT_EQ(gao.path_count(), 1u);
}

TEST(GaoInference, SimpleChainInfersProviderDirection) {
  GaoInference gao;
  // A hub AS 10 with many neighbors; stub 20 below it; observer 30.
  for (std::uint32_t n = 40; n < 50; ++n) {
    gao.add_path(bgp::AsPath({AsNumber(n), AsNumber(10), AsNumber(20)}));
  }
  const auto rels = gao.infer();
  EXPECT_EQ(rels.relationship(AsNumber(10), AsNumber(20)), RelKind::kCustomer);
  EXPECT_EQ(rels.relationship(AsNumber(20), AsNumber(10)), RelKind::kProvider);
}

// Full-pipeline accuracy properties over seeds.
class GaoAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaoAccuracy, HighAccuracyOnSyntheticInternet) {
  const auto pipe = core::run_pipeline(core::Scenario::small(GetParam()));
  const double accuracy = pipe.inferred.accuracy_against(pipe.topo.graph);
  EXPECT_GT(accuracy, 0.93) << "accuracy collapsed at seed " << GetParam();
  EXPECT_GT(pipe.inferred.edge_count(), 100u);
}

TEST_P(GaoAccuracy, VantageNeighborsNearlyAllCorrect) {
  // The paper's Table 4 finding: 94-99.5% of vantage-adjacent relationships
  // verify.  Our inference should reach that band against ground truth.
  const auto pipe = core::run_pipeline(core::Scenario::small(GetParam()));
  std::size_t ok = 0, total = 0;
  for (const auto vantage : pipe.vantage.looking_glass) {
    for (const auto& n : pipe.topo.graph.neighbors(vantage)) {
      const auto inferred = pipe.inferred.relationship(vantage, n.as);
      if (!inferred) continue;
      ++total;
      if (*inferred == n.kind) ++ok;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(total), 0.87);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaoAccuracy, ::testing::Values(42, 7, 123));

TEST(GaoInference, CliqueRecoversTier1Core) {
  const auto pipe = core::run_pipeline(core::Scenario::small(42));
  // Re-run the inference input to query the clique.
  GaoInference gao;
  pipe.sim.collector.for_each(
      [&](const bgp::Prefix&, std::span<const bgp::Route> routes) {
        for (const auto& route : routes) gao.add_path(route.path);
      });
  const auto clique = gao.top_clique();
  // Every clique member must be a true Tier-1.
  for (const auto as : clique) {
    EXPECT_EQ(pipe.topo.tier_of(as), topo::Tier::kTier1)
        << util::to_string(as) << " wrongly in the inferred core";
  }
  EXPECT_GE(clique.size(), pipe.topo.tier1.size() / 2);
}

TEST(GaoInference, AblationPeerDetectionMatters) {
  const auto scenario = core::Scenario::small(42);
  const auto topo = topo::generate_topology(scenario.topo_params);
  const auto plan = topo::allocate_prefixes(topo, scenario.alloc_params);
  const auto gen = sim::generate_policies(topo, plan, scenario.policy_params);
  const auto originations = sim::all_originations(plan, gen);
  sim::VantageSpec spec;
  for (const auto as : topo.tier1) spec.collector_peers.push_back(as);
  for (std::size_t i = 0; i < 8 && i < topo.tier2.size(); ++i) {
    spec.collector_peers.push_back(topo.tier2[i]);
  }
  const auto sim = sim::run_simulation(topo.graph, gen.policies, originations,
                                       spec);
  GaoInference gao;
  sim.collector.for_each(
      [&](const bgp::Prefix&, std::span<const bgp::Route> routes) {
        for (const auto& route : routes) gao.add_path(route.path);
      });

  GaoParams with;
  GaoParams without;
  without.detect_peers = false;
  without.detect_clique = false;
  const double acc_with = gao.infer(with).accuracy_against(topo.graph);
  const double acc_without = gao.infer(without).accuracy_against(topo.graph);
  EXPECT_GT(acc_with, acc_without)
      << "peer/clique refinement should improve accuracy";
}

}  // namespace
}  // namespace bgpolicy::asrel
