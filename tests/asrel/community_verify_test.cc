#include "asrel/community_verify.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::asrel {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

// Builds a looking-glass table for vantage AS 500 in the style of the
// Appendix: a provider announcing a full table, two peers announcing
// mid-sized tables, customers announcing 1-2 prefixes, each tagged per a
// Table 11-like scheme (peer 1000, provider 2000, customer 4000).
bgp::BgpTable make_tagged_table() {
  bgp::BgpTable table{AsNumber(500)};
  const auto add = [&](std::uint32_t index, AsNumber neighbor,
                       std::uint16_t tag) {
    bgp::Route route = make_route(Prefix(0x0A000000 + (index << 8), 24),
                                  {neighbor, AsNumber(9000 + index)});
    route.add_community(bgp::Community(500, tag));
    table.add(route);
  };
  std::uint32_t index = 0;
  // Provider 600: 200 prefixes tagged 2000.
  for (int i = 0; i < 200; ++i) add(index++, AsNumber(600), 2000);
  // Peers 601, 602: 60 and 40 prefixes tagged 1000/1010.
  for (int i = 0; i < 60; ++i) add(index++, AsNumber(601), 1000);
  for (int i = 0; i < 40; ++i) add(index++, AsNumber(602), 1010);
  // Customers 603-605: 1-2 prefixes tagged 4000.
  add(index++, AsNumber(603), 4000);
  add(index++, AsNumber(604), 4000);
  add(index++, AsNumber(605), 4000);
  add(index++, AsNumber(605), 4000);
  return table;
}

InferredRelationships matching_inference() {
  InferredRelationships rels;
  rels.set(AsNumber(500), AsNumber(600), EdgeType::kHiProviderOfLo);  // 600 provider
  rels.set(AsNumber(500), AsNumber(601), EdgeType::kPeer);
  rels.set(AsNumber(500), AsNumber(602), EdgeType::kPeer);
  rels.set(AsNumber(500), AsNumber(603), EdgeType::kLoProviderOfHi);
  rels.set(AsNumber(500), AsNumber(604), EdgeType::kLoProviderOfHi);
  rels.set(AsNumber(500), AsNumber(605), EdgeType::kLoProviderOfHi);
  return rels;
}

TEST(CommunityVerify, PublishedSemanticsVerifyEverything) {
  const auto table = make_tagged_table();
  const auto inferred = matching_inference();
  std::unordered_map<std::uint16_t, RelKind> semantics{
      {1000, RelKind::kPeer},     {1010, RelKind::kPeer},
      {2000, RelKind::kProvider}, {4000, RelKind::kCustomer}};
  CommunityVerifyParams params;
  params.has_providers = true;
  const auto result =
      verify_with_communities(table, semantics, inferred, params);
  EXPECT_EQ(result.neighbor_count, 6u);
  EXPECT_EQ(result.comparable, 6u);
  EXPECT_EQ(result.agree, 6u);
  EXPECT_DOUBLE_EQ(result.percent_verified, 100.0);
}

TEST(CommunityVerify, GapHeuristicRecoversSemantics) {
  const auto table = make_tagged_table();
  const auto inferred = matching_inference();
  CommunityVerifyParams params;
  params.has_providers = true;
  const auto result =
      verify_with_communities(table, std::nullopt, inferred, params);
  EXPECT_EQ(result.comparable, 6u);
  EXPECT_EQ(result.agree, 6u) << "gap heuristic misread the value scheme";
}

TEST(CommunityVerify, DisagreementsAreCounted) {
  const auto table = make_tagged_table();
  auto inferred = matching_inference();
  // Flip one inferred relationship: peer 602 recorded as customer.
  inferred.set(AsNumber(500), AsNumber(602), EdgeType::kLoProviderOfHi);
  std::unordered_map<std::uint16_t, RelKind> semantics{
      {1000, RelKind::kPeer},     {1010, RelKind::kPeer},
      {2000, RelKind::kProvider}, {4000, RelKind::kCustomer}};
  CommunityVerifyParams params;
  params.has_providers = true;
  const auto result =
      verify_with_communities(table, semantics, inferred, params);
  EXPECT_EQ(result.comparable, 6u);
  EXPECT_EQ(result.agree, 5u);
  EXPECT_NEAR(result.percent_verified, 83.33, 0.1);
}

TEST(CommunityVerify, RankSeriesIsNonIncreasing) {
  const auto table = make_tagged_table();
  const auto result = verify_with_communities(table, std::nullopt,
                                              matching_inference(), {});
  ASSERT_EQ(result.rank_series.values.size(), 6u);
  for (std::size_t i = 1; i < result.rank_series.values.size(); ++i) {
    EXPECT_GE(result.rank_series.values[i - 1], result.rank_series.values[i]);
  }
  EXPECT_EQ(result.rank_series.values.front(), 200u);
}

TEST(CommunityVerify, UntaggedTableVerifiesNothing) {
  bgp::BgpTable table{AsNumber(500)};
  table.add(make_route(Prefix::parse("10.0.0.0/24"),
                       {AsNumber(600), AsNumber(700)}));
  const auto result = verify_with_communities(table, std::nullopt,
                                              matching_inference(), {});
  EXPECT_EQ(result.comparable, 0u);
  EXPECT_EQ(result.percent_verified, 0.0);
}

// End-to-end: the paper's Table 4 shape — most vantage relationships verify.
class PipelineVerification : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PipelineVerification, VerifiesMostNeighbors) {
  const auto& pipe = shared_pipeline();
  const AsNumber vantage{GetParam()};
  if (!pipe.sim.looking_glass.contains(vantage)) GTEST_SKIP();
  const auto result = pipe.community_verification(vantage);
  ASSERT_GT(result.comparable, 0u);
  EXPECT_GT(result.percent_verified, 85.0)
      << util::to_string(vantage) << " verified too little";
}

INSTANTIATE_TEST_SUITE_P(Vantages, PipelineVerification,
                         ::testing::Values(1, 3549, 7018, 5511, 12859));

}  // namespace
}  // namespace bgpolicy::asrel
