// The wire-protocol contract (ISSUE 8): frames round-trip byte-purely
// through encode/decode, the incremental FrameReader reassembles frames
// from arbitrarily dribbled reads, truncation is always kNeedMore (never a
// wrong frame), and every flavor of damaged input — foreign magic, future
// version, implausible length, bit corruption — is kMalformed.  A
// deterministic mutation fuzz (util::Rng) pins the decoder's no-crash,
// no-misparse behavior over hundreds of corrupted frames.
#include "serve/frame.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace bgpolicy::serve {
namespace {

Frame make_frame(std::uint16_t kind, std::uint64_t id,
                 std::vector<std::uint8_t> payload) {
  Frame frame;
  frame.kind = kind;
  frame.request_id = id;
  frame.payload = std::move(payload);
  return frame;
}

TEST(FrameCodec, RoundTripsEmptyAndNonEmptyPayloads) {
  for (const Frame& frame :
       {make_frame(1, 0, {}), make_frame(0x8002, 77, {1, 2, 3}),
        make_frame(6, ~0ULL, std::vector<std::uint8_t>(1000, 0xAB))}) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    ASSERT_EQ(bytes.size(), kFrameHeaderBytes + frame.payload.size());
    const DecodeResult result = decode_frame(bytes);
    ASSERT_EQ(result.status, DecodeStatus::kFrame);
    EXPECT_EQ(result.consumed, bytes.size());
    EXPECT_EQ(result.frame, frame);
  }
}

TEST(FrameCodec, EncodeIsAppendable) {
  const Frame a = make_frame(2, 1, {9, 9});
  const Frame b = make_frame(3, 2, {7});
  std::vector<std::uint8_t> stream;
  append_frame(stream, a);
  append_frame(stream, b);

  const DecodeResult first = decode_frame(stream);
  ASSERT_EQ(first.status, DecodeStatus::kFrame);
  EXPECT_EQ(first.frame, a);
  const DecodeResult second = decode_frame(
      std::span<const std::uint8_t>(stream).subspan(first.consumed));
  ASSERT_EQ(second.status, DecodeStatus::kFrame);
  EXPECT_EQ(second.frame, b);
}

TEST(FrameCodec, EveryTruncationIsNeedMoreNeverAFrame) {
  const std::vector<std::uint8_t> bytes =
      encode_frame(make_frame(4, 42, {1, 2, 3, 4, 5}));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const DecodeResult result =
        decode_frame(std::span<const std::uint8_t>(bytes.data(), len));
    EXPECT_EQ(result.status, DecodeStatus::kNeedMore)
        << "prefix of " << len << " bytes";
  }
}

TEST(FrameCodec, ForeignMagicIsMalformedImmediately) {
  // A peer speaking another protocol (say HTTP) must be rejected from the
  // very first divergent byte, not buffered until a length is plausible.
  const std::vector<std::uint8_t> http = {'G', 'E', 'T', ' ', '/'};
  EXPECT_EQ(decode_frame(http).status, DecodeStatus::kMalformed);
  // The first byte alone already differs from 'B'.
  EXPECT_EQ(decode_frame(std::span<const std::uint8_t>(http.data(), 1)).status,
            DecodeStatus::kMalformed);
}

TEST(FrameCodec, FutureVersionIsMalformed) {
  std::vector<std::uint8_t> bytes = encode_frame(make_frame(1, 1, {1}));
  bytes[4] = 0xFF;  // version low byte
  const DecodeResult result = decode_frame(bytes);
  EXPECT_EQ(result.status, DecodeStatus::kMalformed);
  EXPECT_NE(result.error.find("version"), std::string::npos);
}

TEST(FrameCodec, OversizedLengthIsMalformedNotBuffered) {
  std::vector<std::uint8_t> bytes = encode_frame(make_frame(1, 1, {}));
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::kMalformed);
}

TEST(FrameCodec, PayloadCorruptionFailsChecksum) {
  std::vector<std::uint8_t> bytes =
      encode_frame(make_frame(1, 1, {10, 20, 30}));
  bytes[kFrameHeaderBytes + 1] ^= 0x01;  // flip one payload bit
  const DecodeResult result = decode_frame(bytes);
  EXPECT_EQ(result.status, DecodeStatus::kMalformed);
  EXPECT_NE(result.error.find("checksum"), std::string::npos);
}

TEST(FrameReader, ReassemblesFramesFromDribbledBytes) {
  std::vector<std::uint8_t> stream;
  std::vector<Frame> sent;
  for (std::uint64_t i = 0; i < 5; ++i) {
    sent.push_back(make_frame(static_cast<std::uint16_t>(i + 1), i,
                              std::vector<std::uint8_t>(i * 7, 0x5A)));
    append_frame(stream, sent.back());
  }

  // Feed one byte at a time: the cruelest read pattern a socket can
  // produce.
  FrameReader reader;
  std::vector<Frame> received;
  for (const std::uint8_t byte : stream) {
    reader.feed({&byte, 1});
    while (std::optional<Frame> frame = reader.next()) {
      received.push_back(std::move(*frame));
    }
  }
  EXPECT_FALSE(reader.malformed());
  EXPECT_EQ(reader.buffered(), 0u);
  EXPECT_EQ(received, sent);
}

TEST(FrameReader, MalformedLatchesAndStopsYielding) {
  std::vector<std::uint8_t> stream;
  append_frame(stream, make_frame(1, 1, {1}));
  std::vector<std::uint8_t> bad = encode_frame(make_frame(2, 2, {2}));
  bad[kFrameHeaderBytes] ^= 0xFF;  // corrupt payload of the second frame
  stream.insert(stream.end(), bad.begin(), bad.end());
  append_frame(stream, make_frame(3, 3, {3}));  // never reachable

  FrameReader reader;
  reader.feed(stream);
  const std::optional<Frame> first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->kind, 1);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.malformed());
  EXPECT_FALSE(reader.error().empty());
  // Latched: even fresh valid bytes yield nothing.
  reader.feed(encode_frame(make_frame(4, 4, {})));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameReader, DeterministicMutationFuzzNeverCrashesOrMisparses) {
  // 400 rounds: corrupt 1-4 bytes of a valid two-frame stream at random
  // positions and drive a FrameReader over it in random-sized chunks.  The
  // reader must never crash and never yield a frame that differs from an
  // uncorrupted one while reporting a clean stream.
  util::Rng rng(0xF00DF00DULL);
  const Frame first = make_frame(2, 7, {1, 2, 3, 4, 5, 6, 7, 8});
  const Frame second = make_frame(5, 8, std::vector<std::uint8_t>(64, 0xC3));
  std::vector<std::uint8_t> clean;
  append_frame(clean, first);
  append_frame(clean, second);

  for (int round = 0; round < 400; ++round) {
    std::vector<std::uint8_t> stream = clean;
    const std::size_t flips = 1 + rng.index(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.index(stream.size());
      stream[pos] ^= static_cast<std::uint8_t>(1 + rng.index(255));
    }

    FrameReader reader;
    std::size_t offset = 0;
    std::vector<Frame> yielded;
    while (offset < stream.size() && !reader.malformed()) {
      const std::size_t chunk =
          std::min(stream.size() - offset, 1 + rng.index(40));
      reader.feed({stream.data() + offset, chunk});
      offset += chunk;
      while (std::optional<Frame> frame = reader.next()) {
        yielded.push_back(std::move(*frame));
      }
    }
    // Whatever survived decoding must be byte-identical to a clean frame:
    // a mutation either leaves a frame untouched or kills the stream, it
    // never yields an altered frame (the checksum's job).
    for (const Frame& frame : yielded) {
      EXPECT_TRUE(frame == first || frame == second)
          << "round " << round << " yielded a corrupted frame";
    }
    ASSERT_LE(yielded.size(), 2u) << "round " << round;
  }
}

}  // namespace
}  // namespace bgpolicy::serve
