// The query engine's determinism contract (ISSUE 8): every query kind's
// response is a pure function of (request, snapshot artifacts), so
// snapshots built at different worker-thread counts answer every query
// with byte-identical payloads — the library half of the acceptance
// criterion that daemon results match direct library calls at any
// --threads value.  Also pins the error paths: unknown vantages,
// unindexed prefixes, and trailing request bytes become kError responses,
// never throws.
#include "serve/query.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bgp/decision.h"
#include "bgp/prefix.h"
#include "bgp/route.h"
#include "core/scenario.h"
#include "serve/snapshot.h"
#include "sim/propagation.h"
#include "util/ids.h"

namespace bgpolicy::serve {
namespace {

using util::AsNumber;

/// Snapshots of one scenario built at 1 and 3 worker threads (static:
/// built once for the whole suite).
const Snapshot& snapshot_t1() {
  static const std::shared_ptr<Snapshot> snapshot = [] {
    core::Scenario scenario = core::Scenario::small(7);
    scenario.propagation.threads = 1;
    return build_snapshot(scenario);
  }();
  return *snapshot;
}

const Snapshot& snapshot_t3() {
  static const std::shared_ptr<Snapshot> snapshot = [] {
    core::Scenario scenario = core::Scenario::small(7);
    scenario.propagation.threads = 3;
    return build_snapshot(scenario);
  }();
  return *snapshot;
}

std::vector<std::uint8_t> ok_answer(QueryKind kind,
                                    const std::vector<std::uint8_t>& request,
                                    const Snapshot& snapshot) {
  const std::vector<std::uint8_t> payload = answer(kind, request, snapshot);
  const auto view = split_response(payload);
  EXPECT_TRUE(view.has_value());
  EXPECT_EQ(view->status, QueryStatus::kOk)
      << to_string(kind) << ": " << decode_error(view->body);
  return payload;
}

TEST(QueryEngine, SnapshotsBuiltAtAnyThreadCountAnswerIdentically) {
  const Snapshot& a = snapshot_t1();
  const Snapshot& b = snapshot_t3();
  ASSERT_EQ(a.analyses_digest, b.analyses_digest)
      << "artifact determinism broken upstream of the query engine";

  // Every kind, across every vantage the analyses cover plus a few
  // prefixes, byte-compared between the two snapshots.
  std::size_t compared = 0;
  for (const core::VantageAnalysis& vantage : a.analyses.vantages) {
    const std::vector<std::uint8_t> as_request =
        encode_as_request(vantage.vantage);
    for (const QueryKind kind :
         {QueryKind::kSaPrevalence, QueryKind::kCauses}) {
      EXPECT_EQ(ok_answer(kind, as_request, a), ok_answer(kind, as_request, b))
          << to_string(kind) << " for AS " << vantage.vantage.value();
      ++compared;
    }
    if (vantage.looking_glass) {
      EXPECT_EQ(ok_answer(QueryKind::kPathAvailability, as_request, a),
                ok_answer(QueryKind::kPathAvailability, as_request, b));
      ++compared;
    }
  }
  const core::PathIndex& paths = a.observations.paths;
  ASSERT_GT(paths.path_count(), 0u);
  for (std::size_t i = 0; i < paths.path_count();
       i += std::max<std::size_t>(1, paths.path_count() / 16)) {
    const std::vector<std::uint8_t> request =
        encode_prefix_request(paths.prefix_at(i));
    EXPECT_EQ(ok_answer(QueryKind::kHoming, request, a),
              ok_answer(QueryKind::kHoming, request, b));
    ++compared;
  }
  EXPECT_GT(compared, 4u) << "the comparison loop covered almost nothing";
}

TEST(QueryEngine, ServerInfoReflectsSnapshotIdentity) {
  const Snapshot& snapshot = snapshot_t1();
  const std::vector<std::uint8_t> payload =
      ok_answer(QueryKind::kServerInfo, encode_server_info_request(),
                snapshot);
  const auto view = split_response(payload);
  ASSERT_TRUE(view.has_value());
  const auto info = decode_server_info(view->body);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->scenario_name, snapshot.scenario_name);
  EXPECT_EQ(info->scenario_key, snapshot.scenario_key);
  EXPECT_EQ(info->analyses_digest, snapshot.analyses_digest);
  EXPECT_EQ(info->vantage_count, snapshot.analyses.vantages.size());
  EXPECT_EQ(info->observed_paths, snapshot.observations.paths.path_count());
  EXPECT_GT(info->inferred_edges, 0u);
}

TEST(QueryEngine, RerunInferMatchesAcrossSnapshotsAndParams) {
  // What-if re-inference: identical params produce identical bytes on both
  // snapshots; changed params produce a *different* answer (the query
  // actually re-runs inference rather than echoing the snapshot).
  asrel::GaoParams params;
  const std::vector<std::uint8_t> request = encode_infer_request(params);
  const std::vector<std::uint8_t> baseline =
      ok_answer(QueryKind::kRerunInfer, request, snapshot_t1());
  EXPECT_EQ(baseline,
            ok_answer(QueryKind::kRerunInfer, request, snapshot_t3()));

  asrel::GaoParams no_peers = params;
  no_peers.detect_peers = false;
  EXPECT_NE(baseline,
            ok_answer(QueryKind::kRerunInfer,
                      encode_infer_request(no_peers), snapshot_t1()));
}

TEST(QueryEngine, UnknownVantageIsAnErrorResponseNotAThrow) {
  const std::vector<std::uint8_t> request =
      encode_as_request(AsNumber(999'999'999));
  for (const QueryKind kind :
       {QueryKind::kSaPrevalence, QueryKind::kCauses,
        QueryKind::kPathAvailability}) {
    const std::vector<std::uint8_t> payload =
        answer(kind, request, snapshot_t1());
    const auto view = split_response(payload);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->status, QueryStatus::kError) << to_string(kind);
    EXPECT_FALSE(decode_error(view->body).empty());
  }
}

TEST(QueryEngine, UnindexedPrefixIsAnErrorResponse) {
  const std::vector<std::uint8_t> request =
      encode_prefix_request(bgp::Prefix(0x0A0A0A00, 31));
  const auto view =
      split_response(answer(QueryKind::kHoming, request, snapshot_t1()));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->status, QueryStatus::kError);
}

TEST(QueryEngine, MalformedRequestPayloadIsAnErrorResponse) {
  const Snapshot& snapshot = snapshot_t1();
  // Trailing bytes, truncated payloads, and payloads for the wrong kind
  // all land in kError (the engine's no-throw guarantee toward the loop).
  const std::vector<std::uint8_t> trailing = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::uint8_t> truncated = {1};
  for (const QueryKind kind :
       {QueryKind::kServerInfo, QueryKind::kSaPrevalence, QueryKind::kHoming,
        QueryKind::kCauses, QueryKind::kPathAvailability,
        QueryKind::kRerunInfer, QueryKind::kWhatIfFailure}) {
    for (const auto* request : {&trailing, &truncated}) {
      const auto view = split_response(answer(kind, *request, snapshot));
      ASSERT_TRUE(view.has_value());
      EXPECT_EQ(view->status, QueryStatus::kError)
          << to_string(kind) << " with " << request->size()
          << " request bytes";
    }
  }
}

TEST(QueryEngine, KnownKindCoversExactlyTheDispatchableKinds) {
  EXPECT_FALSE(known_kind(0));
  for (std::uint16_t kind = 1; kind <= 7; ++kind) {
    EXPECT_TRUE(known_kind(kind)) << kind;
  }
  EXPECT_FALSE(known_kind(8));
  EXPECT_FALSE(known_kind(static_cast<std::uint16_t>(1 | kResponseBit)));
}

// ------------------------------------------------------- what-if failure --

/// A deterministic (vantage, failed edge, prefix) probe: the first
/// origination's prefix, the session between its origin and that origin's
/// first neighbor, observed from the first analysis vantage.
struct WhatIfProbe {
  AsNumber vantage;
  std::pair<AsNumber, AsNumber> edge;
  bgp::Prefix prefix;
};

WhatIfProbe make_probe(const Snapshot& snapshot) {
  const core::GroundTruth& truth = *snapshot.truth;
  const sim::Origination& origination = truth.originations.front();
  const auto& neighbors = truth.topo.graph.neighbors(origination.origin);
  WhatIfProbe probe{snapshot.analyses.vantages.front().vantage,
                    {origination.origin, neighbors.front().as},
                    origination.prefix};
  return probe;
}

TEST(QueryEngine, WhatIfFailureIsDeterministicAcrossSnapshots) {
  const Snapshot& a = snapshot_t1();
  const Snapshot& b = snapshot_t3();
  ASSERT_NE(a.what_if, nullptr);
  ASSERT_NE(b.what_if, nullptr);
  const WhatIfProbe probe = make_probe(a);
  const std::vector<std::pair<AsNumber, AsNumber>> edges = {probe.edge};

  // All originated prefixes (empty filter): both snapshots, byte-equal.
  const std::vector<std::uint8_t> request =
      encode_what_if_request(probe.vantage, edges);
  const std::vector<std::uint8_t> payload_a =
      ok_answer(QueryKind::kWhatIfFailure, request, a);
  EXPECT_EQ(payload_a, ok_answer(QueryKind::kWhatIfFailure, request, b));
  // Asking twice must not drift (the base-state cache warms on the first
  // call; branches must never leak back into it).
  EXPECT_EQ(payload_a, ok_answer(QueryKind::kWhatIfFailure, request, a));

  const auto view = split_response(payload_a);
  ASSERT_TRUE(view.has_value());
  const auto result = decode_what_if(view->body);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->vantage, probe.vantage.value());
  EXPECT_EQ(result->edge_count, 1u);
  EXPECT_FALSE(result->entries.empty());
  EXPECT_LE(result->reachable_after, result->entries.size());
}

TEST(QueryEngine, WhatIfFailureMatchesColdRecomputation) {
  const Snapshot& snapshot = snapshot_t1();
  ASSERT_NE(snapshot.what_if, nullptr);
  const core::GroundTruth& truth = *snapshot.truth;
  const WhatIfProbe probe = make_probe(snapshot);
  const std::vector<std::pair<AsNumber, AsNumber>> edges = {probe.edge};
  const std::vector<bgp::Prefix> filter = {probe.prefix};

  const std::vector<std::uint8_t> payload =
      ok_answer(QueryKind::kWhatIfFailure,
                encode_what_if_request(probe.vantage, edges, filter), snapshot);
  const auto view = split_response(payload);
  ASSERT_TRUE(view.has_value());
  const auto result = decode_what_if(view->body);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->entries.size(), 1u);
  const WhatIfEntry& entry = result->entries.front();
  EXPECT_EQ(entry.prefix, probe.prefix);

  // Cold ground truth of both worlds, MOAS-merged the same way.
  const auto cold_best = [&](const sim::FailedEdges* failed)
      -> std::optional<bgp::Route> {
    std::vector<bgp::Route> candidates;
    for (const sim::Origination& o : truth.originations) {
      if (o.prefix != probe.prefix) continue;
      const sim::PrefixRouting routing = sim::compute_prefix(
          truth.topo.graph, truth.gen.policies, o, failed);
      if (const bgp::Route* route = routing.best_at(probe.vantage)) {
        candidates.push_back(*route);
      }
    }
    if (candidates.empty()) return std::nullopt;
    return candidates[bgp::select_best(candidates).value_or(0)];
  };
  sim::FailedEdges failed;
  failed.fail(probe.edge.first, probe.edge.second);
  const std::optional<bgp::Route> before = cold_best(nullptr);
  const std::optional<bgp::Route> after = cold_best(&failed);

  EXPECT_EQ(entry.before.reachable, before.has_value());
  EXPECT_EQ(entry.after.reachable, after.has_value());
  if (before.has_value()) {
    EXPECT_EQ(entry.before.via,
              before->next_hop_as().value_or(before->learned_from).value());
    EXPECT_EQ(entry.before.origin, before->origin_as().value());
    EXPECT_EQ(entry.before.path_length, before->path.length());
  }
  if (after.has_value()) {
    EXPECT_EQ(entry.after.via,
              after->next_hop_as().value_or(after->learned_from).value());
    EXPECT_EQ(entry.after.origin, after->origin_as().value());
    EXPECT_EQ(entry.after.path_length, after->path.length());
  }
  EXPECT_EQ(entry.changed, before != after);
}

TEST(QueryEngine, WhatIfFailureErrorPaths) {
  const Snapshot& snapshot = snapshot_t1();
  const WhatIfProbe probe = make_probe(snapshot);
  const std::vector<std::pair<AsNumber, AsNumber>> edges = {probe.edge};

  const auto expect_error = [&](const std::vector<std::uint8_t>& request) {
    // Keep the payload alive: ResponseView::body is a span into it.
    const std::vector<std::uint8_t> payload =
        answer(QueryKind::kWhatIfFailure, request, snapshot);
    const auto view = split_response(payload);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->status, QueryStatus::kError);
    EXPECT_FALSE(decode_error(view->body).empty());
  };
  // No edges.
  expect_error(encode_what_if_request(probe.vantage, {}));
  // Unknown vantage / unknown edge endpoint.
  expect_error(encode_what_if_request(AsNumber(999'999'999), edges));
  const std::vector<std::pair<AsNumber, AsNumber>> bogus_edge = {
      {probe.vantage, AsNumber(999'999'999)}};
  expect_error(encode_what_if_request(probe.vantage, bogus_edge));
  // Prefix filter matching no origination.
  const std::vector<bgp::Prefix> bogus_prefix = {bgp::Prefix(0x0A0A0A00, 30)};
  expect_error(encode_what_if_request(probe.vantage, edges, bogus_prefix));
  // Snapshot without a substrate (a hand-built test snapshot).
  Snapshot bare;
  const std::vector<std::uint8_t> bare_payload = answer(
      QueryKind::kWhatIfFailure, encode_what_if_request(probe.vantage, edges),
      bare);
  const auto view = split_response(bare_payload);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->status, QueryStatus::kError);
}

}  // namespace
}  // namespace bgpolicy::serve
