// The query engine's determinism contract (ISSUE 8): every query kind's
// response is a pure function of (request, snapshot artifacts), so
// snapshots built at different worker-thread counts answer every query
// with byte-identical payloads — the library half of the acceptance
// criterion that daemon results match direct library calls at any
// --threads value.  Also pins the error paths: unknown vantages,
// unindexed prefixes, and trailing request bytes become kError responses,
// never throws.
#include "serve/query.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "serve/snapshot.h"
#include "util/ids.h"

namespace bgpolicy::serve {
namespace {

using util::AsNumber;

/// Snapshots of one scenario built at 1 and 3 worker threads (static:
/// built once for the whole suite).
const Snapshot& snapshot_t1() {
  static const std::shared_ptr<Snapshot> snapshot = [] {
    core::Scenario scenario = core::Scenario::small(7);
    scenario.propagation.threads = 1;
    return build_snapshot(scenario);
  }();
  return *snapshot;
}

const Snapshot& snapshot_t3() {
  static const std::shared_ptr<Snapshot> snapshot = [] {
    core::Scenario scenario = core::Scenario::small(7);
    scenario.propagation.threads = 3;
    return build_snapshot(scenario);
  }();
  return *snapshot;
}

std::vector<std::uint8_t> ok_answer(QueryKind kind,
                                    const std::vector<std::uint8_t>& request,
                                    const Snapshot& snapshot) {
  const std::vector<std::uint8_t> payload = answer(kind, request, snapshot);
  const auto view = split_response(payload);
  EXPECT_TRUE(view.has_value());
  EXPECT_EQ(view->status, QueryStatus::kOk)
      << to_string(kind) << ": " << decode_error(view->body);
  return payload;
}

TEST(QueryEngine, SnapshotsBuiltAtAnyThreadCountAnswerIdentically) {
  const Snapshot& a = snapshot_t1();
  const Snapshot& b = snapshot_t3();
  ASSERT_EQ(a.analyses_digest, b.analyses_digest)
      << "artifact determinism broken upstream of the query engine";

  // Every kind, across every vantage the analyses cover plus a few
  // prefixes, byte-compared between the two snapshots.
  std::size_t compared = 0;
  for (const core::VantageAnalysis& vantage : a.analyses.vantages) {
    const std::vector<std::uint8_t> as_request =
        encode_as_request(vantage.vantage);
    for (const QueryKind kind :
         {QueryKind::kSaPrevalence, QueryKind::kCauses}) {
      EXPECT_EQ(ok_answer(kind, as_request, a), ok_answer(kind, as_request, b))
          << to_string(kind) << " for AS " << vantage.vantage.value();
      ++compared;
    }
    if (vantage.looking_glass) {
      EXPECT_EQ(ok_answer(QueryKind::kPathAvailability, as_request, a),
                ok_answer(QueryKind::kPathAvailability, as_request, b));
      ++compared;
    }
  }
  const core::PathIndex& paths = a.observations.paths;
  ASSERT_GT(paths.path_count(), 0u);
  for (std::size_t i = 0; i < paths.path_count();
       i += std::max<std::size_t>(1, paths.path_count() / 16)) {
    const std::vector<std::uint8_t> request =
        encode_prefix_request(paths.prefix_at(i));
    EXPECT_EQ(ok_answer(QueryKind::kHoming, request, a),
              ok_answer(QueryKind::kHoming, request, b));
    ++compared;
  }
  EXPECT_GT(compared, 4u) << "the comparison loop covered almost nothing";
}

TEST(QueryEngine, ServerInfoReflectsSnapshotIdentity) {
  const Snapshot& snapshot = snapshot_t1();
  const std::vector<std::uint8_t> payload =
      ok_answer(QueryKind::kServerInfo, encode_server_info_request(),
                snapshot);
  const auto view = split_response(payload);
  ASSERT_TRUE(view.has_value());
  const auto info = decode_server_info(view->body);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->scenario_name, snapshot.scenario_name);
  EXPECT_EQ(info->scenario_key, snapshot.scenario_key);
  EXPECT_EQ(info->analyses_digest, snapshot.analyses_digest);
  EXPECT_EQ(info->vantage_count, snapshot.analyses.vantages.size());
  EXPECT_EQ(info->observed_paths, snapshot.observations.paths.path_count());
  EXPECT_GT(info->inferred_edges, 0u);
}

TEST(QueryEngine, RerunInferMatchesAcrossSnapshotsAndParams) {
  // What-if re-inference: identical params produce identical bytes on both
  // snapshots; changed params produce a *different* answer (the query
  // actually re-runs inference rather than echoing the snapshot).
  asrel::GaoParams params;
  const std::vector<std::uint8_t> request = encode_infer_request(params);
  const std::vector<std::uint8_t> baseline =
      ok_answer(QueryKind::kRerunInfer, request, snapshot_t1());
  EXPECT_EQ(baseline,
            ok_answer(QueryKind::kRerunInfer, request, snapshot_t3()));

  asrel::GaoParams no_peers = params;
  no_peers.detect_peers = false;
  EXPECT_NE(baseline,
            ok_answer(QueryKind::kRerunInfer,
                      encode_infer_request(no_peers), snapshot_t1()));
}

TEST(QueryEngine, UnknownVantageIsAnErrorResponseNotAThrow) {
  const std::vector<std::uint8_t> request =
      encode_as_request(AsNumber(999'999'999));
  for (const QueryKind kind :
       {QueryKind::kSaPrevalence, QueryKind::kCauses,
        QueryKind::kPathAvailability}) {
    const std::vector<std::uint8_t> payload =
        answer(kind, request, snapshot_t1());
    const auto view = split_response(payload);
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->status, QueryStatus::kError) << to_string(kind);
    EXPECT_FALSE(decode_error(view->body).empty());
  }
}

TEST(QueryEngine, UnindexedPrefixIsAnErrorResponse) {
  const std::vector<std::uint8_t> request =
      encode_prefix_request(bgp::Prefix(0x0A0A0A00, 31));
  const auto view =
      split_response(answer(QueryKind::kHoming, request, snapshot_t1()));
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->status, QueryStatus::kError);
}

TEST(QueryEngine, MalformedRequestPayloadIsAnErrorResponse) {
  const Snapshot& snapshot = snapshot_t1();
  // Trailing bytes, truncated payloads, and payloads for the wrong kind
  // all land in kError (the engine's no-throw guarantee toward the loop).
  const std::vector<std::uint8_t> trailing = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::uint8_t> truncated = {1};
  for (const QueryKind kind :
       {QueryKind::kServerInfo, QueryKind::kSaPrevalence, QueryKind::kHoming,
        QueryKind::kCauses, QueryKind::kPathAvailability,
        QueryKind::kRerunInfer}) {
    for (const auto* request : {&trailing, &truncated}) {
      const auto view = split_response(answer(kind, *request, snapshot));
      ASSERT_TRUE(view.has_value());
      EXPECT_EQ(view->status, QueryStatus::kError)
          << to_string(kind) << " with " << request->size()
          << " request bytes";
    }
  }
}

TEST(QueryEngine, KnownKindCoversExactlyTheDispatchableKinds) {
  EXPECT_FALSE(known_kind(0));
  for (std::uint16_t kind = 1; kind <= 6; ++kind) {
    EXPECT_TRUE(known_kind(kind)) << kind;
  }
  EXPECT_FALSE(known_kind(7));
  EXPECT_FALSE(known_kind(static_cast<std::uint16_t>(1 | kResponseBit)));
}

}  // namespace
}  // namespace bgpolicy::serve
