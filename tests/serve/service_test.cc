// End-to-end daemon behavior (ISSUE 8): a QueryService on an ephemeral
// port answers every query kind with payloads byte-identical to direct
// `serve::answer()` calls, survives malformed and hostile streams by
// closing only the offending connection, keeps concurrent clients fully
// consistent while a publisher swaps snapshots mid-flight (version
// monotonicity + digest consistency per response), respects its
// max-connections accept gate, and shuts down cleanly with all
// connections drained.
#include "serve/service.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "serve/client.h"
#include "serve/snapshot.h"

namespace bgpolicy::serve {
namespace {

std::shared_ptr<Snapshot> shared_snapshot() {
  static const std::shared_ptr<Snapshot> snapshot =
      build_snapshot(core::Scenario::small(7));
  return snapshot;
}

/// Registry pre-loaded with the shared snapshot.
class ServiceTest : public ::testing::Test {
 protected:
  void publish_copy() {
    registry_.publish(std::make_shared<Snapshot>(*shared_snapshot()));
  }

  SnapshotRegistry registry_;
};

TEST_F(ServiceTest, EveryQueryKindMatchesDirectAnswerBytes) {
  publish_copy();
  QueryService service(registry_);
  service.start();
  BlockingClient client(service.port());
  const std::shared_ptr<const Snapshot> snapshot = registry_.current();

  std::vector<std::pair<QueryKind, std::vector<std::uint8_t>>> requests;
  requests.emplace_back(QueryKind::kServerInfo,
                        encode_server_info_request());
  const core::VantageAnalysis& vantage = snapshot->analyses.vantages.front();
  requests.emplace_back(QueryKind::kSaPrevalence,
                        encode_as_request(vantage.vantage));
  requests.emplace_back(QueryKind::kCauses,
                        encode_as_request(vantage.vantage));
  requests.emplace_back(QueryKind::kPathAvailability,
                        encode_as_request(vantage.vantage));
  requests.emplace_back(
      QueryKind::kHoming,
      encode_prefix_request(snapshot->observations.paths.prefix_at(0)));
  requests.emplace_back(QueryKind::kRerunInfer,
                        encode_infer_request(asrel::GaoParams{}));

  for (const auto& [kind, request] : requests) {
    const std::optional<Frame> reply =
        client.call(static_cast<std::uint16_t>(kind), request);
    ASSERT_TRUE(reply.has_value()) << to_string(kind);
    EXPECT_EQ(reply->kind, static_cast<std::uint16_t>(kind) | kResponseBit);
    // The wire answer IS the library answer, byte for byte.
    EXPECT_EQ(reply->payload, answer(kind, request, *snapshot))
        << to_string(kind);
  }
  service.stop();
  EXPECT_EQ(service.stats().frames_out, requests.size());
}

TEST_F(ServiceTest, RequestIdsAreEchoedPerRequest) {
  publish_copy();
  QueryService service(registry_);
  service.start();
  BlockingClient client(service.port());
  // BlockingClient numbers requests 1, 2, 3...; the echo is what lets a
  // pipelining client correlate responses.
  for (std::uint64_t expected_id = 1; expected_id <= 3; ++expected_id) {
    const std::optional<Frame> reply = client.call(
        static_cast<std::uint16_t>(QueryKind::kServerInfo), {});
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->request_id, expected_id);
  }
}

TEST_F(ServiceTest, UnknownKindAndEmptyRegistryAreErrorsNotCloses) {
  QueryService service(registry_);  // nothing published yet
  service.start();
  BlockingClient client(service.port());

  const std::optional<Frame> no_snapshot = client.call(
      static_cast<std::uint16_t>(QueryKind::kServerInfo), {});
  ASSERT_TRUE(no_snapshot.has_value());
  auto view = split_response(no_snapshot->payload);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->status, QueryStatus::kError);

  publish_copy();
  const std::vector<std::uint8_t> junk_payload = {1, 2, 3};
  const std::optional<Frame> unknown = client.call(0x7777, junk_payload);
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->kind, 0x7777 | kResponseBit);
  view = split_response(unknown->payload);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->status, QueryStatus::kError);

  // The same connection still answers real queries: errors don't close.
  const std::optional<Frame> ok = client.call(
      static_cast<std::uint16_t>(QueryKind::kServerInfo), {});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(split_response(ok->payload)->status, QueryStatus::kOk);
}

TEST_F(ServiceTest, MalformedStreamClosesOnlyThatConnection) {
  publish_copy();
  QueryService service(registry_);
  service.start();

  BlockingClient victim(service.port());
  BlockingClient bystander(service.port());
  // Ensure both connections are established server-side.
  ASSERT_TRUE(bystander
                  .call(static_cast<std::uint16_t>(QueryKind::kServerInfo), {})
                  .has_value());

  const std::vector<std::uint8_t> garbage = {'G', 'E', 'T', ' ', '/', ' ',
                                             'H', 'T', 'T', 'P'};
  victim.send_raw(garbage);
  EXPECT_FALSE(victim.receive().has_value());  // server closed the victim
  EXPECT_TRUE(victim.closed());

  // The process and the bystander's connection both survive.
  const std::optional<Frame> reply = bystander.call(
      static_cast<std::uint16_t>(QueryKind::kServerInfo), {});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(split_response(reply->payload)->status, QueryStatus::kOk);

  service.stop();
  EXPECT_EQ(service.stats().malformed_closes, 1u);
}

TEST_F(ServiceTest, ConcurrentClientsStayConsistentAcrossSnapshotSwaps) {
  publish_copy();
  ServiceConfig config;
  config.threads = 2;
  QueryService service(registry_, config);
  service.start();

  // Publisher: swap snapshots continuously.  Workers: hammer server_info
  // and assert (a) every response decodes, (b) the digest always matches
  // the one true content digest (swaps are content-identical copies here,
  // so ANY digest drift is a torn read), (c) the version each worker
  // observes never decreases (registry monotonicity through the wire).
  const std::string expected_digest = shared_snapshot()->analyses_digest;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> replies{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      try {
        BlockingClient client(service.port());
        std::uint64_t last_version = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::optional<Frame> reply = client.call(
              static_cast<std::uint16_t>(QueryKind::kServerInfo), {});
          if (!reply) {
            ++failures;
            return;
          }
          const auto view = split_response(reply->payload);
          const auto info =
              view && view->status == QueryStatus::kOk
                  ? decode_server_info(view->body)
                  : std::nullopt;
          if (!info || info->analyses_digest != expected_digest ||
              info->version < last_version) {
            ++failures;
            return;
          }
          last_version = info->version;
          ++replies;
        }
      } catch (...) {
        ++failures;
      }
    });
  }

  // A fixed publish count (not a deadline): snapshot copies are slow on a
  // loaded 1-core box and the property under test is swaps-during-
  // traffic, not swap frequency.
  const std::uint64_t publishes = 20;
  for (std::uint64_t i = 0; i < publishes; ++i) {
    publish_copy();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& worker : workers) worker.join();
  service.stop();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(replies.load(), 0u);
  // Every published version <= what the registry reports.
  EXPECT_EQ(registry_.published(), publishes + 1);  // +1 initial publish
}

TEST_F(ServiceTest, AcceptGateBoundsConcurrentConnections) {
  publish_copy();
  ServiceConfig config;
  config.loop.max_connections = 2;
  QueryService service(registry_, config);
  service.start();

  // Fill both slots and verify they work.
  BlockingClient a(service.port());
  BlockingClient b(service.port());
  ASSERT_TRUE(
      a.call(static_cast<std::uint16_t>(QueryKind::kServerInfo), {}));
  ASSERT_TRUE(
      b.call(static_cast<std::uint16_t>(QueryKind::kServerInfo), {}));

  // A third connect sits in the backlog (not accepted).  After a slot
  // frees, it gets served — backpressure, not rejection.
  BlockingClient c(service.port(), std::chrono::milliseconds(3000));
  a = BlockingClient(service.port(), std::chrono::milliseconds(3000));
  // `a`'s old socket closed when reassigned, freeing a slot for c.
  ASSERT_TRUE(
      c.call(static_cast<std::uint16_t>(QueryKind::kServerInfo), {}));
  service.stop();
  EXPECT_GT(service.stats().accept_pauses, 0u);
}

TEST_F(ServiceTest, StopDrainsEverythingAndIsIdempotent) {
  publish_copy();
  QueryService service(registry_);
  service.start();
  const std::uint16_t port = service.port();
  BlockingClient client(port);
  ASSERT_TRUE(
      client.call(static_cast<std::uint16_t>(QueryKind::kServerInfo), {}));

  service.stop();
  service.stop();  // idempotent
  EXPECT_FALSE(service.running());
  EXPECT_EQ(service.stats().accepted, service.stats().closed);
  // The client observes EOF, not a hung connection.
  EXPECT_FALSE(client.receive().has_value());

  // The port is released: a new service can bind and serve again.
  ServiceConfig config;
  config.port = port;
  QueryService reborn(registry_, config);
  reborn.start();
  BlockingClient again(port);
  EXPECT_TRUE(
      again.call(static_cast<std::uint16_t>(QueryKind::kServerInfo), {})
          .has_value());
}

}  // namespace
}  // namespace bgpolicy::serve
