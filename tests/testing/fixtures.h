// Shared test fixtures: the paper's worked examples as tiny topologies.
#pragma once

#include <vector>

#include "bgp/route.h"
#include "sim/policy.h"
#include "sim/propagation.h"
#include "topology/as_graph.h"
#include "util/ids.h"

namespace bgpolicy::testing {

using util::AsNumber;

inline constexpr AsNumber kAs1{1};
inline constexpr AsNumber kAs2{2};
inline constexpr AsNumber kAs3{3};
inline constexpr AsNumber kAs4{4};
inline constexpr AsNumber kAs5{5};
inline constexpr AsNumber kAs6{6};

/// The paper's Fig. 1: AS2 is the provider of AS4; AS3 peers with AS4.
///   AS5, AS6 at the top; AS1, AS2, AS3 mid; AS4 at the bottom.
///   Edges: 5-1 p2c? (the figure: AS5 and AS6 are providers of AS1/AS2/AS3;
///   here we keep the explicitly described subset and complete the rest
///   consistently.)
inline topo::AsGraph figure1_graph() {
  topo::AsGraph g;
  for (const auto as : {kAs1, kAs2, kAs3, kAs4, kAs5, kAs6}) g.add_as(as);
  g.add_provider_customer(kAs5, kAs1);
  g.add_provider_customer(kAs5, kAs2);
  g.add_provider_customer(kAs6, kAs2);
  g.add_provider_customer(kAs6, kAs3);
  g.add_peer_peer(kAs5, kAs6);
  g.add_provider_customer(kAs2, kAs4);
  g.add_peer_peer(kAs3, kAs4);
  g.add_peer_peer(kAs1, kAs2);
  return g;
}

/// The paper's Fig. 3: customer A announces prefix p to provider C but not
/// to B; provider D (B's provider... in the figure D is a provider observing
/// p via its peer E).  Concretely:
///   A (origin, customer) has providers B and C.
///   D is B's provider; E is C's provider; D peers with E.
struct Figure3 {
  topo::AsGraph graph;
  AsNumber a{10};
  AsNumber b{20};
  AsNumber c{30};
  AsNumber d{40};
  AsNumber e{50};
};

inline Figure3 figure3_graph() {
  Figure3 f;
  for (const auto as : {f.a, f.b, f.c, f.d, f.e}) f.graph.add_as(as);
  f.graph.add_provider_customer(f.b, f.a);
  f.graph.add_provider_customer(f.c, f.a);
  f.graph.add_provider_customer(f.d, f.b);
  f.graph.add_provider_customer(f.e, f.c);
  f.graph.add_peer_peer(f.d, f.e);
  return f;
}

/// Default (everything-typical) policies for every AS in a graph.
inline sim::PolicySet typical_policies(const topo::AsGraph& graph) {
  sim::PolicySet policies;
  for (const auto as : graph.ases()) policies.by_as.emplace(as, sim::AsPolicy{});
  return policies;
}

/// Builds a route with the fields the decision process reads.
inline bgp::Route make_route(const bgp::Prefix& prefix,
                             std::vector<AsNumber> path_hops,
                             std::uint32_t local_pref = 100) {
  bgp::Route route;
  route.prefix = prefix;
  route.path = bgp::AsPath(path_hops);
  if (!path_hops.empty()) route.learned_from = path_hops.front();
  route.local_pref = local_pref;
  if (!path_hops.empty()) route.router_id = path_hops.front().value();
  return route;
}

}  // namespace bgpolicy::testing
