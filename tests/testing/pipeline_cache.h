// Caches pipeline runs per seed so the many core-analysis tests don't each
// pay for a fresh simulation.
#pragma once

#include <map>
#include <memory>

#include "core/pipeline.h"

namespace bgpolicy::testing {

/// A shared, lazily built small-scenario pipeline.  Tests must treat it as
/// immutable.
inline const core::Pipeline& shared_pipeline(std::uint64_t seed = 42) {
  static std::map<std::uint64_t, std::unique_ptr<core::Pipeline>> cache;
  auto& entry = cache[seed];
  if (!entry) {
    entry = std::make_unique<core::Pipeline>(
        core::run_pipeline(core::Scenario::small(seed)));
  }
  return *entry;
}

}  // namespace bgpolicy::testing
