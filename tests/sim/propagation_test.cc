#include "sim/propagation.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace bgpolicy::sim {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");

TEST(Propagation, OriginInstallsSelfRoute) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  const PropagationEngine engine(g, policies);
  const auto state = engine.propagate({kPrefix, kAs4});
  const bgp::Route* self = state.best_at(kAs4);
  ASSERT_NE(self, nullptr);
  EXPECT_TRUE(self->self_originated());
  EXPECT_EQ(self->local_pref, kSelfLocalPref);
}

TEST(Propagation, EveryoneReachesAStubPrefix) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  const PropagationEngine engine(g, policies);
  const auto state = engine.propagate({kPrefix, kAs4});
  EXPECT_TRUE(state.converged);
  for (const auto as : g.ases()) {
    EXPECT_NE(state.best_at(as), nullptr) << util::to_string(as);
  }
}

TEST(Propagation, PathsExcludeOwnerAndEndAtOrigin) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  const PropagationEngine engine(g, policies);
  const auto state = engine.propagate({kPrefix, kAs4});
  for (const auto as : g.ases()) {
    const bgp::Route* best = state.best_at(as);
    ASSERT_NE(best, nullptr);
    EXPECT_FALSE(best->path.contains(as));
    if (as != kAs4) {
      EXPECT_EQ(best->origin_as(), kAs4);
      EXPECT_EQ(best->learned_from, *best->path.next_hop_as());
    }
  }
}

TEST(Propagation, AllUsedPathsAreValleyFree) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  const PropagationEngine engine(g, policies);
  for (const auto origin : g.ases()) {
    const auto state = engine.propagate({kPrefix, origin});
    for (const auto as : g.ases()) {
      const bgp::Route* best = state.best_at(as);
      if (best == nullptr || best->self_originated()) continue;
      // The full path including the owner must be valley-free.
      const auto full = best->path.prepend(as);
      EXPECT_TRUE(g.is_valley_free(full.hops()))
          << util::to_string(as) << " uses " << full.to_string();
    }
  }
}

TEST(Propagation, CustomerRoutePreferredOverPeerRoute) {
  // AS5 can reach AS4 via customer AS2 (two hops) or learn nothing better;
  // give AS5 an alternative: AS6 peers with AS5 and also reaches AS4 via
  // AS2?  Use Fig. 1: AS5's route must come through customer AS2, never the
  // peer AS6 (AS6's route to AS4 is via its customer AS3's peer edge —
  // which AS3 won't export upward).
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  const PropagationEngine engine(g, policies);
  const auto state = engine.propagate({kPrefix, kAs4});
  const bgp::Route* at5 = state.best_at(kAs5);
  ASSERT_NE(at5, nullptr);
  EXPECT_EQ(at5->learned_from, kAs2);
}

TEST(Propagation, PeerRouteNotExportedToPeerOrProvider) {
  // AS3 learns AS4's prefix over the AS3-AS4 peer edge.  The export rules
  // (Section 2.2.2) forbid announcing a peer-learned route to AS3's
  // provider AS6.  AS6 instead hears the prefix from its customer AS2
  // (which holds a customer route to AS4 and may export it anywhere).
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  const PropagationEngine engine(g, policies);
  const auto state = engine.propagate({kPrefix, kAs4});
  const bgp::Route* at6 = state.best_at(kAs6);
  ASSERT_NE(at6, nullptr);
  EXPECT_NE(at6->learned_from, kAs3)
      << "AS3 exported a peer-learned route to its provider";
  EXPECT_EQ(at6->learned_from, kAs2) << "the customer route must win";
}

TEST(Propagation, SelectiveAnnouncementCreatesPeerOnlyVisibility) {
  // The paper's Fig. 3: A announces p to provider C but not to B.
  // D (B's provider) must then see p via its peer E, not via a customer.
  auto f = figure3_graph();
  auto policies = typical_policies(f.graph);
  ExportRule rule;
  rule.prefix = kPrefix;
  rule.action = ExportAction::kDeny;
  policies.at_mut(f.a).export_.add_rule_for(f.b, rule);

  const PropagationEngine engine(f.graph, policies);
  const auto state = engine.propagate({kPrefix, f.a});

  const bgp::Route* at_b = state.best_at(f.b);
  ASSERT_NE(at_b, nullptr);  // B still hears p from its provider D
  EXPECT_EQ(at_b->learned_from, f.d);

  const bgp::Route* at_d = state.best_at(f.d);
  ASSERT_NE(at_d, nullptr);
  EXPECT_EQ(at_d->learned_from, f.e) << "D must see p only via its peer E";

  const bgp::Route* at_c = state.best_at(f.c);
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->learned_from, f.a) << "C keeps the direct customer route";
}

TEST(Propagation, NoExportUpstreamCommunityCapsPropagation) {
  // Fig. 3 variant of Case 3: A announces p to B but tags it so B must not
  // propagate it to B's providers.  B keeps a customer route; D sees the
  // prefix only via its peer E.
  auto f = figure3_graph();
  auto policies = typical_policies(f.graph);
  ExportRule rule;
  rule.prefix = kPrefix;
  rule.action = ExportAction::kTagNoExportUpstream;
  policies.at_mut(f.a).export_.add_rule_for(f.b, rule);

  const PropagationEngine engine(f.graph, policies);
  const auto state = engine.propagate({kPrefix, f.a});

  const bgp::Route* at_b = state.best_at(f.b);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->learned_from, f.a) << "B keeps the tagged customer route";

  const bgp::Route* at_d = state.best_at(f.d);
  ASSERT_NE(at_d, nullptr);
  EXPECT_EQ(at_d->learned_from, f.e)
      << "the community must stop B from exporting to D";
}

TEST(Propagation, NoExportToTargetCommunityBlocksOneAs) {
  auto f = figure3_graph();
  auto policies = typical_policies(f.graph);
  // Register D as a no-export target of B, then tag A's announcement.
  policies.at_mut(f.b).no_export_slot_for(f.d);
  ExportRule rule;
  rule.prefix = kPrefix;
  rule.action = ExportAction::kTagNoExportTo;
  rule.target = f.d;
  policies.at_mut(f.a).export_.add_rule_for(f.b, rule);

  const PropagationEngine engine(f.graph, policies);
  const auto state = engine.propagate({kPrefix, f.a});
  const bgp::Route* at_d = state.best_at(f.d);
  ASSERT_NE(at_d, nullptr);
  EXPECT_EQ(at_d->learned_from, f.e);
}

TEST(Propagation, WellKnownNoExportStopsAllPropagation) {
  auto f = figure3_graph();
  auto policies = typical_policies(f.graph);
  const PropagationEngine engine(f.graph, policies);
  // Simulate a self route carrying NO_EXPORT by checking route_as_received.
  bgp::Route self;
  self.prefix = kPrefix;
  self.learned_from = f.a;
  self.local_pref = kSelfLocalPref;
  self.add_community(bgp::kNoExport);
  const auto received =
      engine.route_as_received(f.a, &self, {kPrefix, f.a}, f.b);
  EXPECT_FALSE(received.has_value());
}

TEST(Propagation, ImportPolicySetsLocalPref) {
  auto f = figure3_graph();
  auto policies = typical_policies(f.graph);
  policies.at_mut(f.b).import.customer_pref = 111;
  const PropagationEngine engine(f.graph, policies);
  const auto state = engine.propagate({kPrefix, f.a});
  const bgp::Route* at_b = state.best_at(f.b);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->local_pref, 111u);
}

TEST(Propagation, PerPrefixOverrideBeatsNeighborDefault) {
  auto f = figure3_graph();
  auto policies = typical_policies(f.graph);
  policies.at_mut(f.b).import.prefix_override[kPrefix] = 66;
  const PropagationEngine engine(f.graph, policies);
  const auto state = engine.propagate({kPrefix, f.a});
  ASSERT_NE(state.best_at(f.b), nullptr);
  EXPECT_EQ(state.best_at(f.b)->local_pref, 66u);
}

TEST(Propagation, CommunityTaggingOnImport) {
  auto f = figure3_graph();
  auto policies = typical_policies(f.graph);
  policies.at_mut(f.b).community.enabled = true;
  const PropagationEngine engine(f.graph, policies);
  const auto state = engine.propagate({kPrefix, f.a});
  const bgp::Route* at_b = state.best_at(f.b);
  ASSERT_NE(at_b, nullptr);
  ASSERT_FALSE(at_b->communities.empty());
  const auto decoded = policies.at(f.b).community.classify(
      at_b->communities.front(), f.b);
  EXPECT_EQ(decoded, topo::RelKind::kCustomer);
}

TEST(Propagation, UnknownOriginThrows) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  const PropagationEngine engine(g, policies);
  EXPECT_THROW(engine.propagate({kPrefix, util::AsNumber(999)}),
               std::invalid_argument);
}

TEST(Propagation, AtypicalPreferenceChangesBestRoute) {
  // Give D an atypical import policy preferring its peer E over customers;
  // with A announcing everywhere, D normally uses the customer chain via B.
  auto f = figure3_graph();
  auto policies = typical_policies(f.graph);
  const PropagationEngine typical_engine(f.graph, policies);
  const auto typical_state = typical_engine.propagate({kPrefix, f.a});
  ASSERT_NE(typical_state.best_at(f.d), nullptr);
  EXPECT_EQ(typical_state.best_at(f.d)->learned_from, f.b);

  policies.at_mut(f.d).import.neighbor_override[f.e] = 130;  // above customer
  const PropagationEngine atypical_engine(f.graph, policies);
  const auto atypical_state = atypical_engine.propagate({kPrefix, f.a});
  ASSERT_NE(atypical_state.best_at(f.d), nullptr);
  EXPECT_EQ(atypical_state.best_at(f.d)->learned_from, f.e);
  EXPECT_TRUE(atypical_state.converged);
}

}  // namespace
}  // namespace bgpolicy::sim
