#include "sim/router_partition.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace bgpolicy::sim {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;

bgp::BgpTable make_lg_table() {
  bgp::BgpTable table{kAs1};
  for (std::uint32_t i = 0; i < 64; ++i) {
    const Prefix prefix(0x0A000000 + (i << 8), 24);
    for (std::uint32_t n = 0; n < 4; ++n) {
      table.add(make_route(prefix, {util::AsNumber(100 + n)}, 100 + 10 * n));
    }
  }
  return table;
}

TEST(RouterPartition, EveryRouteLandsOnExactlyOneRouter) {
  const auto lg = make_lg_table();
  RouterPartitionParams params;
  params.router_count = 8;
  const auto views = partition_routers(lg, params);
  ASSERT_EQ(views.size(), 8u);
  std::size_t total = 0;
  for (const auto& view : views) total += view.table.route_count();
  EXPECT_EQ(total, lg.route_count());
}

TEST(RouterPartition, NeighborsStickToOneRouter) {
  const auto lg = make_lg_table();
  RouterPartitionParams params;
  params.router_count = 8;
  const auto views = partition_routers(lg, params);
  // Each neighbor AS appears in exactly one router view.
  std::unordered_map<util::AsNumber, std::size_t> owner;
  for (std::size_t r = 0; r < views.size(); ++r) {
    views[r].table.for_each(
        [&](const Prefix&, std::span<const bgp::Route> routes) {
          for (const auto& route : routes) {
            const auto [it, inserted] = owner.emplace(route.learned_from, r);
            EXPECT_EQ(it->second, r)
                << util::to_string(route.learned_from) << " split across routers";
          }
        });
  }
  EXPECT_EQ(owner.size(), 4u);
}

TEST(RouterPartition, ZeroDeviationPreservesPreferences) {
  const auto lg = make_lg_table();
  RouterPartitionParams params;
  params.router_count = 4;
  params.deviant_router_prob = 0.0;
  const auto views = partition_routers(lg, params);
  for (const auto& view : views) {
    view.table.for_each([&](const Prefix&, std::span<const bgp::Route> routes) {
      for (const auto& route : routes) {
        const std::uint32_t base =
            100 + 10 * (route.learned_from.value() - 100);
        EXPECT_EQ(route.local_pref, base);
      }
    });
  }
}

TEST(RouterPartition, DeviantRoutersChangeSomePreferences) {
  const auto lg = make_lg_table();
  RouterPartitionParams params;
  params.router_count = 4;
  params.deviant_router_prob = 1.0;
  params.max_deviation_rate = 0.5;
  const auto views = partition_routers(lg, params);
  std::size_t deviations = 0;
  for (const auto& view : views) {
    view.table.for_each([&](const Prefix&, std::span<const bgp::Route> routes) {
      for (const auto& route : routes) {
        const std::uint32_t base =
            100 + 10 * (route.learned_from.value() - 100);
        if (route.local_pref != base) ++deviations;
      }
    });
  }
  EXPECT_GT(deviations, 0u);
}

TEST(RouterPartition, DeterministicAcrossCalls) {
  const auto lg = make_lg_table();
  RouterPartitionParams params;
  params.router_count = 6;
  const auto a = partition_routers(lg, params);
  const auto b = partition_routers(lg, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].table.route_count(), b[r].table.route_count());
  }
}

TEST(RouterPartition, EmptyRouterCountYieldsNoViews) {
  const auto lg = make_lg_table();
  RouterPartitionParams params;
  params.router_count = 0;
  EXPECT_TRUE(partition_routers(lg, params).empty());
}

}  // namespace
}  // namespace bgpolicy::sim
