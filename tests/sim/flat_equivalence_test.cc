// The flat engine's golden contract: `compute_prefix` (dense-id/interned
// flat core) is byte-identical to `compute_prefix_reference` (the seed
// per-event program, kept verbatim as the executable spec) for every
// input — worked-example figures, generated scenarios, failure sets — and
// whole-simulation artifacts digest identically at every thread count.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/artifact_store.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "io/artifact_codec.h"
#include "sim/flat_engine.h"
#include "sim/propagation.h"
#include "sim/simulation.h"
#include "testing/fixtures.h"

namespace bgpolicy::sim {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");

void expect_routing_equal(const PrefixRouting& flat,
                          const PrefixRouting& reference) {
  EXPECT_EQ(flat.origination, reference.origination);
  EXPECT_EQ(flat.converged, reference.converged);
  EXPECT_EQ(flat.process_events, reference.process_events);
  ASSERT_EQ(flat.best.size(), reference.best.size());
  for (const auto& [as, route] : reference.best) {
    const bgp::Route* got = flat.best_at(as);
    ASSERT_NE(got, nullptr) << "flat dropped AS " << util::to_string(as);
    EXPECT_EQ(*got, route) << "route differs at AS " << util::to_string(as);
  }
}

void expect_equivalent(const topo::AsGraph& graph, const PolicySet& policies,
                       const Origination& origination,
                       const FailedEdges* failed) {
  const auto flat = compute_prefix(graph, policies, origination, failed);
  const auto reference =
      compute_prefix_reference(graph, policies, origination, failed);
  expect_routing_equal(flat, reference);
}

TEST(FlatEquivalence, Figure1AllOrigins) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  for (const auto origin : g.ases()) {
    expect_equivalent(g, policies, {kPrefix, origin}, nullptr);
  }
}

TEST(FlatEquivalence, Figure3WithTrafficEngineering) {
  const auto f = figure3_graph();
  auto policies = typical_policies(f.graph);

  // Selective announcement: A withholds from B.
  ExportRule deny;
  deny.prefix = kPrefix;
  deny.action = ExportAction::kDeny;
  policies.at_mut(f.a).export_.add_rule_for(f.b, deny);

  // Prepending toward C deprioritizes the other path.
  ExportRule prepend;
  prepend.action = ExportAction::kPrepend;
  prepend.prepend_times = 3;
  policies.at_mut(f.b).export_.add_rule_for(f.d, prepend);

  // Community-driven scoping exercised through both tag actions.
  ExportRule tag_up;
  tag_up.prefix = kPrefix;
  tag_up.action = ExportAction::kTagNoExportUpstream;
  policies.at_mut(f.c).export_.add_rule_for(f.e, tag_up);
  policies.at_mut(f.e).no_export_slot_for(f.d);
  ExportRule tag_to;
  tag_to.action = ExportAction::kTagNoExportTo;
  tag_to.target = f.d;
  policies.at_mut(f.c).export_.add_rule_for(f.e, tag_to);

  // Relationship-tagging communities at one vantage.
  policies.at_mut(f.d).community.enabled = true;

  for (const auto origin : f.graph.ases()) {
    expect_equivalent(f.graph, policies, {kPrefix, origin}, nullptr);
  }
}

TEST(FlatEquivalence, FailureSetsIncludingConditionalAdvertisement) {
  const auto f = figure3_graph();
  auto policies = typical_policies(f.graph);
  // A advertises to C only while the A-B session is down.
  policies.at_mut(f.a).conditional.push_back({kPrefix, f.c, f.b});

  const std::vector<std::pair<AsNumber, AsNumber>> edges = {
      {f.a, f.b}, {f.a, f.c}, {f.b, f.d}, {f.c, f.e}, {f.d, f.e}};
  // Healthy, every single failure, and one double failure.
  expect_equivalent(f.graph, policies, {kPrefix, f.a}, nullptr);
  for (const auto& [x, y] : edges) {
    FailedEdges failed;
    failed.fail(x, y);
    expect_equivalent(f.graph, policies, {kPrefix, f.a}, &failed);
  }
  FailedEdges both;
  both.fail(f.a, f.b);
  both.fail(f.d, f.e);
  expect_equivalent(f.graph, policies, {kPrefix, f.a}, &both);
}

TEST(FlatEquivalence, SmallScenarioEveryOrigination) {
  const auto scenario = core::Scenario::small();
  const auto truth = core::synthesize(scenario);

  // One shared context + scratch, as production loops run it, so scratch
  // reset hygiene between prefixes is covered too.
  const FlatSimContext context(truth.topo.graph, truth.gen.policies);
  FlatScratch scratch;
  for (const auto& origination : truth.originations) {
    const auto flat = compute_prefix_flat(context, origination, nullptr,
                                          scenario.propagation, scratch);
    const auto reference = compute_prefix_reference(
        truth.topo.graph, truth.gen.policies, origination, nullptr,
        scenario.propagation);
    expect_routing_equal(flat, reference);
  }
  EXPECT_GT(scratch.peak_bytes(), 0u);
}

TEST(FlatEquivalence, Internet2002SampledOriginations) {
  const auto scenario = core::Scenario::internet2002();
  const auto truth = core::synthesize(scenario);
  ASSERT_FALSE(truth.originations.empty());

  // The reference engine is too slow for every origination here; a strided
  // sample (plus both ends) still crosses tiers, split prefixes, and the
  // community-flavored units.
  std::vector<std::size_t> picks = {0, truth.originations.size() - 1};
  for (std::size_t i = 0; i < truth.originations.size();
       i += truth.originations.size() / 16 + 1) {
    picks.push_back(i);
  }

  const FlatSimContext context(truth.topo.graph, truth.gen.policies);
  FlatScratch scratch;
  for (const std::size_t i : picks) {
    const auto& origination = truth.originations[i];
    const auto flat = compute_prefix_flat(context, origination, nullptr,
                                          scenario.propagation, scratch);
    const auto reference = compute_prefix_reference(
        truth.topo.graph, truth.gen.policies, origination, nullptr,
        scenario.propagation);
    expect_routing_equal(flat, reference);
  }
}

/// Runs the seed sequential program: reference fixpoints recorded in
/// origination order — what run_simulation(threads=1) was before the flat
/// core landed.
SimResult reference_simulation(const core::GroundTruth& truth,
                               const VantageSpec& vantage,
                               const PropagationOptions& options) {
  const PropagationEngine engine(truth.topo.graph, truth.gen.policies);
  SimResult result = init_sim_result(vantage);
  for (const auto& origination : truth.originations) {
    const PrefixRouting state = compute_prefix_reference(
        truth.topo.graph, truth.gen.policies, origination, nullptr, options);
    if (!state.converged) ++result.unconverged_prefixes;
    result.process_events += state.process_events;
    record_prefix(engine, state, vantage, result);
    ++result.origination_count;
  }
  return result;
}

TEST(FlatEquivalence, ArtifactDigestMatchesSeedAtEveryThreadCount) {
  const auto scenario = core::Scenario::small();
  const auto truth = core::synthesize(scenario);
  const auto vantage = core::derive_vantage(scenario, truth.topo);

  PropagationOptions options = scenario.propagation;
  const auto digest_of = [&](const SimResult& sim) {
    core::SimArtifact artifact;
    artifact.vantage = vantage;
    artifact.sim = sim;
    const auto bytes = io::encode(artifact);
    return core::stable_digest_hex(bytes);
  };

  const auto reference =
      digest_of(reference_simulation(truth, vantage, options));
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    options.threads = threads;
    const auto run = run_simulation(truth.topo.graph, truth.gen.policies,
                                    truth.originations, vantage, options);
    EXPECT_EQ(digest_of(run), reference) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace bgpolicy::sim
