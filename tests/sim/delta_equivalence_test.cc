// Golden equivalence of warm delta propagation vs cold recomputation
// (ISSUE 9): replaying the scenario corpus's event scripts, randomized
// fail/restore schedules, churn stepping at several thread counts, and a
// strided internet2002 sample, the delta engine's best-route maps must be
// value-identical to `compute_prefix_flat` under the same failure set at
// every timeline point.  Trajectory counters are excluded by design — see
// the determinism note in sim/delta_engine.h.
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenario.h"
#include "core/scenario_spec.h"
#include "sim/churn.h"
#include "sim/delta_engine.h"
#include "sim/flat_engine.h"
#include "sim/propagation.h"
#include "util/rng.h"

namespace bgpolicy::sim {
namespace {

using util::AsNumber;

bool sanitizer_build() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

void expect_same_best(const PrefixRouting& warm, const PrefixRouting& cold,
                      const char* label) {
  ASSERT_EQ(warm.best.size(), cold.best.size()) << label;
  for (const auto& [as, route] : cold.best) {
    const bgp::Route* got = warm.best_at(as);
    ASSERT_NE(got, nullptr)
        << label << ": warm dropped AS " << util::to_string(as);
    EXPECT_EQ(*got, route)
        << label << ": route differs at AS " << util::to_string(as);
  }
}

/// Replays an event script over a ground truth, comparing the warm
/// per-origination states against cold fixpoints at every timeline point
/// (initial world included).  Mirrors the Timeline in core/spec_verify.cc:
/// states are cold-converged on first use, re-synced with
/// Perturbation::edge_delta when the failure set drifted, and dropped on
/// withdraw.
void replay_and_compare(const core::GroundTruth& truth,
                        const std::vector<core::SpecEvent>& events,
                        const PropagationOptions& options, const char* label,
                        std::size_t max_compared_originations = 64) {
  const FlatSimContext context(truth.topo.graph, truth.gen.policies);
  const DeltaEngine engine(context, options);
  DeltaWorkspace ws;
  FlatScratch scratch;

  FailedEdges failed;
  std::vector<Origination> active = truth.originations;
  using StateKey = std::pair<std::uint64_t, std::uint32_t>;
  const auto key_of = [](const Origination& o) {
    return StateKey{(static_cast<std::uint64_t>(o.prefix.network()) << 8) |
                        o.prefix.length(),
                    o.origin.value()};
  };
  std::map<StateKey, std::unique_ptr<DeltaState>> states;

  const auto compare_point = [&](std::size_t point) {
    // Strided cap so huge origination sets stay testable; the stride still
    // crosses tiers and unit flavors.
    const std::size_t stride =
        active.size() <= max_compared_originations
            ? 1
            : active.size() / max_compared_originations + 1;
    for (std::size_t i = 0; i < active.size(); i += stride) {
      const Origination& o = active[i];
      std::unique_ptr<DeltaState>& slot = states[key_of(o)];
      if (slot == nullptr) {
        slot = std::make_unique<DeltaState>();
        engine.converge(o, &failed, *slot, ws);
      } else {
        const Perturbation delta =
            Perturbation::edge_delta(slot->failed(), failed);
        if (!delta.empty()) engine.apply(*slot, delta, ws);
      }
      const PrefixRouting cold =
          compute_prefix_flat(context, o, &failed, options, scratch);
      expect_same_best(
          engine.materialize(*slot), cold,
          (std::string(label) + " point " + std::to_string(point)).c_str());
    }
  };

  compare_point(0);
  for (std::size_t k = 0; k < events.size(); ++k) {
    const core::SpecEvent& event = events[k];
    switch (event.kind) {
      case core::SpecEvent::Kind::kWithdraw:
        for (auto it = active.begin(); it != active.end();) {
          if (it->prefix == event.prefix && it->origin == AsNumber(event.as_a)) {
            states.erase(key_of(*it));
            it = active.erase(it);
          } else {
            ++it;
          }
        }
        break;
      case core::SpecEvent::Kind::kAnnounce:
        active.push_back({event.prefix, AsNumber(event.as_a)});
        break;
      case core::SpecEvent::Kind::kFailLink:
        failed.fail(AsNumber(event.as_a), AsNumber(event.as_b));
        break;
      case core::SpecEvent::Kind::kRestoreLink:
        failed.restore(AsNumber(event.as_a), AsNumber(event.as_b));
        break;
    }
    compare_point(k + 1);
  }
}

TEST(DeltaEquivalence, ScenarioCorpusEventScriptsMatchCold) {
  std::size_t specs_seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(BGPOLICY_SCENARIO_DIR)) {
    if (entry.path().extension() != ".scn") continue;
    ++specs_seen;
    const core::ScenarioSpec spec =
        core::ScenarioSpec::parse_file(entry.path());
    const core::GroundTruth truth = core::synthesize(spec.scenario);
    replay_and_compare(truth, spec.events, spec.scenario.propagation,
                       entry.path().filename().string().c_str());
  }
  EXPECT_GE(specs_seen, 6u) << "scenario corpus shrank";
}

TEST(DeltaEquivalence, RandomizedFailRestoreScheduleMatchesCold) {
  const core::Scenario scenario = core::Scenario::small(7);
  const core::GroundTruth truth = core::synthesize(scenario);
  ASSERT_FALSE(truth.topo.graph.edges().empty());

  // A synthetic event script: each step flips one random session's health.
  util::Rng rng(20260808);
  const auto edges = truth.topo.graph.edges();
  FailedEdges scripted;
  std::vector<core::SpecEvent> events;
  for (std::size_t step = 0; step < 24; ++step) {
    const auto& edge = edges[rng.index(edges.size())];
    core::SpecEvent event;
    event.kind = scripted.is_failed(edge.a, edge.b)
                     ? core::SpecEvent::Kind::kRestoreLink
                     : core::SpecEvent::Kind::kFailLink;
    event.as_a = edge.a.value();
    event.as_b = edge.b.value();
    if (event.kind == core::SpecEvent::Kind::kFailLink) {
      scripted.fail(edge.a, edge.b);
    } else {
      scripted.restore(edge.a, edge.b);
    }
    events.push_back(event);
  }

  replay_and_compare(truth, events, scenario.propagation,
                     "randomized-small(7)",
                     /*max_compared_originations=*/16);
}

TEST(DeltaEquivalence, ChurnWatchedTablesIdenticalAcrossModesAndThreads) {
  const core::Scenario scenario = core::Scenario::small(7);
  const core::GroundTruth truth = core::synthesize(scenario);
  const auto ases = truth.topo.graph.ases();
  ASSERT_GE(ases.size(), 3u);
  const std::vector<AsNumber> watch = {ases[0], ases[ases.size() / 2],
                                       ases[ases.size() - 1]};

  using Tables = std::vector<std::unordered_map<bgp::Prefix, bgp::Route>>;
  const auto run = [&](bool incremental, int threads) {
    ChurnParams params;
    params.seed = 99;
    params.flip_fraction = 0.25;
    params.incremental = incremental;
    params.propagation = scenario.propagation;
    params.propagation.threads = threads;
    ChurnSimulator churn(truth.topo.graph, truth.gen.policies,
                         truth.originations, truth.gen.truth, watch, params);
    churn.run_initial();
    std::vector<Tables> steps;
    for (int step = 0; step < 4; ++step) {
      churn.step();
      Tables tables;
      for (const AsNumber as : watch) tables.push_back(churn.watched(as));
      steps.push_back(std::move(tables));
    }
    if (incremental) {
      EXPECT_GT(churn.warm_state_count(), 0u);
    }
    return steps;
  };

  const auto cold_reference = run(/*incremental=*/false, /*threads=*/1);
  for (const int threads : {1, 2, 8}) {
    const auto warm = run(/*incremental=*/true, threads);
    ASSERT_EQ(warm.size(), cold_reference.size());
    for (std::size_t step = 0; step < warm.size(); ++step) {
      EXPECT_EQ(warm[step], cold_reference[step])
          << "incremental churn diverged from cold at step " << step
          << " with " << threads << " threads";
    }
  }
}

TEST(DeltaEquivalence, Internet2002SampledFailuresMatchCold) {
  if (sanitizer_build()) {
    GTEST_SKIP() << "internet2002 sample is too slow under sanitizers";
  }
  const core::Scenario scenario = core::Scenario::internet2002();
  const core::GroundTruth truth = core::synthesize(scenario);
  ASSERT_FALSE(truth.originations.empty());

  const FlatSimContext context(truth.topo.graph, truth.gen.policies);
  const DeltaEngine engine(context, scenario.propagation);
  DeltaWorkspace ws;
  FlatScratch scratch;

  std::vector<std::size_t> picks = {0, truth.originations.size() - 1};
  for (std::size_t i = 0; i < truth.originations.size();
       i += truth.originations.size() / 8 + 1) {
    picks.push_back(i);
  }

  for (const std::size_t i : picks) {
    const Origination& origination = truth.originations[i];
    DeltaState state;
    engine.converge(origination, nullptr, state, ws);

    // Fail the origin's first session, then restore it: both worlds must
    // match their cold counterparts.
    const AsNumber neighbor =
        truth.topo.graph.neighbors(origination.origin).front().as;
    Perturbation fail;
    fail.fail_edges.emplace_back(origination.origin, neighbor);
    engine.apply(state, fail, ws);
    FailedEdges failed;
    failed.fail(origination.origin, neighbor);
    expect_same_best(engine.materialize(state),
                     compute_prefix_flat(context, origination, &failed,
                                         scenario.propagation, scratch),
                     "internet2002 failed");

    Perturbation restore;
    restore.restore_edges.emplace_back(origination.origin, neighbor);
    engine.apply(state, restore, ws);
    expect_same_best(engine.materialize(state),
                     compute_prefix_flat(context, origination, nullptr,
                                         scenario.propagation, scratch),
                     "internet2002 restored");
  }
}

}  // namespace
}  // namespace bgpolicy::sim
