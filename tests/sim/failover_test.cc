// Failure injection and BGP conditional advertisement (paper Section
// 5.1.5, reference [18]).
#include <gtest/gtest.h>

#include "sim/propagation.h"
#include "testing/fixtures.h"

namespace bgpolicy::sim {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");

TEST(FailedEdges, SetSemantics) {
  FailedEdges failures;
  EXPECT_TRUE(failures.empty());
  failures.fail(kAs1, kAs2);
  EXPECT_TRUE(failures.is_failed(kAs1, kAs2));
  EXPECT_TRUE(failures.is_failed(kAs2, kAs1));  // undirected
  EXPECT_FALSE(failures.is_failed(kAs1, kAs3));
  failures.fail(kAs1, kAs2);  // idempotent
  EXPECT_EQ(failures.size(), 1u);
  failures.restore(kAs2, kAs1);
  EXPECT_TRUE(failures.empty());
}

TEST(Failover, FailedEdgeCarriesNoRoutes) {
  Figure3 fig = figure3_graph();
  const auto policies = typical_policies(fig.graph);
  PropagationEngine engine(fig.graph, policies);
  FailedEdges failures;
  failures.fail(fig.a, fig.b);
  engine.set_failures(&failures);

  const auto state = engine.propagate({kPrefix, fig.a});
  // B cannot hear the prefix from A directly; it still gets it from its
  // provider D (who heard it via the peer E).
  const bgp::Route* at_b = state.best_at(fig.b);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->learned_from, fig.d);
  // D's route must curve through the peer: the A-B edge is dead.
  const bgp::Route* at_d = state.best_at(fig.d);
  ASSERT_NE(at_d, nullptr);
  EXPECT_EQ(at_d->learned_from, fig.e);
}

TEST(Failover, IsolatedOriginReachesNobody) {
  Figure3 fig = figure3_graph();
  const auto policies = typical_policies(fig.graph);
  PropagationEngine engine(fig.graph, policies);
  FailedEdges failures;
  failures.fail(fig.a, fig.b);
  failures.fail(fig.a, fig.c);
  engine.set_failures(&failures);

  const auto state = engine.propagate({kPrefix, fig.a});
  EXPECT_NE(state.best_at(fig.a), nullptr);  // self route survives
  EXPECT_EQ(state.best_at(fig.b), nullptr);
  EXPECT_EQ(state.best_at(fig.c), nullptr);
  EXPECT_EQ(state.best_at(fig.d), nullptr);
  EXPECT_EQ(state.best_at(fig.e), nullptr);
}

TEST(Failover, ConditionalAdvertisementSuppressedWhileHealthy) {
  Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  // A advertises kPrefix to B only if the A-C session is down.
  policies.at_mut(fig.a).conditional.push_back({kPrefix, fig.b, fig.c});

  PropagationEngine engine(fig.graph, policies);
  const auto state = engine.propagate({kPrefix, fig.a});
  // Healthy: B hears the prefix only via its provider D (peer-curved).
  const bgp::Route* at_b = state.best_at(fig.b);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->learned_from, fig.d);
  const bgp::Route* at_d = state.best_at(fig.d);
  ASSERT_NE(at_d, nullptr);
  EXPECT_EQ(at_d->learned_from, fig.e) << "SA prefix while healthy";
}

TEST(Failover, ConditionalAdvertisementActivatesOnFailure) {
  Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  policies.at_mut(fig.a).conditional.push_back({kPrefix, fig.b, fig.c});

  PropagationEngine engine(fig.graph, policies);
  FailedEdges failures;
  failures.fail(fig.a, fig.c);
  engine.set_failures(&failures);

  const auto state = engine.propagate({kPrefix, fig.a});
  // The backup announcement kicks in: everyone reaches A via B now.
  const bgp::Route* at_b = state.best_at(fig.b);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->learned_from, fig.a);
  const bgp::Route* at_d = state.best_at(fig.d);
  ASSERT_NE(at_d, nullptr);
  EXPECT_EQ(at_d->learned_from, fig.b) << "customer path restored";
  // C is cut off from A directly but recovers via its provider E.
  const bgp::Route* at_c = state.best_at(fig.c);
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->learned_from, fig.e);
}

TEST(Failover, ConditionalOnlyAffectsItsPrefix) {
  Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  policies.at_mut(fig.a).conditional.push_back({kPrefix, fig.b, fig.c});
  const Prefix other = Prefix::parse("10.0.1.0/24");

  PropagationEngine engine(fig.graph, policies);
  const auto state = engine.propagate({other, fig.a});
  const bgp::Route* at_b = state.best_at(fig.b);
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->learned_from, fig.a) << "other prefixes are unaffected";
}

TEST(Failover, RestorationReturnsToBaseline) {
  Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  policies.at_mut(fig.a).conditional.push_back({kPrefix, fig.b, fig.c});

  PropagationEngine engine(fig.graph, policies);
  FailedEdges failures;
  engine.set_failures(&failures);

  failures.fail(fig.a, fig.c);
  const auto broken = engine.propagate({kPrefix, fig.a});
  ASSERT_NE(broken.best_at(fig.d), nullptr);
  EXPECT_EQ(broken.best_at(fig.d)->learned_from, fig.b);

  failures.restore(fig.a, fig.c);
  const auto healed = engine.propagate({kPrefix, fig.a});
  ASSERT_NE(healed.best_at(fig.d), nullptr);
  EXPECT_EQ(healed.best_at(fig.d)->learned_from, fig.e)
      << "back to the selectively-announced steady state";
}

}  // namespace
}  // namespace bgpolicy::sim
