// The tentpole guarantee of the prefix-sharded engine: simulation output is
// byte-identical for every thread count.  Runs the `small` scenario's full
// simulation at threads ∈ {1, 2, 8} and compares the binary serialization
// of every recorded table plus the convergence counters; also checks the
// churn engine's watched state across thread counts.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "io/binary_table.h"
#include "sim/churn.h"
#include "sim/simulation.h"
#include "topology/prefix_alloc.h"
#include "topology/topology_gen.h"

namespace bgpolicy::sim {
namespace {

struct World {
  topo::Topology topo;
  GeneratedPolicies gen;
  std::vector<Origination> originations;
  VantageSpec vantage;
};

World make_world() {
  const auto scenario = core::Scenario::small();
  World w;
  w.topo = topo::generate_topology(scenario.topo_params);
  const auto plan = topo::allocate_prefixes(w.topo, scenario.alloc_params);
  w.gen = generate_policies(w.topo, plan, scenario.policy_params);
  w.originations = all_originations(plan, w.gen);

  for (const auto as : w.topo.tier1) w.vantage.collector_peers.push_back(as);
  for (std::size_t i = 0; i < 4 && i < w.topo.tier2.size(); ++i) {
    w.vantage.collector_peers.push_back(w.topo.tier2[i]);
  }
  for (const std::uint32_t as : scenario.looking_glass) {
    if (w.topo.graph.contains(AsNumber(as))) {
      w.vantage.looking_glass.emplace_back(as);
    }
  }
  for (const std::uint32_t as : scenario.best_only) {
    if (w.topo.graph.contains(AsNumber(as))) {
      w.vantage.best_only.emplace_back(as);
    }
  }
  return w;
}

SimResult run_at(const World& w, std::size_t threads) {
  PropagationOptions options;
  options.threads = threads;
  return run_simulation(w.topo.graph, w.gen.policies, w.originations,
                        w.vantage, options);
}

TEST(ParallelDeterminism, TablesAndCountersIdenticalAcrossThreadCounts) {
  const World w = make_world();
  const SimResult reference = run_at(w, 1);
  ASSERT_GT(reference.origination_count, 0u);
  const auto reference_collector = io::serialize_table(reference.collector);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const SimResult result = run_at(w, threads);

    EXPECT_EQ(result.origination_count, reference.origination_count);
    EXPECT_EQ(result.unconverged_prefixes, reference.unconverged_prefixes);
    EXPECT_EQ(result.process_events, reference.process_events);

    EXPECT_EQ(io::serialize_table(result.collector), reference_collector)
        << "collector table differs at threads=" << threads;

    ASSERT_EQ(result.looking_glass.size(), reference.looking_glass.size());
    for (const auto& [as, table] : reference.looking_glass) {
      const auto it = result.looking_glass.find(as);
      ASSERT_NE(it, result.looking_glass.end());
      EXPECT_EQ(io::serialize_table(it->second), io::serialize_table(table))
          << "looking-glass table for AS " << as.value()
          << " differs at threads=" << threads;
    }

    ASSERT_EQ(result.best_only.size(), reference.best_only.size());
    for (const auto& [as, table] : reference.best_only) {
      const auto it = result.best_only.find(as);
      ASSERT_NE(it, result.best_only.end());
      EXPECT_EQ(io::serialize_table(it->second), io::serialize_table(table))
          << "best-only table for AS " << as.value()
          << " differs at threads=" << threads;
    }
  }
}

TEST(ParallelDeterminism, ChurnWatchedStateIdenticalAcrossThreadCounts) {
  const World w = make_world();
  ASSERT_FALSE(w.topo.tier1.empty());
  const std::vector<AsNumber> watch = {w.topo.tier1.front(),
                                       w.topo.tier1.back()};

  const auto run_churn = [&](std::size_t threads) {
    ChurnParams params;
    params.propagation.threads = threads;
    ChurnSimulator churn(w.topo.graph, w.gen.policies, w.originations,
                         w.gen.truth, watch, params);
    churn.run_initial();
    for (int s = 0; s < 3; ++s) churn.step();
    return churn;
  };

  const auto reference = run_churn(1);
  const auto parallel = run_churn(4);
  for (const AsNumber as : watch) {
    const auto& ref = reference.watched(as);
    const auto& par = parallel.watched(as);
    ASSERT_EQ(ref.size(), par.size());
    for (const auto& [prefix, route] : ref) {
      const auto it = par.find(prefix);
      ASSERT_NE(it, par.end());
      EXPECT_EQ(it->second, route);
    }
  }
}

}  // namespace
}  // namespace bgpolicy::sim
