// Dirty-frontier unit contract of sim::DeltaEngine (ISSUE 9): an empty
// perturbation is a strict no-op, every AS whose best route changes is
// contained in the wave's `touched` set, and warm re-seeded fixpoints land
// on best-route maps value-identical to cold recomputation for every
// perturbation kind — edge fail/restore, selective-announcement export
// toggles, coarse policy changes, and conditional-advertisement failover.
// (Whole-corpus and randomized-script equivalence lives in
// tests/sim/delta_equivalence_test.cc.)
#include "sim/delta_engine.h"

#include <algorithm>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "sim/flat_engine.h"
#include "sim/propagation.h"
#include "testing/fixtures.h"

namespace bgpolicy::sim {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using topo::GraphView;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");

/// Value-equality over the best-route map only: trajectory counters
/// (process_events, per-wave converged scope) legitimately differ between
/// warm and cold runs — see the determinism note in sim/delta_engine.h.
void expect_same_best(const PrefixRouting& warm, const PrefixRouting& cold) {
  ASSERT_EQ(warm.best.size(), cold.best.size());
  for (const auto& [as, route] : cold.best) {
    const bgp::Route* got = warm.best_at(as);
    ASSERT_NE(got, nullptr) << "warm dropped AS " << util::to_string(as);
    EXPECT_EQ(*got, route) << "route differs at AS " << util::to_string(as);
  }
}

TEST(DeltaEngine, ConvergeThenMaterializeMatchesColdCompute) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  const FlatSimContext context(g, policies);
  const DeltaEngine engine(context, {});
  DeltaWorkspace ws;
  for (const auto origin : g.ases()) {
    const Origination origination{kPrefix, origin};
    DeltaState state;
    engine.converge(origination, nullptr, state, ws);
    EXPECT_TRUE(state.initialized());
    EXPECT_TRUE(state.converged());
    expect_same_best(engine.materialize(state),
                     compute_prefix(g, policies, origination, nullptr));
  }
}

TEST(DeltaEngine, EmptyPerturbationIsAStrictNoOp) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  const FlatSimContext context(g, policies);
  const DeltaEngine engine(context, {});
  DeltaWorkspace ws;
  DeltaState state;
  engine.converge({kPrefix, kAs4}, nullptr, state, ws);
  const std::size_t events_before = state.process_events();

  const DeltaWave wave = engine.apply(state, Perturbation{}, ws);
  EXPECT_TRUE(wave.frontier.empty());
  EXPECT_TRUE(wave.touched.empty());
  EXPECT_EQ(wave.events, 0u);
  EXPECT_TRUE(wave.converged);
  EXPECT_EQ(state.process_events(), events_before);
  expect_same_best(engine.materialize(state),
                   compute_prefix(g, policies, {kPrefix, kAs4}, nullptr));
}

TEST(DeltaEngine, FailThenRestoreRoundTripsThroughColdStates) {
  const Figure3 fig = figure3_graph();
  const auto policies = typical_policies(fig.graph);
  const FlatSimContext context(fig.graph, policies);
  const DeltaEngine engine(context, {});
  DeltaWorkspace ws;
  const Origination origination{kPrefix, fig.a};

  DeltaState state;
  engine.converge(origination, nullptr, state, ws);

  // Fail A-B: warm result equals a cold run under the failure.
  Perturbation fail_ab;
  fail_ab.fail_edges.emplace_back(fig.a, fig.b);
  engine.apply(state, fail_ab, ws);
  EXPECT_TRUE(state.failed().is_failed(fig.a, fig.b));
  FailedEdges cold_failed;
  cold_failed.fail(fig.a, fig.b);
  expect_same_best(engine.materialize(state),
                   compute_prefix(fig.graph, policies, origination,
                                  &cold_failed));

  // Also fail A-C: the origin is isolated; only the self route survives.
  Perturbation fail_ac;
  fail_ac.fail_edges.emplace_back(fig.c, fig.a);
  engine.apply(state, fail_ac, ws);
  const PrefixRouting isolated = engine.materialize(state);
  EXPECT_NE(isolated.best_at(fig.a), nullptr);
  for (const auto as : {fig.b, fig.c, fig.d, fig.e}) {
    EXPECT_EQ(isolated.best_at(as), nullptr);
  }

  // Restore both: back to the healthy converged world.
  Perturbation restore;
  restore.restore_edges.emplace_back(fig.a, fig.b);
  restore.restore_edges.emplace_back(fig.a, fig.c);
  engine.apply(state, restore, ws);
  EXPECT_TRUE(state.failed().empty());
  expect_same_best(engine.materialize(state),
                   compute_prefix(fig.graph, policies, origination, nullptr));
}

TEST(DeltaEngine, TouchedContainsEveryAsWhoseRouteChanged) {
  const Figure3 fig = figure3_graph();
  const auto policies = typical_policies(fig.graph);
  const FlatSimContext context(fig.graph, policies);
  const DeltaEngine engine(context, {});
  DeltaWorkspace ws;

  DeltaState state;
  engine.converge({kPrefix, fig.a}, nullptr, state, ws);
  const PrefixRouting before = engine.materialize(state);

  Perturbation p;
  p.fail_edges.emplace_back(fig.a, fig.b);
  const DeltaWave wave = engine.apply(state, p, ws);
  const PrefixRouting after = engine.materialize(state);

  // The frontier seeds are the wave's entry points, so every processed AS
  // (touched) includes them — except the origin, whose self route always
  // wins and which the event loop therefore skips without processing.
  const GraphView::Id origin_id = context.view().id_of(fig.a);
  for (const GraphView::Id id : wave.frontier) {
    if (id == origin_id) continue;
    EXPECT_TRUE(std::binary_search(wave.touched.begin(), wave.touched.end(),
                                   id));
  }
  // Superset property: an AS whose best route changed was processed.
  for (const auto as : fig.graph.ases()) {
    const bgp::Route* was = before.best_at(as);
    const bgp::Route* now = after.best_at(as);
    const bool changed = (was == nullptr) != (now == nullptr) ||
                         (was != nullptr && !(*was == *now));
    if (!changed) continue;
    const GraphView::Id id = context.view().id_of(as);
    EXPECT_TRUE(std::binary_search(wave.touched.begin(), wave.touched.end(),
                                   id))
        << "changed AS " << util::to_string(as) << " missing from touched";
  }
}

TEST(DeltaEngine, ExportToggleMatchesColdUnderRefreshedPolicies) {
  const Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  FlatSimContext context(fig.graph, policies);
  const DeltaEngine engine(context, {});
  DeltaWorkspace ws;
  const Origination origination{kPrefix, fig.a};

  DeltaState state;
  engine.converge(origination, nullptr, state, ws);

  // A starts withholding kPrefix from B (the paper's selective
  // announcement): mutate the owning PolicySet in place, patch the shared
  // context, then tell the delta engine exactly which adjacency changed.
  ExportRule deny;
  deny.prefix = kPrefix;
  deny.action = ExportAction::kDeny;
  policies.at_mut(fig.a).export_.add_rule_for(fig.b, deny);
  const AsNumber changed[] = {fig.a};
  context.refresh_policies(changed);

  Perturbation toggle;
  toggle.export_changed.emplace_back(fig.a, fig.b);
  engine.apply(state, toggle, ws);
  expect_same_best(engine.materialize(state),
                   compute_prefix(fig.graph, policies, origination, nullptr));
  // The withheld route really moved: B now hears the prefix via D.
  const auto at_b = engine.route_at(state, fig.b);
  ASSERT_TRUE(at_b.has_value());
  EXPECT_EQ(at_b->learned_from, fig.d);

  // Toggle back (rule list mutated in place again).
  policies.at_mut(fig.a).export_.remove_prefix_rules(fig.b, kPrefix);
  context.refresh_policies(changed);
  engine.apply(state, toggle, ws);
  expect_same_best(engine.materialize(state),
                   compute_prefix(fig.graph, policies, origination, nullptr));
  const auto healed = engine.route_at(state, fig.b);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->learned_from, fig.a);
}

TEST(DeltaEngine, CoarsePolicyChangedMatchesCold) {
  const Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  FlatSimContext context(fig.graph, policies);
  const DeltaEngine engine(context, {});
  DeltaWorkspace ws;
  const Origination origination{kPrefix, fig.a};

  DeltaState state;
  engine.converge(origination, nullptr, state, ws);

  // B starts prepending toward its provider D — announced to the engine
  // only as "something about B changed".
  ExportRule prepend;
  prepend.action = ExportAction::kPrepend;
  prepend.prepend_times = 3;
  policies.at_mut(fig.b).export_.add_rule_for(fig.d, prepend);
  const AsNumber changed[] = {fig.b};
  context.refresh_policies(changed);

  Perturbation coarse;
  coarse.policy_changed.push_back(fig.b);
  engine.apply(state, coarse, ws);
  expect_same_best(engine.materialize(state),
                   compute_prefix(fig.graph, policies, origination, nullptr));
}

TEST(DeltaEngine, ConditionalAdvertisementFailoverAndRecovery) {
  const Figure3 fig = figure3_graph();
  auto policies = typical_policies(fig.graph);
  // A advertises kPrefix to B only while the A-C session is down.
  policies.at_mut(fig.a).conditional.push_back({kPrefix, fig.b, fig.c});
  const FlatSimContext context(fig.graph, policies);
  const DeltaEngine engine(context, {});
  DeltaWorkspace ws;
  const Origination origination{kPrefix, fig.a};

  DeltaState state;
  engine.converge(origination, nullptr, state, ws);
  // Healthy: the backup announcement is suppressed; B's route curves
  // through its provider D.
  ASSERT_TRUE(engine.route_at(state, fig.b).has_value());
  EXPECT_EQ(engine.route_at(state, fig.b)->learned_from, fig.d);

  // Failing the *watched* session must wake the advertise_to target even
  // though neither endpoint of A-C selects a new route itself.
  Perturbation fail_watched;
  fail_watched.fail_edges.emplace_back(fig.a, fig.c);
  engine.apply(state, fail_watched, ws);
  FailedEdges cold_failed;
  cold_failed.fail(fig.a, fig.c);
  expect_same_best(engine.materialize(state),
                   compute_prefix(fig.graph, policies, origination,
                                  &cold_failed));
  EXPECT_EQ(engine.route_at(state, fig.b)->learned_from, fig.a);

  // Recovery re-suppresses the conditional advertisement.
  Perturbation restore;
  restore.restore_edges.emplace_back(fig.a, fig.c);
  engine.apply(state, restore, ws);
  expect_same_best(engine.materialize(state),
                   compute_prefix(fig.graph, policies, origination, nullptr));
  EXPECT_EQ(engine.route_at(state, fig.b)->learned_from, fig.d);
}

TEST(DeltaEngine, BranchCloneIsIndependentOfItsBase) {
  const Figure3 fig = figure3_graph();
  const auto policies = typical_policies(fig.graph);
  const FlatSimContext context(fig.graph, policies);
  const DeltaEngine engine(context, {});
  DeltaWorkspace ws;
  const Origination origination{kPrefix, fig.a};

  DeltaState base;
  engine.converge(origination, nullptr, base, ws);
  const PrefixRouting pristine = engine.materialize(base);

  DeltaState branch;
  branch.assign_from(base);
  Perturbation p;
  p.fail_edges.emplace_back(fig.a, fig.b);
  engine.apply(branch, p, ws);

  // The branch diverged; the base must be bit-for-bit undisturbed.
  EXPECT_TRUE(branch.failed().is_failed(fig.a, fig.b));
  EXPECT_TRUE(base.failed().empty());
  expect_same_best(engine.materialize(base), pristine);
  FailedEdges cold_failed;
  cold_failed.fail(fig.a, fig.b);
  expect_same_best(engine.materialize(branch),
                   compute_prefix(fig.graph, policies, origination,
                                  &cold_failed));
}

TEST(Perturbation, EdgeDeltaTurnsOneFailureSetIntoAnother) {
  FailedEdges from;
  from.fail(kAs1, kAs2);
  from.fail(kAs3, kAs4);
  FailedEdges to;
  to.fail(kAs3, kAs4);  // unchanged — must not appear in the delta
  to.fail(kAs5, kAs6);

  const Perturbation delta = Perturbation::edge_delta(from, to);
  ASSERT_EQ(delta.fail_edges.size(), 1u);
  EXPECT_EQ(std::minmax(delta.fail_edges[0].first.value(),
                        delta.fail_edges[0].second.value()),
            std::minmax(kAs5.value(), kAs6.value()));
  ASSERT_EQ(delta.restore_edges.size(), 1u);
  EXPECT_EQ(std::minmax(delta.restore_edges[0].first.value(),
                        delta.restore_edges[0].second.value()),
            std::minmax(kAs1.value(), kAs2.value()));
  EXPECT_TRUE(delta.export_changed.empty());
  EXPECT_TRUE(delta.policy_changed.empty());

  EXPECT_TRUE(Perturbation::edge_delta(to, to).empty());
}

}  // namespace
}  // namespace bgpolicy::sim
