#include "sim/simulation.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace bgpolicy::sim {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;

const Prefix kP1 = Prefix::parse("10.0.0.0/24");
const Prefix kP2 = Prefix::parse("10.0.1.0/24");

TEST(Simulation, CollectorRecordsOneRoutePerPeer) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  VantageSpec spec;
  spec.collector_peers = {kAs5, kAs6};
  const std::vector<Origination> originations{{kP1, kAs4}, {kP2, kAs3}};
  const SimResult result = run_simulation(g, policies, originations, spec);

  EXPECT_EQ(result.origination_count, 2u);
  EXPECT_EQ(result.unconverged_prefixes, 0u);
  EXPECT_EQ(result.collector.owner(), spec.collector_as);
  EXPECT_EQ(result.collector.routes(kP1).size(), 2u);
  for (const auto& route : result.collector.routes(kP1)) {
    // Collector paths start at the contributing peer and keep its
    // LOCAL_PREF invisible (reset to 100).
    EXPECT_EQ(route.path.next_hop_as(), route.learned_from);
    EXPECT_EQ(route.local_pref, 100u);
    EXPECT_EQ(route.origin_as(), kAs4);
  }
}

TEST(Simulation, LookingGlassRecordsFullAdjRibIn) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  VantageSpec spec;
  spec.looking_glass = {kAs2};
  const std::vector<Origination> originations{{kP1, kAs4}};
  const SimResult result = run_simulation(g, policies, originations, spec);

  const auto& lg = result.looking_glass.at(kAs2);
  // AS2 hears AS4's prefix from customer AS4 directly; AS5/AS6 (providers)
  // also propagate it back down; AS1 (peer) has only a peer route to it
  // and must not export it to AS2.
  const auto routes = lg.routes(kP1);
  bool from_4 = false, from_1 = false;
  for (const auto& route : routes) {
    if (route.learned_from == kAs4) from_4 = true;
    if (route.learned_from == kAs1) from_1 = true;
  }
  EXPECT_TRUE(from_4);
  EXPECT_FALSE(from_1);
  // Local preference reflects AS2's import policy (customer band for AS4).
  const bgp::Route* best = lg.best(kP1);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, kAs4);
  EXPECT_EQ(best->local_pref, policies.at(kAs2).import.customer_pref);
}

TEST(Simulation, BestOnlyTablesHoldSingleRoutes) {
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  VantageSpec spec;
  spec.best_only = {kAs5};
  const std::vector<Origination> originations{{kP1, kAs4}, {kP2, kAs3}};
  const SimResult result = run_simulation(g, policies, originations, spec);

  const auto& table = result.best_only.at(kAs5);
  EXPECT_EQ(table.routes(kP1).size(), 1u);
  EXPECT_EQ(table.routes(kP2).size(), 1u);
}

TEST(Simulation, LookingGlassBestAgreesWithEngine) {
  // The recorded Adj-RIB-In, reduced by the decision process, must select
  // the same best route the propagation engine converged on.
  const auto g = figure1_graph();
  const auto policies = typical_policies(g);
  VantageSpec spec;
  spec.looking_glass = {kAs5};
  spec.best_only = {kAs5};
  const std::vector<Origination> originations{{kP1, kAs4}, {kP2, kAs3}};
  const SimResult result = run_simulation(g, policies, originations, spec);

  for (const auto& prefix : {kP1, kP2}) {
    const bgp::Route* lg_best = result.looking_glass.at(kAs5).best(prefix);
    const bgp::Route* engine_best = result.best_only.at(kAs5).best(prefix);
    ASSERT_NE(lg_best, nullptr);
    ASSERT_NE(engine_best, nullptr);
    EXPECT_EQ(lg_best->learned_from, engine_best->learned_from);
    EXPECT_EQ(lg_best->path, engine_best->path);
  }
}

}  // namespace
}  // namespace bgpolicy::sim
