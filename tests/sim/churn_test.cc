#include "sim/churn.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace bgpolicy::sim {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");

// A Fig. 3 world with one toggleable selective unit: A withholds kPrefix
// from B (announces only to C).
struct ChurnWorld {
  Figure3 fig = figure3_graph();
  PolicySet policies;
  GroundTruth truth;
  std::vector<Origination> originations;
};

ChurnWorld make_world(bool withheld) {
  ChurnWorld w;
  w.policies = typical_policies(w.fig.graph);
  if (withheld) {
    ExportRule rule;
    rule.prefix = kPrefix;
    rule.action = ExportAction::kDeny;
    w.policies.at_mut(w.fig.a).export_.add_rule_for(w.fig.b, rule);
  }
  w.truth.origin_units.push_back({w.fig.a, kPrefix, w.fig.b, withheld, false});
  w.originations.push_back({kPrefix, w.fig.a});
  return w;
}

TEST(Churn, RunInitialPopulatesWatchedTables) {
  ChurnWorld w = make_world(/*withheld=*/true);
  ChurnParams params;
  ChurnSimulator churn(w.fig.graph, w.policies, w.originations, w.truth,
                       {w.fig.d}, params);
  churn.run_initial();
  const auto& watched = churn.watched(w.fig.d);
  ASSERT_TRUE(watched.contains(kPrefix));
  EXPECT_EQ(watched.at(kPrefix).learned_from, w.fig.e);  // peer route: SA
}

TEST(Churn, StepTogglesSelectiveAnnouncement) {
  ChurnWorld w = make_world(/*withheld=*/true);
  ChurnParams params;
  params.flip_fraction = 1.0;  // flip the single unit every step
  ChurnSimulator churn(w.fig.graph, w.policies, w.originations, w.truth,
                       {w.fig.d}, params);
  churn.run_initial();

  const auto changed = churn.step();
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed.front(), kPrefix);
  // After re-announcing to B, D regains the customer route via B.
  EXPECT_EQ(churn.watched(w.fig.d).at(kPrefix).learned_from, w.fig.b);

  churn.step();
  // Withheld again: back to the peer route.
  EXPECT_EQ(churn.watched(w.fig.d).at(kPrefix).learned_from, w.fig.e);
}

TEST(Churn, StepBeforeInitialThrows) {
  ChurnWorld w = make_world(true);
  ChurnSimulator churn(w.fig.graph, w.policies, w.originations, w.truth,
                       {w.fig.d}, {});
  EXPECT_THROW(churn.step(), std::runtime_error);
  churn.run_initial();
  EXPECT_THROW(churn.run_initial(), std::runtime_error);
}

TEST(Churn, UnwatchedAsThrows) {
  ChurnWorld w = make_world(true);
  ChurnSimulator churn(w.fig.graph, w.policies, w.originations, w.truth,
                       {w.fig.d}, {});
  churn.run_initial();
  EXPECT_THROW((void)churn.watched(w.fig.e), std::invalid_argument);
}

TEST(Churn, CommunityUnitsAreNotToggled) {
  ChurnWorld w = make_world(true);
  w.truth.origin_units.front().via_community = true;  // not toggleable
  ChurnParams params;
  params.flip_fraction = 1.0;
  ChurnSimulator churn(w.fig.graph, w.policies, w.originations, w.truth,
                       {w.fig.d}, params);
  churn.run_initial();
  EXPECT_TRUE(churn.step().empty());
}

}  // namespace
}  // namespace bgpolicy::sim
