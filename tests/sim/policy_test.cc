#include "sim/policy.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace bgpolicy::sim {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;

const Prefix kPrefix = Prefix::parse("10.0.0.0/24");
const Prefix kOther = Prefix::parse("10.9.0.0/24");

TEST(ImportPolicy, ClassBasesAreTypicalByDefault) {
  const ImportPolicy import;
  EXPECT_GT(import.customer_pref, import.peer_pref);
  EXPECT_GT(import.peer_pref, import.provider_pref);
  EXPECT_EQ(import.preference(kAs1, RelKind::kCustomer, kPrefix),
            import.customer_pref);
  EXPECT_EQ(import.preference(kAs1, RelKind::kPeer, kPrefix),
            import.peer_pref);
  EXPECT_EQ(import.preference(kAs1, RelKind::kProvider, kPrefix),
            import.provider_pref);
}

TEST(ImportPolicy, NeighborOverrideBeatsClassBase) {
  ImportPolicy import;
  import.neighbor_override[kAs2] = 42;
  EXPECT_EQ(import.preference(kAs2, RelKind::kCustomer, kPrefix), 42u);
  EXPECT_EQ(import.preference(kAs3, RelKind::kCustomer, kPrefix),
            import.customer_pref);
}

TEST(ImportPolicy, PrefixOverrideBeatsNeighborOverride) {
  ImportPolicy import;
  import.neighbor_override[kAs2] = 42;
  import.prefix_override[kPrefix] = 77;
  EXPECT_EQ(import.preference(kAs2, RelKind::kCustomer, kPrefix), 77u);
  EXPECT_EQ(import.preference(kAs2, RelKind::kCustomer, kOther), 42u);
}

TEST(ExportRule, MatchSemantics) {
  ExportRule any;
  EXPECT_TRUE(any.matches(kPrefix, kAs1));

  ExportRule by_prefix;
  by_prefix.prefix = kPrefix;
  EXPECT_TRUE(by_prefix.matches(kPrefix, kAs1));
  EXPECT_FALSE(by_prefix.matches(kOther, kAs1));

  ExportRule by_origin;
  by_origin.origin = kAs1;
  EXPECT_TRUE(by_origin.matches(kPrefix, kAs1));
  EXPECT_FALSE(by_origin.matches(kPrefix, kAs2));

  ExportRule both;
  both.prefix = kPrefix;
  both.origin = kAs1;
  EXPECT_TRUE(both.matches(kPrefix, kAs1));
  EXPECT_FALSE(both.matches(kPrefix, kAs2));
  EXPECT_FALSE(both.matches(kOther, kAs1));
}

TEST(ExportPolicy, PerNeighborAndAnyNeighborRules) {
  ExportPolicy policy;
  ExportRule deny;
  deny.prefix = kPrefix;
  deny.action = ExportAction::kDeny;
  policy.add_rule_for(kAs2, deny);
  EXPECT_NE(policy.match(kAs2, kPrefix, kAs1), nullptr);
  EXPECT_EQ(policy.match(kAs3, kPrefix, kAs1), nullptr);
  EXPECT_EQ(policy.match(kAs2, kOther, kAs1), nullptr);

  ExportRule global;
  global.prefix = kOther;
  policy.add_rule_any(global);
  EXPECT_NE(policy.match(kAs3, kOther, kAs1), nullptr);
}

TEST(ExportPolicy, RemovePrefixRules) {
  ExportPolicy policy;
  ExportRule deny;
  deny.prefix = kPrefix;
  policy.add_rule_for(kAs2, deny);
  ExportRule deny_other;
  deny_other.prefix = kOther;
  policy.add_rule_for(kAs2, deny_other);

  EXPECT_EQ(policy.remove_prefix_rules(kAs2, kPrefix), 1u);
  EXPECT_EQ(policy.match(kAs2, kPrefix, kAs1), nullptr);
  EXPECT_NE(policy.match(kAs2, kOther, kAs1), nullptr);
  EXPECT_EQ(policy.remove_prefix_rules(kAs2, kPrefix), 0u);
  EXPECT_EQ(policy.remove_prefix_rules(util::AsNumber(9), kPrefix), 0u);
}

TEST(CommunityProfile, TagEncodesRelationshipClass) {
  CommunityProfile profile;
  profile.enabled = true;
  const auto tag = profile.tag(kAs1, kAs2, RelKind::kCustomer);
  EXPECT_EQ(tag.asn(), 1);
  EXPECT_EQ(profile.classify(tag, kAs1), RelKind::kCustomer);
  EXPECT_EQ(profile.classify(profile.tag(kAs1, kAs3, RelKind::kPeer), kAs1),
            RelKind::kPeer);
  EXPECT_EQ(
      profile.classify(profile.tag(kAs1, kAs4, RelKind::kProvider), kAs1),
      RelKind::kProvider);
}

TEST(CommunityProfile, ClassifyRejectsForeignAndUnknown) {
  CommunityProfile profile;
  const auto tag = profile.tag(kAs1, kAs2, RelKind::kPeer);
  EXPECT_FALSE(profile.classify(tag, kAs2));  // tagged by AS1, not AS2
  EXPECT_FALSE(profile.classify(bgp::Community(1, 9999), kAs1));
}

TEST(CommunityProfile, SlotsAreStablePerNeighbor) {
  CommunityProfile profile;
  profile.values_per_class = 3;
  const auto tag1 = profile.tag(kAs1, kAs2, RelKind::kPeer);
  const auto tag2 = profile.tag(kAs1, kAs2, RelKind::kPeer);
  EXPECT_EQ(tag1, tag2);
}

TEST(AsPolicy, NoExportSlotsAreReused) {
  AsPolicy policy;
  const auto slot1 = policy.no_export_slot_for(kAs5);
  const auto slot2 = policy.no_export_slot_for(kAs6);
  const auto slot1_again = policy.no_export_slot_for(kAs5);
  EXPECT_EQ(slot1, slot1_again);
  EXPECT_NE(slot1, slot2);
  EXPECT_EQ(policy.no_export_targets.size(), 2u);
}

TEST(PolicySet, AtThrowsForUnknownAs) {
  PolicySet policies;
  EXPECT_THROW((void)policies.at(kAs1), std::out_of_range);
  (void)policies.at_mut(kAs1);
  EXPECT_NO_THROW((void)policies.at(kAs1));
}

}  // namespace
}  // namespace bgpolicy::sim
