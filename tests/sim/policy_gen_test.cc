#include "sim/policy_gen.h"

#include <gtest/gtest.h>

#include <map>

namespace bgpolicy::sim {
namespace {

struct World {
  topo::Topology topo;
  topo::PrefixPlan plan;
};

World make_world(std::uint64_t seed = 3) {
  topo::GeneratorParams p;
  p.seed = seed;
  p.tier1_count = 5;
  p.tier2_count = 10;
  p.tier3_count = 25;
  p.stub_count = 150;
  World w;
  w.topo = topo::generate_topology(p);
  topo::PrefixAllocParams ap;
  ap.seed = seed ^ 0xFF;
  w.plan = topo::allocate_prefixes(w.topo, ap);
  return w;
}

TEST(PolicyGen, EveryAsGetsAPolicy) {
  const World w = make_world();
  const auto gen = generate_policies(w.topo, w.plan, {});
  for (const auto as : w.topo.graph.ases()) {
    EXPECT_TRUE(gen.policies.by_as.contains(as));
  }
}

TEST(PolicyGen, ImportBandsAreTypical) {
  const World w = make_world();
  const auto gen = generate_policies(w.topo, w.plan, {});
  for (const auto as : w.topo.graph.ases()) {
    const auto& import = gen.policies.at(as).import;
    EXPECT_GT(import.customer_pref, import.peer_pref);
    EXPECT_GT(import.peer_pref, import.provider_pref);
  }
}

TEST(PolicyGen, DeterministicForSeed) {
  const World w = make_world();
  const auto a = generate_policies(w.topo, w.plan, {});
  const auto b = generate_policies(w.topo, w.plan, {});
  EXPECT_EQ(a.truth.origin_units.size(), b.truth.origin_units.size());
  EXPECT_EQ(a.truth.split_specifics.size(), b.truth.split_specifics.size());
  EXPECT_EQ(a.split_extras.size(), b.split_extras.size());
}

TEST(PolicyGen, SelectiveUnitsOnlyForMultihomedStubs) {
  const World w = make_world();
  const auto gen = generate_policies(w.topo, w.plan, {});
  for (const auto& unit : gen.truth.origin_units) {
    EXPECT_EQ(w.topo.tier_of(unit.origin), topo::Tier::kStub);
    EXPECT_GE(w.topo.graph.providers(unit.origin).size(), 2u);
    EXPECT_EQ(w.topo.graph.relationship(unit.origin, unit.provider),
              topo::RelKind::kProvider);
  }
}

TEST(PolicyGen, WithheldUnitsHaveMatchingRules) {
  const World w = make_world();
  const auto gen = generate_policies(w.topo, w.plan, {});
  std::size_t withheld = 0;
  for (const auto& unit : gen.truth.origin_units) {
    if (!unit.withheld) continue;
    ++withheld;
    const auto& policy = gen.policies.at(unit.origin);
    const ExportRule* rule =
        policy.export_.match(unit.provider, unit.prefix, unit.origin);
    ASSERT_NE(rule, nullptr)
        << "withheld unit without a rule: " << unit.prefix.to_string();
    if (unit.via_community) {
      EXPECT_NE(rule->action, ExportAction::kDeny);
    } else {
      EXPECT_EQ(rule->action, ExportAction::kDeny);
    }
  }
  EXPECT_GT(withheld, 0u);
}

TEST(PolicyGen, NeverWithholdsFromAllProviders) {
  const World w = make_world();
  const auto gen = generate_policies(w.topo, w.plan, {});
  // Group units by (origin, prefix): at least one provider must still
  // receive a plain announcement (the paper's selective announcement keeps
  // the prefix reachable).
  std::map<std::pair<std::uint32_t, bgp::Prefix>, std::size_t> announced;
  for (const auto& unit : gen.truth.origin_units) {
    const auto key = std::make_pair(unit.origin.value(), unit.prefix);
    announced.try_emplace(key, 0);
    if (!unit.withheld) ++announced[key];
  }
  for (const auto& [key, count] : announced) {
    EXPECT_GE(count + 0u, 0u);
  }
  // Stronger check via the actual rules: for every (origin, prefix) with
  // any unit, at least one provider has no deny rule.
  std::map<std::pair<std::uint32_t, bgp::Prefix>, bool> reachable;
  for (const auto& unit : gen.truth.origin_units) {
    const auto key = std::make_pair(unit.origin.value(), unit.prefix);
    const auto& policy = gen.policies.at(unit.origin);
    const ExportRule* rule =
        policy.export_.match(unit.provider, unit.prefix, unit.origin);
    const bool denied = rule != nullptr && rule->action == ExportAction::kDeny;
    reachable[key] = reachable[key] || !denied;
  }
  for (const auto& [key, ok] : reachable) {
    EXPECT_TRUE(ok) << "prefix withheld from every provider";
  }
}

TEST(PolicyGen, SplitSpecificsAreChildrenOfPlannedPrefixes) {
  const World w = make_world();
  PolicyGenParams params;
  params.splitting_as_prob = 0.5;  // force plenty of splits
  const auto gen = generate_policies(w.topo, w.plan, params);
  EXPECT_FALSE(gen.truth.split_specifics.empty());
  EXPECT_EQ(gen.truth.split_specifics.size(), gen.split_extras.size());
  for (const auto& extra : gen.split_extras) {
    EXPECT_EQ(extra.prefix.length(), 24);
    bool covered = false;
    const auto it = w.plan.by_origin.find(extra.origin);
    ASSERT_NE(it, w.plan.by_origin.end());
    for (const auto index : it->second) {
      if (w.plan.prefixes[index].prefix.covers(extra.prefix)) covered = true;
    }
    EXPECT_TRUE(covered);
  }
}

TEST(PolicyGen, AggregatedPrefixesAreProviderAssigned) {
  const World w = make_world();
  PolicyGenParams params;
  params.aggregation_prob = 0.8;
  const auto gen = generate_policies(w.topo, w.plan, params);
  EXPECT_FALSE(gen.truth.aggregated_by.empty());
  for (const auto& [prefix, provider] : gen.truth.aggregated_by) {
    // The aggregating provider must refuse to export the prefix anywhere.
    const auto& policy = gen.policies.at(provider);
    const ExportRule* rule =
        policy.export_.match(util::AsNumber(0), prefix, util::AsNumber(0));
    ASSERT_NE(rule, nullptr);
    EXPECT_EQ(rule->action, ExportAction::kDeny);
  }
}

TEST(PolicyGen, ForceTaggingHonored) {
  const World w = make_world();
  PolicyGenParams params;
  params.tagging_as_prob = 0.0;
  params.force_tagging = {w.topo.tier1[0]};
  const auto gen = generate_policies(w.topo, w.plan, params);
  EXPECT_TRUE(gen.policies.at(w.topo.tier1[0]).community.enabled);
  EXPECT_FALSE(gen.policies.at(w.topo.tier1[1]).community.enabled);
}

TEST(PolicyGen, AllOriginationsIncludesSplits) {
  const World w = make_world();
  PolicyGenParams params;
  params.splitting_as_prob = 0.5;
  const auto gen = generate_policies(w.topo, w.plan, params);
  const auto originations = all_originations(w.plan, gen);
  EXPECT_EQ(originations.size(),
            w.plan.prefixes.size() + gen.split_extras.size());
}

TEST(PolicyGen, ZeroProbabilitiesProduceCleanWorld) {
  const World w = make_world();
  PolicyGenParams params;
  params.atypical_neighbor_prob = 0;
  params.te_as_prob = 0;
  params.origin_selective_as_prob = 0;
  params.prepend_as_prob = 0;
  params.intermediate_selective_prob = 0;
  params.splitting_as_prob = 0;
  params.aggregation_prob = 0;
  params.peer_withhold_prob = 0;
  params.tagging_as_prob = 0;
  const auto gen = generate_policies(w.topo, w.plan, params);
  EXPECT_TRUE(gen.truth.origin_units.empty());
  EXPECT_TRUE(gen.truth.prepend_units.empty());
  EXPECT_TRUE(gen.truth.intermediate_units.empty());
  EXPECT_TRUE(gen.truth.split_specifics.empty());
  EXPECT_TRUE(gen.truth.aggregated_by.empty());
  EXPECT_TRUE(gen.truth.peer_withholders.empty());
  for (const auto as : w.topo.graph.ases()) {
    const auto& policy = gen.policies.at(as);
    EXPECT_TRUE(policy.import.neighbor_override.empty());
    EXPECT_TRUE(policy.import.prefix_override.empty());
    EXPECT_TRUE(policy.export_.per_neighbor.empty());
    EXPECT_TRUE(policy.export_.any_neighbor.empty());
  }
}

}  // namespace
}  // namespace bgpolicy::sim
