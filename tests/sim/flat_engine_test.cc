// Unit coverage for the flat-core building blocks; the end-to-end
// guarantee lives in flat_equivalence_test.cc.
#include "sim/flat_engine.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "bgp/decision.h"
#include "bgp/route.h"
#include "testing/fixtures.h"
#include "util/arena.h"

namespace bgpolicy::sim {
namespace {

using namespace bgpolicy::testing;

TEST(FlatMap64, InsertFindGrowClear) {
  FlatMap64 map;
  EXPECT_EQ(map.find(7), nullptr);
  for (std::uint64_t k = 0; k < 500; ++k) map.insert(k * 3 + 1, k);
  for (std::uint64_t k = 0; k < 500; ++k) {
    const std::uint32_t* hit = map.find(k * 3 + 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, k);
  }
  EXPECT_EQ(map.find(2), nullptr);
  map.clear();
  EXPECT_EQ(map.find(1), nullptr);
  map.insert(1, 42);  // reusable after clear
  ASSERT_NE(map.find(1), nullptr);
}

TEST(PathTable, PrependInternsByValue) {
  PathTable paths;
  const auto p1 = paths.prepend(PathTable::kEmptyPath, AsNumber(10));
  const auto p21 = paths.prepend(p1, AsNumber(20));
  // Same value -> same id, no new node.
  const auto node_count = paths.node_count();
  EXPECT_EQ(paths.prepend(p1, AsNumber(20)), p21);
  EXPECT_EQ(paths.node_count(), node_count);
  // Different parents with the same front are distinct paths.
  const auto p2 = paths.prepend(PathTable::kEmptyPath, AsNumber(20));
  EXPECT_NE(p2, p21);

  EXPECT_EQ(paths.length(PathTable::kEmptyPath), 0u);
  EXPECT_EQ(paths.length(p21), 2u);
  EXPECT_EQ(paths.front(p21), AsNumber(20));
  EXPECT_EQ(paths.origin(p21), AsNumber(10));
  EXPECT_TRUE(paths.contains(p21, AsNumber(10)));
  EXPECT_TRUE(paths.contains(p21, AsNumber(20)));
  EXPECT_FALSE(paths.contains(p21, AsNumber(30)));

  const bgp::AsPath materialized = paths.materialize(p21);
  EXPECT_EQ(materialized, bgp::AsPath({AsNumber(20), AsNumber(10)}));
  EXPECT_EQ(paths.materialize(PathTable::kEmptyPath).length(), 0u);
}

TEST(CommunityTable, AddMatchesRouteSemanticsAndInternsByContent) {
  util::MonotonicArena arena;
  CommunityTable comms(arena);
  const bgp::Community x(1, 100);
  const bgp::Community y(2, 200);

  const auto sx = comms.add(CommunityTable::kEmptySet, x);
  const auto sxy = comms.add(sx, y);
  // Duplicate add is the identity (Route::add_community dedups).
  EXPECT_EQ(comms.add(sxy, x), sxy);
  // Different add order, same value -> same id.
  const auto sy = comms.add(CommunityTable::kEmptySet, y);
  EXPECT_EQ(comms.add(sy, x), sxy);

  EXPECT_TRUE(comms.contains(sxy, x));
  EXPECT_TRUE(comms.contains(sxy, y));
  EXPECT_FALSE(comms.contains(sx, y));
  EXPECT_FALSE(comms.contains(CommunityTable::kEmptySet, x));

  // Members come out sorted, exactly like the Route field.
  bgp::Route route;
  route.add_community(y);
  route.add_community(x);
  route.add_community(y);
  const auto members = comms.members(sxy);
  ASSERT_EQ(members.size(), route.communities.size());
  EXPECT_TRUE(std::equal(members.begin(), members.end(),
                         route.communities.begin()));
}

TEST(MonotonicArena, ResetKeepsBlocksAndTracksPeak) {
  util::MonotonicArena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  auto* a = arena.allocate<std::uint64_t>(100);
  ASSERT_NE(a, nullptr);
  a[99] = 7;  // writable
  const auto reserved = arena.bytes_reserved();
  EXPECT_GE(arena.bytes_used(), 100 * sizeof(std::uint64_t));
  EXPECT_GE(arena.peak_bytes(), arena.bytes_used());

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // blocks kept
  // Reuses the same storage after reset.
  auto* b = arena.allocate<std::uint64_t>(1);
  EXPECT_EQ(static_cast<void*>(b), static_cast<void*>(a));
}

TEST(SelectBestColumns, AgreesWithRouteSelection) {
  // Candidates crafted to exercise every decision step at least once.
  const bgp::Prefix prefix = bgp::Prefix::parse("10.0.0.0/24");
  std::vector<bgp::Route> routes;
  for (std::uint32_t i = 0; i < 6; ++i) {
    bgp::Route r = make_route(prefix, {AsNumber(100 + i), AsNumber(1)},
                              /*local_pref=*/i < 2 ? 120 : 100);
    r.med = i % 3;
    r.router_id = 1000 - i;
    routes.push_back(r);
  }
  routes[4].path = bgp::AsPath({AsNumber(104)});

  std::vector<std::uint32_t> lp, plen, nh, med, igp, router;
  std::vector<std::uint8_t> origin, ebgp;
  for (const auto& r : routes) {
    lp.push_back(r.local_pref);
    plen.push_back(static_cast<std::uint32_t>(r.path.length()));
    origin.push_back(static_cast<std::uint8_t>(r.origin));
    nh.push_back(r.next_hop_as() ? r.next_hop_as()->value()
                                 : bgp::kNoNextHop);
    med.push_back(r.med);
    ebgp.push_back(r.from_ebgp ? 1 : 0);
    igp.push_back(r.igp_metric);
    router.push_back(r.router_id);
  }
  const bgp::RouteColumns columns{lp, plen, origin, nh,
                                  med, ebgp, igp, router};

  const auto by_columns = bgp::select_best(columns);
  const auto by_routes = bgp::select_best(routes);
  ASSERT_TRUE(by_columns.has_value());
  ASSERT_TRUE(by_routes.has_value());
  EXPECT_EQ(*by_columns, *by_routes);

  const bgp::RouteColumns empty{};
  EXPECT_FALSE(bgp::select_best(empty).has_value());
}

TEST(FlatScratchPool, LeasesAreReusedAndPeakAggregates) {
  FlatScratchPool pool;
  EXPECT_EQ(pool.peak_bytes(), 0u);
  const auto f = figure3_graph();
  const auto policies = typical_policies(f.graph);
  const FlatSimContext context(f.graph, policies);
  {
    const auto lease = pool.acquire();
    const auto state = compute_prefix_flat(
        context, {bgp::Prefix::parse("10.0.0.0/24"), f.a}, nullptr, {},
        *lease);
    EXPECT_TRUE(state.converged);
  }
  EXPECT_GT(pool.peak_bytes(), 0u);  // released lease reported its peak
  {
    // Two concurrent leases are distinct scratches.
    const auto first = pool.acquire();
    const auto second = pool.acquire();
    EXPECT_NE(&*first, &*second);
  }
}

}  // namespace
}  // namespace bgpolicy::sim
