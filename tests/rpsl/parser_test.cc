#include "rpsl/parser.h"

#include <gtest/gtest.h>

namespace bgpolicy::rpsl {
namespace {

constexpr const char* kSampleDb = R"(# comment line
aut-num: AS1
as-name: EXAMPLE-1
import: from AS2 action pref = 1; accept ANY
import: from AS3 accept ANY
export: to AS2 announce AS1
remarks: rel-community peer 1000 1029
remarks: ordinary human text
changed: noc@example.net 20021118
source: SYNTH

aut-num: AS7018
as-name: ATT
import: from AS701 action pref = 900; accept ANY
changed: old@example.net 20010101
changed: new@example.net 20020301

route: 192.0.2.0/24
origin: AS1
)";

TEST(RpslParser, SplitsObjectsOnBlankLines) {
  const auto objects = parse_database(kSampleDb);
  ASSERT_EQ(objects.size(), 3u);
  EXPECT_EQ(objects[0].class_name(), "aut-num");
  EXPECT_EQ(objects[2].class_name(), "route");
}

TEST(RpslParser, AttributeAccess) {
  const auto objects = parse_database(kSampleDb);
  EXPECT_EQ(objects[0].first("as-name"), "EXAMPLE-1");
  EXPECT_EQ(objects[0].all("import").size(), 2u);
  EXPECT_FALSE(objects[0].first("missing"));
}

TEST(RpslParser, ContinuationLinesFold) {
  const auto objects = parse_database(
      "aut-num: AS5\nimport: from AS6\n+ action pref = 10; accept ANY\n");
  ASSERT_EQ(objects.size(), 1u);
  const auto aut_num = parse_aut_num(objects[0]);
  ASSERT_TRUE(aut_num);
  ASSERT_EQ(aut_num->imports.size(), 1u);
  EXPECT_EQ(aut_num->imports[0].pref, 10u);
}

TEST(RpslParser, AutNumFields) {
  const auto aut_nums = parse_aut_nums(kSampleDb);
  ASSERT_EQ(aut_nums.size(), 2u);
  const AutNum& first = aut_nums[0];
  EXPECT_EQ(first.as, AsNumber(1));
  EXPECT_EQ(first.as_name, "EXAMPLE-1");
  ASSERT_EQ(first.imports.size(), 2u);
  EXPECT_EQ(first.imports[0].from, AsNumber(2));
  EXPECT_EQ(first.imports[0].pref, 1u);
  EXPECT_FALSE(first.imports[1].pref);
  ASSERT_EQ(first.exports.size(), 1u);
  EXPECT_EQ(first.exports[0].to, AsNumber(2));
  EXPECT_EQ(first.changed_date, 20021118u);
  ASSERT_EQ(first.community_remarks.size(), 1u);
  EXPECT_EQ(first.community_remarks[0].kind, RelKind::kPeer);
  EXPECT_EQ(first.community_remarks[0].value_lo, 1000);
  EXPECT_EQ(first.community_remarks[0].value_hi, 1029);
}

TEST(RpslParser, LatestChangedDateWins) {
  const auto aut_nums = parse_aut_nums(kSampleDb);
  EXPECT_EQ(aut_nums[1].changed_date, 20020301u);
}

TEST(RpslParser, ImportLineVariants) {
  const auto with_pref =
      parse_import_line("from AS65000 action pref = 100; accept ANY");
  ASSERT_TRUE(with_pref);
  EXPECT_EQ(with_pref->from, AsNumber(65000));
  EXPECT_EQ(with_pref->pref, 100u);
  EXPECT_EQ(with_pref->accept, "ANY");

  const auto without_action = parse_import_line("from AS2 accept AS2");
  ASSERT_TRUE(without_action);
  EXPECT_FALSE(without_action->pref);
  EXPECT_EQ(without_action->accept, "AS2");

  EXPECT_FALSE(parse_import_line("to AS2 announce ANY"));
  EXPECT_FALSE(parse_import_line("from NOTANAS accept ANY"));
  EXPECT_FALSE(parse_import_line("from AS2 action pref = x; accept ANY"));
}

TEST(RpslParser, CommunityRemarkVariants) {
  const auto peer = parse_community_remark("rel-community peer 1000 1029");
  ASSERT_TRUE(peer);
  EXPECT_EQ(peer->kind, RelKind::kPeer);
  const auto customer =
      parse_community_remark("rel-community customer 4000 4000");
  ASSERT_TRUE(customer);
  EXPECT_EQ(customer->kind, RelKind::kCustomer);
  EXPECT_FALSE(parse_community_remark("rel-community sibling 1 2"));
  EXPECT_FALSE(parse_community_remark("rel-community peer 2 1"));
  EXPECT_FALSE(parse_community_remark("rel-community peer 1 70000"));
  EXPECT_FALSE(parse_community_remark("something else entirely"));
}

TEST(RpslParser, NonAutNumObjectsAreSkipped) {
  EXPECT_FALSE(parse_aut_num(parse_database("route: 10.0.0.0/8\n")[0]));
  EXPECT_FALSE(parse_aut_num(parse_database("aut-num: garbage\n")[0]));
}

TEST(RpslParser, HandlesCrLfAndTrailingJunk) {
  const auto objects =
      parse_database("aut-num: AS9\r\nas-name: X\r\n\r\nmalformed line\n");
  ASSERT_GE(objects.size(), 1u);
  const auto aut_num = parse_aut_num(objects[0]);
  ASSERT_TRUE(aut_num);
  EXPECT_EQ(aut_num->as, AsNumber(9));
}

TEST(RpslParser, ShardedParseIsByteIdenticalAtAnyThreadCount) {
  // A messy dump: comments between objects, CRLF, continuation lines,
  // malformed stretches, a non-aut-num object — everything the sequential
  // parser tolerates, so the sharded split must tolerate it identically.
  std::string dump = "# header comment\n\n";
  for (int i = 1; i <= 200; ++i) {
    dump += "aut-num: AS" + std::to_string(i) + "\n";
    dump += "as-name: NET-" + std::to_string(i) + "\n";
    dump += "import: from AS" + std::to_string(i + 1) +
            " action pref = 10; accept ANY\n";
    dump += "import: from AS" + std::to_string(i + 2) + "\n";
    dump += "+ action pref = 20; accept ANY\n";  // continuation
    dump += "export: to AS" + std::to_string(i + 1) + " announce AS" +
            std::to_string(i) + "\n";
    dump += "changed: noc@example.net 2002101" + std::to_string(i % 10) + "\n";
    if (i % 7 == 0) dump += "% interleaved comment\n";
    dump += "\n";
    if (i % 13 == 0) dump += "route: 10.0.0.0/8\norigin: AS1\n\n";
    if (i % 17 == 0) dump += "malformed line without colon\n\n";
  }

  const std::vector<AutNum> sequential = parse_aut_nums(dump);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}}) {
    const std::vector<AutNum> sharded = parse_aut_nums(dump, threads);
    ASSERT_EQ(sharded.size(), sequential.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(sharded[i], sequential[i])
          << "object " << i << " differs at threads=" << threads;
    }
  }

  // A caller-supplied executor takes the same path.
  const util::Executor executor(4);
  const std::vector<AutNum> via_executor = parse_aut_nums(dump, 0, &executor);
  EXPECT_EQ(via_executor, sequential);
}

}  // namespace
}  // namespace bgpolicy::rpsl
