#include "rpsl/generator.h"

#include <gtest/gtest.h>

#include "rpsl/parser.h"
#include "sim/policy_gen.h"
#include "topology/prefix_alloc.h"

namespace bgpolicy::rpsl {
namespace {

struct World {
  topo::Topology topo;
  sim::PolicySet policies;
};

World make_world() {
  topo::GeneratorParams p;
  p.seed = 5;
  p.tier1_count = 4;
  p.tier2_count = 8;
  p.tier3_count = 16;
  p.stub_count = 60;
  World w;
  w.topo = topo::generate_topology(p);
  const auto plan = topo::allocate_prefixes(w.topo, {});
  sim::PolicyGenParams pg;
  pg.tagging_as_prob = 1.0;
  pg.publish_prob = 1.0;
  w.policies = sim::generate_policies(w.topo, plan, pg).policies;
  return w;
}

TEST(IrrGenerator, PrefInversionHelper) {
  EXPECT_EQ(pref_from_local_pref(100), 900u);
  EXPECT_EQ(pref_from_local_pref(0), 1000u);
  EXPECT_EQ(pref_from_local_pref(1000), 0u);
  // Higher LOCAL_PREF => smaller (better) RPSL pref.
  EXPECT_LT(pref_from_local_pref(120), pref_from_local_pref(80));
}

TEST(IrrGenerator, FullCoverageRoundTrips) {
  const World w = make_world();
  IrrGenParams params;
  params.coverage = 1.0;
  params.stale_prob = 0.0;
  params.wrong_pref_prob = 0.0;
  params.missing_pref_prob = 0.0;
  const std::string db = generate_irr(w.topo, w.policies, params);
  const auto aut_nums = parse_aut_nums(db);
  EXPECT_EQ(aut_nums.size(), w.topo.graph.as_count());

  for (const auto& aut_num : aut_nums) {
    EXPECT_EQ(aut_num.imports.size(), w.topo.graph.degree(aut_num.as));
    EXPECT_EQ(aut_num.changed_date, params.fresh_date);
    for (const auto& line : aut_num.imports) {
      ASSERT_TRUE(line.pref.has_value());
      // Invert back and compare against the configured policy.
      const auto rel = w.topo.graph.relationship(aut_num.as, line.from);
      ASSERT_TRUE(rel);
      const auto& import = w.policies.at(aut_num.as).import;
      std::uint32_t expected = import.base_for(*rel);
      if (const auto it = import.neighbor_override.find(line.from);
          it != import.neighbor_override.end()) {
        expected = it->second;
      }
      EXPECT_EQ(*line.pref, pref_from_local_pref(expected));
    }
  }
}

TEST(IrrGenerator, CoverageAndStalenessRates) {
  const World w = make_world();
  IrrGenParams params;
  params.coverage = 0.5;
  params.stale_prob = 0.4;
  const std::string db = generate_irr(w.topo, w.policies, params);
  const auto aut_nums = parse_aut_nums(db);
  const double coverage_rate = static_cast<double>(aut_nums.size()) /
                               static_cast<double>(w.topo.graph.as_count());
  EXPECT_NEAR(coverage_rate, 0.5, 0.15);
  std::size_t stale = 0;
  for (const auto& aut_num : aut_nums) {
    if (aut_num.changed_date < 20020000) ++stale;
  }
  const double stale_rate =
      static_cast<double>(stale) / static_cast<double>(aut_nums.size());
  EXPECT_NEAR(stale_rate, 0.4, 0.15);
}

TEST(IrrGenerator, PublishedProfilesEmitCommunityRemarks) {
  const World w = make_world();
  IrrGenParams params;
  params.coverage = 1.0;
  const std::string db = generate_irr(w.topo, w.policies, params);
  const auto aut_nums = parse_aut_nums(db);
  std::size_t with_remarks = 0;
  for (const auto& aut_num : aut_nums) {
    const auto& profile = w.policies.at(aut_num.as).community;
    if (profile.enabled && profile.published) {
      EXPECT_EQ(aut_num.community_remarks.size(), 3u)
          << util::to_string(aut_num.as);
      ++with_remarks;
    } else {
      EXPECT_TRUE(aut_num.community_remarks.empty());
    }
  }
  EXPECT_GT(with_remarks, 0u);
}

TEST(IrrGenerator, DeterministicForSeed) {
  const World w = make_world();
  EXPECT_EQ(generate_irr(w.topo, w.policies, {}),
            generate_irr(w.topo, w.policies, {}));
}

// Per-aut-num sharded rendering concatenates in AS order: the database is
// byte-identical at any thread count (threads = 1 is the sequential seed
// program).
TEST(IrrGenerator, ShardedRenderingIsByteIdentical) {
  const World w = make_world();
  IrrGenParams params;
  const std::string reference = generate_irr(w.topo, w.policies, params);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{0}}) {
    params.threads = threads;
    EXPECT_EQ(generate_irr(w.topo, w.policies, params), reference)
        << "IRR differs at threads=" << threads;
  }
}

}  // namespace
}  // namespace bgpolicy::rpsl
