#include "topology/topology_gen.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace bgpolicy::topo {
namespace {

GeneratorParams small_params(std::uint64_t seed = 1) {
  GeneratorParams p;
  p.seed = seed;
  p.tier1_count = 6;
  p.tier2_count = 10;
  p.tier3_count = 30;
  p.stub_count = 120;
  return p;
}

TEST(TopologyGen, CountsMatchParams) {
  const Topology topo = generate_topology(small_params());
  EXPECT_EQ(topo.tier1.size(), 6u);
  EXPECT_EQ(topo.tier2.size(), 10u);
  EXPECT_EQ(topo.tier3.size(), 30u);
  EXPECT_EQ(topo.stubs.size(), 120u);
  EXPECT_EQ(topo.graph.as_count(), 166u);
}

TEST(TopologyGen, DeterministicForSeed) {
  const Topology a = generate_topology(small_params(7));
  const Topology b = generate_topology(small_params(7));
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (const auto as : a.graph.ases()) {
    EXPECT_EQ(a.graph.degree(as), b.graph.degree(as));
  }
}

TEST(TopologyGen, DifferentSeedsDiffer) {
  const Topology a = generate_topology(small_params(1));
  const Topology b = generate_topology(small_params(2));
  // Edge sets should differ somewhere (counts may coincide; check degrees).
  bool any_different = a.graph.edge_count() != b.graph.edge_count();
  for (const auto as : a.graph.ases()) {
    if (a.graph.degree(as) != b.graph.degree(as)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(TopologyGen, Tier1FormsFullPeerClique) {
  const Topology topo = generate_topology(small_params());
  for (std::size_t i = 0; i < topo.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier1.size(); ++j) {
      EXPECT_EQ(topo.graph.relationship(topo.tier1[i], topo.tier1[j]),
                RelKind::kPeer);
    }
  }
}

TEST(TopologyGen, Tier1HasNoProviders) {
  const Topology topo = generate_topology(small_params());
  for (const auto as : topo.tier1) {
    EXPECT_TRUE(topo.graph.providers(as).empty())
        << util::to_string(as) << " must be provider-free";
  }
}

TEST(TopologyGen, EveryNonTier1HasAProvider) {
  const Topology topo = generate_topology(small_params());
  for (const auto& group : {topo.tier2, topo.tier3, topo.stubs}) {
    for (const auto as : group) {
      EXPECT_FALSE(topo.graph.providers(as).empty())
          << util::to_string(as) << " is disconnected from the hierarchy";
    }
  }
}

TEST(TopologyGen, StubsHaveNoCustomers) {
  const Topology topo = generate_topology(small_params());
  for (const auto as : topo.stubs) {
    EXPECT_TRUE(topo.graph.customers(as).empty());
  }
}

TEST(TopologyGen, WellKnownAsNumbersPresent) {
  const Topology topo = generate_topology(small_params());
  EXPECT_TRUE(topo.graph.contains(util::AsNumber(well_known::kAtt)));
  EXPECT_TRUE(topo.graph.contains(util::AsNumber(well_known::kGte)));
  EXPECT_TRUE(topo.graph.contains(util::AsNumber(well_known::kGlobalCrossing)));
  EXPECT_EQ(topo.tier_of(util::AsNumber(7018)), Tier::kTier1);
}

TEST(TopologyGen, Tier1DegreesDominateTier2) {
  // The degree-realism property the inference heuristic depends on:
  // the average Tier-1 degree clearly exceeds the average Tier-2 degree.
  const Topology topo = generate_topology(small_params());
  double tier1_avg = 0;
  for (const auto as : topo.tier1) {
    tier1_avg += static_cast<double>(topo.graph.degree(as));
  }
  tier1_avg /= static_cast<double>(topo.tier1.size());
  double tier2_avg = 0;
  for (const auto as : topo.tier2) {
    tier2_avg += static_cast<double>(topo.graph.degree(as));
  }
  tier2_avg /= static_cast<double>(topo.tier2.size());
  EXPECT_GT(tier1_avg, tier2_avg);
}

TEST(TopologyGen, RejectsDegenerateParams) {
  GeneratorParams p = small_params();
  p.tier1_count = 1;
  EXPECT_THROW(generate_topology(p), std::invalid_argument);
  p = small_params();
  p.max_stub_providers = 1;
  EXPECT_THROW(generate_topology(p), std::invalid_argument);
}

// Property sweep: multihoming rate tracks the parameter across seeds.
class TopologyMultihoming : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyMultihoming, RateNearParameter) {
  GeneratorParams p = small_params(GetParam());
  p.stub_count = 400;
  p.stub_multihome_prob = 0.6;
  const Topology topo = generate_topology(p);
  std::size_t multihomed = 0;
  for (const auto as : topo.stubs) {
    if (topo.graph.providers(as).size() >= 2) ++multihomed;
  }
  const double rate =
      static_cast<double>(multihomed) / static_cast<double>(topo.stubs.size());
  EXPECT_NEAR(rate, 0.6, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyMultihoming,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace bgpolicy::topo
