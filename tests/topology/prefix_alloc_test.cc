#include "topology/prefix_alloc.h"

#include <gtest/gtest.h>

namespace bgpolicy::topo {
namespace {

Topology small_topo(std::uint64_t seed = 1) {
  GeneratorParams p;
  p.seed = seed;
  p.tier1_count = 4;
  p.tier2_count = 8;
  p.tier3_count = 20;
  p.stub_count = 100;
  return generate_topology(p);
}

TEST(PrefixAlloc, EveryAsOriginatesSomething) {
  const Topology topo = small_topo();
  const PrefixPlan plan = allocate_prefixes(topo, {});
  for (const auto as : topo.graph.ases()) {
    EXPECT_GE(plan.count_for(as), 1u) << util::to_string(as);
  }
}

TEST(PrefixAlloc, TransitBlocksRecorded) {
  const Topology topo = small_topo();
  const PrefixPlan plan = allocate_prefixes(topo, {});
  for (const auto& group : {topo.tier1, topo.tier2, topo.tier3}) {
    for (const auto as : group) {
      ASSERT_TRUE(plan.transit_block.contains(as));
    }
  }
  // Tier sizes: /12 for Tier-1, /14 for Tier-2, /16 for Tier-3.
  EXPECT_EQ(plan.transit_block.at(topo.tier1[0]).length(), 12);
  EXPECT_EQ(plan.transit_block.at(topo.tier2[0]).length(), 14);
  EXPECT_EQ(plan.transit_block.at(topo.tier3[0]).length(), 16);
}

TEST(PrefixAlloc, TransitBlocksAreDisjoint) {
  const Topology topo = small_topo();
  const PrefixPlan plan = allocate_prefixes(topo, {});
  std::vector<bgp::Prefix> blocks;
  for (const auto& [as, block] : plan.transit_block) blocks.push_back(block);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      EXPECT_FALSE(blocks[i].covers(blocks[j]));
      EXPECT_FALSE(blocks[j].covers(blocks[i]));
    }
  }
}

TEST(PrefixAlloc, ProviderAssignedSpaceLiesInsideProviderBlock) {
  const Topology topo = small_topo();
  PrefixAllocParams params;
  params.provider_space_prob = 0.9;  // force plenty of provider-assigned space
  const PrefixPlan plan = allocate_prefixes(topo, params);
  std::size_t assigned = 0;
  for (const auto& op : plan.prefixes) {
    if (!op.allocated_from) continue;
    ++assigned;
    const auto block = plan.transit_block.find(*op.allocated_from);
    ASSERT_NE(block, plan.transit_block.end());
    EXPECT_TRUE(block->second.covers(op.prefix))
        << op.prefix.to_string() << " not inside "
        << block->second.to_string();
  }
  EXPECT_GT(assigned, 0u);
}

TEST(PrefixAlloc, IndependentStubPrefixesDisjointFromTransitBlocks) {
  const Topology topo = small_topo();
  const PrefixPlan plan = allocate_prefixes(topo, {});
  for (const auto& op : plan.prefixes) {
    if (op.allocated_from) continue;
    if (plan.transit_block.contains(op.origin)) continue;  // transit's own
    for (const auto& [as, block] : plan.transit_block) {
      EXPECT_FALSE(block.covers(op.prefix))
          << op.prefix.to_string() << " collides with " << util::to_string(as);
    }
  }
}

TEST(PrefixAlloc, ByOriginIndexIsConsistent) {
  const Topology topo = small_topo();
  const PrefixPlan plan = allocate_prefixes(topo, {});
  for (const auto& [origin, indices] : plan.by_origin) {
    for (const auto index : indices) {
      ASSERT_LT(index, plan.prefixes.size());
      EXPECT_EQ(plan.prefixes[index].origin, origin);
    }
  }
}

TEST(PrefixAlloc, DeterministicForSeed) {
  const Topology topo = small_topo();
  const PrefixPlan a = allocate_prefixes(topo, {});
  const PrefixPlan b = allocate_prefixes(topo, {});
  ASSERT_EQ(a.prefixes.size(), b.prefixes.size());
  for (std::size_t i = 0; i < a.prefixes.size(); ++i) {
    EXPECT_EQ(a.prefixes[i].prefix, b.prefixes[i].prefix);
    EXPECT_EQ(a.prefixes[i].origin, b.prefixes[i].origin);
  }
}

TEST(PrefixAlloc, StubPrefixCountRespectsCap) {
  const Topology topo = small_topo();
  PrefixAllocParams params;
  params.max_stub_prefixes = 5;
  const PrefixPlan plan = allocate_prefixes(topo, params);
  for (const auto as : topo.stubs) {
    EXPECT_LE(plan.count_for(as), 5u);
  }
}

}  // namespace
}  // namespace bgpolicy::topo
