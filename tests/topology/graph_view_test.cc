#include "topology/graph_view.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace bgpolicy::topo {
namespace {

using namespace bgpolicy::testing;

TEST(GraphView, IdsFollowInsertionOrderAndRoundTrip) {
  const auto g = figure1_graph();
  const GraphView view(g);
  ASSERT_EQ(view.size(), g.ases().size());
  for (std::size_t i = 0; i < g.ases().size(); ++i) {
    const AsNumber as = g.ases()[i];
    EXPECT_EQ(view.id_of(as), static_cast<GraphView::Id>(i));
    EXPECT_EQ(view.as_of(static_cast<GraphView::Id>(i)), as);
  }
  EXPECT_EQ(view.id_of(AsNumber(9999)), GraphView::kInvalidId);
}

TEST(GraphView, CsrRowsMirrorNeighborOrderAndRelationships) {
  const auto g = figure1_graph();
  const GraphView view(g);
  for (const AsNumber as : g.ases()) {
    const GraphView::Id id = view.id_of(as);
    const auto neighbors = g.neighbors(as);
    ASSERT_EQ(view.degree(id), neighbors.size());
    std::uint32_t slot = view.arcs_begin(id);
    for (const Neighbor& n : neighbors) {
      EXPECT_EQ(view.as_of(view.arc_to(slot)), n.as);
      EXPECT_EQ(view.arc_rel(slot), n.kind);
      // arc_rel is the Neighbor::kind perspective; invert() must agree
      // with the reverse relationship() probe.
      EXPECT_EQ(invert(view.arc_rel(slot)), *g.relationship(n.as, as));
      ++slot;
    }
    EXPECT_EQ(slot, view.arcs_end(id));
  }
}

TEST(GraphView, OffsetsSpanAllArcs) {
  const auto f = figure3_graph();
  const GraphView view(f.graph);
  const auto offsets = view.offsets();
  ASSERT_EQ(offsets.size(), view.size() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), f.graph.edge_count() * 2);
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    EXPECT_LE(offsets[i], offsets[i + 1]);
  }
}

}  // namespace
}  // namespace bgpolicy::topo
