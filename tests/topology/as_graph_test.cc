#include "topology/as_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/fixtures.h"

namespace bgpolicy::topo {
namespace {

using namespace bgpolicy::testing;

TEST(AsGraph, AddAsIsIdempotent) {
  AsGraph g;
  g.add_as(kAs1);
  g.add_as(kAs1);
  EXPECT_EQ(g.as_count(), 1u);
}

TEST(AsGraph, EdgePreconditions) {
  AsGraph g;
  g.add_as(kAs1);
  g.add_as(kAs2);
  EXPECT_THROW(g.add_provider_customer(kAs1, kAs1), std::invalid_argument);
  EXPECT_THROW(g.add_provider_customer(kAs1, kAs3), std::invalid_argument);
  g.add_provider_customer(kAs1, kAs2);
  EXPECT_THROW(g.add_peer_peer(kAs1, kAs2), std::invalid_argument);
}

TEST(AsGraph, RelationshipPerspectives) {
  const AsGraph g = figure1_graph();
  // Fig. 1 caption: AS2 is the provider of AS4, AS4 is a customer of AS2,
  // AS3 peers with AS4.
  EXPECT_EQ(g.relationship(kAs2, kAs4), RelKind::kCustomer);
  EXPECT_EQ(g.relationship(kAs4, kAs2), RelKind::kProvider);
  EXPECT_EQ(g.relationship(kAs3, kAs4), RelKind::kPeer);
  EXPECT_EQ(g.relationship(kAs4, kAs3), RelKind::kPeer);
  EXPECT_FALSE(g.relationship(kAs1, kAs4));
}

TEST(AsGraph, NeighborFilters) {
  const AsGraph g = figure1_graph();
  const auto customers = g.customers(kAs2);
  EXPECT_NE(std::find(customers.begin(), customers.end(), kAs4),
            customers.end());
  const auto providers = g.providers(kAs4);
  EXPECT_EQ(providers, std::vector<util::AsNumber>{kAs2});
  const auto peers = g.peers(kAs4);
  EXPECT_EQ(peers, std::vector<util::AsNumber>{kAs3});
}

TEST(AsGraph, DegreeCountsAllNeighbors) {
  const AsGraph g = figure1_graph();
  EXPECT_EQ(g.degree(kAs2), 4u);  // AS5, AS6 providers; AS4 customer; AS1 peer
  EXPECT_EQ(g.degree(kAs4), 2u);
}

TEST(AsGraph, CustomerConeFollowsOnlyP2CEdges) {
  const AsGraph g = figure1_graph();
  // AS5's cone: AS1, AS2 direct; AS4 via AS2.  AS3 is reachable only
  // through AS6 or the AS3-AS4 peer edge, so it is not in the cone.
  EXPECT_TRUE(g.in_customer_cone(kAs5, kAs1));
  EXPECT_TRUE(g.in_customer_cone(kAs5, kAs2));
  EXPECT_TRUE(g.in_customer_cone(kAs5, kAs4));
  EXPECT_FALSE(g.in_customer_cone(kAs5, kAs3));
  EXPECT_FALSE(g.in_customer_cone(kAs5, kAs5));
  EXPECT_FALSE(g.in_customer_cone(kAs4, kAs5));

  const auto cone = g.customer_cone(kAs5);
  EXPECT_EQ(cone.size(), 3u);
}

TEST(AsGraph, FindCustomerPathReturnsDownhillChain) {
  const AsGraph g = figure1_graph();
  const auto path = g.find_customer_path(kAs5, kAs4);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), kAs5);
  EXPECT_EQ(path[1], kAs2);
  EXPECT_EQ(path.back(), kAs4);
  EXPECT_TRUE(g.find_customer_path(kAs5, kAs3).empty());
}

TEST(AsGraph, ValleyFreeAcceptsLegalShapes) {
  const AsGraph g = figure1_graph();
  using util::AsNumber;
  // Pure downhill (observer at top): 5 -> 2 -> 4.
  EXPECT_TRUE(g.is_valley_free(std::vector<AsNumber>{kAs5, kAs2, kAs4}));
  // Uphill then peer then downhill: 4 up to 2? No — read observer->origin:
  // path "1 2 4": AS1 peers AS2, AS2 provider of AS4: a route from AS4
  // climbing to AS2 then crossing the peer edge to AS1.
  EXPECT_TRUE(g.is_valley_free(std::vector<AsNumber>{kAs1, kAs2, kAs4}));
  // Peer at the top: 5 -> 6 across the peering, then down to 3.
  EXPECT_TRUE(g.is_valley_free(std::vector<AsNumber>{kAs5, kAs6, kAs3}));
}

TEST(AsGraph, ValleyFreeRejectsValleys) {
  const AsGraph g = figure1_graph();
  using util::AsNumber;
  // "2 5 6": AS2 would be receiving a route its provider AS5 learned from a
  // peer — legal.  The valley is "5 2 1"? AS2 announcing a peer route (from
  // AS1) up to AS5 — illegal.
  EXPECT_TRUE(g.is_valley_free(std::vector<AsNumber>{kAs2, kAs5, kAs6}));
  EXPECT_FALSE(g.is_valley_free(std::vector<AsNumber>{kAs5, kAs2, kAs1}));
  // Two peer crossings: 3 - 4 ... 1 - 2: "1 2 4 3" has peer 1-2 then down
  // 2-4 then peer 4-3 read from the right: up?? — origin AS3 announces to
  // peer AS4 (peer hop), AS4 announces peer route to provider AS2 — illegal.
  EXPECT_FALSE(g.is_valley_free(std::vector<AsNumber>{kAs1, kAs2, kAs4, kAs3}));
  // Unannotated adjacency.
  EXPECT_FALSE(g.is_valley_free(std::vector<AsNumber>{kAs1, kAs4}));
}

TEST(AsGraph, ValleyFreeTrivialPaths) {
  const AsGraph g = figure1_graph();
  EXPECT_TRUE(g.is_valley_free(std::vector<util::AsNumber>{}));
  EXPECT_TRUE(g.is_valley_free(std::vector<util::AsNumber>{kAs1}));
}

}  // namespace
}  // namespace bgpolicy::topo
