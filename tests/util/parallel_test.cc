#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace bgpolicy::util {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ParallelFor, SingleThreadRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(1, 100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(threads, hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  bool called = false;
  parallel_for(4, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(64, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 64u * 63u / 2);
  }
}

TEST(ThreadPool, SizeOneRunsSequentiallyInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, GrainBatchesStillCoverEverything) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);  // not a multiple of the grain
  pool.parallel_for(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, SequentialExecutorHasNoPool) {
  const Executor sequential;
  EXPECT_EQ(sequential.threads(), 1u);
  EXPECT_EQ(sequential.pool(), nullptr);

  const Executor explicit_one(1);
  EXPECT_EQ(explicit_one.threads(), 1u);
  EXPECT_EQ(explicit_one.pool(), nullptr);

  // The zero knob resolves to hardware concurrency (>= 1).
  const Executor resolved(0);
  EXPECT_GE(resolved.threads(), 1u);
}

TEST(Executor, SharedPoolRunsManyShardAndMergeCalls) {
  const Executor executor(4);
  ASSERT_NE(executor.pool(), nullptr);
  EXPECT_EQ(executor.pool()->size(), 4u);

  // The same executor serves many batches back to back — the long-lived
  // usage pattern Experiment and sweep rely on — with index-ordered merges.
  for (int round = 0; round < 3; ++round) {
    std::vector<std::size_t> merged;
    shard_and_merge(
        executor, 37, [](std::size_t i) { return i * 2; },
        [&](std::size_t i, std::size_t& value) {
          EXPECT_EQ(value, i * 2);
          merged.push_back(i);
        });
    ASSERT_EQ(merged.size(), 37u);
    for (std::size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i], i);
  }
}

TEST(Executor, ExecutorOrPrefersCallerExecutor) {
  const Executor shared(3);
  std::unique_ptr<Executor> owned;
  const Executor& chosen = executor_or(&shared, 8, 100, owned);
  EXPECT_EQ(&chosen, &shared);
  EXPECT_EQ(owned, nullptr);

  // Without a caller executor, a one-shot is built from the knob, clamped
  // to the available work so tiny loops never spawn idle workers.
  std::unique_ptr<Executor> built;
  const Executor& fallback = executor_or(nullptr, 8, 2, built);
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(&fallback, built.get());
  EXPECT_EQ(fallback.threads(), 2u);

  std::unique_ptr<Executor> tiny;
  EXPECT_EQ(executor_or(nullptr, 8, 1, tiny).pool(), nullptr);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

}  // namespace
}  // namespace bgpolicy::util
