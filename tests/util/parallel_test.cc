#include "util/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace bgpolicy::util {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ParallelFor, SingleThreadRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(1, 100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(threads, hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  bool called = false;
  parallel_for(4, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(64, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 64u * 63u / 2);
  }
}

TEST(ThreadPool, SizeOneRunsSequentiallyInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(64, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, GrainBatchesStillCoverEverything) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);  // not a multiple of the grain
  pool.parallel_for(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

}  // namespace
}  // namespace bgpolicy::util
