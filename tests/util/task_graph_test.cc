// The util::TaskGraph contract (ISSUE 5): dependency edges are honored
// (diamond), nested submission from a running worker drains through
// worker-loan instead of deadlocking, the first failure cancels every
// not-yet-started node and rethrows from run(), a sequential executor
// executes nodes in deterministic lowest-id (program) order, and parallel
// runs produce the same results as sequential ones.
#include "util/parallel.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace bgpolicy::util {
namespace {

TEST(TaskGraph, DiamondDependenciesRunInOrder) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const Executor executor(threads);
    TaskGraph graph;
    std::mutex mutex;
    std::vector<int> order;
    const auto record = [&](int label) {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(label);
    };

    const auto a = graph.add([&] { record(0); });
    const auto b = graph.add([&] { record(1); }, {a});
    const auto c = graph.add([&] { record(2); }, {a});
    graph.add([&] { record(3); }, {b, c});
    graph.run(executor);

    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), 0);  // the source runs first
    EXPECT_EQ(order.back(), 3);   // the sink runs last
  }
}

TEST(TaskGraph, SequentialExecutorRunsNodesInProgramOrder) {
  const Executor executor(1);
  TaskGraph graph;
  std::vector<int> order;
  // b depends on nothing, yet was added after a: lowest-ready-id-first must
  // reproduce the exact add order when everything is independent.
  graph.add([&] { order.push_back(0); });
  graph.add([&] { order.push_back(1); });
  const auto c = graph.add([&] { order.push_back(2); });
  graph.add([&] { order.push_back(3); }, {c});
  graph.run(executor);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TaskGraph, NestedSubmissionFromAWorkerLoansInsteadOfDeadlocking) {
  // The production shape: a node fans out chunk subtasks and waits on
  // them.  At threads == 1 the waiting "thread" must execute the chunks
  // itself (worker loan); at threads == 4 the chunks interleave.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const Executor executor(threads);
    TaskGraph graph;
    std::atomic<int> sum{0};
    int observed = -1;
    graph.add([&] {
      std::vector<TaskGraph::NodeId> chunks;
      for (int i = 1; i <= 8; ++i) {
        chunks.push_back(graph.submit([&sum, i] { sum += i; }));
      }
      graph.wait(chunks);
      observed = sum.load();
    });
    graph.run(executor);
    EXPECT_EQ(observed, 36) << "threads=" << threads;
  }
}

TEST(TaskGraph, NestedSubmissionCanDependOnFinishedNodes) {
  const Executor executor(2);
  TaskGraph graph;
  std::atomic<int> value{0};
  const auto seed = graph.add([&] { value = 10; });
  graph.add(
      [&] {
        // `seed` is already done here; submitting with it as a dependency
        // must be an immediately-ready node, not a hang.
        const auto child = graph.submit([&] { value += 5; }, {seed});
        graph.wait({child});
      },
      {seed});
  graph.run(executor);
  EXPECT_EQ(value.load(), 15);
}

TEST(TaskGraph, FailurePropagatesAndSkipsDependents) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const Executor executor(threads);
    TaskGraph graph;
    std::atomic<bool> downstream_ran{false};
    const auto boom =
        graph.add([] { throw std::runtime_error("stage exploded"); });
    graph.add([&] { downstream_ran = true; }, {boom});
    EXPECT_THROW(graph.run(executor), std::runtime_error);
    EXPECT_FALSE(downstream_ran.load())
        << "a dependent of a failed node must never run (threads=" << threads
        << ")";
  }
}

TEST(TaskGraph, WaiterOnAFailedSubtaskSeesCancellation) {
  const Executor executor(1);
  TaskGraph graph;
  bool reached_after_wait = false;
  graph.add([&] {
    const auto child =
        graph.submit([] { throw std::invalid_argument("chunk failed"); });
    graph.wait({child});
    reached_after_wait = true;  // must be unreachable
  });
  // run() surfaces the *first* failure — the chunk's invalid_argument, not
  // the waiter's secondary cancellation.
  EXPECT_THROW(graph.run(executor), std::invalid_argument);
  EXPECT_FALSE(reached_after_wait);
}

TEST(TaskGraph, DependencyCycleViaWaitIsDetected) {
  // A task waiting on a node that (transitively) depends on the waiter can
  // never finish; the graph must diagnose it instead of hanging.
  const Executor executor(1);
  TaskGraph graph;
  TaskGraph::NodeId first = 0;
  std::vector<TaskGraph::NodeId> unsatisfiable;
  first = graph.add([&] { graph.wait(unsatisfiable); });
  unsatisfiable.push_back(graph.add([] {}, {first}));
  EXPECT_THROW(graph.run(executor), std::logic_error);
}

TEST(TaskGraph, UnsatisfiableWaitInsideALoanedTaskIsDetected) {
  // A waits on B; B (running as A's loaned frame) waits on C, which
  // depends on B itself — no thread is independently progressing, and the
  // detector must see through the loan ancestry instead of hanging.
  const Executor executor(1);
  TaskGraph graph;
  std::vector<TaskGraph::NodeId> unsatisfiable;
  graph.add([&] {
    const auto b = graph.submit([&] { graph.wait(unsatisfiable); });
    unsatisfiable.push_back(graph.submit([] {}, {b}));
    graph.wait({b});
  });
  EXPECT_THROW(graph.run(executor), std::logic_error);
}

TEST(TaskGraph, RejectedDependencyLeavesGraphConsistent) {
  // submit() with one valid pending dep and one unknown id must throw
  // without corrupting the valid dep's dependents (the graph then drains
  // via normal failure propagation, not an out-of-bounds access).
  const Executor executor(2);
  TaskGraph graph;
  graph.add([&] {
    const auto slow = graph.submit([] {});
    EXPECT_THROW(
        (void)graph.submit([] {}, {slow, static_cast<TaskGraph::NodeId>(999)}),
        std::logic_error);
    graph.wait({slow});  // must complete cleanly despite the rejected add
  });
  graph.run(executor);
}

TEST(TaskGraph, ParallelAndSequentialRunsProduceIdenticalResults) {
  // Index-addressed slots + a deterministic merge: the shard-and-merge
  // discipline expressed as graph nodes.
  const std::size_t n = 64;
  const auto run_with = [&](std::size_t threads) {
    const Executor executor(threads);
    TaskGraph graph;
    std::vector<std::uint64_t> slots(n, 0);
    std::vector<TaskGraph::NodeId> producers;
    producers.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      producers.push_back(graph.add([&slots, i] { slots[i] = i * i + 1; }));
    }
    std::uint64_t merged = 0;
    graph.add(
        [&] {
          for (std::size_t i = 0; i < n; ++i) merged = merged * 31 + slots[i];
        },
        producers);
    graph.run(executor);
    return merged;
  };
  EXPECT_EQ(run_with(1), run_with(4));
}

TEST(TaskGraph, EmptyGraphRunsAndSizeCounts) {
  const Executor executor(4);
  TaskGraph graph;
  graph.run(executor);  // no nodes: a no-op, not a hang
  EXPECT_EQ(graph.size(), 0u);
  graph.add([] {});
  EXPECT_EQ(graph.size(), 1u);
}

}  // namespace
}  // namespace bgpolicy::util
