#include "util/stats.h"

#include <gtest/gtest.h>

namespace bgpolicy::util {
namespace {

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicStatistics) {
  const std::vector<double> values{4.0, 1.0, 3.0, 2.0, 5.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Percent, HandlesZeroDenominator) {
  EXPECT_EQ(percent(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
  EXPECT_DOUBLE_EQ(percent(0, 4), 0.0);
}

TEST(Histogram, AccumulatesWeights) {
  Histogram h;
  h.add(3);
  h.add(3, 2);
  h.add(5);
  EXPECT_EQ(h.at(3), 3u);
  EXPECT_EQ(h.at(5), 1u);
  EXPECT_EQ(h.at(7), 0u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bins().size(), 2u);
}

TEST(RankSeries, SortsNonIncreasing) {
  const auto series = RankSeries::from("test", {3, 9, 1, 9, 4});
  EXPECT_EQ(series.values, (std::vector<std::uint64_t>{9, 9, 4, 3, 1}));
}

TEST(RenderRankSeries, IncludesLabelAndExtremes) {
  const auto series = RankSeries::from("AS1 prefixes", {100, 50, 10, 1});
  const std::string out = render_rank_series(series);
  EXPECT_NE(out.find("AS1 prefixes"), std::string::npos);
  EXPECT_NE(out.find("rank 1"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(RenderRankSeries, EmptySeriesIsJustHeader) {
  const auto series = RankSeries::from("empty", {});
  EXPECT_NE(render_rank_series(series).find("empty"), std::string::npos);
}

}  // namespace
}  // namespace bgpolicy::util
