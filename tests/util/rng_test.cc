#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bgpolicy::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(7);
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(rng.uniform(5, 5), 5u);
  EXPECT_THROW((void)rng.uniform(6, 5), std::invalid_argument);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, IndexRejectsEmpty) {
  Rng rng(1);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(4);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ParetoBoundedAndHeavyTailed) {
  Rng rng(6);
  std::size_t ones = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.pareto(1.2, 100);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
    if (v == 1) ++ones;
  }
  // Mass concentrates at the low end for alpha > 1.
  EXPECT_GT(ones, 2000u);
  EXPECT_THROW((void)rng.pareto(0.0, 10), std::invalid_argument);
  EXPECT_THROW((void)rng.pareto(1.0, 0), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(8);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(10);
  const auto sparse = rng.sample_indices(1000, 10);
  EXPECT_EQ(sparse.size(), 10u);
  std::set<std::size_t> unique(sparse.begin(), sparse.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto i : sparse) EXPECT_LT(i, 1000u);

  const auto dense = rng.sample_indices(10, 9);
  std::set<std::size_t> dense_unique(dense.begin(), dense.end());
  EXPECT_EQ(dense_unique.size(), 9u);

  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
  EXPECT_TRUE(rng.sample_indices(5, 0).empty());
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const auto first = splitmix64(state);
  const auto second = splitmix64(state);
  // Pinned values keep every seeded experiment reproducible across builds.
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(second, 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace bgpolicy::util
