#include "util/text_table.h"

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/ids.h"

#include <sstream>

namespace bgpolicy::util {
namespace {

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"AS", "% SA"});
  table.add_row({"AS1", "32"});
  table.add_row({"AS6453", "48.6"});
  const std::string out = table.render("Table 5");
  EXPECT_NE(out.find("Table 5"), std::string::npos);
  EXPECT_NE(out.find("AS6453"), std::string::npos);
  // All rows have the same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line == "Table 5") continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(100.0, 0), "100");
  EXPECT_EQ(fmt(99.955, 3), "99.955");
}

TEST(FmtCountPct, PaperStyleCell) {
  EXPECT_EQ(fmt_count_pct(611, 75.0), "611 (75%)");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b,c"});
  writer.write_row({"1", "2"});
  EXPECT_EQ(out.str(), "a,\"b,c\"\n1,2\n");
}

TEST(Ids, Formatting) {
  EXPECT_EQ(to_string(AsNumber(7018)), "AS7018");
  EXPECT_EQ(to_string(RouterId(3)), "r3");
}

TEST(Ids, OrderingAndHash) {
  EXPECT_LT(AsNumber(1), AsNumber(2));
  EXPECT_EQ(std::hash<AsNumber>{}(AsNumber(5)),
            std::hash<AsNumber>{}(AsNumber(5)));
}

}  // namespace
}  // namespace bgpolicy::util
