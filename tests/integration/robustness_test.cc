// Deterministic mutation fuzzing of every parser in the repo: corrupt
// inputs must be rejected with std::invalid_argument (or parsed, if the
// mutation happens to stay valid) — never crash, loop, or corrupt state.
#include <gtest/gtest.h>

#include "io/binary_table.h"
#include "io/table_dump.h"
#include "rpsl/generator.h"
#include "rpsl/parser.h"
#include "testing/fixtures.h"
#include "util/rng.h"

namespace bgpolicy {
namespace {

using util::Rng;

bgp::BgpTable sample_table() {
  bgp::BgpTable table{util::AsNumber(7018)};
  for (std::uint32_t i = 0; i < 20; ++i) {
    auto route = testing::make_route(
        bgp::Prefix(0x0A000000 + (i << 8), 24),
        {util::AsNumber(700 + i % 3), util::AsNumber(9000 + i)},
        90 + i % 40);
    route.add_community(bgp::Community(7018, static_cast<std::uint16_t>(
                                                 1000 + 10 * (i % 5))));
    table.add(route);
  }
  return table;
}

template <typename Bytes, typename Fn>
void mutate_and_run(const Bytes& original, std::uint64_t seed, Fn parse) {
  Rng rng(seed);
  for (int round = 0; round < 200; ++round) {
    Bytes mutated = original;
    if (mutated.empty()) break;
    const int mutation = static_cast<int>(rng.uniform(0, 3));
    const std::size_t at = rng.index(mutated.size());
    switch (mutation) {
      case 0:  // flip a byte
        mutated[at] = static_cast<typename Bytes::value_type>(
            rng.uniform(0, 255));
        break;
      case 1:  // truncate
        mutated.resize(at);
        break;
      case 2:  // duplicate a chunk
        mutated.insert(mutated.end(), mutated.begin(),
                       mutated.begin() +
                           static_cast<std::ptrdiff_t>(
                               std::min<std::size_t>(at, 64)));
        break;
      case 3:  // delete a chunk
        mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(at),
                      mutated.begin() +
                          static_cast<std::ptrdiff_t>(std::min(
                              mutated.size(), at + rng.index(32) + 1)));
        break;
    }
    try {
      parse(mutated);  // success is fine; the mutation may be harmless
    } catch (const std::invalid_argument&) {
      // expected rejection path
    }
    // anything else (crash, other exception) fails the test
  }
}

class ParserRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRobustness, TextTableDumpSurvivesMutations) {
  const std::string original = io::dump_table(sample_table());
  mutate_and_run(original, GetParam(),
                 [](const std::string& text) { (void)io::parse_table(text); });
}

TEST_P(ParserRobustness, BinaryTableSurvivesMutations) {
  const std::vector<std::uint8_t> original =
      io::serialize_table(sample_table());
  mutate_and_run(original, GetParam() ^ 0xB1, [](const auto& bytes) {
    (void)io::deserialize_table(bytes);
  });
}

TEST_P(ParserRobustness, RpslParserSurvivesMutations) {
  // The RPSL parser is lenient by design (IRR dumps are messy): it must
  // never throw at all, just skip garbage.
  topo::GeneratorParams params;
  params.seed = 3;
  params.tier1_count = 3;
  params.tier2_count = 4;
  params.tier3_count = 6;
  params.stub_count = 20;
  const auto topo = topo::generate_topology(params);
  sim::PolicySet policies;
  for (const auto as : topo.graph.ases()) {
    policies.by_as.emplace(as, sim::AsPolicy{});
  }
  rpsl::IrrGenParams irr;
  irr.coverage = 1.0;
  const std::string original = rpsl::generate_irr(topo, policies, irr);

  Rng rng(GetParam() ^ 0x1227);
  for (int round = 0; round < 100; ++round) {
    std::string mutated = original;
    const std::size_t at = rng.index(mutated.size());
    switch (rng.uniform(0, 2)) {
      case 0: mutated[at] = static_cast<char>(rng.uniform(1, 255)); break;
      case 1: mutated.resize(at); break;
      case 2:
        mutated.insert(at, "\n+ garbage continuation: :: ##\n");
        break;
    }
    EXPECT_NO_THROW((void)rpsl::parse_aut_nums(mutated));
  }
}

TEST_P(ParserRobustness, PrefixAndPathParsersSurviveMutations) {
  Rng rng(GetParam() ^ 0x99);
  const std::string prefix_base = "192.168.10.0/24";
  const std::string path_base = "7018 701 3356 64512";
  const std::string community_base = "12859:1000";
  for (int round = 0; round < 300; ++round) {
    const auto mutate = [&](std::string s) {
      if (!s.empty()) {
        const std::size_t at = rng.index(s.size());
        s[at] = static_cast<char>(rng.uniform(32, 126));
      }
      return s;
    };
    // try_parse variants must be noexcept-clean; parse variants may throw
    // std::invalid_argument only.
    (void)bgp::Prefix::try_parse(mutate(prefix_base));
    try {
      (void)bgp::AsPath::parse(mutate(path_base));
    } catch (const std::invalid_argument&) {
    }
    (void)bgp::Community::try_parse(mutate(community_base));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace bgpolicy
