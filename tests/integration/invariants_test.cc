// Cross-module property tests on full pipeline runs: the simulator's
// global invariants and the consistency between inference output and
// ground truth, swept over seeds.
#include <gtest/gtest.h>

#include "core/export_inference.h"
#include "core/import_inference.h"
#include "core/pipeline.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy {
namespace {

using core::Scenario;
using util::AsNumber;

class PipelineInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  const core::Pipeline& pipe() { return testing::shared_pipeline(GetParam()); }
};

TEST_P(PipelineInvariants, AllCollectorPathsAreValleyFree) {
  // Every path any vantage observes must be valley-free under the ground
  // truth annotations — the export rules guarantee it (Section 2.2.2).
  const auto& p = pipe();
  std::size_t checked = 0;
  p.sim.collector.for_each([&](const bgp::Prefix&,
                               std::span<const bgp::Route> routes) {
    for (const auto& route : routes) {
      ++checked;
      ASSERT_TRUE(p.topo.graph.is_valley_free(route.path.hops()))
          << "valley in " << route.path.to_string();
    }
  });
  EXPECT_GT(checked, 1000u);
}

TEST_P(PipelineInvariants, NoPathContainsLoops) {
  // Consecutive duplicates are AS-path prepending, not loops; an AS
  // reappearing after a different AS is a genuine loop.
  const auto& p = pipe();
  p.sim.collector.for_each([&](const bgp::Prefix&,
                               std::span<const bgp::Route> routes) {
    for (const auto& route : routes) {
      std::unordered_set<AsNumber> seen;
      const auto hops = route.path.hops();
      for (std::size_t i = 0; i < hops.size(); ++i) {
        if (i > 0 && hops[i] == hops[i - 1]) continue;  // prepending
        ASSERT_TRUE(seen.insert(hops[i]).second)
            << "loop in " << route.path.to_string();
      }
    }
  });
}

TEST_P(PipelineInvariants, CollectorPathsEndAtTheTrueOrigin) {
  const auto& p = pipe();
  std::unordered_map<bgp::Prefix, AsNumber> origin_of;
  for (const auto& origination : p.originations) {
    origin_of.emplace(origination.prefix, origination.origin);
  }
  p.sim.collector.for_each([&](const bgp::Prefix& prefix,
                               std::span<const bgp::Route> routes) {
    const auto it = origin_of.find(prefix);
    ASSERT_NE(it, origin_of.end());
    for (const auto& route : routes) {
      EXPECT_EQ(route.origin_as(), it->second);
    }
  });
}

TEST_P(PipelineInvariants, WithheldPrefixesNeverCrossDeniedEdges) {
  // Ground-truth check: a plain-deny selective unit means no observed path
  // may carry that prefix across the (provider <- origin) edge.
  const auto& p = pipe();
  for (const auto& unit : p.gen.truth.origin_units) {
    if (!unit.withheld || unit.via_community) continue;
    for (const auto path : p.paths.paths_for_prefix(unit.prefix)) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const bool crosses =
            path[i] == unit.provider && path[i + 1] == unit.origin;
        ASSERT_FALSE(crosses)
            << unit.prefix.to_string() << " leaked across the denied edge";
      }
    }
  }
}

TEST_P(PipelineInvariants, SaPrefixesScoreWellAgainstTruthOracle) {
  // Running the SA algorithm with inferred relationships should agree with
  // running it on ground truth for the vast majority of prefixes.
  const auto& p = pipe();
  const AsNumber provider{1};
  const auto inferred_run =
      core::infer_sa_prefixes(p.table_for(provider), provider,
                              p.inferred_graph, p.inferred_oracle());
  const auto truth_run = core::infer_sa_prefixes(
      p.table_for(provider), provider, p.topo.graph, p.truth_oracle());

  std::unordered_set<bgp::Prefix> truth_sa;
  for (const auto& sa : truth_run.sa_prefixes) truth_sa.insert(sa.prefix);
  std::size_t agree = 0;
  for (const auto& sa : inferred_run.sa_prefixes) {
    if (truth_sa.contains(sa.prefix)) ++agree;
  }
  ASSERT_GT(truth_run.sa_count, 0u);
  // Precision stays high; recall is bounded by inference coverage (origins
  // whose cone membership the path data never reveals), so it gets the
  // looser bound — the regime the paper itself operated in.
  EXPECT_GT(util::percent(agree, inferred_run.sa_count), 85.0);
  EXPECT_GT(util::percent(agree, truth_run.sa_count), 75.0);
}

TEST_P(PipelineInvariants, ImportTypicalityMatchesConfiguredRates) {
  // With the truth oracle the measured atypicality must reflect only the
  // injected deviations, never exceed a loose bound.
  const auto& p = pipe();
  for (const auto vantage : p.vantage.looking_glass) {
    const auto result = core::analyze_import_typicality(
        p.sim.looking_glass.at(vantage), p.truth_oracle());
    if (result.comparable_prefixes < 20) continue;
    EXPECT_GT(result.percent_typical, 80.0) << util::to_string(vantage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineInvariants,
                         ::testing::Values(42, 1234, 98765));

}  // namespace
}  // namespace bgpolicy
