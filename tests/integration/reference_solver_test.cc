// Differential test for the propagation engine.
//
// Under uniform typical policies (customer > peer > provider, no export
// rules), the stable routing solution is unique and computable by the
// classic three-stage construction:
//   stage 1  customer routes: shortest provider-to-customer chains up from
//            the origin;
//   stage 2  peer routes: one peer hop onto a customer route;
//   stage 3  provider routes: whatever a provider's own best is, one hop
//            down, relaxed to a fixpoint.
// Ties break exactly as the engine does: shorter AS path first, then the
// lowest announcing-neighbor AS number (router-id step).
//
// The event-driven engine must agree with this independent solver on
// best-route class, path length, and chosen neighbor for every AS, across
// random hierarchical topologies.
#include <gtest/gtest.h>

#include <limits>

#include "sim/propagation.h"
#include "testing/fixtures.h"
#include "topology/topology_gen.h"

namespace bgpolicy {
namespace {

using sim::PropagationEngine;
using topo::RelKind;
using util::AsNumber;

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

struct Choice {
  std::size_t length = kInf;
  AsNumber via;  // announcing neighbor
  RelKind cls = RelKind::kCustomer;
  bool self = false;
};

// Computes the unique stable solution for `origin` on `graph`.
std::unordered_map<AsNumber, Choice> reference_solution(
    const topo::AsGraph& graph, AsNumber origin) {
  // Stage 1: customer-route distance (shortest downhill chain, ties by
  // lowest neighbor AS number).
  std::unordered_map<AsNumber, std::size_t> dist_cust;
  std::unordered_map<AsNumber, AsNumber> via_cust;
  dist_cust[origin] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto as : graph.ases()) {
      for (const auto n : graph.customers(as)) {
        const auto it = dist_cust.find(n);
        if (it == dist_cust.end()) continue;
        const std::size_t candidate = it->second + 1;
        const auto mine = dist_cust.find(as);
        if (mine == dist_cust.end() || candidate < mine->second ||
            (candidate == mine->second && n < via_cust.at(as))) {
          dist_cust[as] = candidate;
          via_cust[as] = n;
          changed = true;
        }
      }
    }
  }

  std::unordered_map<AsNumber, Choice> best;
  best[origin] = {0, origin, RelKind::kCustomer, true};

  // Customer class wins wherever it exists.
  for (const auto& [as, dist] : dist_cust) {
    if (as == origin) continue;
    best[as] = {dist, via_cust.at(as), RelKind::kCustomer, false};
  }

  // Stage 2: peer routes for ASes without a customer route.
  for (const auto as : graph.ases()) {
    if (best.contains(as)) continue;
    Choice choice;
    for (const auto p : graph.peers(as)) {
      const auto it = dist_cust.find(p);
      if (it == dist_cust.end()) continue;
      const std::size_t length = it->second + 1;
      if (length < choice.length ||
          (length == choice.length && p < choice.via)) {
        choice = {length, p, RelKind::kPeer, false};
      }
    }
    if (choice.length != kInf) best[as] = choice;
  }

  // Stage 3: provider routes, relaxed to a fixpoint (a provider's best may
  // itself be a provider route).
  changed = true;
  while (changed) {
    changed = false;
    for (const auto as : graph.ases()) {
      if (best.contains(as) && best.at(as).cls != RelKind::kProvider) continue;
      Choice choice =
          best.contains(as) ? best.at(as) : Choice{};
      for (const auto pr : graph.providers(as)) {
        const auto it = best.find(pr);
        if (it == best.end()) continue;
        const std::size_t length = it->second.length + 1;
        if (length < choice.length ||
            (length == choice.length && pr < choice.via)) {
          choice = {length, pr, RelKind::kProvider, false};
          changed = true;
        }
      }
      if (choice.length != kInf) best[as] = choice;
    }
  }
  return best;
}

class ReferenceSolver : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReferenceSolver, EngineMatchesThreeStageSolution) {
  topo::GeneratorParams params;
  params.seed = GetParam();
  params.tier1_count = 3;
  params.tier2_count = 5;
  params.tier3_count = 10;
  params.stub_count = 25;
  const auto topo = topo::generate_topology(params);
  const auto policies = testing::typical_policies(topo.graph);
  const PropagationEngine engine(topo.graph, policies);

  // Check every 4th AS as origin (keeps runtime modest, sweeps all roles).
  std::size_t origin_index = 0;
  for (const auto origin : topo.graph.ases()) {
    if (origin_index++ % 4 != 0) continue;
    const bgp::Prefix prefix(0x0A000000, 24);
    const auto state = engine.propagate({prefix, origin});
    ASSERT_TRUE(state.converged);
    const auto reference = reference_solution(topo.graph, origin);

    for (const auto as : topo.graph.ases()) {
      const bgp::Route* engine_best = state.best_at(as);
      const auto it = reference.find(as);
      if (it == reference.end()) {
        EXPECT_EQ(engine_best, nullptr)
            << util::to_string(as) << " should be unreachable from "
            << util::to_string(origin);
        continue;
      }
      ASSERT_NE(engine_best, nullptr)
          << util::to_string(as) << " lost reachability to "
          << util::to_string(origin);
      if (it->second.self) {
        EXPECT_TRUE(engine_best->self_originated());
        continue;
      }
      EXPECT_EQ(engine_best->path.length(), it->second.length)
          << util::to_string(as) << " -> " << util::to_string(origin)
          << " path " << engine_best->path.to_string();
      EXPECT_EQ(engine_best->learned_from, it->second.via)
          << util::to_string(as) << " -> " << util::to_string(origin);
      const auto rel = topo.graph.relationship(as, engine_best->learned_from);
      ASSERT_TRUE(rel.has_value());
      EXPECT_EQ(*rel, it->second.cls)
          << util::to_string(as) << " -> " << util::to_string(origin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceSolver,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace bgpolicy
