// The artifact codec contract (ISSUE 4): every staged artifact round-trips
// through its binary encoding with full behavioral fidelity (downstream
// products are byte-identical whether computed from original or decoded
// artifacts), encoding is a pure function of content (re-encoding a decoded
// artifact reproduces the bytes), and every flavor of damaged input —
// truncation, bit corruption, version or kind mismatch — raises
// std::invalid_argument instead of yielding a wrong artifact.
#include "io/artifact_codec.h"

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "asrel/relationships.h"
#include "asrel/tier_classify.h"
#include "core/scenario.h"

namespace bgpolicy::io {
namespace {

using util::AsNumber;

/// One fully staged small-scenario experiment, shared across tests.
core::Experiment& shared_experiment() {
  static core::Experiment* experiment = [] {
    core::RunOptions options;
    options.threads = 1;
    auto* e = new core::Experiment(core::Scenario::small(21), options);
    e->run();
    return e;
  }();
  return *experiment;
}

TEST(ArtifactCodec, GroundTruthRoundtripIsContentPure) {
  const core::GroundTruth& truth = shared_experiment().truth();
  const std::vector<std::uint8_t> bytes = encode(truth);
  const core::GroundTruth decoded = decode_ground_truth(bytes);
  // Re-encoding the decoded artifact must reproduce the bytes exactly —
  // the property the content-addressed cache keys chain on.
  EXPECT_EQ(encode(decoded), bytes);

  // Structural spot checks, including the orderings downstream stages are
  // sensitive to (AS insertion order, per-edge creation order).
  EXPECT_EQ(decoded.topo.graph.as_count(), truth.topo.graph.as_count());
  ASSERT_EQ(decoded.topo.graph.edges().size(), truth.topo.graph.edges().size());
  for (std::size_t i = 0; i < truth.topo.graph.edges().size(); ++i) {
    EXPECT_EQ(decoded.topo.graph.edges()[i], truth.topo.graph.edges()[i]);
  }
  for (const AsNumber as : truth.topo.graph.ases()) {
    const auto expected = truth.topo.graph.neighbors(as);
    const auto actual = decoded.topo.graph.neighbors(as);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]);
    }
  }
  EXPECT_EQ(decoded.plan.prefixes.size(), truth.plan.prefixes.size());
  EXPECT_EQ(decoded.plan.by_origin.size(), truth.plan.by_origin.size());
  EXPECT_EQ(decoded.gen.policies.by_as.size(), truth.gen.policies.by_as.size());
  EXPECT_EQ(decoded.originations.size(), truth.originations.size());
}

TEST(ArtifactCodec, SimulatingFromDecodedTruthIsByteIdentical) {
  core::Experiment& experiment = shared_experiment();
  const core::GroundTruth decoded =
      decode_ground_truth(encode(experiment.truth()));
  // The decisive fidelity check: running the Simulate stage on the decoded
  // ground truth must reproduce the original simulation artifact to the
  // byte (graph neighbor order drives propagation event order).
  const core::SimArtifact resimulated =
      core::simulate(experiment.scenario(), decoded, 1);
  EXPECT_EQ(encode(resimulated), encode(experiment.sim()));
}

TEST(ArtifactCodec, SimArtifactRoundtrip) {
  const core::SimArtifact& sim = shared_experiment().sim();
  const std::vector<std::uint8_t> bytes = encode(sim);
  const core::SimArtifact decoded = decode_sim_artifact(bytes);
  EXPECT_EQ(encode(decoded), bytes);
  EXPECT_EQ(decoded.sim.collector.route_count(),
            sim.sim.collector.route_count());
  EXPECT_EQ(decoded.sim.looking_glass.size(), sim.sim.looking_glass.size());
  EXPECT_EQ(decoded.sim.best_only.size(), sim.sim.best_only.size());
  EXPECT_EQ(decoded.sim.process_events, sim.sim.process_events);
  EXPECT_EQ(decoded.vantage.collector_peers, sim.vantage.collector_peers);
}

TEST(ArtifactCodec, ObservationsRoundtripAndInferenceFidelity) {
  core::Experiment& experiment = shared_experiment();
  const core::Observations& observations = experiment.observations();
  const std::vector<std::uint8_t> bytes = encode(observations);
  const core::Observations decoded = decode_observations(bytes);
  EXPECT_EQ(encode(decoded), bytes);

  EXPECT_EQ(decoded.irr_text, observations.irr_text);
  ASSERT_EQ(decoded.irr_objects.size(), observations.irr_objects.size());
  for (std::size_t i = 0; i < observations.irr_objects.size(); ++i) {
    EXPECT_EQ(decoded.irr_objects[i], observations.irr_objects[i]);
  }
  EXPECT_EQ(decoded.observed_paths.path_count(),
            observations.observed_paths.path_count());
  EXPECT_EQ(decoded.paths.path_count(), observations.paths.path_count());
  EXPECT_EQ(decoded.paths.adjacency_count(),
            observations.paths.adjacency_count());

  // Inference over decoded observations matches inference over originals.
  asrel::GaoParams params;
  params.threads = 1;
  const core::InferenceProducts from_decoded =
      core::infer_relationships(decoded, params);
  const core::InferenceProducts from_original =
      core::infer_relationships(observations, params);
  EXPECT_EQ(asrel::canonical_serialize(from_decoded.inferred),
            asrel::canonical_serialize(from_original.inferred));
  EXPECT_EQ(asrel::canonical_serialize(from_decoded.tiers),
            asrel::canonical_serialize(from_original.tiers));
}

TEST(ArtifactCodec, InferenceProductsRoundtrip) {
  const core::InferenceProducts& inference = shared_experiment().inference();
  const std::vector<std::uint8_t> bytes = encode(inference);
  const core::InferenceProducts decoded = decode_inference(bytes);
  EXPECT_EQ(encode(decoded), bytes);
  EXPECT_EQ(asrel::canonical_serialize(decoded.inferred),
            asrel::canonical_serialize(inference.inferred));
  EXPECT_EQ(asrel::canonical_serialize(decoded.tiers),
            asrel::canonical_serialize(inference.tiers));
  // The annotated graph is rebuilt from the classification.
  EXPECT_EQ(decoded.inferred_graph.as_count(),
            inference.inferred_graph.as_count());
  EXPECT_EQ(decoded.inferred_graph.edge_count(),
            inference.inferred_graph.edge_count());
}

TEST(ArtifactCodec, AnalysisSuiteRoundtrip) {
  const core::AnalysisSuite& suite = shared_experiment().analyses();
  const std::vector<std::uint8_t> bytes = encode(suite);
  const core::AnalysisSuite decoded = decode_analysis_suite(bytes);
  EXPECT_EQ(encode(decoded), bytes);
  EXPECT_EQ(core::canonical_serialize(decoded),
            core::canonical_serialize(suite));
}

TEST(ArtifactCodec, TruncatedInputThrowsAtEveryLength) {
  const std::vector<std::uint8_t> bytes = encode(shared_experiment().inference());
  // Every proper prefix must be rejected (header first, then payload-length
  // mismatch); step keeps the loop fast on larger artifacts.
  for (std::size_t size = 0; size < bytes.size();
       size += std::max<std::size_t>(1, bytes.size() / 257)) {
    EXPECT_THROW(
        (void)decode_inference(std::span<const std::uint8_t>(bytes.data(), size)),
        std::invalid_argument)
        << "accepted a " << size << "-byte prefix of " << bytes.size();
  }
}

TEST(ArtifactCodec, BitCorruptionThrows) {
  const std::vector<std::uint8_t> original = encode(shared_experiment().sim());
  // Flip one byte at several positions across header and payload: the
  // checksum (or a structural check) must catch each.
  for (const double at : {0.0, 0.1, 0.5, 0.9}) {
    std::vector<std::uint8_t> corrupted = original;
    const std::size_t index =
        std::min(corrupted.size() - 1,
                 static_cast<std::size_t>(at * static_cast<double>(
                                                   corrupted.size())));
    corrupted[index] ^= 0x40;
    EXPECT_THROW((void)decode_sim_artifact(corrupted), std::invalid_argument)
        << "accepted corruption at byte " << index;
  }
}

TEST(ArtifactCodec, VersionAndKindMismatchThrow) {
  std::vector<std::uint8_t> bytes = encode(shared_experiment().inference());
  // Bytes 4..5 hold the little-endian codec version.
  std::vector<std::uint8_t> future = bytes;
  future[4] = static_cast<std::uint8_t>(kArtifactCodecVersion + 1);
  EXPECT_THROW((void)decode_inference(future), std::invalid_argument);

  // A valid artifact of a different kind must be rejected up front.
  EXPECT_THROW((void)decode_sim_artifact(bytes), std::invalid_argument);
  EXPECT_THROW((void)decode_ground_truth(bytes), std::invalid_argument);

  // Foreign bytes entirely.
  const std::vector<std::uint8_t> garbage = {'n', 'o', 'p', 'e', 0, 1, 2, 3};
  EXPECT_THROW((void)decode_observations(garbage), std::invalid_argument);
  EXPECT_THROW((void)decode_analysis_suite({}), std::invalid_argument);
}

}  // namespace
}  // namespace bgpolicy::io
