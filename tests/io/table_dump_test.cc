#include "io/table_dump.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::io {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

bgp::BgpTable sample_table() {
  bgp::BgpTable table{AsNumber(7018)};
  auto r1 = make_route(Prefix::parse("10.0.0.0/24"),
                       {AsNumber(701), AsNumber(3356)}, 90);
  r1.med = 5;
  r1.origin = bgp::Origin::kEgp;
  r1.add_community(bgp::Community(7018, 1000));
  r1.add_community(bgp::Community(7018, 4000));
  table.add(r1);
  table.add(make_route(Prefix::parse("10.0.0.0/24"), {AsNumber(1239)}, 100));
  table.add(make_route(Prefix::parse("192.168.0.0/16"), {AsNumber(701)}, 80));
  return table;
}

TEST(TableDump, RoundTripPreservesEverything) {
  const auto original = sample_table();
  const std::string text = dump_table(original);
  const auto parsed = parse_table(text);

  EXPECT_EQ(parsed.owner(), original.owner());
  EXPECT_EQ(parsed.prefix_count(), original.prefix_count());
  EXPECT_EQ(parsed.route_count(), original.route_count());

  const auto p = Prefix::parse("10.0.0.0/24");
  ASSERT_EQ(parsed.routes(p).size(), 2u);
  for (const auto& route : original.routes(p)) {
    bool matched = false;
    for (const auto& got : parsed.routes(p)) {
      if (got.learned_from != route.learned_from) continue;
      matched = true;
      EXPECT_EQ(got.path, route.path);
      EXPECT_EQ(got.local_pref, route.local_pref);
      EXPECT_EQ(got.med, route.med);
      EXPECT_EQ(got.origin, route.origin);
      EXPECT_EQ(got.communities, route.communities);
    }
    EXPECT_TRUE(matched);
  }
}

TEST(TableDump, OutputIsSortedAndStable) {
  const std::string a = dump_table(sample_table());
  const std::string b = dump_table(sample_table());
  EXPECT_EQ(a, b);
  // Prefix order: 10.0.0.0/24 before 192.168.0.0/16.
  EXPECT_LT(a.find("10.0.0.0/24"), a.find("192.168.0.0/16"));
}

TEST(TableDump, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_table(""), std::invalid_argument);
  EXPECT_THROW(parse_table("route 10.0.0.0/24 ..."), std::invalid_argument);
  EXPECT_THROW(parse_table("bgp-table owner"), std::invalid_argument);
  EXPECT_THROW(parse_table("bgp-table owner 1\nnonsense line here x y z"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_table("bgp-table owner 1\nroute 10.0.0.0/24 from 2 lp x"),
      std::invalid_argument);
}

TEST(TableDump, EmptyTableRoundTrips) {
  const bgp::BgpTable empty{AsNumber(42)};
  const auto parsed = parse_table(dump_table(empty));
  EXPECT_EQ(parsed.owner(), AsNumber(42));
  EXPECT_EQ(parsed.prefix_count(), 0u);
}

TEST(TableDump, PipelineCollectorRoundTrips) {
  const auto& pipe = bgpolicy::testing::shared_pipeline();
  const std::string text = dump_table(pipe.sim.collector);
  const auto parsed = parse_table(text);
  EXPECT_EQ(parsed.route_count(), pipe.sim.collector.route_count());
  EXPECT_EQ(parsed.prefix_count(), pipe.sim.collector.prefix_count());
}

}  // namespace
}  // namespace bgpolicy::io
