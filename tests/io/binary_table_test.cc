#include "io/binary_table.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"
#include "testing/pipeline_cache.h"

namespace bgpolicy::io {
namespace {

using namespace bgpolicy::testing;
using bgp::Prefix;
using util::AsNumber;

bgp::BgpTable sample_table() {
  bgp::BgpTable table{AsNumber(7018)};
  auto r = make_route(Prefix::parse("10.0.0.0/24"),
                      {AsNumber(701), AsNumber(3356)}, 90);
  r.med = 7;
  r.origin = bgp::Origin::kIncomplete;
  r.add_community(bgp::Community(7018, 2000));
  table.add(r);
  table.add(make_route(Prefix::parse("10.1.0.0/16"), {AsNumber(1239)}, 120));
  return table;
}

TEST(BinaryTable, RoundTrip) {
  const auto original = sample_table();
  const auto bytes = serialize_table(original);
  const auto parsed = deserialize_table(bytes);
  EXPECT_EQ(parsed.owner(), original.owner());
  EXPECT_EQ(parsed.route_count(), original.route_count());
  const auto p = Prefix::parse("10.0.0.0/24");
  ASSERT_EQ(parsed.routes(p).size(), 1u);
  const auto& got = parsed.routes(p).front();
  const auto& want = original.routes(p).front();
  EXPECT_EQ(got.path, want.path);
  EXPECT_EQ(got.local_pref, want.local_pref);
  EXPECT_EQ(got.med, want.med);
  EXPECT_EQ(got.origin, want.origin);
  EXPECT_EQ(got.communities, want.communities);
}

TEST(BinaryTable, RejectsCorruptInput) {
  const auto bytes = serialize_table(sample_table());

  // Truncation at every boundary of interest.
  for (const std::size_t cut : std::vector<std::size_t>{
           0, 3, 6, 10, bytes.size() - 1}) {
    const std::span<const std::uint8_t> truncated(bytes.data(), cut);
    EXPECT_THROW(deserialize_table(truncated), std::invalid_argument)
        << "cut at " << cut;
  }

  // Bad magic.
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(deserialize_table(bad_magic), std::invalid_argument);

  // Bad version.
  auto bad_version = bytes;
  bad_version[4] = 0xFF;
  EXPECT_THROW(deserialize_table(bad_version), std::invalid_argument);

  // Trailing garbage.
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(deserialize_table(trailing), std::invalid_argument);
}

TEST(BinaryTable, EmptyTable) {
  const bgp::BgpTable empty{AsNumber(9)};
  const auto parsed = deserialize_table(serialize_table(empty));
  EXPECT_EQ(parsed.owner(), AsNumber(9));
  EXPECT_EQ(parsed.route_count(), 0u);
}

TEST(BinaryTable, PipelineLookingGlassRoundTrips) {
  const auto& pipe = bgpolicy::testing::shared_pipeline();
  const auto& lg = pipe.sim.looking_glass.at(AsNumber(7018));
  const auto parsed = deserialize_table(serialize_table(lg));
  EXPECT_EQ(parsed.route_count(), lg.route_count());
  EXPECT_EQ(parsed.prefix_count(), lg.prefix_count());
  // Best-route agreement on a sample prefix.
  const auto prefixes = lg.prefixes();
  ASSERT_FALSE(prefixes.empty());
  const auto* want = lg.best(prefixes.front());
  const auto* got = parsed.best(prefixes.front());
  ASSERT_NE(want, nullptr);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->path, want->path);
}

}  // namespace
}  // namespace bgpolicy::io
