// Shared scaffolding for the per-table/per-figure bench binaries.
//
// Every bench runs the canonical internet2002 scenario (DESIGN.md §4) and
// prints the same rows the paper reports, with the paper's numbers beside
// the measured ones where a direct comparison exists.  Absolute values are
// not expected to match (different substrate, smaller scale); the *shape*
// is what reproduces.
#pragma once

#include <iostream>
#include <string>

#include "core/pipeline.h"
#include "util/text_table.h"

namespace bgpolicy::bench {

/// Builds (once per process) the canonical pipeline all benches analyze.
const core::Pipeline& pipeline();

/// Prints the standard bench banner.
void banner(const std::string& experiment, const std::string& paper_claim);

}  // namespace bgpolicy::bench
