// Microbenchmarks (google-benchmark) for the core algorithms, including
// the ablations called out in DESIGN.md §5:
//   * per-prefix route propagation cost vs topology size,
//   * SA inference from best routes vs a full Adj-RIB-In scan,
//   * Gao inference with and without the clique/peer refinements,
//   * prefix-trie covering scans vs brute force,
//   * decision process, RPSL parsing, table serialization.
#include <benchmark/benchmark.h>

#include "asrel/gao_inference.h"
#include "bgp/decision.h"
#include "bgp/prefix_trie.h"
#include "core/export_inference.h"
#include "core/pipeline.h"
#include "io/binary_table.h"
#include "rpsl/generator.h"
#include "rpsl/parser.h"
#include "sim/flat_engine.h"
#include "sim/policy_gen.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace {

using namespace bgpolicy;

struct World {
  topo::Topology topo;
  topo::PrefixPlan plan;
  sim::GeneratedPolicies gen;
  std::vector<sim::Origination> originations;
};

const World& world(std::size_t stubs) {
  static std::map<std::size_t, std::unique_ptr<World>> cache;
  auto& entry = cache[stubs];
  if (!entry) {
    entry = std::make_unique<World>();
    topo::GeneratorParams params;
    params.seed = 99;
    params.tier1_count = 8;
    params.tier2_count = 24;
    params.tier3_count = 80;
    params.stub_count = stubs;
    entry->topo = topo::generate_topology(params);
    topo::PrefixAllocParams alloc;
    alloc.max_stub_prefixes = 8;
    entry->plan = topo::allocate_prefixes(entry->topo, alloc);
    entry->gen = sim::generate_policies(entry->topo, entry->plan, {});
    entry->originations = sim::all_originations(entry->plan, entry->gen);
  }
  return *entry;
}

const core::Pipeline& small_pipeline() {
  static const core::Pipeline pipe =
      core::run_pipeline(core::Scenario::small(42));
  return pipe;
}

void BM_PropagateOnePrefix(benchmark::State& state) {
  const World& w = world(static_cast<std::size_t>(state.range(0)));
  const sim::PropagationEngine engine(w.topo.graph, w.gen.policies);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& origination = w.originations[i++ % w.originations.size()];
    benchmark::DoNotOptimize(engine.propagate(origination));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.topo.graph.as_count()));
}
BENCHMARK(BM_PropagateOnePrefix)->Arg(200)->Arg(600)->Arg(1200);

// The flat-core before/after pair: identical per-prefix fixpoints through
// the dense-id engine (warmed context + scratch, the production shape) and
// the seed per-event program it replaced.  Throughput counters report
// process events and materialized routes per second; the flat row also
// reports its scratch high-water mark.
void BM_ComputePrefixFlat(benchmark::State& state) {
  const World& w = world(static_cast<std::size_t>(state.range(0)));
  const sim::FlatSimContext context(w.topo.graph, w.gen.policies);
  sim::FlatScratch scratch;
  std::size_t i = 0;
  std::int64_t events = 0;
  std::int64_t routes = 0;
  for (auto _ : state) {
    const auto& origination = w.originations[i++ % w.originations.size()];
    const auto routing =
        sim::compute_prefix_flat(context, origination, nullptr, {}, scratch);
    events += static_cast<std::int64_t>(routing.process_events);
    routes += static_cast<std::int64_t>(routing.best.size());
    benchmark::DoNotOptimize(routing);
  }
  state.counters["process_events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["routes_per_sec"] = benchmark::Counter(
      static_cast<double>(routes), benchmark::Counter::kIsRate);
  state.counters["peak_scratch_bytes"] =
      static_cast<double>(scratch.peak_bytes());
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_ComputePrefixFlat)->Arg(200)->Arg(600)->Arg(1200);

void BM_ComputePrefixReference(benchmark::State& state) {
  const World& w = world(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  std::int64_t events = 0;
  std::int64_t routes = 0;
  for (auto _ : state) {
    const auto& origination = w.originations[i++ % w.originations.size()];
    const auto routing = sim::compute_prefix_reference(
        w.topo.graph, w.gen.policies, origination, nullptr, {});
    events += static_cast<std::int64_t>(routing.process_events);
    routes += static_cast<std::int64_t>(routing.best.size());
    benchmark::DoNotOptimize(routing);
  }
  state.counters["process_events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["routes_per_sec"] = benchmark::Counter(
      static_cast<double>(routes), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_ComputePrefixReference)->Arg(200)->Arg(600)->Arg(1200);

void BM_SaInference_BestRoutes(benchmark::State& state) {
  const auto& pipe = small_pipeline();
  const util::AsNumber provider{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::infer_sa_prefixes(pipe.table_for(provider), provider,
                                pipe.inferred_graph, pipe.inferred_oracle()));
  }
}
BENCHMARK(BM_SaInference_BestRoutes);

void BM_SaInference_FullRib(benchmark::State& state) {
  const auto& pipe = small_pipeline();
  const util::AsNumber provider{1};
  const auto& lg = pipe.sim.looking_glass.at(provider);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::sa_from_full_rib(
        lg, provider, pipe.inferred_graph, pipe.inferred_oracle()));
  }
}
BENCHMARK(BM_SaInference_FullRib);

void BM_GaoInference(benchmark::State& state) {
  const auto& pipe = small_pipeline();
  asrel::GaoInference gao;
  pipe.sim.collector.for_each(
      [&](const bgp::Prefix&, std::span<const bgp::Route> routes) {
        for (const auto& route : routes) gao.add_path(route.path);
      });
  asrel::GaoParams params;
  params.detect_peers = state.range(0) != 0;
  params.detect_clique = state.range(0) != 0;
  double accuracy = 0;
  for (auto _ : state) {
    const auto rels = gao.infer(params);
    accuracy = rels.accuracy_against(pipe.topo.graph);
    benchmark::DoNotOptimize(rels);
  }
  state.counters["accuracy_pct"] = 100.0 * accuracy;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(gao.path_count()));
}
BENCHMARK(BM_GaoInference)->Arg(0)->Arg(1)->ArgNames({"refinements"});

void BM_TrieCoveringScan(benchmark::State& state) {
  util::Rng rng(5);
  bgp::PrefixTrie<int> trie;
  std::vector<bgp::Prefix> queries;
  for (int i = 0; i < 4096; ++i) {
    const auto network = static_cast<std::uint32_t>(rng.uniform(0, 0xFFFFFFFF));
    const auto length = static_cast<std::uint8_t>(rng.uniform(8, 24));
    trie.insert(bgp::Prefix(network, length), i);
    queries.emplace_back(network, 24);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t hits = 0;
    trie.for_each_covering(queries[i++ % queries.size()],
                           [&](const bgp::Prefix&, const int&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_TrieCoveringScan);

void BM_DecisionSelectBest(benchmark::State& state) {
  std::vector<bgp::Route> candidates;
  util::Rng rng(6);
  for (int i = 0; i < 8; ++i) {
    bgp::Route route;
    route.prefix = bgp::Prefix::parse("10.0.0.0/24");
    std::vector<util::AsNumber> hops;
    for (std::uint64_t h = 0; h < 2 + rng.uniform(0, 3); ++h) {
      hops.emplace_back(static_cast<std::uint32_t>(rng.uniform(1, 65000)));
    }
    route.path = bgp::AsPath(std::move(hops));
    route.learned_from = route.path.hops().front();
    route.local_pref = static_cast<std::uint32_t>(rng.uniform(60, 130));
    route.router_id = route.learned_from.value();
    candidates.push_back(std::move(route));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgp::select_best(candidates));
  }
}
BENCHMARK(BM_DecisionSelectBest);

void BM_RpslParse(benchmark::State& state) {
  const World& w = world(200);
  rpsl::IrrGenParams params;
  params.coverage = 1.0;
  const std::string db = rpsl::generate_irr(w.topo, w.gen.policies, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpsl::parse_aut_nums(db));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(db.size()));
}
BENCHMARK(BM_RpslParse);

void BM_TableSerializeRoundTrip(benchmark::State& state) {
  const auto& pipe = small_pipeline();
  const auto& table = pipe.sim.collector;
  for (auto _ : state) {
    const auto bytes = io::serialize_table(table);
    benchmark::DoNotOptimize(io::deserialize_table(bytes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.route_count()));
}
BENCHMARK(BM_TableSerializeRoundTrip);

}  // namespace

BENCHMARK_MAIN();
