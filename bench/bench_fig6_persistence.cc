// Fig. 6: persistence of SA prefixes at AS1 — (a) daily snapshots over a
// month of policy churn, (b) hourly snapshots within one day (lower churn).
#include "bench_common.h"
#include "core/persistence.h"

namespace {

void print_series(const bgpolicy::core::PersistenceStudy& study,
                  const char* unit) {
  bgpolicy::util::TextTable table(
      {std::string(unit), "all prefixes", "customer prefixes", "SA prefixes"});
  for (const auto& snap : study.series) {
    table.add_row({std::to_string(snap.step + 1),
                   std::to_string(snap.total_prefixes),
                   std::to_string(snap.customer_prefixes),
                   std::to_string(snap.sa_prefixes)});
  }
  std::cout << table.render() << "\n";
}

}  // namespace

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Fig. 6 — persistence of SA prefixes at AS1",
                "SA prefixes are consistently present: a stable band far "
                "below the total, over 31 days and over one day");

  const util::AsNumber watch{1};

  // (a) 31 daily steps with the default churn rate.
  {
    sim::ChurnParams churn_params;
    churn_params.propagation = pipe.scenario.propagation;
    churn_params.seed = 31;
    churn_params.flip_fraction = 0.006;
    sim::ChurnSimulator churn(pipe.topo.graph, pipe.gen.policies,
                              pipe.originations, pipe.gen.truth, {watch},
                              churn_params);
    const auto study = core::run_persistence_study(
        churn, watch, pipe.inferred_graph, pipe.inferred_oracle(), 31,
        pipe.scenario.propagation.threads);
    std::cout << "Fig. 6(a): daily snapshots, March-2002 equivalent\n";
    print_series(study, "day");
  }

  // (b) 12 intra-day steps with much lower churn.
  {
    sim::ChurnParams churn_params;
    churn_params.propagation = pipe.scenario.propagation;
    churn_params.seed = 15;
    churn_params.flip_fraction = 0.002;
    sim::ChurnSimulator churn(pipe.topo.graph, pipe.gen.policies,
                              pipe.originations, pipe.gen.truth, {watch},
                              churn_params);
    const auto study = core::run_persistence_study(
        churn, watch, pipe.inferred_graph, pipe.inferred_oracle(), 12,
        pipe.scenario.propagation.threads);
    std::cout << "Fig. 6(b): intra-day snapshots, March 15 equivalent\n";
    print_series(study, "interval");
  }
  std::cout << "Shape check: SA count stays a stable minority band in both "
               "series (paper: ~9k SA vs ~120k total, flat)\n";
  return 0;
}
