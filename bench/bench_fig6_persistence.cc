// Fig. 6: persistence of SA prefixes at AS1 — (a) daily snapshots over a
// month of policy churn, (b) hourly snapshots within one day (lower churn).
//
// Series (a) is run twice, once with incremental (warm-start delta) churn
// stepping and once with cold per-prefix recomputation: the delta-vs-cold
// column pins the two studies byte-identical (sim/delta_engine.h
// determinism contract) while the steps/sec rows show what the warm path
// buys at figure scale.
#include <chrono>

#include "bench_common.h"
#include "core/persistence.h"

namespace {

void print_series(const bgpolicy::core::PersistenceStudy& study,
                  const char* unit) {
  bgpolicy::util::TextTable table(
      {std::string(unit), "all prefixes", "customer prefixes", "SA prefixes"});
  for (const auto& snap : study.series) {
    table.add_row({std::to_string(snap.step + 1),
                   std::to_string(snap.total_prefixes),
                   std::to_string(snap.customer_prefixes),
                   std::to_string(snap.sa_prefixes)});
  }
  std::cout << table.render() << "\n";
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Fig. 6 — persistence of SA prefixes at AS1",
                "SA prefixes are consistently present: a stable band far "
                "below the total, over 31 days and over one day");

  const util::AsNumber watch{1};
  const auto daily_params = [&](bool incremental) {
    sim::ChurnParams churn_params;
    churn_params.propagation = pipe.scenario.propagation;
    churn_params.seed = 31;
    churn_params.flip_fraction = 0.006;
    churn_params.incremental = incremental;
    return churn_params;
  };
  const auto run_daily = [&](bool incremental, double& seconds) {
    sim::ChurnSimulator churn(pipe.topo.graph, pipe.gen.policies,
                              pipe.originations, pipe.gen.truth, {watch},
                              daily_params(incremental));
    const auto start = std::chrono::steady_clock::now();
    auto study = core::run_persistence_study(
        churn, watch, pipe.inferred_graph, pipe.inferred_oracle(), 31,
        pipe.scenario.propagation.threads);
    seconds = seconds_since(start);
    return study;
  };

  // (a) 31 daily steps with the default churn rate, both stepping modes.
  double incremental_seconds = 0;
  double cold_seconds = 0;
  const auto study = run_daily(/*incremental=*/true, incremental_seconds);
  const auto cold_study = run_daily(/*incremental=*/false, cold_seconds);
  const bool modes_match =
      core::canonical_serialize(study) == core::canonical_serialize(cold_study);
  std::cout << "Fig. 6(a): daily snapshots, March-2002 equivalent\n";
  print_series(study, "day");

  util::TextTable timing({"stepping mode", "31-step wall", "steps/sec",
                          "delta vs cold"});
  timing.add_row({"cold recompute", util::fmt(cold_seconds, 2) + " s",
                  util::fmt(31.0 / cold_seconds, 1), "baseline"});
  timing.add_row({"incremental (delta)",
                  util::fmt(incremental_seconds, 2) + " s",
                  util::fmt(31.0 / incremental_seconds, 1),
                  modes_match ? "identical" : "DIVERGED"});
  std::cout << timing.render("churn stepping cost, series (a)") << "\n";

  // (b) 12 intra-day steps with much lower churn.
  {
    sim::ChurnParams churn_params;
    churn_params.propagation = pipe.scenario.propagation;
    churn_params.seed = 15;
    churn_params.flip_fraction = 0.002;
    sim::ChurnSimulator churn(pipe.topo.graph, pipe.gen.policies,
                              pipe.originations, pipe.gen.truth, {watch},
                              churn_params);
    const auto inner = core::run_persistence_study(
        churn, watch, pipe.inferred_graph, pipe.inferred_oracle(), 12,
        pipe.scenario.propagation.threads);
    std::cout << "Fig. 6(b): intra-day snapshots, March 15 equivalent\n";
    print_series(inner, "interval");
  }
  std::cout << "Shape check: SA count stays a stable minority band in both "
               "series (paper: ~9k SA vs ~120k total, flat)\n";
  if (!modes_match) {
    std::cerr << "DELTA EQUIVALENCE FAILED: incremental and cold studies "
                 "diverged\n";
    return 1;
  }
  return 0;
}
