// Query-service load generator (ISSUE 8): drives the policy-query daemon
// with N concurrent connections and reports queries/sec and tail latency —
// while a refresher publishes snapshot swaps mid-run, so the number being
// tracked is the *concurrent* serving rate, not an idle-registry best
// case.
//
// Every reply is verified, not just counted: the response must echo the
// request id, carry the request kind with the response bit, parse as an
// ok-status payload, and — for every kind whose body excludes the snapshot
// version — match byte-for-byte the payload `serve::answer()` produces
// directly against the library-built snapshot.  One dropped, reordered,
// or corrupted reply fails the bench (exit 1): zero-error serving under
// swap pressure is the acceptance criterion, wired into the trajectory
// like the other benches' determinism checks.
//
// Flags:
//   --small           use the `small` scenario (CI-sized)
//   --smoke           tiny run (8 connections, 50 requests each)
//   --json            emit a single JSON object on stdout (scripts/bench.sh)
//   --connections N   concurrent client connections (default 64)
//   --requests N      requests per connection (default 200)
//   --threads N       server event-loop threads (default 2; self-host only)
//   --port P          drive an already-running daemon instead of
//                     self-hosting (byte-identity checks then apply only
//                     to structure, not content)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.h"
#include "serve/client.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "util/text_table.h"

namespace {

using namespace bgpolicy;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One request the workers rotate through, with the expected ok-payload
/// when it is content-comparable (empty = structural checks only).
struct Probe {
  serve::QueryKind kind;
  std::vector<std::uint8_t> request;
  std::vector<std::uint8_t> expected;
};

struct WorkerResult {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;      ///< transport drops, malformed responses
  std::uint64_t mismatches = 0;  ///< reply differs from the library answer
  std::vector<std::uint32_t> latency_usec;
};

std::uint32_t percentile(std::vector<std::uint32_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool small = false;
  bool smoke = false;
  std::size_t connections = 64;
  std::size_t requests_per_connection = 200;
  std::size_t server_threads = 2;
  int external_port = -1;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strcmp(argv[i], "--small") == 0) small = true;
    else if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--connections") == 0)
      connections = static_cast<std::size_t>(std::stoul(value()));
    else if (std::strcmp(argv[i], "--requests") == 0)
      requests_per_connection = static_cast<std::size_t>(std::stoul(value()));
    else if (std::strcmp(argv[i], "--threads") == 0)
      server_threads = static_cast<std::size_t>(std::stoul(value()));
    else if (std::strcmp(argv[i], "--port") == 0)
      external_port = std::stoi(value());
    else {
      const bool help = std::strcmp(argv[i], "--help") == 0 ||
                        std::strcmp(argv[i], "-h") == 0;
      (help ? std::cout : std::cerr)
          << "usage: bench_query_service [--small] [--smoke] [--json]"
             " [--connections N] [--requests N] [--threads N] [--port P]\n";
      return help ? 0 : 2;
    }
  }
  if (smoke) {
    small = true;
    connections = std::min<std::size_t>(connections, 8);
    requests_per_connection = std::min<std::size_t>(requests_per_connection,
                                                    50);
  }

  const core::Scenario scenario =
      small ? core::Scenario::small() : core::Scenario::internet2002();
  const bool self_hosted = external_port < 0;

  if (!json) {
    std::cout << "[bench] query service: " << connections
              << " concurrent connection(s) x " << requests_per_connection
              << " request(s)"
              << (self_hosted
                      ? " against a self-hosted daemon (" +
                            std::to_string(server_threads) +
                            " loop thread(s), scenario " + scenario.name +
                            ", snapshot swaps mid-run)"
                      : " against 127.0.0.1:" + std::to_string(external_port))
              << "...\n";
  }

  // Self-host: build the snapshot once, publish it, and serve.  The
  // refresher below republishes *copies* of the same content as fast as it
  // can — every swap is content-identical with a bumped version, which is
  // exactly the membrane the consistency checks probe.
  serve::SnapshotRegistry registry;
  std::unique_ptr<serve::QueryService> service;
  std::shared_ptr<serve::Snapshot> base;
  std::uint16_t port = 0;
  if (self_hosted) {
    base = serve::build_snapshot(scenario);
    registry.publish(std::make_shared<serve::Snapshot>(*base));
    serve::ServiceConfig config;
    config.threads = server_threads;
    service = std::make_unique<serve::QueryService>(registry, config);
    service->start();
    port = service->port();
  } else {
    port = static_cast<std::uint16_t>(external_port);
  }

  // The probe set: server_info plus one content-checked probe per query
  // kind, targeting the snapshot's own vantages/prefixes.
  std::vector<Probe> probes;
  probes.push_back({serve::QueryKind::kServerInfo,
                    serve::encode_server_info_request(),
                    {}});
  if (self_hosted) {
    const auto expect = [&](serve::QueryKind kind,
                            std::vector<std::uint8_t> request) {
      std::vector<std::uint8_t> expected =
          serve::answer(kind, request, *base);
      probes.push_back({kind, std::move(request), std::move(expected)});
    };
    for (const core::VantageAnalysis& vantage : base->analyses.vantages) {
      expect(serve::QueryKind::kSaPrevalence,
             serve::encode_as_request(vantage.vantage));
      expect(serve::QueryKind::kCauses,
             serve::encode_as_request(vantage.vantage));
      if (vantage.looking_glass) {
        expect(serve::QueryKind::kPathAvailability,
               serve::encode_as_request(vantage.vantage));
      }
    }
    const core::PathIndex& paths = base->observations.paths;
    const std::size_t prefix_step =
        std::max<std::size_t>(1, paths.path_count() / 8);
    for (std::size_t i = 0; i < paths.path_count(); i += prefix_step) {
      expect(serve::QueryKind::kHoming,
             serve::encode_prefix_request(paths.prefix_at(i)));
    }
  }

  // Workers: one blocking client per connection, rotating through the
  // probe set at per-connection offsets so the kinds interleave.
  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  const auto bench_start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> workers_done{0};
  for (std::size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& result = results[c];
      result.latency_usec.reserve(requests_per_connection);
      try {
        // A generous receive timeout: on a small box, 64 runnable worker
        // threads plus the refresher's snapshot copies can delay any one
        // reply by seconds without anything being wrong.
        serve::BlockingClient client(port, std::chrono::milliseconds(60000));
        for (std::size_t i = 0; i < requests_per_connection; ++i) {
          const Probe& probe = probes[(c + i) % probes.size()];
          const auto start = std::chrono::steady_clock::now();
          const std::optional<serve::Frame> reply = client.call(
              static_cast<std::uint16_t>(probe.kind), probe.request);
          const auto usec =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          ++result.requests;
          if (!reply ||
              reply->kind != (static_cast<std::uint16_t>(probe.kind) |
                              serve::kResponseBit)) {
            ++result.errors;
            continue;
          }
          result.latency_usec.push_back(static_cast<std::uint32_t>(usec));
          const auto view = serve::split_response(reply->payload);
          if (!view || view->status != serve::QueryStatus::kOk) {
            ++result.errors;
            continue;
          }
          if (probe.kind == serve::QueryKind::kServerInfo) {
            if (!serve::decode_server_info(view->body)) ++result.errors;
          } else if (!probe.expected.empty() &&
                     reply->payload != probe.expected) {
            ++result.mismatches;
          }
        }
      } catch (const std::exception& error) {
        // Connection-level failure: every unsent request is an error.
        result.errors += requests_per_connection - result.requests;
        result.requests = requests_per_connection;
        std::cerr << "worker " << c << ": " << error.what() << "\n";
      }
      workers_done.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Snapshot-swap pressure: republish continuously until the workers
  // finish (self-hosted only — an external daemon swaps on its own
  // --refresh timer).
  std::uint64_t publishes = 0;
  std::thread refresher;
  if (self_hosted) {
    refresher = std::thread([&] {
      while (workers_done.load(std::memory_order_relaxed) < connections) {
        const auto copy_start = std::chrono::steady_clock::now();
        registry.publish(std::make_shared<serve::Snapshot>(*base));
        const auto copy_cost = std::chrono::steady_clock::now() - copy_start;
        // Swap pressure, not starvation: a full-scenario snapshot copy can
        // cost hundreds of milliseconds, and republishing back-to-back
        // would monopolize a small box's cores and time the workers out.
        // Sleeping a multiple of the measured copy cost keeps the
        // refresher's CPU share bounded at any scenario size while still
        // swapping continuously throughout the run.
        std::this_thread::sleep_for(
            std::max<std::chrono::steady_clock::duration>(
                std::chrono::milliseconds(2), 3 * copy_cost));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = seconds_since(bench_start);
  if (refresher.joinable()) refresher.join();
  publishes = self_hosted ? registry.published() : 0;
  serve::EventLoopStats stats;
  if (service) {
    service->stop();
    stats = service->stats();
  }

  std::uint64_t total_requests = 0;
  std::uint64_t total_errors = 0;
  std::uint64_t total_mismatches = 0;
  std::vector<std::uint32_t> latencies;
  for (const WorkerResult& result : results) {
    total_requests += result.requests;
    total_errors += result.errors;
    total_mismatches += result.mismatches;
    latencies.insert(latencies.end(), result.latency_usec.begin(),
                     result.latency_usec.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps =
      elapsed > 0 ? static_cast<double>(total_requests) / elapsed : 0;
  const bool ok = total_errors == 0 && total_mismatches == 0 &&
                  total_requests ==
                      static_cast<std::uint64_t>(connections) *
                          requests_per_connection;

  const unsigned hw = std::thread::hardware_concurrency();
  if (json) {
    std::cout << "{\"bench\":\"query_service\",\"scenario\":\""
              << scenario.name << "\",\"hardware_concurrency\":" << hw
              << ",\"server_threads\":"
              << (self_hosted ? server_threads : 0)
              << ",\"connections\":" << connections
              << ",\"requests\":" << total_requests
              << ",\"errors\":" << total_errors
              << ",\"mismatches\":" << total_mismatches
              << ",\"snapshot_publishes\":" << publishes
              << ",\"elapsed_seconds\":" << elapsed
              << ",\"queries_per_sec\":" << qps << ",\"latency_usec\":{"
              << "\"p50\":" << percentile(latencies, 0.50)
              << ",\"p90\":" << percentile(latencies, 0.90)
              << ",\"p99\":" << percentile(latencies, 0.99)
              << ",\"max\":" << (latencies.empty() ? 0 : latencies.back())
              << "},\"zero_errors\":" << (ok ? "true" : "false") << "}"
              << std::endl;
    return ok ? 0 : 1;
  }

  std::cout << "== query service · concurrent load under snapshot swaps ==\n"
            << "scenario " << scenario.name << " · hardware threads: " << hw
            << "\n\n";
  util::TextTable table({"metric", "value"});
  table.add_row({"connections", std::to_string(connections)});
  table.add_row({"requests", std::to_string(total_requests)});
  table.add_row({"errors", std::to_string(total_errors)});
  table.add_row({"mismatched replies", std::to_string(total_mismatches)});
  table.add_row({"snapshot publishes", std::to_string(publishes)});
  table.add_row({"elapsed", util::fmt(elapsed, 3) + " s"});
  table.add_row({"queries/sec", util::fmt(qps, 0)});
  table.add_row(
      {"latency p50", std::to_string(percentile(latencies, 0.50)) + " us"});
  table.add_row(
      {"latency p90", std::to_string(percentile(latencies, 0.90)) + " us"});
  table.add_row(
      {"latency p99", std::to_string(percentile(latencies, 0.99)) + " us"});
  table.add_row({"latency max",
                 std::to_string(latencies.empty() ? 0 : latencies.back()) +
                     " us"});
  if (service != nullptr) {
    table.add_row({"server frames out", std::to_string(stats.frames_out)});
    table.add_row({"server connections", std::to_string(stats.accepted)});
  }
  std::cout << table.render("load-generator summary") << "\n"
            << (ok ? "every reply verified: zero drops, zero corrupt "
                     "replies under snapshot-swap pressure\n"
                   : "REPLY VERIFICATION FAILED: dropped or corrupted "
                     "replies under load\n");
  return ok ? 0 : 1;
}
