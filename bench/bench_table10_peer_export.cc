// Table 10: how peers of AS1, AS3549 and AS7018 export their own prefixes
// — most announce everything directly over the peering.
#include <map>

#include "bench_common.h"
#include "core/peer_export.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Table 10 — export to peers",
                "86% / 100% / 89% of peers announce their own prefixes "
                "directly to AS1 / AS3549 / AS7018");

  const std::map<std::uint32_t, double> paper{
      {1, 86.0}, {3549, 100.0}, {7018, 89.0}};

  util::TextTable table({"AS", "# peers", "% announcing all (measured)",
                         "% announcing all (paper)",
                         "# announcing most (>=80%)"});
  bool majority_everywhere = true;
  for (const auto as_value : core::Scenario::focus_tier1()) {
    const util::AsNumber as{as_value};
    const auto peers = pipe.inferred_graph.peers(as);
    const auto result = core::analyze_peer_export(pipe.table_for(as), as,
                                                  peers);
    table.add_row({util::to_string(as), std::to_string(result.peer_count),
                   util::fmt(result.percent_announcing, 0),
                   util::fmt(paper.at(as_value), 0),
                   std::to_string(result.announcing_most)});
    if (result.percent_announcing <= 50.0) majority_everywhere = false;
  }
  std::cout << table.render() << "\n";
  std::cout << "Shape check: peers overwhelmingly announce their prefixes "
               "directly: "
            << (majority_everywhere ? "yes" : "NO")
            << " (paper: 86%..100%)\n";
  return 0;
}
