// Table 3: typical local preference inferred from IRR aut-num objects.
//
// The paper keeps ASes whose objects were updated during 2002 and whose
// neighbor sets are large enough to classify, then reports the percentage
// of typical preference per AS (62 ASes, 80%..100%).
#include <algorithm>

#include "bench_common.h"
#include "core/import_inference.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Table 3 — typical local preference from the IRR",
                "62 usable aut-num objects; typicality 80%..100%, most at "
                "or near 100%");

  std::vector<core::IrrTypicality> rows;
  std::size_t discarded_stale = 0;
  std::size_t discarded_small = 0;
  for (const auto& aut_num : pipe.irr_objects) {
    if (aut_num.changed_date / 10000 < 2002) {
      ++discarded_stale;
      continue;
    }
    // The paper used ">50 neighbors"; our synthetic ASes are smaller, so
    // scale the floor down while keeping the filter's spirit.
    if (aut_num.imports.size() < 8) {
      ++discarded_small;
      continue;
    }
    const auto result =
        core::analyze_irr_typicality(aut_num, pipe.inferred_oracle());
    if (result.comparable_pairs < 5) continue;
    rows.push_back(result);
  }
  std::sort(rows.begin(), rows.end(),
            [](const core::IrrTypicality& a, const core::IrrTypicality& b) {
              return a.as < b.as;
            });

  util::TextTable table({"AS", "neighbors w/ pref", "comparable pairs",
                         "% typical"});
  std::size_t above80 = 0;
  for (const auto& row : rows) {
    table.add_row({util::to_string(row.as),
                   std::to_string(row.neighbors_with_pref),
                   std::to_string(row.comparable_pairs),
                   util::fmt(row.percent_typical, 1)});
    if (row.percent_typical >= 80.0) ++above80;
  }
  std::cout << table.render() << "\n";
  std::cout << "Usable objects: " << rows.size() << " (discarded "
            << discarded_stale << " stale, " << discarded_small
            << " too small)\n";
  std::cout << "Shape check: " << above80 << "/" << rows.size()
            << " ASs at >=80% typical (paper: 62/62 at >=80%)\n";
  return 0;
}
