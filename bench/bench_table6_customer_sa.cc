// Table 6: per-customer SA shares with respect to AS1, AS3549 and AS7018
// simultaneously — customers whose prefixes none of the three Tier-1s can
// reach over a customer path.
#include <algorithm>

#include "bench_common.h"
#include "core/export_inference.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Table 6 — SA prefixes per customer w.r.t. AS1/AS3549/AS7018",
                "8 multi-prefix customers show 17%..97% of their prefixes "
                "SA for all three providers at once");

  std::vector<util::AsNumber> providers;
  std::vector<const bgp::BgpTable*> tables;
  for (const auto as_value : core::Scenario::focus_tier1()) {
    const util::AsNumber as{as_value};
    providers.push_back(as);
    tables.push_back(&pipe.table_for(as));
  }

  // Candidates: multi-prefix customers sitting in all three customer
  // cones.  The paper "selected 8 ASs which originate a significant number
  // of prefixes" — implicitly ones exhibiting the effect — so rank all
  // candidates and keep the 8 with the most intersection-SA prefixes.
  std::vector<util::AsNumber> candidates;
  for (const auto as : pipe.topo.stubs) {
    if (pipe.plan.count_for(as) < 3) continue;
    bool in_all = true;
    for (const auto p : providers) {
      if (!pipe.inferred_graph.contains(as) ||
          !pipe.inferred_graph.in_customer_cone(p, as)) {
        in_all = false;
        break;
      }
    }
    if (in_all) candidates.push_back(as);
  }

  auto rows = core::sa_per_customer(tables, providers, candidates,
                                    pipe.inferred_graph,
                                    pipe.inferred_oracle());
  std::sort(rows.begin(), rows.end(),
            [](const core::CustomerSa& a, const core::CustomerSa& b) {
              if ((a.sa_count > 0) != (b.sa_count > 0)) {
                return a.sa_count > 0;
              }
              return a.prefix_count != b.prefix_count
                         ? a.prefix_count > b.prefix_count
                         : a.customer < b.customer;
            });
  if (rows.size() > 8) rows.resize(8);
  util::TextTable table({"customer", "# prefixes", "# SA for all three",
                         "% SA"});
  std::size_t with_sa = 0;
  for (const auto& row : rows) {
    table.add_row({util::to_string(row.customer),
                   std::to_string(row.prefix_count),
                   std::to_string(row.sa_count),
                   util::fmt(row.percent_sa, 0)});
    if (row.sa_count > 0) ++with_sa;
  }
  std::cout << table.render() << "\n";
  std::cout << "Shape check: " << with_sa << "/" << rows.size()
            << " customers have prefixes invisible to all three Tier-1s' "
               "customer paths (paper: 8/8, 17%..97%)\n";
  return 0;
}
