// Fig. 9: number of prefixes announced by each next-hop AS, by rank —
// the gap structure (providers >> peers >> customers) that powers the
// Appendix's community-semantics inference.
#include "bench_common.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Fig. 9 — prefixes per next-hop AS (rank order)",
                "AS1/AS3549: peers announce the most (no providers); AS8736 "
                "equivalents: one provider announces ~full table; customers "
                "announce 1-2 prefixes");

  // The paper plots AS1, AS3549 (Tier-1s) and AS8736 (a small multihomed
  // AS).  Our vantage stand-ins: the two Tier-1 looking glasses plus the
  // smallest looking-glass vantage.
  const std::vector<util::AsNumber> subjects{
      util::AsNumber(1), util::AsNumber(3549), util::AsNumber(12859)};
  for (const auto as : subjects) {
    if (!pipe.sim.looking_glass.contains(as)) continue;
    const auto result = pipe.community_verification(as);
    std::cout << util::render_rank_series(result.rank_series) << "\n";
    // The gap statistic the Appendix reasons about.
    if (result.rank_series.values.size() >= 2) {
      const double top =
          static_cast<double>(result.rank_series.values.front());
      const double bottom =
          static_cast<double>(result.rank_series.values.back());
      std::cout << "  top/bottom announcement ratio: "
                << util::fmt(top / std::max(1.0, bottom), 1)
                << " (paper: orders of magnitude)\n\n";
    }
  }
  std::cout << "Shape check: each vantage shows a heavy-tailed rank curve "
               "with a large top/bottom gap.\n";
  return 0;
}
