// Table 8: multihomed vs single-homed distribution of the ASes whose
// prefixes are SA at AS1, AS3549 and AS7018.
#include <map>

#include "bench_common.h"
#include "core/export_inference.h"
#include "core/homing.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Table 8 — homing of SA-prefix origins",
                "~75% of ASs whose prefixes are SA are multihomed "
                "(AS1 75%, AS3549 75%, AS7018 77%)");

  const std::map<std::uint32_t, double> paper{
      {1, 75.0}, {3549, 75.0}, {7018, 77.0}};

  util::TextTable table({"provider", "multihomed ASs", "single-homed ASs",
                         "% multihomed (measured)", "% multihomed (paper)"});
  bool majority_everywhere = true;
  for (const auto as_value : core::Scenario::focus_tier1()) {
    const util::AsNumber as{as_value};
    const auto analysis =
        core::infer_sa_prefixes(pipe.table_for(as), as, pipe.inferred_graph,
                                pipe.inferred_oracle());
    const auto homing = core::analyze_homing(analysis, pipe.inferred_graph);
    table.add_row({util::to_string(as),
                   util::fmt_count_pct(homing.multihomed_ases,
                                       homing.percent_multihomed),
                   util::fmt_count_pct(homing.singlehomed_ases,
                                       homing.percent_singlehomed),
                   util::fmt(homing.percent_multihomed, 1),
                   util::fmt(paper.at(as_value), 1)});
    if (homing.percent_multihomed <= 50.0) majority_everywhere = false;
  }
  std::cout << table.render() << "\n";
  std::cout << "Shape check: multihomed origins dominate at every Tier-1: "
            << (majority_everywhere ? "yes" : "NO") << " (paper: ~75%)\n";
  return 0;
}
