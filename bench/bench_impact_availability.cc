// Impact analysis (paper Sections 1 and 5.1, no numbered table): selective
// announcement means "much less available paths in the Internet than shown
// in the AS connectivity graph".  Quantified here as available vs
// potential next-hop diversity for customer prefixes at the focus Tier-1s,
// plus the prevalence of the softer AS-path-prepending knob.
#include "bench_common.h"
#include "core/path_availability.h"
#include "core/prepending.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Impact — connectivity vs reachability",
                "policy withdraws a visible share of the paths the AS graph "
                "promises; some customer prefixes are one failure from "
                "unreachable");

  util::TextTable table({"provider", "customer prefixes",
                         "mean available paths", "mean potential paths",
                         "availability ratio", "single-path prefixes"});
  for (const auto as_value : core::Scenario::focus_tier1()) {
    const util::AsNumber as{as_value};
    if (!pipe.sim.looking_glass.contains(as)) continue;
    const auto result = core::analyze_path_availability(
        pipe.sim.looking_glass.at(as), as, pipe.inferred_graph);
    table.add_row({util::to_string(as),
                   std::to_string(result.customer_prefixes),
                   util::fmt(result.mean_available, 2),
                   util::fmt(result.mean_potential, 2),
                   util::fmt(result.availability_ratio, 3),
                   util::fmt_count_pct(
                       result.single_path_prefixes,
                       util::percent(result.single_path_prefixes,
                                     result.customer_prefixes))});
  }
  std::cout << table.render("Available vs potential paths at the Tier-1s")
            << "\n";

  // Prepending prevalence across the collector view.
  const auto prepending = core::analyze_prepending(pipe.sim.collector);
  std::cout << "AS-path prepending (Section 2.2.2 knob): "
            << prepending.prepended_routes << " of "
            << prepending.total_routes << " collector routes ("
            << util::fmt(prepending.percent_prepended, 2) << "%) from "
            << prepending.prepending_ases.size() << " distinct ASs";
  if (!prepending.depth_histogram.bins().empty()) {
    std::cout << "; depth histogram:";
    for (const auto& [depth, count] : prepending.depth_histogram.bins()) {
      std::cout << " " << depth << "x->" << count;
    }
  }
  std::cout << "\n\nShape check: availability ratio < 1 at every Tier-1 — "
               "connectivity overstates reachability.\n";
  return 0;
}
