// Thread-scaling bench for the sharded inference pipeline: Gao relationship
// voting, path-index construction, and the per-table analysis suite.
//
// Mirrors bench_sim_scaling: the simulation runs once (that stage has its
// own bench), then each inference stage is timed at 1/2/4/8 threads.  Every
// run's products — inferred relationships, tiers, path-index counts, and
// all analysis-suite counters — are digested via the canonical serializers
// and asserted byte-identical across thread counts, the same determinism
// contract the propagation engine holds.
//
// Flags:
//   --small   use the `small` scenario (CI-sized, seconds not minutes)
//   --json    emit a single JSON object on stdout (for scripts/bench.sh)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "asrel/gao_inference.h"
#include "asrel/tier_classify.h"
#include "core/analysis_suite.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "util/text_table.h"

namespace {

using namespace bgpolicy;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  std::size_t threads;
  double gao_seconds;
  double index_seconds;
  double analysis_seconds;
  double total_seconds;
  double speedup;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  const core::Scenario scenario =
      small ? core::Scenario::small() : core::Scenario::internet2002();
  if (!json) {
    std::cout << "[bench] building the " << scenario.name
              << " upstream stages (Synthesize/Simulate/Observe run once, "
                 "inference is timed)...\n";
  }
  // The staged API is exactly this bench's access pattern: upstream
  // artifacts cached once, the Infer/Analyze stages re-run per thread
  // count.  The cached Observations carries the ingested Gao path set
  // (infer() is const and reusable) in the canonical ingest order.
  core::Experiment experiment(scenario);
  experiment.run(core::Stage::kObserve);
  const asrel::GaoInference& gao = experiment.observations().observed_paths;
  const std::vector<core::PathIndex::TableSource> sources =
      core::inference_table_sources(experiment.sim().sim);
  const std::vector<util::AsNumber> vantages =
      core::recorded_vantages(experiment.sim().sim);

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<Row> rows;
  std::string reference_digest;
  bool products_match = true;
  double base_seconds = 0.0;
  std::size_t path_count = 0;

  for (const std::size_t threads : thread_counts) {
    asrel::GaoParams params;
    params.threads = threads;
    auto start = std::chrono::steady_clock::now();
    const core::InferenceProducts inference =
        core::infer_relationships(experiment.observations(), params);
    const double gao_seconds = seconds_since(start);

    start = std::chrono::steady_clock::now();
    core::PathIndex index;
    index.add_tables(sources, threads);
    const double index_seconds = seconds_since(start);
    path_count = index.path_count();

    // The view's analyses read the Observe stage's path index (built once
    // in setup); the per-thread `index` above exists only to time
    // add_tables itself.
    const core::ExperimentView view = core::make_view(
        experiment.sim(), experiment.observations(), inference);
    start = std::chrono::steady_clock::now();
    const core::AnalysisSuite suite =
        core::run_analysis_suite(view, vantages, threads);
    const double analysis_seconds = seconds_since(start);

    const double total = gao_seconds + index_seconds + analysis_seconds;
    if (threads == 1) base_seconds = total;
    rows.push_back({threads, gao_seconds, index_seconds, analysis_seconds,
                    total, base_seconds / total});

    const std::string digest =
        asrel::canonical_serialize(inference.inferred) + "tiers\n" +
        asrel::canonical_serialize(inference.tiers) +
        "paths " + std::to_string(index.path_count()) + " adjacencies " +
        std::to_string(index.adjacency_count()) + "\n" +
        core::canonical_serialize(suite);
    if (reference_digest.empty()) {
      reference_digest = digest;
    } else if (digest != reference_digest) {
      products_match = false;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (json) {
    std::cout << "{\"bench\":\"inference_scaling\",\"scenario\":\""
              << scenario.name << "\",\"hardware_concurrency\":" << hw
              << ",\"gao_paths\":" << gao.path_count()
              << ",\"indexed_paths\":" << path_count
              << ",\"vantages\":" << vantages.size()
              << ",\"products_match\":" << (products_match ? "true" : "false")
              << ",\"results\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::cout << (i == 0 ? "" : ",") << "{\"threads\":" << r.threads
                << ",\"gao_seconds\":" << r.gao_seconds
                << ",\"path_index_seconds\":" << r.index_seconds
                << ",\"analysis_seconds\":" << r.analysis_seconds
                << ",\"total_seconds\":" << r.total_seconds
                << ",\"speedup\":" << r.speedup << "}";
    }
    std::cout << "]}" << std::endl;
    return products_match ? 0 : 1;
  }

  std::cout << "== inference scaling · sharded Gao voting + path indexing + "
               "analysis suite ==\n"
            << "scenario " << scenario.name << " · " << gao.path_count()
            << " observed paths · " << vantages.size()
            << " vantages · hardware threads: " << hw << "\n\n";
  util::TextTable table({"threads", "gao infer", "path index", "analyses",
                         "total", "speedup"});
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.threads), util::fmt(r.gao_seconds, 3),
                   util::fmt(r.index_seconds, 3),
                   util::fmt(r.analysis_seconds, 3),
                   util::fmt(r.total_seconds, 3),
                   util::fmt(r.speedup, 2) + "x"});
  }
  std::cout << table.render("inference wall clock (seconds) by thread count")
            << "\n"
            << (products_match
                    ? "inference products byte-identical across all thread "
                      "counts\n"
                    : "PRODUCT MISMATCH ACROSS THREAD COUNTS\n");
  if (hw < 4) {
    std::cout << "note: only " << hw
              << " hardware thread(s) available; speedup is bounded by the "
                 "host, not the engine\n";
  }
  return products_match ? 0 : 1;
}
