// Artifact-store bench (ISSUE 4): per staged artifact type, how expensive
// is computing the stage versus serializing, deserializing, and loading it
// back from the on-disk store?  The load-vs-recompute ratio is the number
// that justifies the store: simulate dominates staged wall-clock
// (~93% in BENCH_2026-07-30_pr3.json), so serving SimArtifact from disk is
// the resume win.
//
// Every artifact is round-tripped (encode -> decode -> re-encode) and the
// bytes compared — the same content-purity contract the cache keys chain
// on; a mismatch fails the bench (exit 1), wiring codec fidelity into the
// tracked trajectory like the other benches' determinism checks.
//
// Flags:
//   --small   use the `small` scenario (CI-sized, seconds not minutes)
//   --json    emit a single JSON object on stdout (for scripts/bench.sh)
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_store.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "io/artifact_codec.h"
#include "util/text_table.h"

namespace {

using namespace bgpolicy;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  std::string artifact;
  std::size_t bytes = 0;
  double compute_seconds = 0;
  double encode_seconds = 0;
  double decode_seconds = 0;
  double load_seconds = 0;  ///< store read + decode
  double load_speedup = 0;  ///< compute / load
};

/// Benches one artifact: encode/decode timings, store write, then a timed
/// load (read + decode).  Returns false when the roundtrip is not
/// byte-pure.
template <typename T, typename DecodeFn>
bool bench_artifact(const core::ArtifactStore& store, const std::string& key,
                    const T& artifact, double compute_seconds,
                    DecodeFn&& decode, Row& row) {
  auto start = std::chrono::steady_clock::now();
  const std::vector<std::uint8_t> bytes = io::encode(artifact);
  row.encode_seconds = seconds_since(start);
  row.bytes = bytes.size();
  row.compute_seconds = compute_seconds;

  start = std::chrono::steady_clock::now();
  const T decoded = decode(std::span<const std::uint8_t>(bytes));
  row.decode_seconds = seconds_since(start);
  const bool pure = io::encode(decoded) == bytes;

  if (!store.put(key, bytes)) {
    std::cerr << "artifact store write failed for " << key << " under "
              << store.root().string() << "\n";
    return false;
  }
  start = std::chrono::steady_clock::now();
  const auto loaded = store.load(key);
  if (!loaded) {
    std::cerr << "artifact store read-back failed for " << key << "\n";
    return false;
  }
  const T from_disk = decode(std::span<const std::uint8_t>(*loaded));
  row.load_seconds = seconds_since(start);
  row.load_speedup =
      row.load_seconds > 0 ? row.compute_seconds / row.load_seconds : 0;
  return pure && io::encode(from_disk) == bytes;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  const core::Scenario scenario =
      small ? core::Scenario::small() : core::Scenario::internet2002();
  if (!json) {
    std::cout << "[bench] artifact store on the " << scenario.name
              << " scenario (serialize / deserialize / load vs recompute "
                 "per stage artifact)...\n";
  }

  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() /
      ("bgpolicy-bench-store-" + scenario.name);
  std::filesystem::remove_all(store_dir);
  const core::ArtifactStore store(store_dir);

  // Stage the experiment once, timing each compute (threads = 1: the
  // sequential reference cost a cold store saves).
  core::RunOptions options;
  options.threads = 1;
  core::Experiment experiment(scenario, options);

  auto start = std::chrono::steady_clock::now();
  (void)experiment.truth();
  const double synthesize_seconds = seconds_since(start);
  start = std::chrono::steady_clock::now();
  (void)experiment.sim();
  const double simulate_seconds = seconds_since(start);
  start = std::chrono::steady_clock::now();
  (void)experiment.observations();
  const double observe_seconds = seconds_since(start);
  start = std::chrono::steady_clock::now();
  (void)experiment.inference();
  const double infer_seconds = seconds_since(start);
  start = std::chrono::steady_clock::now();
  (void)experiment.analyses();
  const double analyze_seconds = seconds_since(start);

  std::vector<Row> rows(5);
  bool roundtrip_ok = true;
  rows[0].artifact = "ground_truth";
  roundtrip_ok &= bench_artifact(
      store, "bench|truth", experiment.truth(), synthesize_seconds,
      [](std::span<const std::uint8_t> b) { return io::decode_ground_truth(b); },
      rows[0]);
  rows[1].artifact = "sim_artifact";
  roundtrip_ok &= bench_artifact(
      store, "bench|sim", experiment.sim(), simulate_seconds,
      [](std::span<const std::uint8_t> b) { return io::decode_sim_artifact(b); },
      rows[1]);
  rows[2].artifact = "observations";
  roundtrip_ok &= bench_artifact(
      store, "bench|obs", experiment.observations(), observe_seconds,
      [](std::span<const std::uint8_t> b) { return io::decode_observations(b); },
      rows[2]);
  rows[3].artifact = "inference_products";
  roundtrip_ok &= bench_artifact(
      store, "bench|infer", experiment.inference(), infer_seconds,
      [](std::span<const std::uint8_t> b) { return io::decode_inference(b); },
      rows[3]);
  rows[4].artifact = "analysis_suite";
  roundtrip_ok &= bench_artifact(
      store, "bench|analyses", experiment.analyses(), analyze_seconds,
      [](std::span<const std::uint8_t> b) {
        return io::decode_analysis_suite(b);
      },
      rows[4]);

  std::filesystem::remove_all(store_dir);

  const unsigned hw = std::thread::hardware_concurrency();
  if (json) {
    std::cout << "{\"bench\":\"artifact_store\",\"scenario\":\""
              << scenario.name << "\",\"hardware_concurrency\":" << hw
              << ",\"roundtrip_ok\":" << (roundtrip_ok ? "true" : "false")
              << ",\"results\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::cout << (i == 0 ? "" : ",") << "{\"artifact\":\"" << r.artifact
                << "\",\"bytes\":" << r.bytes
                << ",\"compute_seconds\":" << r.compute_seconds
                << ",\"encode_seconds\":" << r.encode_seconds
                << ",\"decode_seconds\":" << r.decode_seconds
                << ",\"load_seconds\":" << r.load_seconds
                << ",\"load_speedup\":" << r.load_speedup << "}";
    }
    std::cout << "]}" << std::endl;
    return roundtrip_ok ? 0 : 1;
  }

  std::cout << "== artifact store · serialize / load vs recompute ==\n"
            << "scenario " << scenario.name << " · hardware threads: " << hw
            << "\n\n";
  util::TextTable table({"artifact", "bytes", "compute", "encode", "decode",
                         "load", "load speedup"});
  for (const Row& r : rows) {
    table.add_row({r.artifact, std::to_string(r.bytes),
                   util::fmt(r.compute_seconds, 3),
                   util::fmt(r.encode_seconds, 3),
                   util::fmt(r.decode_seconds, 3), util::fmt(r.load_seconds, 3),
                   util::fmt(r.load_speedup, 1) + "x"});
  }
  std::cout << table.render("per-artifact codec + store timings (seconds)")
            << "\n"
            << (roundtrip_ok
                    ? "every artifact round-trips byte-identically\n"
                    : "ROUNDTRIP MISMATCH: codec is not content-pure\n");
  return roundtrip_ok ? 0 : 1;
}
