// Incremental delta propagation vs cold recomputation (ISSUE 9): drives
// two lockstep churn simulators — one cold (per-prefix full fixpoints,
// the faithful pre-delta baseline) and one incremental (warm DeltaState
// per churned prefix + per-world memo) — through identical flip
// schedules, comparing watched tables after every step.  The number
// being tracked is the steady-state stepping speedup, so the measured
// window starts after a warmup phase that fills the warm-state cache and
// the per-world memo (first-touch converges are a one-time cost the
// steady state never pays again).
//
// Equivalence is the acceptance criterion, not an afterthought: one
// diverging watched row across the whole run (warmup included) fails the
// bench (exit 1).  The same contract is golden-tested at multiple thread
// counts in tests/sim/delta_equivalence_test.cc; this bench is the
// at-scale trajectory hook.
//
// A second section replays the scenario-spec verify corpus
// (scenarios/*.scn) end to end — the Timeline evaluator answers `at <k>`
// route assertions from delta-synced cached states (core/spec_verify.cc),
// so a corpus replay with zero failing checks exercises the edge-delta
// path against real fail/restore/withdraw/announce scripts.
//
// Flags:
//   --small       use the `small` scenario (CI-sized)
//   --smoke       tiny run (small scenario, 10 warmup + 5 measured steps)
//   --json        emit a single JSON object on stdout (scripts/bench.sh)
//   --warmup N    untimed lockstep steps before measuring (default 250;
//                 120 with --small)
//   --steps N     measured lockstep steps (default 25; 60 with --small)
//   --specs DIR   spec corpus directory (default "scenarios"; pass the
//                 absolute path when not running from the repo root)
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"
#include "core/scenario_spec.h"
#include "core/spec_verify.h"
#include "sim/churn.h"
#include "util/text_table.h"

namespace {

using namespace bgpolicy;
using util::AsNumber;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool small = false;
  std::size_t warmup = 0;
  std::size_t steps = 0;
  bool warmup_set = false;
  bool steps_set = false;
  std::string spec_dir = "scenarios";
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strcmp(argv[i], "--small") == 0) small = true;
    else if (std::strcmp(argv[i], "--smoke") == 0) {
      small = true;
      if (!warmup_set) warmup = 10;
      if (!steps_set) steps = 5;
      warmup_set = steps_set = true;
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      warmup = static_cast<std::size_t>(std::stoul(value()));
      warmup_set = true;
    } else if (std::strcmp(argv[i], "--steps") == 0) {
      steps = static_cast<std::size_t>(std::stoul(value()));
      steps_set = true;
    } else if (std::strcmp(argv[i], "--specs") == 0) {
      spec_dir = value();
    } else {
      const bool help = std::strcmp(argv[i], "--help") == 0 ||
                        std::strcmp(argv[i], "-h") == 0;
      (help ? std::cout : std::cerr)
          << "usage: bench_delta_propagation [--small] [--smoke] [--json]"
             " [--warmup N] [--steps N] [--specs DIR]\n";
      return help ? 0 : 2;
    }
  }
  // The small scenario's steps are microseconds, so the CI-sized run
  // needs a longer window than internet2002 for the ratio to be signal
  // rather than timer noise (and more warmup for the memo to fill).
  if (!warmup_set) warmup = small ? 120 : 250;
  if (!steps_set) steps = small ? 60 : 25;

  const core::Scenario scenario =
      small ? core::Scenario::small() : core::Scenario::internet2002();
  if (!json) {
    std::cout << "[bench] delta propagation: lockstep cold vs incremental "
                 "churn on "
              << scenario.name << " (" << warmup << " warmup + " << steps
              << " measured steps, threads=1), then spec-corpus replay...\n";
  }

  const core::GroundTruth truth = core::synthesize(scenario);
  const auto ases = truth.topo.graph.ases();
  const std::vector<AsNumber> watch = {ases[0], ases[ases.size() / 2],
                                       ases[ases.size() - 1]};
  const auto make = [&](bool incremental) {
    sim::ChurnParams params;
    params.seed = 4242;
    params.incremental = incremental;
    params.propagation.threads = 1;
    return std::make_unique<sim::ChurnSimulator>(
        truth.topo.graph, truth.gen.policies, truth.originations,
        truth.gen.truth, watch, params);
  };
  auto cold = make(false);
  auto incremental = make(true);
  cold->run_initial();
  incremental->run_initial();

  // Lockstep: identical seeds mean identical flip schedules, so after
  // every step the two watched tables must match row for row.
  bool match = true;
  const auto check = [&] {
    for (const AsNumber as : watch) {
      if (cold->watched(as) != incremental->watched(as)) match = false;
    }
  };
  for (std::size_t i = 0; i < warmup; ++i) {
    cold->step();
    incremental->step();
    check();
  }
  double cold_seconds = 0;
  double incremental_seconds = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    const auto t0 = Clock::now();
    cold->step();
    const auto t1 = Clock::now();
    incremental->step();
    cold_seconds += std::chrono::duration<double>(t1 - t0).count();
    incremental_seconds += seconds_since(t1);
    check();
  }
  const double speedup =
      incremental_seconds > 0 ? cold_seconds / incremental_seconds : 0;

  // Spec-corpus replay: every verify block must pass, exercising the
  // Timeline's delta-synced cached states against real event scripts.
  std::size_t spec_count = 0;
  std::size_t check_count = 0;
  std::size_t failure_count = 0;
  const auto spec_start = Clock::now();
  std::vector<core::ScenarioSpec> specs;
  try {
    specs = core::load_spec_dir(spec_dir);
  } catch (const std::exception& error) {
    std::cerr << "spec corpus: " << error.what() << "\n";
    return 2;
  }
  for (core::ScenarioSpec& spec : specs) {
    core::Experiment experiment(spec.scenario);
    const core::VerifyReport report = core::run_spec_checks(spec, experiment);
    ++spec_count;
    check_count += report.results.size();
    failure_count += report.failure_count();
    if (!json && !report.all_passed()) {
      for (const core::CheckResult& result : report.results) {
        if (!result.passed) {
          std::cerr << report.source << ": FAIL "
                    << core::describe_check(result.check) << " — "
                    << result.detail << "\n";
        }
      }
    }
  }
  const double spec_seconds = seconds_since(spec_start);

  const bool ok = match && failure_count == 0;
  const unsigned hw = std::thread::hardware_concurrency();
  if (json) {
    std::cout << "{\"bench\":\"delta_propagation\",\"scenario\":\""
              << scenario.name << "\",\"hardware_concurrency\":" << hw
              << ",\"churn\":{\"warmup_steps\":" << warmup
              << ",\"measured_steps\":" << steps
              << ",\"cold_seconds\":" << cold_seconds
              << ",\"incremental_seconds\":" << incremental_seconds
              << ",\"cold_steps_per_sec\":"
              << (cold_seconds > 0 ? static_cast<double>(steps) / cold_seconds
                                   : 0)
              << ",\"incremental_steps_per_sec\":"
              << (incremental_seconds > 0
                      ? static_cast<double>(steps) / incremental_seconds
                      : 0)
              << ",\"warm_states\":" << incremental->warm_state_count()
              << ",\"memo_hits\":" << incremental->memo_hits()
              << "},\"spec_replay\":{\"specs\":" << spec_count
              << ",\"checks\":" << check_count
              << ",\"failures\":" << failure_count
              << ",\"seconds\":" << spec_seconds
              << "},\"delta_match\":" << (match ? "true" : "false")
              << ",\"delta_speedup\":" << speedup << "}" << std::endl;
    return ok ? 0 : 1;
  }

  std::cout << "== delta propagation · warm-start churn vs cold fixpoints "
               "==\n"
            << "scenario " << scenario.name << " · hardware threads: " << hw
            << "\n\n";
  util::TextTable table({"metric", "value"});
  table.add_row({"warmup steps", std::to_string(warmup)});
  table.add_row({"measured steps", std::to_string(steps)});
  table.add_row({"cold", util::fmt(cold_seconds, 3) + " s"});
  table.add_row({"incremental", util::fmt(incremental_seconds, 3) + " s"});
  table.add_row(
      {"cold steps/sec",
       util::fmt(cold_seconds > 0
                     ? static_cast<double>(steps) / cold_seconds
                     : 0,
                 2)});
  table.add_row(
      {"incremental steps/sec",
       util::fmt(incremental_seconds > 0
                     ? static_cast<double>(steps) / incremental_seconds
                     : 0,
                 2)});
  table.add_row({"speedup", util::fmt(speedup, 2) + "x"});
  table.add_row(
      {"warm states", std::to_string(incremental->warm_state_count())});
  table.add_row({"memo hits", std::to_string(incremental->memo_hits())});
  table.add_row({"watched tables match", match ? "yes" : "NO"});
  std::cout << table.render("churn stepping (threads=1)") << "\n";
  util::TextTable spec_table({"metric", "value"});
  spec_table.add_row({"specs", std::to_string(spec_count)});
  spec_table.add_row({"checks", std::to_string(check_count)});
  spec_table.add_row({"failures", std::to_string(failure_count)});
  spec_table.add_row({"elapsed", util::fmt(spec_seconds, 3) + " s"});
  std::cout << spec_table.render("spec-corpus replay") << "\n"
            << (ok ? "incremental stepping is byte-equivalent to cold "
                     "recomputation across the whole run\n"
                   : "DELTA EQUIVALENCE FAILED: incremental and cold "
                     "results diverged\n");
  return ok ? 0 : 1;
}
