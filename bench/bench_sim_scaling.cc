// Thread-scaling bench for the prefix-sharded propagation engine.
//
// Runs the full-Internet simulation of the canonical scenario at 1/2/4/8
// threads, reports wall-clock seconds and speedup over the sequential run,
// and cross-checks that every run converged identically (the engine
// guarantees byte-identical output at any thread count; the counters are a
// cheap proxy asserted here on every row).
//
// Also times the seed per-event engine (`compute_prefix_reference`, the
// sequential program run_simulation executed before the flat core landed)
// over the same originations: `reference_seconds` and `flat_speedup` are
// the committed before/after trajectory of the flat-core rewrite, and the
// reference run's counters are asserted against the flat rows.
//
// Flags:
//   --small   use the `small` scenario (CI-sized, seconds not minutes)
//   --json    emit a single JSON object on stdout (for scripts/bench.sh)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"
#include "sim/simulation.h"
#include "util/text_table.h"

namespace {

using namespace bgpolicy;

struct World {
  core::GroundTruth truth;
  sim::VantageSpec vantage;
  sim::PropagationOptions options;
};

World build(const core::Scenario& scenario) {
  // The Synthesize stage plus the canonical vantage derivation — the same
  // world run_pipeline simulates.
  World w;
  w.truth = core::synthesize(scenario);
  w.vantage = core::derive_vantage(scenario, w.truth.topo);
  w.options = scenario.propagation;
  return w;
}

struct Row {
  std::size_t threads;
  double seconds;
  double speedup;
  std::size_t process_events;
  std::size_t unconverged;
};

/// The seed sequential program: reference fixpoints recorded in
/// origination order — byte-identical to what run_simulation(threads=1)
/// produced before the flat core.
sim::SimResult reference_simulation(const World& w) {
  const sim::PropagationEngine engine(w.truth.topo.graph,
                                      w.truth.gen.policies);
  sim::SimResult result = sim::init_sim_result(w.vantage);
  for (const auto& origination : w.truth.originations) {
    const sim::PrefixRouting state = sim::compute_prefix_reference(
        w.truth.topo.graph, w.truth.gen.policies, origination, nullptr,
        w.options);
    if (!state.converged) ++result.unconverged_prefixes;
    result.process_events += state.process_events;
    sim::record_prefix(engine, state, w.vantage, result);
    ++result.origination_count;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  const core::Scenario scenario =
      small ? core::Scenario::small() : core::Scenario::internet2002();
  const World w = build(scenario);

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<Row> rows;
  double base_seconds = 0.0;
  bool counters_match = true;

  for (const std::size_t threads : thread_counts) {
    sim::PropagationOptions options = w.options;
    options.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const sim::SimResult result = sim::run_simulation(
        w.truth.topo.graph, w.truth.gen.policies, w.truth.originations,
        w.vantage, options);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (threads == 1) base_seconds = seconds;
    rows.push_back({threads, seconds, base_seconds / seconds,
                    result.process_events, result.unconverged_prefixes});
    if (result.process_events != rows.front().process_events ||
        result.unconverged_prefixes != rows.front().unconverged) {
      counters_match = false;
    }
  }

  // The before/after point: the seed engine over the same originations,
  // verified to agree with the flat rows on the convergence counters.
  const auto ref_start = std::chrono::steady_clock::now();
  const sim::SimResult reference = reference_simulation(w);
  const auto ref_stop = std::chrono::steady_clock::now();
  const double reference_seconds =
      std::chrono::duration<double>(ref_stop - ref_start).count();
  const double flat_speedup = reference_seconds / base_seconds;
  const bool reference_match =
      reference.process_events == rows.front().process_events &&
      reference.unconverged_prefixes == rows.front().unconverged;
  const bool ok = counters_match && reference_match;

  const unsigned hw = std::thread::hardware_concurrency();
  if (json) {
    std::cout << "{\"bench\":\"sim_scaling\",\"scenario\":\"" << scenario.name
              << "\",\"hardware_concurrency\":" << hw
              << ",\"originations\":" << w.truth.originations.size()
              << ",\"counters_match\":" << (counters_match ? "true" : "false")
              << ",\"reference_seconds\":" << reference_seconds
              << ",\"flat_speedup\":" << flat_speedup
              << ",\"reference_match\":" << (reference_match ? "true" : "false")
              << ",\"results\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::cout << (i == 0 ? "" : ",") << "{\"threads\":" << r.threads
                << ",\"seconds\":" << r.seconds
                << ",\"speedup\":" << r.speedup << ",\"events_per_sec\":"
                << static_cast<double>(r.process_events) / r.seconds << "}";
    }
    std::cout << "]}" << std::endl;
    return ok ? 0 : 1;
  }

  std::cout << "== sim scaling · prefix-sharded run_simulation ==\n"
            << "scenario " << scenario.name << " · "
            << w.truth.originations.size() << " originations · hardware threads: "
            << hw << "\n\n";
  util::TextTable table({"threads", "seconds", "speedup", "process events",
                         "unconverged"});
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.threads), util::fmt(r.seconds, 3),
                   util::fmt(r.speedup, 2) + "x",
                   std::to_string(r.process_events),
                   std::to_string(r.unconverged)});
  }
  std::cout << table.render("run_simulation wall clock by thread count")
            << "\n"
            << (counters_match
                    ? "counters identical across all thread counts\n"
                    : "COUNTER MISMATCH ACROSS THREAD COUNTS\n")
            << "seed per-event engine (compute_prefix_reference): "
            << util::fmt(reference_seconds, 3) << "s -> flat core "
            << util::fmt(base_seconds, 3) << "s at threads=1 ("
            << util::fmt(flat_speedup, 2) << "x)"
            << (reference_match ? "\n"
                                : " — REFERENCE COUNTER MISMATCH\n");
  if (hw < 4) {
    std::cout << "note: only " << hw
              << " hardware thread(s) available; speedup is bounded by the "
                 "host, not the engine\n";
  }
  return ok ? 0 : 1;
}
