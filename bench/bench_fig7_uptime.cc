// Fig. 7: uptime histogram of ever-SA prefixes at AS1 — prefixes that
// remain SA whenever present vs prefixes that shift SA -> non-SA.
#include "bench_common.h"
#include "core/persistence.h"

namespace {

void print_histogram(const bgpolicy::core::PersistenceStudy& study,
                     const char* unit) {
  bgpolicy::util::TextTable table(
      {std::string("uptime (") + unit + ")", "remaining SA",
       "shifted SA->non-SA"});
  for (const auto& bucket : study.uptime_histogram) {
    table.add_row({std::to_string(bucket.uptime),
                   std::to_string(bucket.remaining_sa),
                   std::to_string(bucket.shifted)});
  }
  std::cout << table.render() << "\n";
  std::cout << "ever-SA prefixes: " << study.ever_sa << ", shifted: "
            << study.shifted_total << " ("
            << bgpolicy::util::fmt(study.percent_shifted, 1) << "%)\n\n";
}

}  // namespace

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Fig. 7 — SA-prefix uptime at AS1",
                "about one sixth of SA prefixes shift to non-SA over a "
                "month; almost all are stable within one day");

  const util::AsNumber watch{1};

  {
    sim::ChurnParams churn_params;
    churn_params.propagation = pipe.scenario.propagation;
    churn_params.seed = 7;
    churn_params.flip_fraction = 0.006;
    sim::ChurnSimulator churn(pipe.topo.graph, pipe.gen.policies,
                              pipe.originations, pipe.gen.truth, {watch},
                              churn_params);
    const auto study = core::run_persistence_study(
        churn, watch, pipe.inferred_graph, pipe.inferred_oracle(), 31,
        pipe.scenario.propagation.threads);
    std::cout << "Fig. 7(a): month-scale churn\n";
    print_histogram(study, "days");
    std::cout << "Shape check (a): shifted share "
              << util::fmt(study.percent_shifted, 1)
              << "% (paper: ~1/6 = 16.7%)\n\n";
  }
  {
    sim::ChurnParams churn_params;
    churn_params.propagation = pipe.scenario.propagation;
    churn_params.seed = 8;
    churn_params.flip_fraction = 0.002;
    sim::ChurnSimulator churn(pipe.topo.graph, pipe.gen.policies,
                              pipe.originations, pipe.gen.truth, {watch},
                              churn_params);
    const auto study = core::run_persistence_study(
        churn, watch, pipe.inferred_graph, pipe.inferred_oracle(), 12,
        pipe.scenario.propagation.threads);
    std::cout << "Fig. 7(b): day-scale churn\n";
    print_histogram(study, "hours");
    std::cout << "Shape check (b): shifted share "
              << util::fmt(study.percent_shifted, 1)
              << "% (paper: most SA prefixes stable within a day)\n";
  }
  return 0;
}
