// Per-stage wall-clock bench for the staged experiment API: times each
// stage of Synthesize → Simulate → Observe → Infer → Analyze separately at
// 1/2/4/8 threads, so the tracked bench trajectory can attribute future
// speedups to individual stages.
//
// Every run's products are digested via the canonical serializers and
// asserted byte-identical across thread counts — the same determinism
// contract the other scaling benches enforce (exit code 1 on mismatch).
//
// Flags:
//   --small   use the `small` scenario (CI-sized, seconds not minutes)
//   --json    emit a single JSON object on stdout (for scripts/bench.sh)
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis_suite.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "util/text_table.h"

namespace {

using namespace bgpolicy;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  std::size_t threads;
  double synthesize_seconds;
  double simulate_seconds;
  double observe_seconds;
  double infer_seconds;
  double analyze_seconds;
  double total_seconds;
  double speedup;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  const core::Scenario scenario =
      small ? core::Scenario::small() : core::Scenario::internet2002();
  if (!json) {
    std::cout << "[bench] staged experiment on the " << scenario.name
              << " scenario (every stage timed per thread count)...\n";
  }

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<Row> rows;
  std::string reference_digest;
  bool products_match = true;
  double base_seconds = 0.0;

  for (const std::size_t threads : thread_counts) {
    core::RunOptions options;
    options.threads = threads;
    core::Experiment experiment(scenario, options);

    auto start = std::chrono::steady_clock::now();
    (void)experiment.truth();
    const double synthesize_seconds = seconds_since(start);

    start = std::chrono::steady_clock::now();
    (void)experiment.sim();
    const double simulate_seconds = seconds_since(start);

    start = std::chrono::steady_clock::now();
    (void)experiment.observations();
    const double observe_seconds = seconds_since(start);

    start = std::chrono::steady_clock::now();
    (void)experiment.inference();
    const double infer_seconds = seconds_since(start);

    start = std::chrono::steady_clock::now();
    const core::AnalysisSuite& suite = experiment.analyses();
    const double analyze_seconds = seconds_since(start);

    const double total = synthesize_seconds + simulate_seconds +
                         observe_seconds + infer_seconds + analyze_seconds;
    if (threads == 1) base_seconds = total;
    rows.push_back({threads, synthesize_seconds, simulate_seconds,
                    observe_seconds, infer_seconds, analyze_seconds, total,
                    base_seconds / total});

    const core::InferenceProducts& inference = experiment.inference();
    const std::string digest =
        asrel::canonical_serialize(inference.inferred) + "tiers\n" +
        asrel::canonical_serialize(inference.tiers) + "paths " +
        std::to_string(experiment.observations().paths.path_count()) +
        " adjacencies " +
        std::to_string(experiment.observations().paths.adjacency_count()) +
        "\nirr_bytes " +
        std::to_string(experiment.observations().irr_text.size()) + "\n" +
        core::canonical_serialize(suite);
    if (reference_digest.empty()) {
      reference_digest = digest;
    } else if (digest != reference_digest) {
      products_match = false;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (json) {
    std::cout << "{\"bench\":\"pipeline_stages\",\"scenario\":\""
              << scenario.name << "\",\"hardware_concurrency\":" << hw
              << ",\"products_match\":" << (products_match ? "true" : "false")
              << ",\"results\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::cout << (i == 0 ? "" : ",") << "{\"threads\":" << r.threads
                << ",\"synthesize_seconds\":" << r.synthesize_seconds
                << ",\"simulate_seconds\":" << r.simulate_seconds
                << ",\"observe_seconds\":" << r.observe_seconds
                << ",\"infer_seconds\":" << r.infer_seconds
                << ",\"analyze_seconds\":" << r.analyze_seconds
                << ",\"total_seconds\":" << r.total_seconds
                << ",\"speedup\":" << r.speedup << "}";
    }
    std::cout << "]}" << std::endl;
    return products_match ? 0 : 1;
  }

  std::cout << "== pipeline stages · staged experiment wall clock per stage "
               "==\n"
            << "scenario " << scenario.name
            << " · hardware threads: " << hw << "\n\n";
  util::TextTable table({"threads", "synthesize", "simulate", "observe",
                         "infer", "analyze", "total", "speedup"});
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.threads),
                   util::fmt(r.synthesize_seconds, 3),
                   util::fmt(r.simulate_seconds, 3),
                   util::fmt(r.observe_seconds, 3),
                   util::fmt(r.infer_seconds, 3),
                   util::fmt(r.analyze_seconds, 3),
                   util::fmt(r.total_seconds, 3),
                   util::fmt(r.speedup, 2) + "x"});
  }
  std::cout << table.render("stage wall clock (seconds) by thread count")
            << "\n"
            << (products_match
                    ? "stage products byte-identical across all thread "
                      "counts\n"
                    : "PRODUCT MISMATCH ACROSS THREAD COUNTS\n");
  if (hw < 4) {
    std::cout << "note: only " << hw
              << " hardware thread(s) available; speedup is bounded by the "
                 "host, not the engine\n";
  }
  return products_match ? 0 : 1;
}
