// Per-stage wall-clock bench for the staged experiment API, extended with
// the task-graph overlap comparison (bgpolicy-bench/v5):
//
//  * serial-stage path: each stage timed through its accessor, one after
//    the other — no cross-stage overlap possible (the PR-4 execution
//    shape), with Simulate still chunk-parallel inside its stage.
//  * task-graph path: one Experiment::run() drives every upstream stage
//    through util::TaskGraph, so Observe's IRR nodes overlap each other,
//    the path-index nodes, and late Simulate chunks.  A StageTrace records
//    node spans; the bench reports the overlap windows and chunk count.
//
// Every run's products are digested via the canonical serializers and
// asserted byte-identical across thread counts AND across the two
// execution shapes — the determinism contract (exit code 1 on mismatch).
//
// Flags:
//   --small   use the `small` scenario (CI-sized, seconds not minutes)
//   --json    emit a single JSON object on stdout (for scripts/bench.sh)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/analysis_suite.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "util/text_table.h"

namespace {

using namespace bgpolicy;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  std::size_t threads;
  double synthesize_seconds;
  double simulate_seconds;
  double observe_seconds;
  double infer_seconds;
  double analyze_seconds;
  double total_seconds;
  double speedup;
  // Task-graph path (one run() spanning all upstream stages).
  double graph_total_seconds;
  double overlap_irr_paths_seconds;
  double overlap_irr_sim_seconds;
  std::size_t sim_chunks;
};

/// [min start, max end] window over all spans whose name starts with any
/// of the given prefixes; empty window when none matched.
struct Window {
  double start = 0.0;
  double end = 0.0;
  bool any = false;
};

Window window_of(const std::vector<core::TraceSpan>& spans,
                 std::initializer_list<std::string_view> prefixes) {
  Window w;
  for (const core::TraceSpan& span : spans) {
    bool match = false;
    for (const std::string_view prefix : prefixes) {
      if (std::string_view(span.name).substr(0, prefix.size()) == prefix) {
        match = true;
        break;
      }
    }
    if (!match) continue;
    if (!w.any) {
      w.start = span.start_seconds;
      w.end = span.end_seconds;
      w.any = true;
    } else {
      w.start = std::min(w.start, span.start_seconds);
      w.end = std::max(w.end, span.end_seconds);
    }
  }
  return w;
}

double overlap_of(const Window& a, const Window& b) {
  if (!a.any || !b.any) return 0.0;
  return std::max(0.0, std::min(a.end, b.end) - std::max(a.start, b.start));
}

std::string experiment_digest(core::Experiment& experiment) {
  const core::InferenceProducts& inference = experiment.inference();
  const core::AnalysisSuite& suite = experiment.analyses();
  return asrel::canonical_serialize(inference.inferred) + "tiers\n" +
         asrel::canonical_serialize(inference.tiers) + "paths " +
         std::to_string(experiment.observations().paths.path_count()) +
         " adjacencies " +
         std::to_string(experiment.observations().paths.adjacency_count()) +
         "\nirr_bytes " +
         std::to_string(experiment.observations().irr_text.size()) + "\n" +
         core::canonical_serialize(suite);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--small") == 0) small = true;
  }

  const core::Scenario scenario =
      small ? core::Scenario::small() : core::Scenario::internet2002();
  if (!json) {
    std::cout << "[bench] staged experiment on the " << scenario.name
              << " scenario (serial-stage vs task-graph wall clock per "
                 "thread count)...\n";
  }

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  std::vector<Row> rows;
  std::string reference_digest;
  bool products_match = true;
  double base_seconds = 0.0;

  for (const std::size_t threads : thread_counts) {
    // ---- serial-stage path: one accessor per stage, no overlap ----
    core::RunOptions options;
    options.threads = threads;
    core::Experiment experiment(scenario, options);

    auto start = std::chrono::steady_clock::now();
    (void)experiment.truth();
    const double synthesize_seconds = seconds_since(start);

    start = std::chrono::steady_clock::now();
    (void)experiment.sim();
    const double simulate_seconds = seconds_since(start);

    start = std::chrono::steady_clock::now();
    (void)experiment.observations();
    const double observe_seconds = seconds_since(start);

    start = std::chrono::steady_clock::now();
    (void)experiment.inference();
    const double infer_seconds = seconds_since(start);

    start = std::chrono::steady_clock::now();
    (void)experiment.analyses();
    const double analyze_seconds = seconds_since(start);

    const double total = synthesize_seconds + simulate_seconds +
                         observe_seconds + infer_seconds + analyze_seconds;
    if (threads == 1) base_seconds = total;

    // ---- task-graph path: one run() spanning every upstream stage ----
    core::StageTrace trace;
    core::RunOptions graph_options;
    graph_options.threads = threads;
    graph_options.trace = &trace;
    core::Experiment graph_experiment(scenario, graph_options);
    trace.origin = std::chrono::steady_clock::now();
    start = trace.origin;
    graph_experiment.run(core::Stage::kAnalyze);
    const double graph_total = seconds_since(start);

    const Window irr =
        window_of(trace.spans, {"observe.irr_gen", "observe.irr_parse"});
    const Window paths =
        window_of(trace.spans, {"observe.path_ingest", "observe.path_index"});
    const Window sim_window = window_of(trace.spans, {"simulate."});

    rows.push_back({threads, synthesize_seconds, simulate_seconds,
                    observe_seconds, infer_seconds, analyze_seconds, total,
                    base_seconds / total, graph_total,
                    overlap_of(irr, paths), overlap_of(irr, sim_window),
                    graph_experiment.sim_chunks().total});

    // Both execution shapes, every thread count: one digest.
    for (core::Experiment* exp : {&experiment, &graph_experiment}) {
      const std::string digest = experiment_digest(*exp);
      if (reference_digest.empty()) {
        reference_digest = digest;
      } else if (digest != reference_digest) {
        products_match = false;
      }
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (json) {
    std::cout << "{\"bench\":\"pipeline_stages\",\"scenario\":\""
              << scenario.name << "\",\"hardware_concurrency\":" << hw
              << ",\"products_match\":" << (products_match ? "true" : "false")
              << ",\"results\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::cout << (i == 0 ? "" : ",") << "{\"threads\":" << r.threads
                << ",\"synthesize_seconds\":" << r.synthesize_seconds
                << ",\"simulate_seconds\":" << r.simulate_seconds
                << ",\"observe_seconds\":" << r.observe_seconds
                << ",\"infer_seconds\":" << r.infer_seconds
                << ",\"analyze_seconds\":" << r.analyze_seconds
                << ",\"total_seconds\":" << r.total_seconds
                << ",\"speedup\":" << r.speedup
                << ",\"graph_total_seconds\":" << r.graph_total_seconds
                << ",\"overlap_irr_paths_seconds\":"
                << r.overlap_irr_paths_seconds
                << ",\"overlap_irr_sim_seconds\":"
                << r.overlap_irr_sim_seconds
                << ",\"sim_chunks\":" << r.sim_chunks << "}";
    }
    std::cout << "]}" << std::endl;
    return products_match ? 0 : 1;
  }

  std::cout << "== pipeline stages · serial-stage vs task-graph wall clock "
               "==\n"
            << "scenario " << scenario.name
            << " · hardware threads: " << hw << "\n\n";
  util::TextTable table({"threads", "synthesize", "simulate", "observe",
                         "infer", "analyze", "serial total", "graph total",
                         "irr||paths", "irr||sim", "chunks"});
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.threads),
                   util::fmt(r.synthesize_seconds, 3),
                   util::fmt(r.simulate_seconds, 3),
                   util::fmt(r.observe_seconds, 3),
                   util::fmt(r.infer_seconds, 3),
                   util::fmt(r.analyze_seconds, 3),
                   util::fmt(r.total_seconds, 3),
                   util::fmt(r.graph_total_seconds, 3),
                   util::fmt(r.overlap_irr_paths_seconds, 3),
                   util::fmt(r.overlap_irr_sim_seconds, 3),
                   std::to_string(r.sim_chunks)});
  }
  std::cout << table.render(
                   "stage wall clock (seconds); irr||paths / irr||sim are "
                   "overlap windows inside the task-graph run")
            << "\n"
            << (products_match
                    ? "products byte-identical across thread counts and "
                      "execution shapes\n"
                    : "PRODUCT MISMATCH ACROSS RUNS\n");
  if (hw < 4) {
    std::cout << "note: only " << hw
              << " hardware thread(s) available; speedup and overlap are "
                 "bounded by the host, not the engine\n";
  }
  return products_match ? 0 : 1;
}
