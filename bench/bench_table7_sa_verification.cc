// Table 7: verification of the SA prefixes inferred at AS1, AS3549 and
// AS7018 (community-confirmed next hops + active customer paths).
#include <map>

#include "bench_common.h"
#include "core/export_inference.h"
#include "core/sa_verification.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Table 7 — verification of SA prefixes",
                "95%..97.6% of SA prefixes verified at the three Tier-1s");

  const std::map<std::uint32_t, double> paper{
      {1, 97.6}, {3549, 95.0}, {7018, 97.0}};

  util::TextTable table({"provider", "# SA prefixes", "% verified (measured)",
                         "% verified (paper)", "step-1 failures",
                         "step-2 failures"});
  for (const auto as_value : core::Scenario::focus_tier1()) {
    const util::AsNumber as{as_value};
    const auto analysis =
        core::infer_sa_prefixes(pipe.table_for(as), as, pipe.inferred_graph,
                                pipe.inferred_oracle());
    const auto verified_neighbors = pipe.community_verified_neighbors(as);
    const auto result = core::verify_sa_prefixes(
        analysis, pipe.paths, verified_neighbors, pipe.inferred_oracle());
    table.add_row({util::to_string(as), std::to_string(result.sa_total),
                   util::fmt(result.percent_verified, 1),
                   util::fmt(paper.at(as_value), 1),
                   std::to_string(result.step1_failures),
                   std::to_string(result.step2_failures)});
  }
  std::cout << table.render() << "\n";
  std::cout << "Shape check: the majority of SA prefixes at each Tier-1 "
               "verify (paper: >=95%)\n";
  return 0;
}
