// Table 1: characteristics of the data sources — the collector peering and
// the per-vantage AS name, degree, and location.
#include "bench_common.h"
#include "core/scenario.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Table 1 — data-source characteristics",
                "Oregon RouteViews peering with 56 ASs plus 15 looking-glass "
                "vantages; degrees 14..1330 across NA/Eu/Au/As");

  std::map<std::string, int> collector_regions;
  for (const auto as : pipe.vantage.collector_peers) {
    ++collector_regions[core::region_of(as)];
  }
  std::cout << "Collector AS" << pipe.vantage.collector_as.value()
            << " peers with " << pipe.vantage.collector_peers.size()
            << " ASs (";
  bool first = true;
  for (const auto& [region, count] : collector_regions) {
    if (!first) std::cout << ", ";
    std::cout << region << " " << count;
    first = false;
  }
  std::cout << ")\n\n";

  util::TextTable table({"AS number", "role", "degree", "location"});
  for (const auto as : pipe.vantage.looking_glass) {
    table.add_row({util::to_string(as),
                   "looking glass (tier " +
                       std::to_string(pipe.tiers.level_of(as)) + ")",
                   std::to_string(pipe.topo.graph.degree(as)),
                   core::region_of(as)});
  }
  for (const auto as : pipe.vantage.best_only) {
    table.add_row({util::to_string(as), "table-5 vantage",
                   std::to_string(pipe.topo.graph.degree(as)),
                   core::region_of(as)});
  }
  std::cout << table.render("Vantage ASs (paper Table 1)") << "\n";

  // Degree spread, for the "sizes span a large range" observation.
  std::size_t min_degree = SIZE_MAX, max_degree = 0;
  for (const auto as : pipe.vantage.looking_glass) {
    min_degree = std::min(min_degree, pipe.topo.graph.degree(as));
    max_degree = std::max(max_degree, pipe.topo.graph.degree(as));
  }
  std::cout << "Vantage degree range: " << min_degree << ".." << max_degree
            << " (paper: 14..1330)\n";
  return 0;
}
