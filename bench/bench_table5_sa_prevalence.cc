// Table 5: percentage of customers' prefixes that are selectively
// announced (SA) with respect to each of 16 vantage ASs.
#include <map>

#include "bench_common.h"
#include "core/export_inference.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Table 5 — prevalence of SA prefixes at 16 ASs",
                "Tier-1s carry significant SA shares (AS1 32%, AS3549 23%, "
                "AS7018 22%, AS6453 48.6%); small vantages near 0%");

  const std::map<std::uint32_t, double> paper{
      {1, 32},    {7018, 22},  {3549, 23},   {701, 27.8}, {6453, 48.6},
      {6461, 4},  {1239, 29.4},{3561, 5.2},  {2914, 14},  {209, 38},
      {5511, 18}, {577, 17},   {6538, 11},   {6667, 13},  {12359, 0},
      {12859, 0}};

  util::TextTable table({"AS", "customer prefixes", "SA prefixes",
                         "% SA (measured)", "% SA (paper)"});
  std::size_t tier1_double_digit = 0;
  std::size_t tier1_count = 0;
  for (const auto& [as_value, paper_pct] : paper) {
    const util::AsNumber as{as_value};
    if (!pipe.has_table(as)) continue;
    const auto analysis =
        core::infer_sa_prefixes(pipe.table_for(as), as, pipe.inferred_graph,
                                pipe.inferred_oracle());
    table.add_row({util::to_string(as),
                   std::to_string(analysis.customer_prefixes),
                   std::to_string(analysis.sa_count),
                   util::fmt(analysis.percent_sa, 1),
                   util::fmt(paper_pct, 1)});
    if (pipe.tiers.level_of(as) == 1) {
      ++tier1_count;
      if (analysis.percent_sa >= 10.0) ++tier1_double_digit;
    }
  }
  std::cout << table.render() << "\n";
  std::cout << "Shape check: " << tier1_double_digit << "/" << tier1_count
            << " Tier-1 vantages with double-digit SA share (paper: most "
               "Tier-1s 14%..48.6%)\n";
  return 0;
}
