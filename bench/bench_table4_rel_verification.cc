// Table 4 (+ Table 11): community-based verification of inferred AS
// relationships at the 9 verification vantages.
#include <map>

#include "bench_common.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Table 4 — AS relationships verified via BGP communities",
                "94.1%..99.55% of vantage-adjacent relationships verified "
                "for 9 ASs");

  const std::map<std::uint32_t, double> paper{
      {1, 95.65},   {577, 98.9},   {3549, 96.28}, {5511, 99.4},
      {6539, 96.45},{6667, 97.46}, {7018, 99.55}, {12359, 94.1},
      {12859, 98.2}};

  util::TextTable table({"AS", "# neighbors", "comparable", "% verified "
                         "(measured)", "% verified (paper)", "truth agreement"});
  for (const auto as_value : pipe.scenario.verification_ases) {
    const util::AsNumber as{as_value};
    if (!pipe.sim.looking_glass.contains(as)) continue;
    const auto result = pipe.community_verification(as);

    // Extra column the paper could not print: agreement of the
    // community-derived classes with the simulator's ground truth.
    std::size_t truth_ok = 0;
    std::size_t truth_total = 0;
    for (const auto& obs : result.neighbors) {
      if (!obs.community_rel) continue;
      const auto truth = pipe.topo.graph.relationship(as, obs.neighbor);
      if (!truth) continue;
      ++truth_total;
      if (*obs.community_rel == *truth) ++truth_ok;
    }
    const auto it = paper.find(as_value);
    table.add_row({util::to_string(as),
                   std::to_string(pipe.topo.graph.degree(as)),
                   std::to_string(result.comparable),
                   util::fmt(result.percent_verified, 2),
                   it == paper.end() ? "-" : util::fmt(it->second, 2),
                   util::fmt(util::percent(truth_ok, truth_total), 2)});
  }
  std::cout << table.render() << "\n";

  // Table 11 flavor: one vantage's published tagging scheme.
  const util::AsNumber example{12859};
  if (const auto* aut_num = pipe.irr_for(example);
      aut_num != nullptr && !aut_num->community_remarks.empty()) {
    util::TextTable scheme({"community range", "meaning"});
    for (const auto& remark : aut_num->community_remarks) {
      scheme.add_row({std::to_string(example.value()) + ":" +
                          std::to_string(remark.value_lo) + "-" +
                          std::to_string(remark.value_hi),
                      "route received from " + topo::to_string(remark.kind)});
    }
    std::cout << scheme.render(
                     "Published tagging scheme of AS12859 (paper Table 11)")
              << "\n";
  } else {
    std::cout << "(AS12859 did not publish its scheme in this run; the gap "
                 "heuristic was used instead)\n";
  }
  return 0;
}
