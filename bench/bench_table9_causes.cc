// Table 9 + Section 5.1.5 Case 3: causes of SA prefixes — prefix splitting
// and aggregation are negligible; deliberate selective announcing
// dominates, mostly by withholding from the provider entirely.
#include <map>

#include "bench_common.h"
#include "core/causes.h"
#include "core/export_inference.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Table 9 — causes of SA prefixes",
                "splitting (127/9120) and aggregating (218/9120) are "
                "negligible; Case 3: ~21% announce to the direct provider "
                "(capped), ~79% withhold entirely");

  struct PaperRow {
    std::size_t sa, splitting, aggregating;
  };
  const std::map<std::uint32_t, PaperRow> paper{{1, {9120, 127, 218}},
                                                {3549, {3431, 63, 104}},
                                                {7018, {4374, 71, 179}}};

  util::TextTable table({"provider", "# SA", "# splitting", "# aggregating",
                         "paper (SA/split/aggr)"});
  util::TextTable case3({"provider", "% identified", "% announce to direct",
                         "% withheld from direct"});
  bool minor_everywhere = true;
  for (const auto as_value : core::Scenario::focus_tier1()) {
    const util::AsNumber as{as_value};
    const auto analysis =
        core::infer_sa_prefixes(pipe.table_for(as), as, pipe.inferred_graph,
                                pipe.inferred_oracle());
    const auto causes =
        core::analyze_causes(analysis, pipe.table_for(as), pipe.paths,
                             pipe.inferred_graph, pipe.inferred_oracle());
    const auto& p = paper.at(as_value);
    table.add_row({util::to_string(as), std::to_string(causes.sa_total),
                   std::to_string(causes.splitting),
                   std::to_string(causes.aggregating),
                   std::to_string(p.sa) + "/" + std::to_string(p.splitting) +
                       "/" + std::to_string(p.aggregating)});
    case3.add_row({util::to_string(as),
                   util::fmt(causes.percent_identified, 1),
                   util::fmt(causes.percent_announce, 1),
                   util::fmt(causes.percent_withheld, 1)});
    if (causes.sa_total > 0 &&
        causes.splitting + causes.aggregating > causes.sa_total / 2) {
      minor_everywhere = false;
    }
  }
  std::cout << table.render("Case 1/2 counts (paper Table 9)") << "\n";
  std::cout << case3.render("Case 3: origin behavior toward direct providers "
                            "(paper, AS1: 90% identified; 21% / 79%)")
            << "\n";
  std::cout << "Shape check: splitting+aggregating stay a minority cause at "
               "every Tier-1: "
            << (minor_everywhere ? "yes" : "NO") << "\n";
  return 0;
}
