// Fig. 2: consistency of local preference with next-hop AS.
//   (a) per vantage AS — most assign preference per neighbor;
//   (b) per router within one AS (the paper's 30 AT&T backbone routers).
#include "bench_common.h"
#include "core/nexthop_consistency.h"
#include "sim/router_partition.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Fig. 2 — local preference keyed on next-hop AS",
                "(a) most of 14 ASs near 100%; (b) most of AT&T's 30 "
                "routers near 100%, a few lower");

  // (a) Per-vantage consistency.
  util::TextTable per_as({"AS", "routes", "% next-hop keyed"});
  std::size_t high = 0;
  for (const auto vantage : pipe.vantage.looking_glass) {
    const auto result =
        core::analyze_nexthop_consistency(pipe.sim.looking_glass.at(vantage));
    per_as.add_row({util::to_string(vantage),
                    std::to_string(result.total_routes),
                    util::fmt(result.percent_consistent, 1)});
    if (result.percent_consistent > 90.0) ++high;
  }
  std::cout << per_as.render("Fig. 2(a): per-AS consistency") << "\n";
  std::cout << "Shape check: " << high << "/"
            << pipe.vantage.looking_glass.size()
            << " vantages above 90% (paper: most of 14 near 100%)\n\n";

  // (b) Per-router consistency inside AS7018 (the AT&T substitute).
  const util::AsNumber att{7018};
  sim::RouterPartitionParams params;
  params.router_count = 30;
  const auto views =
      sim::partition_routers(pipe.sim.looking_glass.at(att), params);
  util::TextTable per_router({"router", "routes", "% next-hop keyed"});
  std::size_t populated = 0;
  std::size_t router_high = 0;
  for (const auto& view : views) {
    const auto result = core::analyze_nexthop_consistency(view.table);
    per_router.add_row({util::to_string(view.router),
                        std::to_string(result.total_routes),
                        util::fmt(result.percent_consistent, 1)});
    if (result.total_routes == 0) continue;
    ++populated;
    if (result.percent_consistent > 90.0) ++router_high;
  }
  std::cout << per_router.render(
                   "Fig. 2(b): per-router consistency inside AS7018")
            << "\n";
  std::cout << "Shape check: " << router_high << "/" << populated
            << " populated routers above 90% (paper: most of 30 near 100%, "
               "a few dipping)\n";
  return 0;
}
