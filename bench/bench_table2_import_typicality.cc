// Table 2: percentage of prefixes with typical local preference
// (customer > peer > provider) at each looking-glass vantage.
#include <map>

#include "bench_common.h"
#include "core/import_inference.h"

int main() {
  using namespace bgpolicy;
  const auto& pipe = bench::pipeline();
  bench::banner("Table 2 — typical local preference at 15 vantages",
                "94.3%..100% of prefixes conform to customer > peer > "
                "provider at every vantage");

  // The paper's reported values, for side-by-side shape comparison.
  const std::map<std::uint32_t, double> paper{
      {577, 94.3},   {5511, 96.5},  {3549, 99.7},  {6667, 99.94},
      {7474, 99.955},{12359, 99.98},{7018, 99.99}, {1, 99.994},
      {2578, 99.9982},{513, 100},   {6762, 100},   {559, 100},
      {12859, 100},  {8262, 100},   {6539, 100}};

  util::TextTable table({"AS", "comparable prefixes", "% typical (measured)",
                         "% typical (paper)"});
  std::size_t above90 = 0;
  std::size_t reported = 0;
  for (const auto vantage : pipe.vantage.looking_glass) {
    const auto result = core::analyze_import_typicality(
        pipe.sim.looking_glass.at(vantage), pipe.inferred_oracle());
    const auto it = paper.find(vantage.value());
    table.add_row({util::to_string(vantage),
                   std::to_string(result.comparable_prefixes),
                   util::fmt(result.percent_typical, 2),
                   it == paper.end() ? "-" : util::fmt(it->second, 2)});
    if (result.comparable_prefixes >= 10) {
      ++reported;
      if (result.percent_typical > 90.0) ++above90;
    }
  }
  std::cout << table.render() << "\n";
  std::cout << "Shape check: " << above90 << "/" << reported
            << " vantages (with >=10 comparable prefixes) above 90% typical "
               "(paper: 15/15 above 94%)\n";
  return 0;
}
