#include "bench_common.h"

#include <chrono>
#include <memory>

namespace bgpolicy::bench {

const core::Pipeline& pipeline() {
  static const std::unique_ptr<core::Pipeline> instance = [] {
    std::cout << "[bench] simulating the internet2002 scenario "
                 "(topology + policies + propagation + inference)...\n";
    const auto start = std::chrono::steady_clock::now();
    auto pipe = std::make_unique<core::Pipeline>(
        core::run_pipeline(core::Scenario::internet2002()));
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    std::cout << "[bench] " << pipe->topo.graph.as_count() << " ASs, "
              << pipe->originations.size() << " prefixes, "
              << pipe->sim.collector.route_count()
              << " collector routes; inference accuracy vs truth "
              << util::fmt(
                     100.0 * pipe->inferred.accuracy_against(pipe->topo.graph),
                     2)
              << "%; built in " << elapsed.count() << " ms\n\n";
    return pipe;
  }();
  return *instance;
}

void banner(const std::string& experiment, const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << experiment << "\n"
            << "Paper: " << paper_claim << "\n"
            << "================================================================\n";
}

}  // namespace bgpolicy::bench
