#!/usr/bin/env sh
# Runs the thread-scaling bench and emits its JSON result on stdout — the
# bench-trajectory hook for CI and local tracking.
#
# Usage: scripts/bench.sh [--small] [extra bench_sim_scaling flags...]
# Builds the bench target first if the build tree is missing it.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
bench="$build_dir/bench_sim_scaling"

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" >&2
fi
# Always build: a no-op when up to date, and never benchmarks a stale binary.
cmake --build "$build_dir" -j --target bench_sim_scaling >&2

exec "$bench" --json "$@"
