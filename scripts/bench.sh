#!/usr/bin/env sh
# Runs the thread-scaling benches (prefix-sharded simulation, sharded
# inference pipeline, the staged-experiment per-stage bench, and the
# artifact-store codec/load bench) and emits one combined JSON record on
# stdout — the bench-trajectory hook for CI and local tracking.  Committed
# trajectory points live at the repo root as BENCH_*.json (see
# docs/REPRODUCTION.md).
#
# Usage: scripts/bench.sh [--small] [extra bench flags...]
# Builds the bench targets first if the build tree is missing them.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" >&2
fi
# Always build: a no-op when up to date, and never benchmarks a stale binary.
cmake --build "$build_dir" -j \
  --target bench_sim_scaling --target bench_inference_scaling \
  --target bench_pipeline_stages --target bench_artifact_store \
  --target bench_query_service --target bench_delta_propagation >&2

# Each bench exits non-zero when its cross-thread determinism (or codec
# roundtrip / reply verification / delta-vs-cold equivalence) check fails;
# set -e turns that into a failed trajectory run.
sim_json=$("$build_dir/bench_sim_scaling" --json "$@")
inference_json=$("$build_dir/bench_inference_scaling" --json "$@")
stages_json=$("$build_dir/bench_pipeline_stages" --json "$@")
artifact_json=$("$build_dir/bench_artifact_store" --json "$@")
query_json=$("$build_dir/bench_query_service" --json "$@")
delta_json=$("$build_dir/bench_delta_propagation" --json \
  --specs "$repo_root/scenarios" "$@")

printf '{"schema":"bgpolicy-bench/v8","generated_utc":"%s","sim_scaling":%s,"inference_scaling":%s,"pipeline_stages":%s,"artifact_store":%s,"query_service":%s,"delta_propagation":%s}\n' \
  "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$sim_json" "$inference_json" "$stages_json" "$artifact_json" "$query_json" "$delta_json"
