#!/usr/bin/env python3
"""Validates a bgpolicy bench-trajectory record (scripts/bench.sh output).

Accepts bgpolicy-bench/v8 (current: adds the delta_propagation section —
lockstep incremental-vs-cold churn stepping with the byte-equivalence
flag `delta_match`, the steady-state `delta_speedup`, and the
spec-corpus replay counters), v7 (adds the query_service section — the
policy-query daemon's concurrent load run with queries/sec, latency
percentiles, snapshot-publish count, and the zero-error verification
flag), v6 (sim_scaling carries the flat-core
before/after — reference_seconds for the seed per-event engine,
flat_speedup over the threads=1 flat run, a reference_match counter
cross-check, and per-row events_per_sec), v5 (pipeline_stages rows gain
the task-graph comparison — graph_total_seconds, the irr/paths and
irr/sim overlap windows, and the Simulate chunk count), v4 (adds the
artifact_store section with per-artifact codec + load-vs-recompute
timings), v3 (adds the pipeline_stages section with per-stage wall-clock
timings), and v2 (earlier committed trajectory points).

Usage: validate_bench_json.py FILE...
Exits non-zero with a message naming the first violated requirement.
Stdlib-only on purpose: CI and the committed BENCH_*.json points must be
checkable without installing anything.
"""
import json
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def require(path, condition, message):
    if not condition:
        fail(path, message)


def check_scaling(path, name, record, result_keys):
    require(path, isinstance(record, dict), f"{name} must be an object")
    for key in ("bench", "scenario", "hardware_concurrency", "results"):
        require(path, key in record, f"{name}.{key} missing")
    require(path, isinstance(record["hardware_concurrency"], int),
            f"{name}.hardware_concurrency must be an integer")
    results = record["results"]
    require(path, isinstance(results, list) and results,
            f"{name}.results must be a non-empty array")
    for row in results:
        for key in result_keys:
            require(path, key in row, f"{name}.results[].{key} missing")
            require(path, isinstance(row[key], (int, float)),
                    f"{name}.results[].{key} must be a number")
    threads = [row["threads"] for row in results]
    require(path, threads == sorted(threads) and len(set(threads)) == len(threads),
            f"{name}.results[].threads must be strictly increasing")


def check_artifact_store(path, record):
    name = "artifact_store"
    require(path, isinstance(record, dict), f"{name} must be an object")
    for key in ("bench", "scenario", "hardware_concurrency", "results"):
        require(path, key in record, f"{name}.{key} missing")
    require(path, record.get("roundtrip_ok") is True,
            f"{name}.roundtrip_ok must be true")
    results = record["results"]
    require(path, isinstance(results, list) and results,
            f"{name}.results must be a non-empty array")
    artifacts = []
    for row in results:
        require(path, isinstance(row.get("artifact"), str),
                f"{name}.results[].artifact must be a string")
        artifacts.append(row["artifact"])
        for key in ("bytes", "compute_seconds", "encode_seconds",
                    "decode_seconds", "load_seconds", "load_speedup"):
            require(path, key in row, f"{name}.results[].{key} missing")
            require(path, isinstance(row[key], (int, float)),
                    f"{name}.results[].{key} must be a number")
    require(path, len(set(artifacts)) == len(artifacts),
            f"{name}.results[].artifact must be unique")


def check_query_service(path, record):
    name = "query_service"
    require(path, isinstance(record, dict), f"{name} must be an object")
    for key in ("bench", "scenario", "hardware_concurrency",
                "server_threads", "connections", "requests", "errors",
                "mismatches", "snapshot_publishes", "elapsed_seconds",
                "queries_per_sec", "latency_usec"):
        require(path, key in record, f"{name}.{key} missing")
    for key in ("connections", "requests", "errors", "mismatches",
                "snapshot_publishes"):
        require(path, isinstance(record[key], int),
                f"{name}.{key} must be an integer")
    require(path, record["requests"] > 0, f"{name}.requests must be > 0")
    require(path, record["errors"] == 0,
            f"{name}.errors must be 0 (dropped or malformed replies)")
    require(path, record["mismatches"] == 0,
            f"{name}.mismatches must be 0 (replies differ from the "
            "library answer)")
    require(path, isinstance(record["queries_per_sec"], (int, float))
            and record["queries_per_sec"] > 0,
            f"{name}.queries_per_sec must be a positive number")
    require(path, record.get("zero_errors") is True,
            f"{name}.zero_errors must be true")
    latency = record["latency_usec"]
    require(path, isinstance(latency, dict),
            f"{name}.latency_usec must be an object")
    for key in ("p50", "p90", "p99", "max"):
        require(path, isinstance(latency.get(key), (int, float)),
                f"{name}.latency_usec.{key} must be a number")
    require(path, latency["p50"] <= latency["p99"] <= latency["max"],
            f"{name}.latency_usec percentiles must be non-decreasing")


def check_delta_propagation(path, record):
    name = "delta_propagation"
    require(path, isinstance(record, dict), f"{name} must be an object")
    for key in ("bench", "scenario", "hardware_concurrency", "churn",
                "spec_replay", "delta_match", "delta_speedup"):
        require(path, key in record, f"{name}.{key} missing")
    require(path, record["delta_match"] is True,
            f"{name}.delta_match must be true (incremental stepping must "
            "be byte-equivalent to cold recomputation)")
    require(path, isinstance(record["delta_speedup"], (int, float))
            and record["delta_speedup"] > 1,
            f"{name}.delta_speedup must be a number > 1")
    churn = record["churn"]
    require(path, isinstance(churn, dict), f"{name}.churn must be an object")
    for key in ("warmup_steps", "measured_steps", "cold_seconds",
                "incremental_seconds", "cold_steps_per_sec",
                "incremental_steps_per_sec", "warm_states", "memo_hits"):
        require(path, isinstance(churn.get(key), (int, float)),
                f"{name}.churn.{key} must be a number")
    require(path, churn["measured_steps"] > 0,
            f"{name}.churn.measured_steps must be > 0")
    replay = record["spec_replay"]
    require(path, isinstance(replay, dict),
            f"{name}.spec_replay must be an object")
    for key in ("specs", "checks", "failures"):
        require(path, isinstance(replay.get(key), int),
                f"{name}.spec_replay.{key} must be an integer")
    require(path, replay["specs"] > 0,
            f"{name}.spec_replay.specs must be > 0")
    require(path, replay["failures"] == 0,
            f"{name}.spec_replay.failures must be 0")


def check_file(path):
    with open(path, encoding="utf-8") as handle:
        try:
            record = json.load(handle)
        except json.JSONDecodeError as error:
            fail(path, f"not valid JSON: {error}")
    schema = record.get("schema")
    require(path,
            schema in ("bgpolicy-bench/v2", "bgpolicy-bench/v3",
                       "bgpolicy-bench/v4", "bgpolicy-bench/v5",
                       "bgpolicy-bench/v6", "bgpolicy-bench/v7",
                       "bgpolicy-bench/v8"),
            'schema must be "bgpolicy-bench/v2".."bgpolicy-bench/v8"')
    require(path, "generated_utc" in record, "generated_utc missing")

    flat_core = schema in ("bgpolicy-bench/v6", "bgpolicy-bench/v7",
                           "bgpolicy-bench/v8")
    sim_keys = ["threads", "seconds", "speedup"]
    if flat_core:
        sim_keys.append("events_per_sec")
    sim = record.get("sim_scaling")
    check_scaling(path, "sim_scaling", sim, tuple(sim_keys))
    require(path, sim.get("counters_match") is True,
            "sim_scaling.counters_match must be true")
    if flat_core:
        # The flat-core before/after: the seed per-event engine timed over
        # the same originations, counter-checked against the flat rows.
        for key in ("reference_seconds", "flat_speedup"):
            require(path, isinstance(sim.get(key), (int, float)),
                    f"sim_scaling.{key} must be a number")
        require(path, sim.get("reference_match") is True,
                "sim_scaling.reference_match must be true")

    inference = record.get("inference_scaling")
    check_scaling(path, "inference_scaling", inference,
                  ("threads", "gao_seconds", "path_index_seconds",
                   "analysis_seconds", "total_seconds", "speedup"))
    require(path, inference.get("products_match") is True,
            "inference_scaling.products_match must be true")

    summary = (f"sim rows: {len(sim['results'])}, "
               f"inference rows: {len(inference['results'])}")
    if schema != "bgpolicy-bench/v2":
        stage_keys = ["threads", "synthesize_seconds", "simulate_seconds",
                      "observe_seconds", "infer_seconds", "analyze_seconds",
                      "total_seconds", "speedup"]
        if schema in ("bgpolicy-bench/v5", "bgpolicy-bench/v6",
                      "bgpolicy-bench/v7", "bgpolicy-bench/v8"):
            # The task-graph comparison: one end-to-end run with overlapped
            # stage nodes next to the serial-stage sum, plus the overlap
            # windows and the Simulate chunk count.
            stage_keys += ["graph_total_seconds",
                           "overlap_irr_paths_seconds",
                           "overlap_irr_sim_seconds", "sim_chunks"]
        stages = record.get("pipeline_stages")
        check_scaling(path, "pipeline_stages", stages, tuple(stage_keys))
        require(path, stages.get("products_match") is True,
                "pipeline_stages.products_match must be true")
        summary += f", stage rows: {len(stages['results'])}"
    if schema in ("bgpolicy-bench/v4", "bgpolicy-bench/v5",
                  "bgpolicy-bench/v6", "bgpolicy-bench/v7",
                  "bgpolicy-bench/v8"):
        store = record.get("artifact_store")
        check_artifact_store(path, store)
        summary += f", artifact rows: {len(store['results'])}"
    if schema in ("bgpolicy-bench/v7", "bgpolicy-bench/v8"):
        service = record.get("query_service")
        check_query_service(path, service)
        summary += (f", query qps: {service['queries_per_sec']:.0f}")
    if schema == "bgpolicy-bench/v8":
        delta = record.get("delta_propagation")
        check_delta_propagation(path, delta)
        summary += (f", delta speedup: {delta['delta_speedup']:.1f}x")

    print(f"{path}: ok ({summary})")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
