#!/usr/bin/env sh
# Checks that every relative markdown link in README.md and docs/*.md
# resolves to an existing file or directory, so the docs cannot silently
# rot as the tree moves.  External links (scheme://...) and pure anchors
# (#...) are skipped; a #fragment on a relative link is stripped before the
# existence check.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
failures=$(mktemp)
trap 'rm -f "$failures"' EXIT

for doc in "$repo_root/README.md" "$repo_root"/docs/*.md; do
  [ -f "$doc" ] || continue
  doc_dir=$(dirname -- "$doc")
  # Extract every ](target) markdown link target, one per line.
  grep -o ']([^)]*)' "$doc" | sed 's/^](//; s/)$//' |
  while IFS= read -r target; do
    case "$target" in
      ''|\#*) continue ;;                  # pure anchor
      *://*|mailto:*) continue ;;          # external
    esac
    path=${target%%#*}                     # strip fragment
    [ -n "$path" ] || continue
    if [ ! -e "$doc_dir/$path" ] && [ ! -e "$repo_root/$path" ]; then
      echo "BROKEN LINK in ${doc#"$repo_root"/}: $target" | tee -a "$failures" >&2
    fi
  done
done

if [ -s "$failures" ]; then
  exit 1
fi
echo "all relative links in README.md and docs/*.md resolve"
