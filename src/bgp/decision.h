// The BGP best-route decision process, exactly as enumerated in the paper
// (Section 2.2.1):
//
//   1. highest LOCAL_PREF
//   2. shortest AS path
//   3. lowest ORIGIN
//   4. lowest MED, compared only between routes with the same next-hop AS
//   5. eBGP-learned over iBGP-learned
//   6. lowest IGP metric to the egress router
//   7. lowest router ID
//
// Because of step 4's "same next-hop AS only" scoping, route preference is
// not a total order; like a real router we therefore select the best route
// by a linear tournament rather than by sorting.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "bgp/route.h"

namespace bgpolicy::bgp {

/// Which decision step picked a winner between two routes.
enum class DecisionStep : std::uint8_t {
  kLocalPref = 1,
  kAsPathLength = 2,
  kOrigin = 3,
  kMed = 4,
  kEbgp = 5,
  kIgpMetric = 6,
  kRouterId = 7,
  kTie = 0,
};

[[nodiscard]] std::string to_string(DecisionStep step);

struct Comparison {
  /// <0: lhs is better; >0: rhs is better; 0: indistinguishable.
  int preference = 0;
  DecisionStep decided_by = DecisionStep::kTie;
};

/// Compares two routes for the same prefix under the 7-step process.
[[nodiscard]] Comparison compare_routes(const Route& lhs, const Route& rhs);

/// True when `lhs` wins the pairwise comparison.
[[nodiscard]] bool better(const Route& lhs, const Route& rhs);

/// Selects the best route by tournament; returns the index of the winner,
/// or std::nullopt for an empty candidate set.  Deterministic: the earliest
/// candidate wins exact ties.
[[nodiscard]] std::optional<std::size_t> select_best(
    std::span<const Route> candidates);

/// Sentinel for RouteColumns::next_hop: the route has no next-hop AS (a
/// self-originated route with an empty AS path).
inline constexpr std::uint32_t kNoNextHop = 0xFFFFFFFFu;

/// A struct-of-arrays candidate set: column `i` of every span describes the
/// same route.  This is the allocation-free shape the flat propagation
/// engine (sim/flat_engine.h) hands to the decision process — path length
/// and next-hop AS are pre-derived from its interned path ids, everything
/// else maps 1:1 onto the Route fields the 7 steps read.  `origin` holds
/// raw Origin enum values; `next_hop` holds raw AS numbers or kNoNextHop.
struct RouteColumns {
  std::span<const std::uint32_t> local_pref;
  std::span<const std::uint32_t> path_length;
  std::span<const std::uint8_t> origin;
  std::span<const std::uint32_t> next_hop;
  std::span<const std::uint32_t> med;
  std::span<const std::uint8_t> from_ebgp;
  std::span<const std::uint32_t> igp_metric;
  std::span<const std::uint32_t> router_id;

  [[nodiscard]] std::size_t size() const { return local_pref.size(); }
};

/// Column-wise pairwise comparison — the exact 7-step process of
/// compare_routes over SoA candidates (step 4's MED scoping compares only
/// when both routes have a real, identical next-hop AS).
[[nodiscard]] Comparison compare_columns(const RouteColumns& columns,
                                         std::size_t lhs, std::size_t rhs);

/// Tournament over SoA candidates; identical winner to the Route overload
/// given field-equal candidates (earliest candidate wins exact ties).
[[nodiscard]] std::optional<std::size_t> select_best(
    const RouteColumns& columns);

}  // namespace bgpolicy::bgp
