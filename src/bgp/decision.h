// The BGP best-route decision process, exactly as enumerated in the paper
// (Section 2.2.1):
//
//   1. highest LOCAL_PREF
//   2. shortest AS path
//   3. lowest ORIGIN
//   4. lowest MED, compared only between routes with the same next-hop AS
//   5. eBGP-learned over iBGP-learned
//   6. lowest IGP metric to the egress router
//   7. lowest router ID
//
// Because of step 4's "same next-hop AS only" scoping, route preference is
// not a total order; like a real router we therefore select the best route
// by a linear tournament rather than by sorting.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "bgp/route.h"

namespace bgpolicy::bgp {

/// Which decision step picked a winner between two routes.
enum class DecisionStep : std::uint8_t {
  kLocalPref = 1,
  kAsPathLength = 2,
  kOrigin = 3,
  kMed = 4,
  kEbgp = 5,
  kIgpMetric = 6,
  kRouterId = 7,
  kTie = 0,
};

[[nodiscard]] std::string to_string(DecisionStep step);

struct Comparison {
  /// <0: lhs is better; >0: rhs is better; 0: indistinguishable.
  int preference = 0;
  DecisionStep decided_by = DecisionStep::kTie;
};

/// Compares two routes for the same prefix under the 7-step process.
[[nodiscard]] Comparison compare_routes(const Route& lhs, const Route& rhs);

/// True when `lhs` wins the pairwise comparison.
[[nodiscard]] bool better(const Route& lhs, const Route& rhs);

/// Selects the best route by tournament; returns the index of the winner,
/// or std::nullopt for an empty candidate set.  Deterministic: the earliest
/// candidate wins exact ties.
[[nodiscard]] std::optional<std::size_t> select_best(
    std::span<const Route> candidates);

}  // namespace bgpolicy::bgp
