#include "bgp/route.h"

#include <ostream>
#include <sstream>

namespace bgpolicy::bgp {

std::string to_string(Origin origin) {
  switch (origin) {
    case Origin::kIgp: return "IGP";
    case Origin::kEgp: return "EGP";
    case Origin::kIncomplete: return "incomplete";
  }
  return "?";
}

void Route::add_community(Community community) {
  const auto it =
      std::lower_bound(communities.begin(), communities.end(), community);
  if (it != communities.end() && *it == community) return;
  communities.insert(it, community);
}

bool Route::has_community(Community community) const {
  return std::binary_search(communities.begin(), communities.end(), community);
}

std::string Route::to_string() const {
  std::ostringstream out;
  out << prefix << " path [" << path << "] from " << learned_from
      << " lp " << local_pref << " med " << med << " origin "
      << bgp::to_string(origin);
  if (!communities.empty()) {
    out << " community";
    for (const auto c : communities) out << ' ' << c;
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Route& route) {
  return os << route.to_string();
}

}  // namespace bgpolicy::bgp
