// IPv4 prefixes (CIDR blocks).
//
// The paper's export-policy analysis leans on prefix containment: "prefix
// splitting" announces a more-specific out of a larger block, and "prefix
// aggregating" hides a customer block inside a provider block (Section
// 5.1.5, Cases 1-2).  Prefix is a value type: 32-bit network address plus
// length, always kept canonical (host bits zero).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace bgpolicy::bgp {

class Prefix {
 public:
  /// The default prefix is 0.0.0.0/0.
  constexpr Prefix() = default;

  /// Builds a prefix from a network address and length; host bits below the
  /// mask are cleared.  Throws std::invalid_argument for length > 32.
  Prefix(std::uint32_t network, std::uint8_t length);

  /// Parses "a.b.c.d/len".  Throws std::invalid_argument on malformed text.
  [[nodiscard]] static Prefix parse(std::string_view text);

  /// Parses, returning std::nullopt instead of throwing.
  [[nodiscard]] static std::optional<Prefix> try_parse(
      std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint32_t network() const { return network_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }

  /// The netmask as a 32-bit word (length 0 -> 0).
  [[nodiscard]] constexpr std::uint32_t mask() const {
    return length_ == 0 ? 0U : ~std::uint32_t{0} << (32 - length_);
  }

  /// True if `address` falls inside this block.
  [[nodiscard]] constexpr bool contains(std::uint32_t address) const {
    return (address & mask()) == network_;
  }

  /// True if `other` is equal to or more specific than this block
  /// ("this covers other").
  [[nodiscard]] constexpr bool covers(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.network_);
  }

  /// True if `other` strictly covers this prefix (other is a proper
  /// less-specific).  "12.10.1.0/24 is covered by 12.0.0.0/19".
  [[nodiscard]] constexpr bool is_more_specific_of(const Prefix& other) const {
    return other.length_ < length_ && other.contains(network_);
  }

  /// The immediate parent block (length-1), or nullopt for /0.
  [[nodiscard]] std::optional<Prefix> parent() const;

  /// The two halves of this block, or nullopt for /32.
  [[nodiscard]] std::optional<std::pair<Prefix, Prefix>> split() const;

  /// The i-th /`sub_length` sub-block.  Requires sub_length >= length and the
  /// index to fit; throws otherwise.
  [[nodiscard]] Prefix subnet(std::uint8_t sub_length, std::uint32_t index) const;

  /// Number of /`sub_length` sub-blocks inside this prefix.
  [[nodiscard]] std::uint64_t subnet_count(std::uint8_t sub_length) const;

  [[nodiscard]] std::string to_string() const;

  /// Lexicographic on (network, length): gives the "parent sorts before its
  /// more-specifics" order the covering scan in core/causes relies on.
  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  std::uint32_t network_ = 0;
  std::uint8_t length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Prefix& prefix);

/// Formats a bare IPv4 address.
[[nodiscard]] std::string format_ipv4(std::uint32_t address);

}  // namespace bgpolicy::bgp

template <>
struct std::hash<bgpolicy::bgp::Prefix> {
  std::size_t operator()(const bgpolicy::bgp::Prefix& p) const noexcept {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(p.network()) << 8) | p.length();
    // splitmix64-style finalizer.
    std::uint64_t z = packed + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
