// A BGP route: one prefix plus the path attributes the paper's decision
// process (Section 2.2.1) and inference algorithms consume.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "bgp/aspath.h"
#include "bgp/community.h"
#include "bgp/prefix.h"
#include "util/ids.h"

namespace bgpolicy::bgp {

/// ORIGIN attribute; lower is preferred (decision step 3).
enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

[[nodiscard]] std::string to_string(Origin origin);

struct Route {
  Prefix prefix;

  /// AS path as received: hops().front() is the announcing neighbor (the
  /// paper's "next hop AS"), hops().back() the origin AS.  Empty for routes
  /// an AS originates itself.
  AsPath path;

  /// The neighbor this route was learned from.  Matches path.next_hop_as()
  /// for learned routes; equals the owning AS for self-originated routes.
  AsNumber learned_from;

  std::uint32_t local_pref = 100;  ///< decision step 1 (higher wins)
  std::uint32_t med = 0;           ///< decision step 4 (lower wins, same neighbor AS)
  Origin origin = Origin::kIgp;    ///< decision step 3 (lower wins)
  bool from_ebgp = true;           ///< decision step 5 (eBGP wins)
  std::uint32_t igp_metric = 0;    ///< decision step 6 (lower wins)
  std::uint32_t router_id = 0;     ///< decision step 7 (lower wins)

  /// Sorted, deduplicated community set.
  std::vector<Community> communities;

  [[nodiscard]] bool self_originated() const { return path.empty(); }

  [[nodiscard]] std::optional<AsNumber> next_hop_as() const {
    return path.next_hop_as();
  }

  /// Origin AS of the prefix: last path hop, or the learner for
  /// self-originated routes.
  [[nodiscard]] AsNumber origin_as() const {
    return path.empty() ? learned_from : *path.origin_as();
  }

  void add_community(Community community);
  [[nodiscard]] bool has_community(Community community) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Route&, const Route&) = default;
};

std::ostream& operator<<(std::ostream& os, const Route& route);

}  // namespace bgpolicy::bgp
