// Binary radix (Patricia-lite) trie over IPv4 prefixes.
//
// Drives the causes analysis (Section 5.1.5): splitting detection needs "all
// less-specifics of p" and aggregation detection needs "is p covered by some
// other announced prefix".  Values are an arbitrary payload type.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "bgp/prefix.h"

namespace bgpolicy::bgp {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or overwrites the value at `prefix`.  Returns true if the
  /// prefix was newly inserted, false if overwritten.
  bool insert(const Prefix& prefix, Value value) {
    Node* node = descend_create(prefix);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Removes the entry at `prefix` if present.  Returns true if removed.
  /// (Nodes are left in place; the trie is built once per analysis pass, so
  /// structural compaction is not worth the complexity.)
  bool erase(const Prefix& prefix) {
    Node* node = descend_find(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Exact-match lookup.
  [[nodiscard]] const Value* find(const Prefix& prefix) const {
    const Node* node = descend_find(prefix);
    if (node == nullptr || !node->value.has_value()) return nullptr;
    return &*node->value;
  }

  [[nodiscard]] Value* find(const Prefix& prefix) {
    return const_cast<Value*>(std::as_const(*this).find(prefix));
  }

  /// Longest-prefix match for a full address; nullptr when nothing covers it.
  [[nodiscard]] const Value* longest_match(std::uint32_t address) const {
    const Node* node = root_.get();
    const Value* best = node->value ? &*node->value : nullptr;
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (address >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node != nullptr && node->value) best = &*node->value;
    }
    return best;
  }

  /// Calls fn(prefix, value) for every stored prefix that covers `prefix`
  /// (equal or less specific), from /0 downwards.
  void for_each_covering(
      const Prefix& prefix,
      const std::function<void(const Prefix&, const Value&)>& fn) const {
    const Node* node = root_.get();
    std::uint32_t network = 0;
    for (std::uint8_t depth = 0;; ++depth) {
      if (node->value) fn(Prefix(network, depth), *node->value);
      if (depth == prefix.length()) break;
      const int bit = (prefix.network() >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node == nullptr) break;
      if (bit != 0) network |= 1U << (31 - depth);
    }
  }

  /// True if some *other* stored prefix strictly covers `prefix`
  /// ("prefix can be aggregated by another announced prefix").
  [[nodiscard]] bool has_strict_covering(const Prefix& prefix) const {
    bool found = false;
    for_each_covering(prefix, [&](const Prefix& p, const Value&) {
      if (p != prefix) found = true;
    });
    return found;
  }

  /// Calls fn(prefix, value) for every stored prefix covered by `prefix`
  /// (equal or more specific), in depth-first order.
  void for_each_covered(
      const Prefix& prefix,
      const std::function<void(const Prefix&, const Value&)>& fn) const {
    const Node* node = descend_find(prefix);
    if (node == nullptr) return;
    walk(node, prefix.network(), prefix.length(), fn);
  }

  /// Calls fn(prefix, value) for every entry, in address order.
  void for_each(
      const std::function<void(const Prefix&, const Value&)>& fn) const {
    walk(root_.get(), 0, 0, fn);
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::array<std::unique_ptr<Node>, 2> child;
  };

  Node* descend_create(const Prefix& prefix) {
    Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.network() >> (31 - depth)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  [[nodiscard]] const Node* descend_find(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (std::uint8_t depth = 0; depth < prefix.length() && node != nullptr;
         ++depth) {
      const int bit = (prefix.network() >> (31 - depth)) & 1;
      node = node->child[bit].get();
    }
    return node;
  }

  [[nodiscard]] Node* descend_find(const Prefix& prefix) {
    return const_cast<Node*>(std::as_const(*this).descend_find(prefix));
  }

  static void walk(
      const Node* node, std::uint32_t network, std::uint8_t depth,
      const std::function<void(const Prefix&, const Value&)>& fn) {
    if (node->value) fn(Prefix(network, depth), *node->value);
    if (depth == 32) return;
    if (node->child[0]) walk(node->child[0].get(), network,
                             static_cast<std::uint8_t>(depth + 1), fn);
    if (node->child[1]) {
      walk(node->child[1].get(),
           network | (1U << (31 - depth)),
           static_cast<std::uint8_t>(depth + 1), fn);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace bgpolicy::bgp
