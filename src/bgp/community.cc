#include "bgp/community.h"

#include <charconv>
#include <ostream>
#include <stdexcept>

namespace bgpolicy::bgp {

namespace {

std::optional<std::uint16_t> parse_u16(std::string_view text,
                                       std::size_t& pos) {
  if (pos >= text.size()) return std::nullopt;
  std::uint32_t value = 0;
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 0xFFFF) return std::nullopt;
  pos += static_cast<std::size_t>(ptr - begin);
  return static_cast<std::uint16_t>(value);
}

}  // namespace

std::optional<Community> Community::try_parse(std::string_view text) noexcept {
  std::size_t pos = 0;
  const auto asn = parse_u16(text, pos);
  if (!asn || pos >= text.size() || text[pos] != ':') return std::nullopt;
  ++pos;
  const auto value = parse_u16(text, pos);
  if (!value || pos != text.size()) return std::nullopt;
  return Community(*asn, *value);
}

Community Community::parse(std::string_view text) {
  const auto parsed = try_parse(text);
  if (!parsed) {
    throw std::invalid_argument("Community::parse: malformed community \"" +
                                std::string(text) + "\"");
  }
  return *parsed;
}

std::string Community::to_string() const {
  if (*this == kNoExport) return "no-export";
  if (*this == kNoAdvertise) return "no-advertise";
  if (*this == kNoExportSubconfed) return "no-export-subconfed";
  return std::to_string(asn()) + ":" + std::to_string(value());
}

std::ostream& operator<<(std::ostream& os, Community community) {
  return os << community.to_string();
}

}  // namespace bgpolicy::bgp
