// BGP COMMUNITY attribute (RFC 1997).
//
// Communities are the paper's verification instrument (Section 4.3 +
// Appendix): ASes tag routes with values that encode the relationship with
// the announcing neighbor (Table 11), and well-known values such as
// NO_EXPORT implement the "announce to the provider but no further"
// selective-announcement flavor (Section 5.1.5, Case 3).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "util/ids.h"

namespace bgpolicy::bgp {

class Community {
 public:
  constexpr Community() = default;

  /// Builds "asn:value" (both 16-bit halves of the 32-bit attribute).
  constexpr Community(std::uint16_t asn, std::uint16_t value)
      : raw_((static_cast<std::uint32_t>(asn) << 16) | value) {}

  constexpr explicit Community(std::uint32_t raw) : raw_(raw) {}

  /// Parses "asn:value" (e.g. "12859:1000").
  [[nodiscard]] static Community parse(std::string_view text);
  [[nodiscard]] static std::optional<Community> try_parse(
      std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint32_t raw() const { return raw_; }
  [[nodiscard]] constexpr std::uint16_t asn() const {
    return static_cast<std::uint16_t>(raw_ >> 16);
  }
  [[nodiscard]] constexpr std::uint16_t value() const {
    return static_cast<std::uint16_t>(raw_ & 0xFFFF);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Community, Community) = default;

 private:
  std::uint32_t raw_ = 0;
};

/// RFC 1997 well-known communities.
inline constexpr Community kNoExport{0xFFFFFF01};
inline constexpr Community kNoAdvertise{0xFFFFFF02};
inline constexpr Community kNoExportSubconfed{0xFFFFFF03};

[[nodiscard]] constexpr bool is_well_known(Community c) {
  return (c.raw() & 0xFFFF0000U) == 0xFFFF0000U;
}

/// An action community of the "do not announce to AS x" family that the
/// paper cites (via the Quoitin-Bonaventure survey [20]) as a common
/// traffic-engineering mechanism.  We encode it as tagger_asn:(3000+slot),
/// where the tagging AS publishes the slot -> target-AS mapping; the sim
/// layer owns those mappings.
struct NoExportToTarget {
  util::AsNumber tagger;
  util::AsNumber target;
};

std::ostream& operator<<(std::ostream& os, Community community);

}  // namespace bgpolicy::bgp

template <>
struct std::hash<bgpolicy::bgp::Community> {
  std::size_t operator()(bgpolicy::bgp::Community c) const noexcept {
    return std::hash<std::uint32_t>{}(c.raw());
  }
};
