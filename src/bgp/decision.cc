#include "bgp/decision.h"

namespace bgpolicy::bgp {

std::string to_string(DecisionStep step) {
  switch (step) {
    case DecisionStep::kLocalPref: return "local-pref";
    case DecisionStep::kAsPathLength: return "as-path-length";
    case DecisionStep::kOrigin: return "origin";
    case DecisionStep::kMed: return "med";
    case DecisionStep::kEbgp: return "ebgp-over-ibgp";
    case DecisionStep::kIgpMetric: return "igp-metric";
    case DecisionStep::kRouterId: return "router-id";
    case DecisionStep::kTie: return "tie";
  }
  return "?";
}

Comparison compare_routes(const Route& lhs, const Route& rhs) {
  // Step 1: highest local preference.
  if (lhs.local_pref != rhs.local_pref) {
    return {lhs.local_pref > rhs.local_pref ? -1 : 1,
            DecisionStep::kLocalPref};
  }
  // Step 2: shortest AS path.
  if (lhs.path.length() != rhs.path.length()) {
    return {lhs.path.length() < rhs.path.length() ? -1 : 1,
            DecisionStep::kAsPathLength};
  }
  // Step 3: lowest origin type.
  if (lhs.origin != rhs.origin) {
    return {lhs.origin < rhs.origin ? -1 : 1, DecisionStep::kOrigin};
  }
  // Step 4: lowest MED, only between routes from the same next-hop AS.
  const auto lhs_nh = lhs.next_hop_as();
  const auto rhs_nh = rhs.next_hop_as();
  if (lhs_nh && rhs_nh && *lhs_nh == *rhs_nh && lhs.med != rhs.med) {
    return {lhs.med < rhs.med ? -1 : 1, DecisionStep::kMed};
  }
  // Step 5: prefer eBGP-learned routes.
  if (lhs.from_ebgp != rhs.from_ebgp) {
    return {lhs.from_ebgp ? -1 : 1, DecisionStep::kEbgp};
  }
  // Step 6: lowest IGP metric to the egress border router.
  if (lhs.igp_metric != rhs.igp_metric) {
    return {lhs.igp_metric < rhs.igp_metric ? -1 : 1,
            DecisionStep::kIgpMetric};
  }
  // Step 7: lowest router ID.
  if (lhs.router_id != rhs.router_id) {
    return {lhs.router_id < rhs.router_id ? -1 : 1, DecisionStep::kRouterId};
  }
  return {0, DecisionStep::kTie};
}

bool better(const Route& lhs, const Route& rhs) {
  return compare_routes(lhs, rhs).preference < 0;
}

std::optional<std::size_t> select_best(std::span<const Route> candidates) {
  if (candidates.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (better(candidates[i], candidates[best])) best = i;
  }
  return best;
}

Comparison compare_columns(const RouteColumns& c, std::size_t lhs,
                           std::size_t rhs) {
  // Step 1: highest local preference.
  if (c.local_pref[lhs] != c.local_pref[rhs]) {
    return {c.local_pref[lhs] > c.local_pref[rhs] ? -1 : 1,
            DecisionStep::kLocalPref};
  }
  // Step 2: shortest AS path.
  if (c.path_length[lhs] != c.path_length[rhs]) {
    return {c.path_length[lhs] < c.path_length[rhs] ? -1 : 1,
            DecisionStep::kAsPathLength};
  }
  // Step 3: lowest origin type.
  if (c.origin[lhs] != c.origin[rhs]) {
    return {c.origin[lhs] < c.origin[rhs] ? -1 : 1, DecisionStep::kOrigin};
  }
  // Step 4: lowest MED, only between routes from the same next-hop AS.
  if (c.next_hop[lhs] != kNoNextHop && c.next_hop[lhs] == c.next_hop[rhs] &&
      c.med[lhs] != c.med[rhs]) {
    return {c.med[lhs] < c.med[rhs] ? -1 : 1, DecisionStep::kMed};
  }
  // Step 5: prefer eBGP-learned routes.
  if (c.from_ebgp[lhs] != c.from_ebgp[rhs]) {
    return {c.from_ebgp[lhs] != 0 ? -1 : 1, DecisionStep::kEbgp};
  }
  // Step 6: lowest IGP metric to the egress border router.
  if (c.igp_metric[lhs] != c.igp_metric[rhs]) {
    return {c.igp_metric[lhs] < c.igp_metric[rhs] ? -1 : 1,
            DecisionStep::kIgpMetric};
  }
  // Step 7: lowest router ID.
  if (c.router_id[lhs] != c.router_id[rhs]) {
    return {c.router_id[lhs] < c.router_id[rhs] ? -1 : 1,
            DecisionStep::kRouterId};
  }
  return {0, DecisionStep::kTie};
}

std::optional<std::size_t> select_best(const RouteColumns& columns) {
  if (columns.size() == 0) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < columns.size(); ++i) {
    if (compare_columns(columns, i, best).preference < 0) best = i;
  }
  return best;
}

}  // namespace bgpolicy::bgp
