// A BGP routing table as seen from one vantage point — the unit of input
// for every inference algorithm in the paper ("routing table from the
// viewpoint of AS u", Fig. 4).
//
// Two flavors share this type:
//  * collector tables (Oregon RouteViews style): one route per collector
//    peer per prefix, AS-path only attributes trustworthy;
//  * looking-glass tables: the Adj-RIB-In of a single AS, local-pref and
//    communities visible.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/decision.h"
#include "bgp/prefix.h"
#include "bgp/route.h"
#include "util/ids.h"

namespace bgpolicy::bgp {

class BgpTable {
 public:
  BgpTable() = default;
  explicit BgpTable(util::AsNumber owner) : owner_(owner) {}

  [[nodiscard]] util::AsNumber owner() const { return owner_; }

  /// Adds a route.  If a route from the same neighbor already exists for the
  /// prefix it is replaced (BGP implicit withdraw semantics).
  void add(Route route);

  /// Adds many routes with the same observable semantics as calling add()
  /// on each in order, but O(1) amortized per route: a per-call
  /// (prefix, neighbor) index replaces the per-route implicit-withdraw
  /// linear scan, so batch-loading a recorded table is linear in the batch
  /// instead of quadratic in routes-per-prefix.  The batch-load path for
  /// ingesting recorded tables (io::deserialize_table, vantage-view
  /// construction).
  void add_batch(std::vector<Route> routes);

  /// Removes the route for `prefix` learned from `neighbor`, if any.
  void withdraw(const Prefix& prefix, util::AsNumber neighbor);

  /// All routes for a prefix (possibly empty).
  [[nodiscard]] std::span<const Route> routes(const Prefix& prefix) const;

  /// Best route per the decision process; nullptr when the prefix is absent.
  [[nodiscard]] const Route* best(const Prefix& prefix) const;

  [[nodiscard]] bool contains(const Prefix& prefix) const;
  [[nodiscard]] std::size_t prefix_count() const { return entries_.size(); }
  [[nodiscard]] std::size_t route_count() const { return route_count_; }

  /// All prefixes, in first-insertion order.  Deterministic iteration is
  /// what lets io-serialized tables round-trip byte-identically and makes
  /// every for_each consumer independent of hash-map layout
  /// (io/artifact_codec.h relies on this).
  [[nodiscard]] std::vector<Prefix> prefixes() const { return order_; }

  /// Calls fn(prefix, all-routes) for every entry, in first-insertion
  /// prefix order.
  void for_each(const std::function<void(const Prefix&,
                                         std::span<const Route>)>& fn) const;

  /// Calls fn(best-route) for every prefix that has at least one route, in
  /// first-insertion prefix order.
  void for_each_best(const std::function<void(const Route&)>& fn) const;

 private:
  util::AsNumber owner_;
  std::unordered_map<Prefix, std::vector<Route>> entries_;
  /// Prefixes in first-insertion order (kept in sync with entries_).
  std::vector<Prefix> order_;
  std::size_t route_count_ = 0;
};

}  // namespace bgpolicy::bgp
