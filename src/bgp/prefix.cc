#include "bgp/prefix.h"

#include <charconv>
#include <ostream>
#include <stdexcept>

namespace bgpolicy::bgp {

namespace {

// Parses a decimal integer in [0, max]; advances `pos` past it.  Returns
// nullopt on malformed input.
std::optional<std::uint32_t> parse_dec(std::string_view text, std::size_t& pos,
                                       std::uint32_t max) {
  if (pos >= text.size()) return std::nullopt;
  std::uint32_t value = 0;
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > max) return std::nullopt;
  pos += static_cast<std::size_t>(ptr - begin);
  return value;
}

}  // namespace

Prefix::Prefix(std::uint32_t network, std::uint8_t length) : length_(length) {
  if (length > 32) throw std::invalid_argument("Prefix: length > 32");
  network_ = network & mask();
}

std::optional<Prefix> Prefix::try_parse(std::string_view text) noexcept {
  std::size_t pos = 0;
  std::uint32_t address = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet != 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    const auto value = parse_dec(text, pos, 255);
    if (!value) return std::nullopt;
    address = (address << 8) | *value;
  }
  if (pos >= text.size() || text[pos] != '/') return std::nullopt;
  ++pos;
  const auto length = parse_dec(text, pos, 32);
  if (!length || pos != text.size()) return std::nullopt;
  return Prefix(address, static_cast<std::uint8_t>(*length));
}

Prefix Prefix::parse(std::string_view text) {
  const auto parsed = try_parse(text);
  if (!parsed) {
    throw std::invalid_argument("Prefix::parse: malformed prefix \"" +
                                std::string(text) + "\"");
  }
  return *parsed;
}

std::optional<Prefix> Prefix::parent() const {
  if (length_ == 0) return std::nullopt;
  return Prefix(network_, static_cast<std::uint8_t>(length_ - 1));
}

std::optional<std::pair<Prefix, Prefix>> Prefix::split() const {
  if (length_ == 32) return std::nullopt;
  const auto child_len = static_cast<std::uint8_t>(length_ + 1);
  const std::uint32_t high_bit = 1U << (32 - child_len);
  return std::make_pair(Prefix(network_, child_len),
                        Prefix(network_ | high_bit, child_len));
}

Prefix Prefix::subnet(std::uint8_t sub_length, std::uint32_t index) const {
  if (sub_length < length_ || sub_length > 32) {
    throw std::invalid_argument("Prefix::subnet: bad sub_length");
  }
  const std::uint64_t count = subnet_count(sub_length);
  if (index >= count) throw std::invalid_argument("Prefix::subnet: bad index");
  const std::uint32_t offset =
      sub_length == 32 ? index : index << (32 - sub_length);
  return Prefix(network_ | offset, sub_length);
}

std::uint64_t Prefix::subnet_count(std::uint8_t sub_length) const {
  if (sub_length < length_ || sub_length > 32) return 0;
  return std::uint64_t{1} << (sub_length - length_);
}

std::string Prefix::to_string() const {
  return format_ipv4(network_) + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Prefix& prefix) {
  return os << prefix.to_string();
}

std::string format_ipv4(std::uint32_t address) {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out += '.';
    out += std::to_string((address >> shift) & 0xFF);
  }
  return out;
}

}  // namespace bgpolicy::bgp
