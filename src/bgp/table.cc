#include "bgp/table.h"

#include <algorithm>

namespace bgpolicy::bgp {

void BgpTable::add(Route route) {
  const auto [entry, inserted] = entries_.try_emplace(route.prefix);
  if (inserted) order_.push_back(route.prefix);
  auto& routes = entry->second;
  const auto it = std::find_if(routes.begin(), routes.end(),
                               [&](const Route& existing) {
                                 return existing.learned_from ==
                                        route.learned_from;
                               });
  if (it != routes.end()) {
    *it = std::move(route);
  } else {
    routes.push_back(std::move(route));
    ++route_count_;
  }
}

void BgpTable::add_batch(std::vector<Route> routes) {
  if (routes.empty()) return;
  // Per-prefix neighbor -> slot index, seeded lazily from any routes the
  // table already held for the prefix, so replacement semantics match add().
  std::unordered_map<Prefix, std::unordered_map<util::AsNumber, std::size_t>>
      index;
  index.reserve(routes.size());
  for (Route& route : routes) {
    auto& neighbors = index[route.prefix];
    const auto [entry, fresh] = entries_.try_emplace(route.prefix);
    if (fresh) order_.push_back(route.prefix);
    auto& slots = entry->second;
    if (neighbors.empty() && !slots.empty()) {
      neighbors.reserve(slots.size());
      for (std::size_t i = 0; i < slots.size(); ++i) {
        neighbors.emplace(slots[i].learned_from, i);
      }
    }
    const auto [it, inserted] =
        neighbors.try_emplace(route.learned_from, slots.size());
    if (inserted) {
      slots.push_back(std::move(route));
      ++route_count_;
    } else {
      slots[it->second] = std::move(route);
    }
  }
}

void BgpTable::withdraw(const Prefix& prefix, util::AsNumber neighbor) {
  const auto entry = entries_.find(prefix);
  if (entry == entries_.end()) return;
  auto& routes = entry->second;
  const auto it = std::find_if(routes.begin(), routes.end(),
                               [&](const Route& existing) {
                                 return existing.learned_from == neighbor;
                               });
  if (it == routes.end()) return;
  routes.erase(it);
  --route_count_;
  if (routes.empty()) {
    entries_.erase(entry);
    order_.erase(std::find(order_.begin(), order_.end(), prefix));
  }
}

std::span<const Route> BgpTable::routes(const Prefix& prefix) const {
  const auto it = entries_.find(prefix);
  if (it == entries_.end()) return {};
  return it->second;
}

const Route* BgpTable::best(const Prefix& prefix) const {
  const auto it = entries_.find(prefix);
  if (it == entries_.end()) return nullptr;
  const auto index = select_best(it->second);
  return index ? &it->second[*index] : nullptr;
}

bool BgpTable::contains(const Prefix& prefix) const {
  return entries_.contains(prefix);
}

void BgpTable::for_each(
    const std::function<void(const Prefix&, std::span<const Route>)>& fn)
    const {
  for (const Prefix& prefix : order_) fn(prefix, entries_.at(prefix));
}

void BgpTable::for_each_best(
    const std::function<void(const Route&)>& fn) const {
  for (const Prefix& prefix : order_) {
    const auto& routes = entries_.at(prefix);
    const auto index = select_best(routes);
    if (index) fn(routes[*index]);
  }
}

}  // namespace bgpolicy::bgp
