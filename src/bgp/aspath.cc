#include "bgp/aspath.h"

#include <algorithm>
#include <charconv>
#include <ostream>
#include <stdexcept>

namespace bgpolicy::bgp {

AsPath AsPath::parse(std::string_view text) {
  std::vector<AsNumber> hops;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos >= text.size()) break;
    std::uint32_t value = 0;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin) {
      throw std::invalid_argument("AsPath::parse: malformed path \"" +
                                  std::string(text) + "\"");
    }
    hops.emplace_back(value);
    pos += static_cast<std::size_t>(ptr - begin);
  }
  return AsPath(std::move(hops));
}

std::optional<AsNumber> AsPath::next_hop_as() const {
  if (hops_.empty()) return std::nullopt;
  return hops_.front();
}

std::optional<AsNumber> AsPath::origin_as() const {
  if (hops_.empty()) return std::nullopt;
  return hops_.back();
}

bool AsPath::contains(AsNumber as) const {
  return std::find(hops_.begin(), hops_.end(), as) != hops_.end();
}

AsPath AsPath::prepend(AsNumber as, std::size_t times) const {
  std::vector<AsNumber> hops;
  hops.reserve(hops_.size() + times);
  hops.insert(hops.end(), times, as);
  hops.insert(hops.end(), hops_.begin(), hops_.end());
  return AsPath(std::move(hops));
}

bool AsPath::has_adjacent(AsNumber as_a, AsNumber as_b) const {
  for (std::size_t i = 0; i + 1 < hops_.size(); ++i) {
    if (hops_[i] == as_a && hops_[i + 1] == as_b) return true;
  }
  return false;
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(hops_[i].value());
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const AsPath& path) {
  return os << path.to_string();
}

}  // namespace bgpolicy::bgp
