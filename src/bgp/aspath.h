// BGP AS_PATH attribute.
//
// Stored leftmost-first: element 0 is the neighbor that announced the route
// ("next hop AS" in the paper's terminology), the last element is the origin
// AS.  The paper's inference algorithms operate almost entirely on AS paths.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"

namespace bgpolicy::bgp {

using util::AsNumber;

class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<AsNumber> hops) : hops_(std::move(hops)) {}
  AsPath(std::initializer_list<AsNumber> hops) : hops_(hops) {}

  /// Parses a space-separated path, e.g. "7018 701 3356"; leftmost first.
  [[nodiscard]] static AsPath parse(std::string_view text);

  [[nodiscard]] bool empty() const { return hops_.empty(); }
  [[nodiscard]] std::size_t length() const { return hops_.size(); }
  [[nodiscard]] std::span<const AsNumber> hops() const { return hops_; }
  [[nodiscard]] AsNumber at(std::size_t i) const { return hops_.at(i); }

  /// The neighbor AS the route was learned from; empty path has none.
  [[nodiscard]] std::optional<AsNumber> next_hop_as() const;

  /// The AS that originated the prefix (rightmost); empty path has none.
  [[nodiscard]] std::optional<AsNumber> origin_as() const;

  /// True when `as` already appears in the path (BGP loop detection;
  /// receiving routers discard such announcements, paper Section 2.2.1).
  [[nodiscard]] bool contains(AsNumber as) const;

  /// Returns a new path with `as` prepended (possibly `times` > 1 for AS
  /// path prepending, a traffic-engineering knob from Section 2.2.2).
  [[nodiscard]] AsPath prepend(AsNumber as, std::size_t times = 1) const;

  /// True if `as_a` appears immediately before `as_b` somewhere in the path
  /// (used by the Case-3 "is the provider adjacent to the customer in any
  /// observed path" test).
  [[nodiscard]] bool has_adjacent(AsNumber as_a, AsNumber as_b) const;

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const AsPath&, const AsPath&) = default;

 private:
  std::vector<AsNumber> hops_;
};

std::ostream& operator<<(std::ostream& os, const AsPath& path);

}  // namespace bgpolicy::bgp

template <>
struct std::hash<bgpolicy::bgp::AsPath> {
  std::size_t operator()(const bgpolicy::bgp::AsPath& path) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const auto as : path.hops()) {
      h ^= std::hash<bgpolicy::util::AsNumber>{}(as);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};
