#include "sim/policy_gen.h"

#include <algorithm>

#include "util/ensure.h"
#include "util/rng.h"

namespace bgpolicy::sim {

namespace {

using topo::Tier;
using util::Rng;

// Separated preference bands keep class-level ordering typical; atypical
// assignments are injected per-neighbor on top.
ImportPolicy make_typical_import(Rng& rng) {
  ImportPolicy import;
  import.provider_pref = static_cast<std::uint32_t>(60 + rng.index(20));
  import.peer_pref = static_cast<std::uint32_t>(85 + rng.index(15));
  import.customer_pref = static_cast<std::uint32_t>(105 + rng.index(25));
  return import;
}

// A preference value that violates the typical ordering for this class.
std::uint32_t atypical_value(Rng& rng, const ImportPolicy& import,
                             topo::RelKind kind) {
  switch (kind) {
    case topo::RelKind::kPeer:
    case topo::RelKind::kProvider:
      // Rank the peer/provider at (or above) customer level.
      return import.customer_pref + static_cast<std::uint32_t>(rng.index(6));
    case topo::RelKind::kCustomer:
      // Rank the customer below the provider band.
      return import.provider_pref -
             std::min<std::uint32_t>(import.provider_pref,
                                     static_cast<std::uint32_t>(rng.index(10)));
  }
  return import.peer_pref;  // unreachable
}

}  // namespace

GeneratedPolicies generate_policies(const topo::Topology& topo,
                                    const topo::PrefixPlan& plan,
                                    const PolicyGenParams& params) {
  Rng rng(params.seed);
  Rng rng_import = rng.fork();
  Rng rng_export = rng.fork();
  Rng rng_tag = rng.fork();
  Rng rng_te = rng.fork();

  GeneratedPolicies out;
  const topo::AsGraph& g = topo.graph;

  // ---- Base import policies + tagging profiles --------------------------
  for (const AsNumber as : g.ases()) {
    AsPolicy policy;
    policy.import = make_typical_import(rng_import);

    for (const auto& n : g.neighbors(as)) {
      // Atypical assignments target small neighbors (backup links, special
      // arrangements); nobody ranks a Tier-1 peer at customer level.
      const Tier neighbor_tier = topo.tier_of(n.as);
      const bool small_neighbor =
          neighbor_tier == Tier::kStub || neighbor_tier == Tier::kTier3;
      if (small_neighbor && rng_import.chance(params.atypical_neighbor_prob)) {
        policy.import.neighbor_override[n.as] =
            atypical_value(rng_import, policy.import, n.kind);
      }
    }

    const bool forced =
        std::find(params.force_tagging.begin(), params.force_tagging.end(),
                  as) != params.force_tagging.end();
    if (forced || (topo.is_transit(as) && rng_tag.chance(params.tagging_as_prob))) {
      policy.community.enabled = true;
      policy.community.published = rng_tag.chance(params.publish_prob);
      policy.community.values_per_class =
          static_cast<std::uint16_t>(1 + rng_tag.index(3));
    }
    out.policies.by_as.emplace(as, std::move(policy));
  }

  // ---- Per-prefix preference overrides (Fig. 2 deviations) --------------
  for (const AsNumber as : g.ases()) {
    if (!topo.is_transit(as)) continue;
    if (!rng_te.chance(params.te_as_prob)) continue;
    const double rate = rng_te.uniform01() * params.te_prefix_max_rate;
    AsPolicy& policy = out.policies.at_mut(as);
    for (const auto& op : plan.prefixes) {
      if (op.origin == as) continue;
      if (!rng_te.chance(rate)) continue;
      policy.import.prefix_override[op.prefix] =
          static_cast<std::uint32_t>(60 + rng_te.index(70));
    }
  }

  // ---- Origin-side selective announcement (Case 3) -----------------------
  for (const AsNumber stub : topo.stubs) {
    const auto providers = g.providers(stub);
    if (providers.size() < 2) continue;
    if (!rng_export.chance(params.origin_selective_as_prob)) {
      // The softer knob instead: prepend on one backup link.
      if (rng_export.chance(params.prepend_as_prob)) {
        const AsNumber backup = providers[rng_export.index(providers.size())];
        ExportRule rule;
        rule.origin = stub;  // all of this stub's own prefixes
        rule.action = ExportAction::kPrepend;
        rule.prepend_times = static_cast<std::uint8_t>(
            1 + rng_export.index(params.max_prepend));
        out.policies.at_mut(stub).export_.add_rule_for(backup, rule);
        out.truth.prepend_units.push_back({stub, backup, rule.prepend_times});
      }
      continue;
    }

    const auto origin_it = plan.by_origin.find(stub);
    if (origin_it == plan.by_origin.end()) continue;
    AsPolicy& policy = out.policies.at_mut(stub);

    for (const std::size_t prefix_index : origin_it->second) {
      const bgp::Prefix prefix = plan.prefixes[prefix_index].prefix;
      if (!rng_export.chance(params.withhold_prefix_prob)) {
        // Announced everywhere today; recorded so churn can flip it later.
        for (const AsNumber p : providers) {
          out.truth.origin_units.push_back({stub, prefix, p, false, false});
        }
        continue;
      }
      // Withhold from a non-empty proper subset of providers; most of the
      // time the prefix is pinned to exactly one provider.
      const std::size_t withhold_count =
          rng_export.chance(params.single_announce_prob)
              ? providers.size() - 1
              : 1 + rng_export.index(providers.size() - 1);
      std::vector<AsNumber> shuffled = providers;
      rng_export.shuffle(shuffled);
      const bool via_community =
          rng_export.chance(params.community_flavor_prob);
      for (std::size_t i = 0; i < shuffled.size(); ++i) {
        const AsNumber provider = shuffled[i];
        const bool withheld = i < withhold_count;
        if (!withheld) {
          out.truth.origin_units.push_back({stub, prefix, provider, false, false});
          continue;
        }
        if (via_community) {
          // Announce to the provider, capped: the provider keeps a customer
          // route but must not propagate it further up.
          ExportRule rule;
          rule.prefix = prefix;
          if (rng_export.chance(params.community_target_prob)) {
            const auto grand = g.providers(provider);
            if (!grand.empty()) {
              rule.action = ExportAction::kTagNoExportTo;
              rule.target = grand[rng_export.index(grand.size())];
              out.policies.at_mut(provider).no_export_slot_for(rule.target);
            } else {
              rule.action = ExportAction::kTagNoExportUpstream;
            }
          } else {
            rule.action = ExportAction::kTagNoExportUpstream;
          }
          policy.export_.add_rule_for(provider, rule);
          out.truth.origin_units.push_back({stub, prefix, provider, true, true});
        } else {
          ExportRule rule;
          rule.prefix = prefix;
          rule.action = ExportAction::kDeny;
          policy.export_.add_rule_for(provider, rule);
          out.truth.origin_units.push_back({stub, prefix, provider, true, false});
        }
      }
    }
  }

  // ---- Intermediate selective re-export ----------------------------------
  for (const AsNumber as : g.ases()) {
    const Tier tier = topo.tier_of(as);
    if (tier != Tier::kTier2 && tier != Tier::kTier3) continue;
    const auto providers = g.providers(as);
    if (providers.size() < 2) continue;
    if (!rng_export.chance(params.intermediate_selective_prob)) continue;

    const AsNumber primary = providers[rng_export.index(providers.size())];
    AsPolicy& policy = out.policies.at_mut(as);
    for (const AsNumber customer : g.customers(as)) {
      if (!rng_export.chance(params.intermediate_victim_prob)) continue;
      for (const AsNumber provider : providers) {
        if (provider == primary) continue;
        ExportRule rule;
        rule.origin = customer;
        rule.action = ExportAction::kDeny;
        policy.export_.add_rule_for(provider, rule);
        out.truth.intermediate_units.push_back({as, customer, provider});
      }
    }
  }

  // ---- Prefix splitting (Case 1) -----------------------------------------
  for (const AsNumber stub : topo.stubs) {
    const auto providers = g.providers(stub);
    if (providers.size() < 2) continue;
    if (!rng_export.chance(params.splitting_as_prob)) continue;
    const auto origin_it = plan.by_origin.find(stub);
    if (origin_it == plan.by_origin.end()) continue;
    // Find a splittable (shorter than /24) prefix.
    for (const std::size_t prefix_index : origin_it->second) {
      const bgp::Prefix base = plan.prefixes[prefix_index].prefix;
      if (base.length() >= 24) continue;
      const bgp::Prefix specific = base.subnet(24, 0);
      out.split_extras.push_back({specific, stub, std::nullopt});
      out.truth.split_specifics.push_back(specific);
      // Announce the specific through exactly one provider; the covering
      // prefix keeps flowing everywhere.
      const AsNumber chosen = providers[rng_export.index(providers.size())];
      AsPolicy& policy = out.policies.at_mut(stub);
      for (const AsNumber provider : providers) {
        if (provider == chosen) continue;
        ExportRule rule;
        rule.prefix = specific;
        rule.action = ExportAction::kDeny;
        policy.export_.add_rule_for(provider, rule);
      }
      break;  // one split per AS is plenty (Table 9 counts are small)
    }
  }

  // ---- Provider aggregation (Case 2) --------------------------------------
  for (const auto& op : plan.prefixes) {
    if (!op.allocated_from) continue;
    if (!rng_export.chance(params.aggregation_prob)) continue;
    // The allocating provider absorbs the customer prefix into its own
    // block: it accepts the announcement but never re-exports it.
    ExportRule rule;
    rule.prefix = op.prefix;
    rule.action = ExportAction::kDeny;
    out.policies.at_mut(*op.allocated_from).export_.add_rule_any(rule);
    out.truth.aggregated_by.emplace(op.prefix, *op.allocated_from);
  }

  // ---- Peer export withholding (Table 10) ---------------------------------
  for (const AsNumber t1 : topo.tier1) {
    for (const AsNumber peer : g.peers(t1)) {
      if (!rng_export.chance(params.peer_withhold_prob)) continue;
      const auto origin_it = plan.by_origin.find(peer);
      if (origin_it == plan.by_origin.end()) continue;
      const double fraction = rng_export.chance(params.peer_withhold_total_prob)
                                  ? 1.0
                                  : 0.15 + rng_export.uniform01() * 0.35;
      AsPolicy& policy = out.policies.at_mut(peer);
      std::size_t withheld = 0;
      for (const std::size_t prefix_index : origin_it->second) {
        if (!rng_export.chance(fraction)) continue;
        ExportRule rule;
        rule.prefix = plan.prefixes[prefix_index].prefix;
        rule.action = ExportAction::kDeny;
        policy.export_.add_rule_for(t1, rule);
        ++withheld;
      }
      if (withheld > 0) {
        out.truth.peer_withholders.push_back({{peer, t1}, fraction});
      }
    }
  }

  return out;
}

std::vector<Origination> all_originations(const topo::PrefixPlan& plan,
                                          const GeneratedPolicies& generated) {
  std::vector<Origination> out;
  out.reserve(plan.prefixes.size() + generated.split_extras.size());
  for (const auto& op : plan.prefixes) out.push_back({op.prefix, op.origin});
  for (const auto& op : generated.split_extras) {
    out.push_back({op.prefix, op.origin});
  }
  return out;
}

}  // namespace bgpolicy::sim
