#include "sim/flat_engine.h"

#include <algorithm>

#include "bgp/decision.h"
#include "util/ensure.h"

namespace bgpolicy::sim {

namespace {

/// splitmix64 finalizer: full-avalanche mixing for the open-addressed maps.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// FNV-1a over a community set's raw values — the content hash the
/// CommunityTable dedup chains key on (collisions are resolved by a full
/// compare, never by trusting the hash).
[[nodiscard]] std::uint64_t content_hash(std::span<const bgp::Community> set) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const bgp::Community c : set) {
    h ^= c.raw();
    h *= 0x100000001b3ULL;
  }
  // Sets are never empty here (id 0 short-circuits), but keep the hash off
  // the map's empty-key sentinel for any input.
  h = mix64(h ^ set.size());
  return h == FlatMap64::kEmptyKey ? 0 : h;
}

}  // namespace

// ----------------------------------------------------------------- FlatMap64

void FlatMap64::clear() {
  std::fill(keys_.begin(), keys_.end(), kEmptyKey);
  size_ = 0;
}

std::size_t FlatMap64::slot_of(std::uint64_t key) const {
  const std::size_t mask = keys_.size() - 1;
  std::size_t slot = mix64(key) & mask;
  while (keys_[slot] != kEmptyKey && keys_[slot] != key) {
    slot = (slot + 1) & mask;
  }
  return slot;
}

std::uint32_t* FlatMap64::find(std::uint64_t key) {
  if (keys_.empty()) return nullptr;
  const std::size_t slot = slot_of(key);
  return keys_[slot] == key ? &values_[slot] : nullptr;
}

const std::uint32_t* FlatMap64::find(std::uint64_t key) const {
  return const_cast<FlatMap64*>(this)->find(key);
}

void FlatMap64::insert(std::uint64_t key, std::uint32_t value) {
  if (keys_.empty() || (size_ + 1) * 4 > keys_.size() * 3) grow();
  const std::size_t slot = slot_of(key);
  keys_[slot] = key;
  values_[slot] = value;
  ++size_;
}

void FlatMap64::grow() {
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::uint32_t> old_values = std::move(values_);
  const std::size_t capacity = old_keys.empty() ? 64 : old_keys.size() * 2;
  keys_.assign(capacity, kEmptyKey);
  values_.assign(capacity, 0);
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmptyKey) continue;
    const std::size_t slot = slot_of(old_keys[i]);
    keys_[slot] = old_keys[i];
    values_[slot] = old_values[i];
  }
}

// ----------------------------------------------------------------- PathTable

void PathTable::clear() {
  front_.clear();
  parent_.clear();
  length_.clear();
  origin_.clear();
  // Slot 0: the empty path (length 0; front/origin are never read for it).
  front_.push_back(0);
  parent_.push_back(kEmptyPath);
  length_.push_back(0);
  origin_.push_back(0);
  intern_.clear();
}

std::uint32_t PathTable::prepend(std::uint32_t parent, AsNumber front) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(parent) << 32) | front.value();
  if (const std::uint32_t* hit = intern_.find(key)) return *hit;
  const auto id = static_cast<std::uint32_t>(front_.size());
  front_.push_back(front.value());
  parent_.push_back(parent);
  length_.push_back(length_[parent] + 1);
  origin_.push_back(parent == kEmptyPath ? front.value() : origin_[parent]);
  intern_.insert(key, id);
  return id;
}

bool PathTable::contains(std::uint32_t path, AsNumber as) const {
  for (std::uint32_t node = path; node != kEmptyPath; node = parent_[node]) {
    if (front_[node] == as.value()) return true;
  }
  return false;
}

bgp::AsPath PathTable::materialize(std::uint32_t path) const {
  std::vector<AsNumber> hops;
  hops.reserve(length_[path]);
  for (std::uint32_t node = path; node != kEmptyPath; node = parent_[node]) {
    hops.emplace_back(front_[node]);
  }
  return bgp::AsPath(std::move(hops));
}

// ------------------------------------------------------------ CommunityTable

void CommunityTable::clear() {
  data_.clear();
  size_.clear();
  next_same_hash_.clear();
  data_.push_back(nullptr);  // slot 0: the empty set
  size_.push_back(0);
  next_same_hash_.push_back(0);
  memo_.clear();
  by_content_.clear();
}

bool CommunityTable::contains(std::uint32_t set,
                              bgp::Community community) const {
  const auto span = members(set);
  return std::binary_search(span.begin(), span.end(), community);
}

std::uint32_t CommunityTable::intern(std::span<const bgp::Community> set) {
  const std::uint64_t hash = content_hash(set);
  std::uint32_t* head = by_content_.find(hash);
  if (head != nullptr) {
    for (std::uint32_t id = *head; id != 0; id = next_same_hash_[id]) {
      const auto have = members(id);
      if (std::equal(have.begin(), have.end(), set.begin(), set.end())) {
        return id;
      }
    }
  }
  const auto id = static_cast<std::uint32_t>(data_.size());
  bgp::Community* storage = arena_->allocate<bgp::Community>(set.size());
  std::copy(set.begin(), set.end(), storage);
  data_.push_back(storage);
  size_.push_back(static_cast<std::uint32_t>(set.size()));
  if (head != nullptr) {
    next_same_hash_.push_back(*head);
    *head = id;
  } else {
    next_same_hash_.push_back(0);
    by_content_.insert(hash, id);
  }
  return id;
}

std::uint32_t CommunityTable::add(std::uint32_t set, bgp::Community community) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(set) << 32) | community.raw();
  if (const std::uint32_t* hit = memo_.find(key)) return *hit;

  // Sorted insert with dedup — exactly Route::add_community.
  const auto have = members(set);
  std::uint32_t result;
  if (std::binary_search(have.begin(), have.end(), community)) {
    result = set;
  } else {
    scratch_.clear();
    const auto split =
        std::lower_bound(have.begin(), have.end(), community);
    scratch_.insert(scratch_.end(), have.begin(), split);
    scratch_.push_back(community);
    scratch_.insert(scratch_.end(), split, have.end());
    result = intern(scratch_);
  }
  memo_.insert(key, result);
  return result;
}

void CommunityTable::assign_from(const CommunityTable& other) {
  // arena_ stays this table's own arena — the owning state reset it just
  // before this call; member storage is copied, never aliased.
  size_ = other.size_;
  next_same_hash_ = other.next_same_hash_;
  memo_ = other.memo_;
  by_content_ = other.by_content_;
  data_.assign(other.data_.size(), nullptr);
  for (std::size_t id = 1; id < other.data_.size(); ++id) {
    bgp::Community* storage = arena_->allocate<bgp::Community>(size_[id]);
    std::copy_n(other.data_[id], size_[id], storage);
    data_[id] = storage;
  }
}

// ------------------------------------------------------------ FlatSimContext

FlatSimContext::FlatSimContext(const topo::AsGraph& graph,
                               const PolicySet& policies)
    : view_(graph), policies_(&policies) {
  policy_.assign(view_.size(), nullptr);
  for (std::uint32_t id = 0; id < view_.size(); ++id) {
    const auto it = policies.by_as.find(view_.as_of(id));
    if (it != policies.by_as.end()) policy_[id] = &it->second;
  }
}

const AsPolicy* FlatSimContext::policy_if_present(
    topo::GraphView::Id id) const {
  if (const AsPolicy* p = policy_[id]) return p;
  const auto it = policies_->by_as.find(view_.as_of(id));
  return it == policies_->by_as.end() ? nullptr : &it->second;
}

void FlatSimContext::refresh_policies(std::span<const AsNumber> changed) {
  for (const AsNumber as : changed) {
    const topo::GraphView::Id id = view_.id_of(as);
    if (id == topo::GraphView::kInvalidId) continue;
    const auto it = policies_->by_as.find(as);
    policy_[id] = it == policies_->by_as.end() ? nullptr : &it->second;
  }
}

// ----------------------------------------------------------- FlatRoutingState

void FlatRoutingState::reset(std::size_t n) {
  arena.reset();
  paths.clear();
  comms.clear();
  has_best.assign(n, 0);
  best_rel.assign(n, 0);
  best_path.assign(n, 0);
  best_learned.assign(n, 0);
  best_lp.assign(n, 0);
  best_router.assign(n, 0);
  best_comms.assign(n, 0);
  in_queue.assign(n, 0);
  processed.assign(n, 0);
  queue.assign(n + 1, 0);
  q_head = 0;
  q_tail = 0;
}

void FlatRoutingState::begin_wave() {
  std::fill(processed.begin(), processed.end(), 0);
}

void FlatRoutingState::assign_from(const FlatRoutingState& other) {
  arena.reset();
  paths = other.paths;
  comms.assign_from(other.comms);
  has_best = other.has_best;
  best_rel = other.best_rel;
  best_path = other.best_path;
  best_learned = other.best_learned;
  best_lp = other.best_lp;
  best_router = other.best_router;
  best_comms = other.best_comms;
  in_queue = other.in_queue;
  processed = other.processed;
  queue = other.queue;
  q_head = other.q_head;
  q_tail = other.q_tail;
}

std::size_t FlatRoutingState::bytes() const {
  return has_best.capacity() + best_rel.capacity() + in_queue.capacity() +
         sizeof(std::uint32_t) *
             (best_path.capacity() + best_learned.capacity() +
              best_lp.capacity() + best_router.capacity() +
              best_comms.capacity() + processed.capacity() +
              queue.capacity()) +
         arena.bytes_reserved() + paths.bytes() + comms.bytes();
}

// ----------------------------------------------------------- CandidateColumns

void CandidateColumns::clear() {
  lp.clear();
  plen.clear();
  origin.clear();
  nh.clear();
  med.clear();
  ebgp.clear();
  igp.clear();
  router.clear();
  path.clear();
  comms.clear();
  sender.clear();
  rel.clear();
}

std::size_t CandidateColumns::bytes() const {
  return origin.capacity() + ebgp.capacity() + rel.capacity() +
         sizeof(std::uint32_t) *
             (lp.capacity() + plen.capacity() + nh.capacity() +
              med.capacity() + igp.capacity() + router.capacity() +
              path.capacity() + comms.capacity() + sender.capacity());
}

// --------------------------------------------------------------- FlatScratch

void FlatScratch::note_peak() {
  const std::size_t total = state_.bytes() + cands_.bytes();
  if (total > peak_bytes_) peak_bytes_ = total;
}

// --------------------------------------------------------- the flat fixpoint

void seed_origin(const FlatSimContext& context, const Origination& origination,
                 FlatRoutingState& s) {
  const topo::GraphView& view = context.view();
  const topo::GraphView::Id origin_id = view.id_of(origination.origin);

  // The origin installs its self route (kSelfLocalPref, empty path).
  s.has_best[origin_id] = 1;
  s.best_path[origin_id] = PathTable::kEmptyPath;
  s.best_learned[origin_id] = origin_id;
  s.best_lp[origin_id] = kSelfLocalPref;
  s.best_router[origin_id] = origination.origin.value();
  s.best_comms[origin_id] = CommunityTable::kEmptySet;

  for (std::uint32_t slot = view.arcs_begin(origin_id);
       slot < view.arcs_end(origin_id); ++slot) {
    s.enqueue(view.arc_to(slot));
  }
}

FixpointStats run_flat_fixpoint(const FlatSimContext& context,
                                const Origination& origination,
                                const FailedEdges* failed,
                                const PropagationOptions& options,
                                FlatRoutingState& s, CandidateColumns& c,
                                bool filtered_enqueue) {
  using Id = topo::GraphView::Id;
  const topo::GraphView& view = context.view();
  const Id origin_id = view.id_of(origination.origin);

  const bool check_failures = failed != nullptr && !failed->empty();
  FixpointStats stats;

  // Sound pruning test for filtered_enqueue (see the header note): can
  // `current`'s new best possibly change neighbor `m`'s selection?  The
  // optimistic offer uses the exact import preference and a path one hop
  // longer than the sender's best; among flat candidates origin/med/
  // ebgp/igp are constants, so the decision process reduces to the total
  // order (local-pref desc, path length asc, router id asc).
  const auto offer_can_matter = [&](Id current, Id m, RelKind receiver_rel,
                                    RelKind sender_rel) {
    if (s.best_learned[m] == current) return true;  // dependent: re-pull
    if (s.has_best[current] == 0) return false;     // withdraw, no dependent
    const AsNumber current_as = view.as_of(current);
    const AsNumber m_as = view.as_of(m);
    if (check_failures && failed->is_failed(current_as, m_as)) return false;
    const std::uint32_t sender_path = s.best_path[current];
    if (sender_path != PathTable::kEmptyPath &&
        static_cast<RelKind>(s.best_rel[current]) != RelKind::kCustomer &&
        receiver_rel != RelKind::kCustomer) {
      return false;  // Gao-Rexford gate: nothing is offered on this arc
    }
    if (s.has_best[m] == 0) return true;
    const std::uint32_t lp =
        context.policy(m).import.preference(current_as, sender_rel,
                                            origination.prefix);
    if (lp != s.best_lp[m]) return lp > s.best_lp[m];
    const std::uint32_t plen = s.paths.length(sender_path) + 1;
    const std::uint32_t best_plen = s.paths.length(s.best_path[m]);
    if (plen != best_plen) return plen < best_plen;
    return current_as.value() < s.best_router[m];
  };

  while (s.q_head != s.q_tail) {
    const Id current = s.queue[s.q_head];
    s.q_head = (s.q_head + 1) % s.queue.size();
    s.in_queue[current] = 0;

    // The origin's self route always wins (kSelfLocalPref dominates);
    // skipping it keeps the withdraw logic below simple.
    if (current == origin_id) continue;

    if (s.processed[current] >= options.max_process_per_as) {
      stats.converged = false;
      continue;
    }
    ++s.processed[current];
    ++stats.events;

    const AsNumber receiver_as = view.as_of(current);
    const AsPolicy* receiver_policy = nullptr;  // fetched on first candidate

    // Pull candidates from every neighbor's current best into the SoA
    // columns — the flat mirror of route_as_received.
    c.clear();

    for (std::uint32_t slot = view.arcs_begin(current);
         slot < view.arcs_end(current); ++slot) {
      const Id sender = view.arc_to(slot);
      if (s.has_best[sender] == 0) continue;
      // One CSR read yields both perspectives of the adjacency.
      const RelKind sender_rel = view.arc_rel(slot);  // sender, to receiver
      const RelKind receiver_rel = topo::invert(sender_rel);
      const AsNumber sender_as = view.as_of(sender);

      if (check_failures && failed->is_failed(sender_as, receiver_as)) {
        continue;  // session down
      }

      const std::uint32_t sender_path = s.best_path[sender];
      const bool self_originated = sender_path == PathTable::kEmptyPath;

      // Gao-Rexford relationship rules: self-originated and
      // customer-learned routes go to everyone; peer- and provider-learned
      // routes go to customers only.
      if (!self_originated) {
        const auto learned_rel = static_cast<RelKind>(s.best_rel[sender]);
        if (learned_rel != RelKind::kCustomer &&
            receiver_rel != RelKind::kCustomer) {
          continue;
        }
      }

      const AsPolicy& sender_policy = context.policy(sender);

      // Conditional advertisement: the backup announcement stays
      // suppressed while the watched session is healthy.
      if (self_originated) {
        bool suppressed = false;
        for (const auto& cond : sender_policy.conditional) {
          if (cond.prefix != origination.prefix ||
              cond.advertise_to != receiver_as) {
            continue;
          }
          const bool watch_down =
              failed != nullptr &&
              failed->is_failed(sender_as, cond.watch_provider);
          if (!watch_down) {
            suppressed = true;
            break;
          }
        }
        if (suppressed) continue;
      }

      // Community instructions attached upstream and addressed to sender.
      const std::uint32_t sender_comms = s.best_comms[sender];
      const auto sender_asn = static_cast<std::uint16_t>(sender_as.value());
      if (sender_comms != CommunityTable::kEmptySet) {
        if (s.comms.contains(sender_comms, bgp::kNoExport)) continue;
        if (receiver_rel == RelKind::kProvider &&
            s.comms.contains(sender_comms,
                             bgp::Community(sender_asn,
                                            kNoExportUpstreamValue))) {
          continue;
        }
        bool no_export_to = false;
        for (std::size_t t = 0; t < sender_policy.no_export_targets.size();
             ++t) {
          if (sender_policy.no_export_targets[t] != receiver_as) continue;
          const auto value = static_cast<std::uint16_t>(kNoExportToBase + t);
          if (s.comms.contains(sender_comms,
                               bgp::Community(sender_asn, value))) {
            no_export_to = true;
            break;
          }
        }
        if (no_export_to) continue;
      }

      // Configured export rules (selective announcement & friends).
      const AsNumber route_origin =
          self_originated ? sender_as : s.paths.origin(sender_path);
      const ExportRule* rule = sender_policy.export_.match(
          receiver_as, origination.prefix, route_origin);

      std::uint32_t wire_comms = sender_comms;
      std::size_t extra_prepends = 0;
      if (rule != nullptr) {
        switch (rule->action) {
          case ExportAction::kDeny:
            continue;  // of the neighbor loop: not announced at all
          case ExportAction::kPrepend:
            extra_prepends = rule->prepend_times;
            break;
          case ExportAction::kTagNoExportUpstream:
            wire_comms = s.comms.add(
                wire_comms,
                bgp::Community(static_cast<std::uint16_t>(receiver_as.value()),
                               kNoExportUpstreamValue));
            break;
          case ExportAction::kTagNoExportTo: {
            // The receiver owns the slot namespace; policy generation has
            // already registered the slot, so look it up read-only.
            if (receiver_policy == nullptr) {
              receiver_policy = &context.policy(current);
            }
            for (std::size_t t = 0;
                 t < receiver_policy->no_export_targets.size(); ++t) {
              if (receiver_policy->no_export_targets[t] != rule->target) {
                continue;
              }
              wire_comms = s.comms.add(
                  wire_comms,
                  bgp::Community(
                      static_cast<std::uint16_t>(receiver_as.value()),
                      static_cast<std::uint16_t>(kNoExportToBase + t)));
              break;
            }
            break;
          }
        }
      }

      // The wire path: sender prepends itself (possibly extra times).
      std::uint32_t wire_path = sender_path;
      for (std::size_t k = 0; k < 1 + extra_prepends; ++k) {
        wire_path = s.paths.prepend(wire_path, sender_as);
      }

      // Receiver-side: AS-path loop check.
      if (s.paths.contains(wire_path, receiver_as)) continue;

      // Receiver import policy: local preference + relationship tagging.
      if (receiver_policy == nullptr) {
        receiver_policy = &context.policy(current);
      }
      const std::uint32_t lp = receiver_policy->import.preference(
          sender_as, sender_rel, origination.prefix);
      if (receiver_policy->community.enabled) {
        wire_comms = s.comms.add(
            wire_comms,
            receiver_policy->community.tag(receiver_as, sender_as,
                                           sender_rel));
      }

      c.lp.push_back(lp);
      c.plen.push_back(s.paths.length(wire_path));
      c.origin.push_back(static_cast<std::uint8_t>(bgp::Origin::kIgp));
      c.nh.push_back(sender_as.value());  // wire path front == sender
      c.med.push_back(0);
      c.ebgp.push_back(1);
      c.igp.push_back(0);
      c.router.push_back(sender_as.value());
      c.path.push_back(wire_path);
      c.comms.push_back(wire_comms);
      c.sender.push_back(sender);
      c.rel.push_back(static_cast<std::uint8_t>(sender_rel));
    }

    const bgp::RouteColumns columns{c.lp,  c.plen, c.origin, c.nh,
                                    c.med, c.ebgp, c.igp,    c.router};
    const auto best_index = bgp::select_best(columns);

    bool changed = false;
    if (!best_index) {
      if (s.has_best[current] != 0) {
        s.has_best[current] = 0;
        changed = true;
      }
    } else {
      const std::size_t w = *best_index;
      if (static_cast<RelKind>(c.rel[w]) != RelKind::kCustomer) {
        for (const std::uint8_t r : c.rel) {
          if (static_cast<RelKind>(r) == RelKind::kCustomer) {
            ++stats.inversion_selections;
            break;
          }
        }
      }
      // Interned path/community ids make id equality value equality, so
      // this is exactly the seed's Route value comparison.
      if (s.has_best[current] == 0 ||
          s.best_path[current] != c.path[w] ||
          s.best_lp[current] != c.lp[w] ||
          s.best_learned[current] != c.sender[w] ||
          s.best_router[current] != c.router[w] ||
          s.best_comms[current] != c.comms[w]) {
        s.has_best[current] = 1;
        s.best_path[current] = c.path[w];
        s.best_lp[current] = c.lp[w];
        s.best_learned[current] = c.sender[w];
        s.best_router[current] = c.router[w];
        s.best_comms[current] = c.comms[w];
        s.best_rel[current] = c.rel[w];
        changed = true;
      }
    }

    if (changed) {
      for (std::uint32_t slot = view.arcs_begin(current);
           slot < view.arcs_end(current); ++slot) {
        const Id m = view.arc_to(slot);
        if (filtered_enqueue) {
          if (s.in_queue[m] != 0 || m == origin_id) continue;
          const RelKind receiver_rel = view.arc_rel(slot);  // m, from current
          if (!offer_can_matter(current, m, receiver_rel,
                                topo::invert(receiver_rel))) {
            continue;
          }
        }
        s.enqueue(m);
      }
    }
  }

  return stats;
}

PrefixRouting materialize_routing(const FlatSimContext& context,
                                  const Origination& origination,
                                  const FlatRoutingState& s, bool converged,
                                  std::size_t process_events) {
  using Id = topo::GraphView::Id;
  const topo::GraphView& view = context.view();
  PrefixRouting out;
  out.origination = origination;
  out.converged = converged;
  out.process_events = process_events;
  for (std::size_t id = 0; id < s.size(); ++id) {
    if (s.has_best[id] == 0) continue;
    bgp::Route route;
    route.prefix = origination.prefix;
    route.path = s.paths.materialize(s.best_path[id]);
    route.learned_from = view.as_of(static_cast<Id>(s.best_learned[id]));
    route.local_pref = s.best_lp[id];
    route.router_id = s.best_router[id];
    const auto comms = s.comms.members(s.best_comms[id]);
    route.communities.assign(comms.begin(), comms.end());
    out.best.emplace(view.as_of(static_cast<Id>(id)), std::move(route));
  }
  return out;
}

std::optional<bgp::Route> flat_route_at(const FlatSimContext& context,
                                        const Origination& origination,
                                        const FlatRoutingState& s,
                                        AsNumber as) {
  using Id = topo::GraphView::Id;
  const topo::GraphView& view = context.view();
  const Id id = view.id_of(as);
  if (id == topo::GraphView::kInvalidId || s.has_best[id] == 0) {
    return std::nullopt;
  }
  bgp::Route route;
  route.prefix = origination.prefix;
  route.path = s.paths.materialize(s.best_path[id]);
  route.learned_from = view.as_of(static_cast<Id>(s.best_learned[id]));
  route.local_pref = s.best_lp[id];
  route.router_id = s.best_router[id];
  const auto comms = s.comms.members(s.best_comms[id]);
  route.communities.assign(comms.begin(), comms.end());
  return route;
}

PrefixRouting compute_prefix_flat(const FlatSimContext& context,
                                  const Origination& origination,
                                  const FailedEdges* failed,
                                  const PropagationOptions& options,
                                  FlatScratch& s) {
  const topo::GraphView& view = context.view();
  util::ensure(view.id_of(origination.origin) != topo::GraphView::kInvalidId,
               "propagation: origin AS not in graph");

  s.note_peak();
  s.state_.reset(view.size());
  seed_origin(context, origination, s.state_);
  const FixpointStats stats = run_flat_fixpoint(
      context, origination, failed, options, s.state_, s.cands_);
  PrefixRouting out = materialize_routing(context, origination, s.state_,
                                          stats.converged, stats.events);
  s.note_peak();
  return out;
}

// ----------------------------------------------------------- FlatScratchPool

FlatScratchPool::Lease FlatScratchPool::acquire() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      std::unique_ptr<FlatScratch> scratch = std::move(free_.back());
      free_.pop_back();
      return {this, std::move(scratch)};
    }
  }
  return {this, std::make_unique<FlatScratch>()};
}

void FlatScratchPool::release(std::unique_ptr<FlatScratch> scratch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (scratch->peak_bytes() > peak_bytes_) peak_bytes_ = scratch->peak_bytes();
  free_.push_back(std::move(scratch));
}

std::size_t FlatScratchPool::peak_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return peak_bytes_;
}

}  // namespace bgpolicy::sim
