// Policy-driven BGP route propagation.
//
// An event-driven path-vector computation run independently per prefix:
// each AS pulls the routes its neighbors would export to it (relationship
// rules + export rules + community instructions), applies its import policy
// (local preference + relationship tagging), and selects a best route with
// the 7-step decision process.  Announcement events propagate until a
// fixpoint.  With Gao-Rexford-conforming preferences this always converges;
// the deliberately injected atypical preferences are rare and acyclic in a
// hierarchy, but a per-AS processing cap guards against dispute wheels and
// reports non-convergence instead of hanging.
//
// Memory deliberately stays per-prefix: no global Adj-RIB-In is retained.
// Vantage recorders (vantage.h) re-derive any Adj-RIB-In they need from the
// converged per-prefix state via `route_as_received`, which is also how the
// engine itself computes candidate routes — one code path, no drift.
//
// Concurrency model
// -----------------
// `compute_prefix` is the unit of parallelism: a pure function of
// (graph, policies, origination, failures, options) that touches no shared
// mutable state — the graph, policy set, and failure set are read-only for
// its whole duration, and all fixpoint scratch state (queue, counters,
// per-AS best routes) lives in locals and the returned PrefixRouting.  Any
// number of compute_prefix calls may therefore run concurrently over the
// same graph/policies/failures.  Higher layers exploit exactly this:
// run_simulation (simulation.h) and the churn engine (churn.h) shard their
// origination lists across a util::ThreadPool (util/parallel.h), compute
// each prefix's fixpoint on whichever worker claims it, and then merge the
// per-prefix results on the calling thread in origination order — so
// recorded tables and counters are byte-identical for every thread count,
// including `threads = 1` (which runs the exact sequential seed program).
// Callers must NOT mutate the graph, policies, or failure set while a
// parallel region is in flight; mutation between regions (as churn does) is
// fine.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bgp/route.h"
#include "sim/policy.h"
#include "topology/as_graph.h"

namespace bgpolicy::sim {

/// One (prefix, origin AS) announcement into the system.
struct Origination {
  bgp::Prefix prefix;
  AsNumber origin;
  friend bool operator==(const Origination&, const Origination&) = default;
};

struct PropagationOptions {
  /// Max times a single AS may recompute for one prefix before the engine
  /// declares non-convergence (dispute-wheel guard).
  std::size_t max_process_per_as = 100;

  /// Worker-thread count for whole-simulation runs (run_simulation, churn
  /// re-propagation).  0 = hardware concurrency, 1 = single-threaded (the
  /// exact seed program).  Each individual prefix fixpoint is always
  /// sequential; output is byte-identical for every value (see the
  /// "Concurrency model" section above).  core::run_pipeline threads the
  /// same knob into the inference stages it runs
  /// (asrel::GaoParams::threads for relationship voting,
  /// core::PathIndex::add_tables for path indexing); the per-table
  /// analysis suite (core::run_analysis_suite, run by benches and tests on
  /// a finished pipeline) takes the knob as an explicit argument.  All
  /// stages share one determinism contract (docs/ARCHITECTURE.md).
  std::size_t threads = 1;

  friend bool operator==(const PropagationOptions&, const PropagationOptions&) =
      default;
};

/// A set of failed inter-AS sessions (undirected).  Failure injection: no
/// route crosses a failed edge, and conditional advertisements watching a
/// failed session become active (paper Section 5.1.5, reference [18]).
class FailedEdges {
 public:
  void fail(AsNumber a, AsNumber b);
  void restore(AsNumber a, AsNumber b);
  [[nodiscard]] bool is_failed(AsNumber a, AsNumber b) const;
  [[nodiscard]] bool empty() const { return edges_.empty(); }
  [[nodiscard]] std::size_t size() const { return edges_.size(); }
  /// The failed pairs in canonical form (smaller AS first), sorted — the
  /// order-free representation `sim::Perturbation::edge_delta` diffs to
  /// sync a warm delta state to the current world.
  [[nodiscard]] std::vector<std::pair<AsNumber, AsNumber>> edges() const;

 private:
  static std::uint64_t key(AsNumber a, AsNumber b);
  std::unordered_set<std::uint64_t> edges_;
};

/// Converged routing state for one prefix.
struct PrefixRouting {
  Origination origination;
  /// Best route per AS; ASes with no route to the prefix are absent.
  /// Stored paths do NOT include the owning AS itself (Adj-RIB-In form);
  /// local_pref reflects the owning AS's import policy.
  std::unordered_map<AsNumber, bgp::Route> best;
  bool converged = true;
  std::size_t process_events = 0;

  [[nodiscard]] const bgp::Route* best_at(AsNumber as) const {
    const auto it = best.find(as);
    return it == best.end() ? nullptr : &it->second;
  }
};

class PropagationEngine;

/// The pure, reentrant per-prefix fixpoint: computes the converged routing
/// state for one origination with no shared mutable state (see "Concurrency
/// model" above).  `failed` may be nullptr for a healthy network.  This is
/// the unit the parallel executors shard over; PropagationEngine::propagate
/// is a thin wrapper around it.
///
/// Since the flat-core rewrite this runs on the dense-id/interned-path
/// engine (sim/flat_engine.h) and its output is byte-identical to
/// `compute_prefix_reference` for every input.  This overload builds the
/// flat context per call; many-prefix loops build one `FlatSimContext` and
/// call `compute_prefix_flat` with leased scratches.
[[nodiscard]] PrefixRouting compute_prefix(const topo::AsGraph& graph,
                                           const PolicySet& policies,
                                           const Origination& origination,
                                           const FailedEdges* failed,
                                           const PropagationOptions& options = {});

/// The seed per-event fixpoint, kept verbatim as the executable
/// specification of `compute_prefix`: hash-map state, heap-allocated
/// candidate routes, one `route_as_received` per neighbor per event.  The
/// golden equivalence suite (tests/sim/flat_equivalence_test.cc) and the
/// propagation-throughput benches diff the flat engine against this.
[[nodiscard]] PrefixRouting compute_prefix_reference(
    const topo::AsGraph& graph, const PolicySet& policies,
    const Origination& origination, const FailedEdges* failed,
    const PropagationOptions& options = {});

class PropagationEngine {
 public:
  /// Both references must outlive the engine.
  PropagationEngine(const topo::AsGraph& graph, const PolicySet& policies);

  /// Injects session failures; `failures` must outlive the engine.
  /// Pass nullptr (default state) for a healthy network.
  void set_failures(const FailedEdges* failures) { failures_ = failures; }

  /// Computes the routing fixpoint for one origination.
  [[nodiscard]] PrefixRouting propagate(
      const Origination& origination,
      const PropagationOptions& options = {}) const;

  /// The route `receiver` would hold in its Adj-RIB-In from `sender`, given
  /// `sender`'s converged best route (nullptr = no route).  Applies
  /// sender's relationship export rule + export policy + community
  /// instructions, then receiver's loop check and import policy.  Returns
  /// nullopt when nothing is announced over that edge.
  [[nodiscard]] std::optional<bgp::Route> route_as_received(
      AsNumber sender, const bgp::Route* sender_best,
      const Origination& origination, AsNumber receiver) const;

  [[nodiscard]] const topo::AsGraph& graph() const { return *graph_; }
  [[nodiscard]] const PolicySet& policies() const { return *policies_; }

 private:
  // compute_prefix_reference is the out-of-class seed fixpoint; it needs
  // self_route and the engine's receive path.
  friend PrefixRouting compute_prefix_reference(const topo::AsGraph&,
                                                const PolicySet&,
                                                const Origination&,
                                                const FailedEdges*,
                                                const PropagationOptions&);

  /// The self-originated route the origin AS installs.
  [[nodiscard]] bgp::Route self_route(const Origination& origination) const;

  /// Export-side half of route_as_received: what `sender` puts on the wire
  /// toward `receiver` (no import transform yet).  `receiver_rel` is what
  /// the receiver is to the sender — the caller already resolved the
  /// adjacency once and hands down both perspectives.
  [[nodiscard]] std::optional<bgp::Route> exported_route(
      AsNumber sender, const bgp::Route& sender_best,
      const Origination& origination, AsNumber receiver,
      RelKind receiver_rel) const;

  const topo::AsGraph* graph_;
  const PolicySet* policies_;
  const FailedEdges* failures_ = nullptr;
};

}  // namespace bgpolicy::sim
