#include "sim/propagation.h"

#include <algorithm>
#include <deque>

#include "bgp/decision.h"
#include "sim/flat_engine.h"
#include "util/ensure.h"

namespace bgpolicy::sim {

std::uint64_t FailedEdges::key(AsNumber a, AsNumber b) {
  const auto [lo, hi] = std::minmax(a, b);
  return (static_cast<std::uint64_t>(lo.value()) << 32) | hi.value();
}

void FailedEdges::fail(AsNumber a, AsNumber b) { edges_.insert(key(a, b)); }

void FailedEdges::restore(AsNumber a, AsNumber b) { edges_.erase(key(a, b)); }

bool FailedEdges::is_failed(AsNumber a, AsNumber b) const {
  return edges_.contains(key(a, b));
}

std::vector<std::pair<AsNumber, AsNumber>> FailedEdges::edges() const {
  std::vector<std::uint64_t> keys(edges_.begin(), edges_.end());
  std::sort(keys.begin(), keys.end());
  std::vector<std::pair<AsNumber, AsNumber>> out;
  out.reserve(keys.size());
  for (const std::uint64_t k : keys) {
    out.emplace_back(AsNumber(static_cast<std::uint32_t>(k >> 32)),
                     AsNumber(static_cast<std::uint32_t>(k)));
  }
  return out;
}

PropagationEngine::PropagationEngine(const topo::AsGraph& graph,
                                     const PolicySet& policies)
    : graph_(&graph), policies_(&policies) {}

bgp::Route PropagationEngine::self_route(
    const Origination& origination) const {
  bgp::Route route;
  route.prefix = origination.prefix;
  route.learned_from = origination.origin;
  route.local_pref = kSelfLocalPref;
  route.router_id = origination.origin.value();
  return route;
}

std::optional<bgp::Route> PropagationEngine::exported_route(
    AsNumber sender, const bgp::Route& sender_best,
    const Origination& origination, AsNumber receiver,
    RelKind receiver_rel) const {
  if (failures_ != nullptr && failures_->is_failed(sender, receiver)) {
    return std::nullopt;  // session down
  }

  // Gao-Rexford relationship rules (Section 2.2.2): self-originated and
  // customer-learned routes go to everyone; peer- and provider-learned
  // routes go to customers only.
  if (!sender_best.self_originated()) {
    const auto learned_rel =
        graph_->relationship(sender, sender_best.learned_from);
    util::ensure_state(learned_rel.has_value(),
                       "propagation: best route from non-neighbor");
    if (*learned_rel != RelKind::kCustomer &&
        receiver_rel != RelKind::kCustomer) {
      return std::nullopt;
    }
  }

  const AsPolicy& sender_policy = policies_->at(sender);
  const AsNumber route_origin = sender_best.origin_as();

  // Conditional advertisement: the backup announcement stays suppressed
  // while the watched session is healthy.
  if (sender_best.self_originated()) {
    for (const auto& cond : sender_policy.conditional) {
      if (cond.prefix != origination.prefix || cond.advertise_to != receiver) {
        continue;
      }
      const bool watch_down =
          failures_ != nullptr &&
          failures_->is_failed(sender, cond.watch_provider);
      if (!watch_down) return std::nullopt;
    }
  }

  // Community instructions attached upstream and addressed to `sender`.
  if (sender_best.has_community(bgp::kNoExport)) return std::nullopt;
  const auto sender_asn = static_cast<std::uint16_t>(sender.value());
  if (sender_best.has_community(
          bgp::Community(sender_asn, kNoExportUpstreamValue)) &&
      receiver_rel == RelKind::kProvider) {
    return std::nullopt;
  }
  for (std::size_t slot = 0; slot < sender_policy.no_export_targets.size();
       ++slot) {
    if (sender_policy.no_export_targets[slot] != receiver) continue;
    const auto value =
        static_cast<std::uint16_t>(kNoExportToBase + slot);
    if (sender_best.has_community(bgp::Community(sender_asn, value))) {
      return std::nullopt;
    }
  }

  // Configured export rules (selective announcement & friends).
  const ExportRule* rule =
      sender_policy.export_.match(receiver, origination.prefix, route_origin);

  bgp::Route out = sender_best;
  std::size_t extra_prepends = 0;
  if (rule != nullptr) {
    switch (rule->action) {
      case ExportAction::kDeny:
        return std::nullopt;
      case ExportAction::kPrepend:
        extra_prepends = rule->prepend_times;
        break;
      case ExportAction::kTagNoExportUpstream:
        out.add_community(
            bgp::Community(static_cast<std::uint16_t>(receiver.value()),
                           kNoExportUpstreamValue));
        break;
      case ExportAction::kTagNoExportTo: {
        // The receiver owns the slot namespace; policy generation has
        // already registered the slot, so look it up read-only.
        const AsPolicy& receiver_policy = policies_->at(receiver);
        for (std::size_t slot = 0;
             slot < receiver_policy.no_export_targets.size(); ++slot) {
          if (receiver_policy.no_export_targets[slot] == rule->target) {
            out.add_community(bgp::Community(
                static_cast<std::uint16_t>(receiver.value()),
                static_cast<std::uint16_t>(kNoExportToBase + slot)));
            break;
          }
        }
        break;
      }
    }
  }

  out.path = sender_best.path.prepend(sender, 1 + extra_prepends);
  out.learned_from = sender;
  out.local_pref = 100;  // reset on the wire; receiver assigns its own
  out.med = 0;
  out.router_id = sender.value();
  return out;
}

std::optional<bgp::Route> PropagationEngine::route_as_received(
    AsNumber sender, const bgp::Route* sender_best,
    const Origination& origination, AsNumber receiver) const {
  if (sender_best == nullptr) return std::nullopt;
  // One relationship resolution serves both perspectives: receiver-side
  // import sees what sender is to receiver, sender-side export sees the
  // inverse — re-probing the adjacency map per direction was pure waste.
  const auto sender_rel = graph_->relationship(receiver, sender);
  if (!sender_rel) return std::nullopt;  // not adjacent

  auto wire = exported_route(sender, *sender_best, origination, receiver,
                             topo::invert(*sender_rel));
  if (!wire) return std::nullopt;

  // Receiver-side: AS-path loop check (Section 2.2.1).
  if (wire->path.contains(receiver)) return std::nullopt;

  const AsPolicy& receiver_policy = policies_->at(receiver);
  wire->local_pref = receiver_policy.import.preference(sender, *sender_rel,
                                                       origination.prefix);
  if (receiver_policy.community.enabled) {
    wire->add_community(
        receiver_policy.community.tag(receiver, sender, *sender_rel));
  }
  return wire;
}

PrefixRouting PropagationEngine::propagate(
    const Origination& origination, const PropagationOptions& options) const {
  return compute_prefix(*graph_, *policies_, origination, failures_, options);
}

PrefixRouting compute_prefix(const topo::AsGraph& graph,
                             const PolicySet& policies,
                             const Origination& origination,
                             const FailedEdges* failed,
                             const PropagationOptions& options) {
  // One-shot convenience: builds the flat context and scratch for a single
  // fixpoint.  Loops over many prefixes (run_simulation, simulate_chunk,
  // churn) build one FlatSimContext and reuse leased scratches instead.
  const FlatSimContext context(graph, policies);
  FlatScratch scratch;
  return compute_prefix_flat(context, origination, failed, options, scratch);
}

PrefixRouting compute_prefix_reference(const topo::AsGraph& graph,
                                       const PolicySet& policies,
                                       const Origination& origination,
                                       const FailedEdges* failed,
                                       const PropagationOptions& options) {
  util::ensure(graph.contains(origination.origin),
               "propagation: origin AS not in graph");

  // All state below is local; the engine only carries const pointers, so
  // concurrent compute_prefix calls never touch shared mutable memory.
  PropagationEngine engine(graph, policies);
  engine.set_failures(failed);

  PrefixRouting state;
  state.origination = origination;
  state.best.emplace(origination.origin, engine.self_route(origination));

  std::deque<AsNumber> queue;
  std::unordered_map<AsNumber, bool> in_queue;
  std::unordered_map<AsNumber, std::size_t> processed;

  const auto enqueue = [&](AsNumber as) {
    auto& flagged = in_queue[as];
    if (flagged) return;
    flagged = true;
    queue.push_back(as);
  };

  for (const auto& n : graph.neighbors(origination.origin)) enqueue(n.as);

  while (!queue.empty()) {
    const AsNumber current = queue.front();
    queue.pop_front();
    in_queue[current] = false;

    // The origin's self route always wins (kSelfLocalPref dominates);
    // skipping it keeps the withdraw logic below simple.
    if (current == origination.origin) continue;

    std::size_t& count = processed[current];
    if (count >= options.max_process_per_as) {
      state.converged = false;
      continue;
    }
    ++count;
    ++state.process_events;

    // Pull candidates from every neighbor's current best.
    std::vector<bgp::Route> candidates;
    candidates.reserve(graph.degree(current));
    for (const auto& n : graph.neighbors(current)) {
      auto received = engine.route_as_received(n.as, state.best_at(n.as),
                                               origination, current);
      if (received) candidates.push_back(std::move(*received));
    }

    const auto best_index = bgp::select_best(candidates);
    const auto it = state.best.find(current);
    bool changed = false;
    if (!best_index) {
      if (it != state.best.end()) {
        state.best.erase(it);
        changed = true;
      }
    } else {
      bgp::Route& winner = candidates[*best_index];
      if (it == state.best.end()) {
        state.best.emplace(current, std::move(winner));
        changed = true;
      } else if (it->second != winner) {
        it->second = std::move(winner);
        changed = true;
      }
    }

    if (changed) {
      for (const auto& n : graph.neighbors(current)) enqueue(n.as);
    }
  }

  return state;
}

}  // namespace bgpolicy::sim
