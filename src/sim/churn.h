// Time-stepped policy churn for the persistence study (Figs. 6-7).
//
// Each step toggles a sample of the recorded selective-announcement units
// (a withheld prefix becomes announced, or vice versa), re-propagates only
// the affected prefixes, and keeps per-step best-route state for a small
// set of watched provider ASes — exactly what the paper's daily RouteViews
// snapshots of March 2002 provided for AS1.
//
// Re-propagation is incremental by default: the simulator keeps one warm
// `DeltaState` per churned prefix and replays only the dirty frontier of
// each flip (the toggled (origin, provider) export pair) instead of the
// full fixpoint — see sim/delta_engine.h.  `ChurnParams::incremental =
// false` restores cold per-prefix recomputation; both modes produce
// identical watched tables (golden-tested in
// tests/sim/delta_equivalence_test.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/prefix.h"
#include "bgp/route.h"
#include "sim/delta_engine.h"
#include "sim/flat_engine.h"
#include "sim/policy_gen.h"
#include "sim/propagation.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace bgpolicy::sim {

struct ChurnParams {
  std::uint64_t seed = 777;
  /// Fraction of toggleable units flipped per step.
  double flip_fraction = 0.015;
  /// Warm-start delta propagation per step (the default).  false = cold
  /// per-prefix recomputation — kept as the executable reference the
  /// equivalence tests and the delta bench diff against.
  bool incremental = true;
  /// Propagation options for the initial run and per-step re-propagation;
  /// `propagation.threads` shards prefixes across workers with results
  /// applied in deterministic order (see propagation.h "Concurrency model").
  PropagationOptions propagation;
};

class ChurnSimulator {
 public:
  /// Takes ownership of mutable policies and the ground-truth units; the
  /// graph must outlive the simulator.
  ChurnSimulator(const topo::AsGraph& graph, PolicySet policies,
                 std::vector<Origination> originations, GroundTruth truth,
                 std::vector<AsNumber> watch, ChurnParams params);

  /// Initial full propagation; must be called once before step().
  void run_initial();

  /// Applies one step of policy churn and re-propagates affected prefixes.
  /// Returns the prefixes whose routing was recomputed.
  std::vector<bgp::Prefix> step();

  /// Best routes currently held by a watched AS, keyed by prefix.
  [[nodiscard]] const std::unordered_map<bgp::Prefix, bgp::Route>& watched(
      AsNumber as) const;

  /// Borrows a long-lived executor for re-propagation instead of the
  /// simulator lazily creating its own (run_persistence_study shares one
  /// executor between churn stepping and the snapshot analyses).  The
  /// executor must outlive the simulator; pass nullptr to revert to the
  /// internal one.  Worker count never changes results (propagation.h).
  void set_executor(const util::Executor* executor) { executor_ = executor; }

  [[nodiscard]] const GroundTruth& truth() const { return truth_; }
  [[nodiscard]] std::size_t origination_count() const {
    return originations_.size();
  }
  /// Warm delta states currently held (incremental mode; 0 when cold).
  [[nodiscard]] std::size_t warm_state_count() const { return warm_.size(); }
  /// Re-propagations answered from the per-world memo without any fixpoint
  /// work (incremental mode; see the memo note in the private section).
  [[nodiscard]] std::size_t memo_hits() const { return memo_hits_; }
  /// The warm delta state of one prefix, nullptr when none is held —
  /// bench/test introspection (e.g. counting order-sensitive states).
  [[nodiscard]] const DeltaState* warm_state(const bgp::Prefix& prefix) const {
    const auto it = warm_.find(prefix);
    return it == warm_.end() ? nullptr : it->second.get();
  }

 private:
  /// Re-propagates the given prefixes (sharded across
  /// params.propagation.threads workers) and applies the watched-table
  /// updates sequentially in `prefixes` order.  `perturbations` must be
  /// non-null for churn steps and null for the initial run; in incremental
  /// mode each prefix is answered from the per-world memo when possible,
  /// otherwise its warm state is delta-synced to the current world (a
  /// prefix without a warm state is cold-converged against the
  /// already-mutated policies).
  void repropagate(
      std::span<const bgp::Prefix> prefixes,
      const std::unordered_map<bgp::Prefix, Perturbation>* perturbations);

  /// The withheld-flag world a prefix's policies currently encode (bit b =
  /// units_of_[prefix][b]'s withheld flag).
  [[nodiscard]] std::uint64_t world_of(const bgp::Prefix& prefix) const;

  /// Watched-table rows for one recomputed prefix (one slot per watch_ AS).
  [[nodiscard]] std::vector<std::optional<bgp::Route>> watch_rows(
      const DeltaState& state) const;

  const topo::AsGraph* graph_;
  /// Behind a unique_ptr: context_ and the warm states point into it, and
  /// the simulator must stay movable (parallel_determinism_test returns
  /// one from a lambda).
  std::unique_ptr<PolicySet> policies_;
  std::vector<Origination> originations_;
  std::unordered_map<bgp::Prefix, Origination> by_prefix_;
  GroundTruth truth_;
  /// Indices into truth_.origin_units that are plain-deny units (the
  /// toggleable population; community-flavored units stay fixed).
  std::vector<std::size_t> toggleable_;
  std::vector<AsNumber> watch_;
  std::unordered_map<AsNumber, std::unordered_map<bgp::Prefix, bgp::Route>>
      watched_;
  util::Rng rng_;
  ChurnParams params_;
  /// Externally shared executor (set_executor), else lazily created from
  /// params.propagation.threads on the first multi-prefix repropagation and
  /// reused across steps.
  const util::Executor* executor_ = nullptr;
  std::unique_ptr<util::Executor> owned_executor_;
  /// Built once in the ctor (the graph never changes); per step only the
  /// flipped origins' policy pointers are refreshed in place.
  std::unique_ptr<FlatSimContext> context_;
  std::unique_ptr<DeltaEngine> delta_;
  /// One warm converged state per churned prefix, created on first touch
  /// (memory scales with the churned population, not the origination
  /// count) and delta-stepped on every later flip.
  std::unordered_map<bgp::Prefix, std::unique_ptr<DeltaState>> warm_;
  /// A prefix's toggleable unit indices (into truth_.origin_units), the
  /// bit order of its world masks.
  std::unordered_map<bgp::Prefix, std::vector<std::size_t>> units_of_;
  /// The withheld-flag world each warm state is currently converged under.
  std::unordered_map<bgp::Prefix, std::uint64_t> state_world_;
  /// Memoized watched-table rows per (prefix, world).  A prefix's routing
  /// depends only on its own units' withheld flags (other prefixes' export
  /// rules never match it), so a revisited world's rows are provably
  /// identical to recomputation: the fixpoint is unique for
  /// order-insensitive prefixes, and order-sensitive states replay the
  /// exact cold trajectory, which is a function of the world alone.  Churn
  /// flips the same few units per prefix back and forth, so steady-state
  /// stepping is mostly memo hits with no propagation at all; the warm
  /// state is only re-synced (one delta wave across every flag that
  /// drifted) when an unseen world appears.
  std::unordered_map<bgp::Prefix,
                     std::unordered_map<std::uint64_t,
                                        std::vector<std::optional<bgp::Route>>>>
      memo_;
  std::size_t memo_hits_ = 0;
  /// Warmed propagation scratches reused across steps (cold path).
  std::unique_ptr<FlatScratchPool> scratches_ =
      std::make_unique<FlatScratchPool>();
  /// Per-worker delta workspaces (incremental path).
  std::unique_ptr<DeltaWorkspacePool> workspaces_ =
      std::make_unique<DeltaWorkspacePool>();
  bool initialized_ = false;
};

}  // namespace bgpolicy::sim
