// Time-stepped policy churn for the persistence study (Figs. 6-7).
//
// Each step toggles a sample of the recorded selective-announcement units
// (a withheld prefix becomes announced, or vice versa), re-propagates only
// the affected prefixes, and keeps per-step best-route state for a small
// set of watched provider ASes — exactly what the paper's daily RouteViews
// snapshots of March 2002 provided for AS1.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/prefix.h"
#include "bgp/route.h"
#include "sim/flat_engine.h"
#include "sim/policy_gen.h"
#include "sim/propagation.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace bgpolicy::sim {

struct ChurnParams {
  std::uint64_t seed = 777;
  /// Fraction of toggleable units flipped per step.
  double flip_fraction = 0.015;
  /// Propagation options for the initial run and per-step re-propagation;
  /// `propagation.threads` shards prefixes across workers with results
  /// applied in deterministic order (see propagation.h "Concurrency model").
  PropagationOptions propagation;
};

class ChurnSimulator {
 public:
  /// Takes ownership of mutable policies and the ground-truth units; the
  /// graph must outlive the simulator.
  ChurnSimulator(const topo::AsGraph& graph, PolicySet policies,
                 std::vector<Origination> originations, GroundTruth truth,
                 std::vector<AsNumber> watch, ChurnParams params);

  /// Initial full propagation; must be called once before step().
  void run_initial();

  /// Applies one step of policy churn and re-propagates affected prefixes.
  /// Returns the prefixes whose routing was recomputed.
  std::vector<bgp::Prefix> step();

  /// Best routes currently held by a watched AS, keyed by prefix.
  [[nodiscard]] const std::unordered_map<bgp::Prefix, bgp::Route>& watched(
      AsNumber as) const;

  /// Borrows a long-lived executor for re-propagation instead of the
  /// simulator lazily creating its own (run_persistence_study shares one
  /// executor between churn stepping and the snapshot analyses).  The
  /// executor must outlive the simulator; pass nullptr to revert to the
  /// internal one.  Worker count never changes results (propagation.h).
  void set_executor(const util::Executor* executor) { executor_ = executor; }

  [[nodiscard]] const GroundTruth& truth() const { return truth_; }
  [[nodiscard]] std::size_t origination_count() const {
    return originations_.size();
  }

 private:
  /// Re-propagates the given prefixes (sharded across
  /// params.propagation.threads workers) and applies the watched-table
  /// updates sequentially in `prefixes` order.
  void repropagate(std::span<const bgp::Prefix> prefixes);

  const topo::AsGraph* graph_;
  PolicySet policies_;
  std::vector<Origination> originations_;
  std::unordered_map<bgp::Prefix, Origination> by_prefix_;
  GroundTruth truth_;
  /// Indices into truth_.origin_units that are plain-deny units (the
  /// toggleable population; community-flavored units stay fixed).
  std::vector<std::size_t> toggleable_;
  std::vector<AsNumber> watch_;
  std::unordered_map<AsNumber, std::unordered_map<bgp::Prefix, bgp::Route>>
      watched_;
  util::Rng rng_;
  ChurnParams params_;
  /// Externally shared executor (set_executor), else lazily created from
  /// params.propagation.threads on the first multi-prefix repropagation and
  /// reused across steps.
  const util::Executor* executor_ = nullptr;
  std::unique_ptr<util::Executor> owned_executor_;
  /// Warmed propagation scratches reused across steps.  The flat context is
  /// rebuilt per repropagate() call because step() mutates policies_.
  /// Behind a unique_ptr so the simulator stays movable (the pool holds a
  /// mutex).
  std::unique_ptr<FlatScratchPool> scratches_ =
      std::make_unique<FlatScratchPool>();
  bool initialized_ = false;
};

}  // namespace bgpolicy::sim
