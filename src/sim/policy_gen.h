// Ground-truth policy generation.
//
// Assigns every AS a concrete routing policy exhibiting the behaviors the
// paper measures, with tunable rates:
//   * typical local preference with rare atypical deviations (Tables 2-3),
//   * per-prefix preference overrides (the Fig. 2 inconsistencies),
//   * origin-side selective announcement — plain withholding or the
//     "announce with a don't-propagate community" flavor (Section 5.1.5
//     Case 3),
//   * intermediate-AS selective re-export of customer routes,
//   * prefix splitting (Case 1) and provider aggregation (Case 2),
//   * partial withholding between peers (Table 10),
//   * relationship-tagging community schemes (Appendix, Table 11).
//
// Everything decided here is recorded in GroundTruth so tests can score the
// inference algorithms against what was actually configured.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/policy.h"
#include "sim/propagation.h"
#include "topology/prefix_alloc.h"
#include "topology/topology_gen.h"

namespace bgpolicy::sim {

struct PolicyGenParams {
  std::uint64_t seed = 9001;

  // Import-side knobs.
  double atypical_neighbor_prob = 0.01;
  /// Fraction of transit ASes that pin any prefixes to explicit preferences.
  double te_as_prob = 0.5;
  /// For such an AS, the per-prefix probability of a pinned preference.
  double te_prefix_max_rate = 0.08;

  // Origin selective announcement.
  double origin_selective_as_prob = 0.55;
  double withhold_prefix_prob = 0.70;
  /// Within a withheld prefix: announce to exactly one provider (the
  /// strongest inbound-traffic pin) rather than a random proper subset.
  double single_announce_prob = 0.75;
  /// Within selective announcements: use a community tag ("announce to the
  /// direct provider, but no further") instead of a plain deny.
  double community_flavor_prob = 0.25;
  /// Within the community flavor: target one specific upstream AS instead
  /// of all providers.
  double community_target_prob = 0.30;

  // AS-path prepending (the softer inbound knob of Section 2.2.2): a
  // multihomed stub that does NOT selectively announce may instead prepend
  // on its backup link.
  double prepend_as_prob = 0.15;
  std::uint8_t max_prepend = 3;

  // Intermediate selective re-export.
  double intermediate_selective_prob = 0.18;
  double intermediate_victim_prob = 0.5;

  // Splitting / aggregation (kept rare: Table 9 finds both negligible).
  double splitting_as_prob = 0.02;
  double aggregation_prob = 0.04;

  // Peer export withholding (Table 10's handful of exceptions).
  double peer_withhold_prob = 0.08;
  /// Probability that a withholding peer hides *all* own prefixes (vs a
  /// minority share).
  double peer_withhold_total_prob = 0.3;

  // Community tagging (Appendix).
  double tagging_as_prob = 0.7;
  double publish_prob = 0.5;
  /// ASes that must run a tagging scheme regardless of the dice (the
  /// paper's 9 verification vantages).
  std::vector<AsNumber> force_tagging;

  friend bool operator==(const PolicyGenParams&, const PolicyGenParams&) =
      default;
};

/// One origin-side selective-announcement decision: `origin` withholds (or
/// currently announces) `prefix` toward `provider`.
struct SelectiveUnit {
  AsNumber origin;
  bgp::Prefix prefix;
  AsNumber provider;
  bool withheld = false;
  bool via_community = false;  ///< capped-by-community rather than denied
};

/// Intermediate AS `intermediate` does not re-export routes originated by
/// `customer` to `provider`.
struct IntermediateSelective {
  AsNumber intermediate;
  AsNumber customer;
  AsNumber provider;
};

/// `origin` prepends its own AS `times` extra times toward `provider`.
struct PrependUnit {
  AsNumber origin;
  AsNumber provider;
  std::uint8_t times = 0;
};

struct GroundTruth {
  std::vector<SelectiveUnit> origin_units;
  std::vector<PrependUnit> prepend_units;
  std::vector<IntermediateSelective> intermediate_units;
  std::vector<bgp::Prefix> split_specifics;
  /// Prefix -> the provider that aggregates (never re-exports) it.
  std::unordered_map<bgp::Prefix, AsNumber> aggregated_by;
  /// (peer, target) pairs where `peer` withholds some own prefixes from
  /// `target`, with the withheld fraction.
  std::vector<std::pair<std::pair<AsNumber, AsNumber>, double>>
      peer_withholders;
};

struct GeneratedPolicies {
  PolicySet policies;
  /// More-specific prefixes created by splitting; must be originated in
  /// addition to the base plan.
  std::vector<topo::OriginatedPrefix> split_extras;
  GroundTruth truth;
};

[[nodiscard]] GeneratedPolicies generate_policies(
    const topo::Topology& topo, const topo::PrefixPlan& plan,
    const PolicyGenParams& params);

/// Flattens the base plan plus split extras into engine originations.
[[nodiscard]] std::vector<Origination> all_originations(
    const topo::PrefixPlan& plan, const GeneratedPolicies& generated);

}  // namespace bgpolicy::sim
