// The flat propagation core: dense-id state, interned AS paths, and
// arena-backed scratch for `sim::compute_prefix`.
//
// The seed fixpoint (kept verbatim as `compute_prefix_reference`) spends
// its time in hash probes and allocations: every candidate pays
// `unordered_map` lookups for relationships and policies, an AS-path
// vector copy for the prepend, and a `bgp::Route` construction that is
// immediately torn down when the candidate loses.  This engine removes all
// of that while preserving the byte-identical determinism contract:
//
//   * `FlatSimContext` — built once per (graph, policies) pair — holds a
//     `topo::GraphView` (dense AS ids + CSR adjacency, one array read per
//     relationship probe) and a dense policy-pointer table.
//   * `PathTable` hash-conses AS paths: a path is a `u32` id whose node
//     stores (front AS, parent id, length, origin AS), so prepend is an
//     O(1) intern, path equality is id equality, and the loop check walks
//     the parent chain.  Equal path *values* always intern to the same id,
//     which is what keeps the flat engine's change detection exactly the
//     seed's value comparison.
//   * `CommunityTable` interns community *sets* by content (sorted,
//     deduplicated — Route::add_community semantics), with member storage
//     bump-allocated from a `util::MonotonicArena`; set-id equality is
//     value equality for the same reason.
//   * Routing state is struct-of-arrays indexed by dense id, and the
//     decision-process candidates are reusable SoA columns scanned by the
//     column overload of `bgp::select_best` — no `bgp::Route` objects
//     exist until the converged state is materialized into the public
//     value-typed `PrefixRouting` at the very end.
//
// `FlatScratch` owns every per-propagation structure and is reset (not
// freed) between prefixes, so a warmed scratch runs a whole fixpoint
// without touching the global allocator.  One scratch serves one
// propagation at a time; parallel callers lease per-worker scratches from
// a `FlatScratchPool`.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "bgp/community.h"
#include "sim/policy.h"
#include "sim/propagation.h"
#include "topology/graph_view.h"
#include "util/arena.h"

namespace bgpolicy::sim {

/// Open-addressed u64 -> u32 hash map (linear probing, power-of-two
/// capacity) for the interning tables: one cache line per probe instead of
/// the node allocations of `unordered_map`.  Keys must never equal
/// kEmptyKey; `clear()` keeps capacity.
class FlatMap64 {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  void clear();
  [[nodiscard]] std::uint32_t* find(std::uint64_t key);
  [[nodiscard]] const std::uint32_t* find(std::uint64_t key) const;
  /// `key` must be absent.
  void insert(std::uint64_t key, std::uint32_t value);
  [[nodiscard]] std::size_t bytes() const {
    return keys_.capacity() * sizeof(std::uint64_t) +
           values_.capacity() * sizeof(std::uint32_t);
  }

 private:
  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const;
  void grow();

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> values_;
  std::size_t size_ = 0;
};

/// Hash-consed AS paths with parent-pointer prepend.  Id 0 is the empty
/// path; every other id names an interned (front AS, parent) node.  Only
/// valid between `clear()` calls of the owning scratch.
class PathTable {
 public:
  static constexpr std::uint32_t kEmptyPath = 0;

  PathTable() { clear(); }

  void clear();

  /// The interned path `front . parent` (prepend).  Interning by content
  /// means any two equal path values share an id.
  [[nodiscard]] std::uint32_t prepend(std::uint32_t parent, AsNumber front);

  [[nodiscard]] std::uint32_t length(std::uint32_t path) const {
    return length_[path];
  }
  /// Front (next-hop) AS; `path` must not be empty.
  [[nodiscard]] AsNumber front(std::uint32_t path) const {
    return AsNumber(front_[path]);
  }
  /// Origin (rightmost) AS; `path` must not be empty.
  [[nodiscard]] AsNumber origin(std::uint32_t path) const {
    return AsNumber(origin_[path]);
  }
  /// BGP loop detection: walks the parent chain.
  [[nodiscard]] bool contains(std::uint32_t path, AsNumber as) const;
  /// Rebuilds the value-typed AsPath (front first).
  [[nodiscard]] bgp::AsPath materialize(std::uint32_t path) const;

  [[nodiscard]] std::size_t node_count() const { return front_.size(); }
  [[nodiscard]] std::size_t bytes() const {
    return (front_.capacity() + parent_.capacity() + length_.capacity() +
            origin_.capacity()) *
               sizeof(std::uint32_t) +
           intern_.bytes();
  }

 private:
  // Column `i` describes node id `i`; slot 0 is the empty-path dummy.
  std::vector<std::uint32_t> front_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> length_;
  std::vector<std::uint32_t> origin_;
  FlatMap64 intern_;  // (parent << 32 | front) -> id, exact key
};

/// Community sets interned by content with Route::add_community semantics
/// (sorted, deduplicated).  Id 0 is the empty set.  Member arrays live in
/// the owning scratch's arena; `add` results are memoized per (set,
/// community) so repeated tagging along a propagation wave is one probe.
class CommunityTable {
 public:
  static constexpr std::uint32_t kEmptySet = 0;

  explicit CommunityTable(util::MonotonicArena& arena) : arena_(&arena) {
    clear();
  }

  void clear();

  /// The interned set `set + {community}`.
  [[nodiscard]] std::uint32_t add(std::uint32_t set, bgp::Community community);

  [[nodiscard]] bool contains(std::uint32_t set,
                              bgp::Community community) const;
  [[nodiscard]] std::span<const bgp::Community> members(
      std::uint32_t set) const {
    return {data_[set], size_[set]};
  }

  [[nodiscard]] std::size_t bytes() const {
    return (data_.capacity() * sizeof(const bgp::Community*)) +
           (size_.capacity() + next_same_hash_.capacity()) *
               sizeof(std::uint32_t) +
           memo_.bytes() + by_content_.bytes();
  }

 private:
  [[nodiscard]] std::uint32_t intern(std::span<const bgp::Community> set);

  util::MonotonicArena* arena_;
  std::vector<const bgp::Community*> data_;  // per set id; slot 0 empty
  std::vector<std::uint32_t> size_;
  std::vector<std::uint32_t> next_same_hash_;  // content-hash chain
  FlatMap64 memo_;        // (set << 32 | community raw) -> result id
  FlatMap64 by_content_;  // content hash -> chain head (compared on walk)
  std::vector<bgp::Community> scratch_;
};

/// Everything `compute_prefix_flat` needs that depends only on the
/// (graph, policies) pair: the dense-id CSR view and per-id policy
/// pointers.  Build once per scenario (or per policy mutation) and share
/// across any number of concurrent propagations — strictly read-only.
/// Both references must outlive the context.
class FlatSimContext {
 public:
  FlatSimContext(const topo::AsGraph& graph, const PolicySet& policies);

  [[nodiscard]] const topo::GraphView& view() const { return view_; }

  /// Policy of the AS with dense id `id`; throws exactly like
  /// `PolicySet::at` when the AS has no policy (resolved lazily so ASes
  /// that never touch a route keep the seed's don't-ask-don't-throw
  /// behavior).
  [[nodiscard]] const AsPolicy& policy(topo::GraphView::Id id) const {
    const AsPolicy* p = policy_[id];
    return p != nullptr ? *p : policies_->at(view_.as_of(id));
  }

 private:
  topo::GraphView view_;
  std::vector<const AsPolicy*> policy_;
  const PolicySet* policies_;
};

/// The reusable per-propagation workspace: interning tables, SoA routing
/// state, the event queue, candidate columns, and the arena.  Reset (never
/// freed) between prefixes.  Not thread-safe; one propagation at a time.
class FlatScratch {
 public:
  FlatScratch() : comms_(arena_) {}

  /// High-water mark of scratch memory across this scratch's lifetime.
  [[nodiscard]] std::size_t peak_bytes() const { return peak_bytes_; }

 private:
  friend PrefixRouting compute_prefix_flat(const FlatSimContext& context,
                                           const Origination& origination,
                                           const FailedEdges* failed,
                                           const PropagationOptions& options,
                                           FlatScratch& scratch);

  void reset(std::size_t n);
  void note_peak();

  util::MonotonicArena arena_;
  PathTable paths_;
  CommunityTable comms_;

  // Routing state, indexed by dense AS id.
  std::vector<std::uint8_t> has_best_;
  std::vector<std::uint8_t> best_rel_;  // RelKind: learned_from as seen by
                                        // the owning AS; valid when the
                                        // best route is not self-originated
  std::vector<std::uint32_t> best_path_;
  std::vector<std::uint32_t> best_learned_;  // dense id of learned_from
  std::vector<std::uint32_t> best_lp_;
  std::vector<std::uint32_t> best_router_;
  std::vector<std::uint32_t> best_comms_;

  // Fixpoint bookkeeping.
  std::vector<std::uint8_t> in_queue_;
  std::vector<std::uint32_t> processed_;
  std::vector<std::uint32_t> queue_;  // ring buffer, capacity n + 1
  std::size_t q_head_ = 0;
  std::size_t q_tail_ = 0;

  // Decision-process candidate columns (reused per event).
  std::vector<std::uint32_t> cand_lp_;
  std::vector<std::uint32_t> cand_plen_;
  std::vector<std::uint8_t> cand_origin_;
  std::vector<std::uint32_t> cand_nh_;
  std::vector<std::uint32_t> cand_med_;
  std::vector<std::uint8_t> cand_ebgp_;
  std::vector<std::uint32_t> cand_igp_;
  std::vector<std::uint32_t> cand_router_;
  std::vector<std::uint32_t> cand_path_;
  std::vector<std::uint32_t> cand_comms_;
  std::vector<std::uint32_t> cand_sender_;  // dense id
  std::vector<std::uint8_t> cand_rel_;      // RelKind: sender as seen by
                                            // the receiving AS

  std::size_t peak_bytes_ = 0;
};

/// The flat fixpoint: byte-identical results to `compute_prefix_reference`
/// for every input (golden-tested in tests/sim/flat_equivalence_test.cc).
/// Reentrant across distinct scratches: the context is read-only, so any
/// number of concurrent calls may share it.
[[nodiscard]] PrefixRouting compute_prefix_flat(
    const FlatSimContext& context, const Origination& origination,
    const FailedEdges* failed, const PropagationOptions& options,
    FlatScratch& scratch);

/// A mutex-guarded free list of FlatScratch instances for parallel
/// shard-and-merge callers: workers lease a warmed scratch per prefix
/// (acquisition cost is negligible against a fixpoint) so scratch memory
/// scales with worker count, not prefix count, and nothing leaks into
/// thread-locals on long-lived pool threads.
class FlatScratchPool {
 public:
  class Lease {
   public:
    Lease(FlatScratchPool* pool, std::unique_ptr<FlatScratch> scratch)
        : pool_(pool), scratch_(std::move(scratch)) {}
    ~Lease() {
      if (scratch_ != nullptr) pool_->release(std::move(scratch_));
    }
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    [[nodiscard]] FlatScratch& operator*() const { return *scratch_; }

   private:
    FlatScratchPool* pool_;
    std::unique_ptr<FlatScratch> scratch_;
  };

  [[nodiscard]] Lease acquire();

  /// Max peak_bytes() across every scratch ever leased from this pool.
  [[nodiscard]] std::size_t peak_bytes() const;

 private:
  void release(std::unique_ptr<FlatScratch> scratch);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<FlatScratch>> free_;
  std::size_t peak_bytes_ = 0;
};

}  // namespace bgpolicy::sim
