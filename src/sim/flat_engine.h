// The flat propagation core: dense-id state, interned AS paths, and
// arena-backed scratch for `sim::compute_prefix`.
//
// The seed fixpoint (kept verbatim as `compute_prefix_reference`) spends
// its time in hash probes and allocations: every candidate pays
// `unordered_map` lookups for relationships and policies, an AS-path
// vector copy for the prepend, and a `bgp::Route` construction that is
// immediately torn down when the candidate loses.  This engine removes all
// of that while preserving the byte-identical determinism contract:
//
//   * `FlatSimContext` — built once per (graph, policies) pair — holds a
//     `topo::GraphView` (dense AS ids + CSR adjacency, one array read per
//     relationship probe) and a dense policy-pointer table.
//   * `PathTable` hash-conses AS paths: a path is a `u32` id whose node
//     stores (front AS, parent id, length, origin AS), so prepend is an
//     O(1) intern, path equality is id equality, and the loop check walks
//     the parent chain.  Equal path *values* always intern to the same id,
//     which is what keeps the flat engine's change detection exactly the
//     seed's value comparison.
//   * `CommunityTable` interns community *sets* by content (sorted,
//     deduplicated — Route::add_community semantics), with member storage
//     bump-allocated from a `util::MonotonicArena`; set-id equality is
//     value equality for the same reason.
//   * Routing state is struct-of-arrays indexed by dense id, and the
//     decision-process candidates are reusable SoA columns scanned by the
//     column overload of `bgp::select_best` — no `bgp::Route` objects
//     exist until the converged state is materialized into the public
//     value-typed `PrefixRouting` at the very end.
//
// The per-propagation state is split so it can outlive one fixpoint:
// `FlatRoutingState` is the warm half (interning tables + SoA best columns
// + the event queue) that `sim::DeltaEngine` keeps converged across
// perturbations, and `run_flat_fixpoint` is the event loop both the cold
// entry point and the delta engine replay.  `FlatScratch` bundles a
// routing state with candidate columns for the classic cold call and is
// reset (not freed) between prefixes, so a warmed scratch runs a whole
// fixpoint without touching the global allocator.  One scratch serves one
// propagation at a time; parallel callers lease per-worker scratches from
// a `FlatScratchPool`.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "bgp/community.h"
#include "sim/policy.h"
#include "sim/propagation.h"
#include "topology/graph_view.h"
#include "util/arena.h"

namespace bgpolicy::sim {

/// Open-addressed u64 -> u32 hash map (linear probing, power-of-two
/// capacity) for the interning tables: one cache line per probe instead of
/// the node allocations of `unordered_map`.  Keys must never equal
/// kEmptyKey; `clear()` keeps capacity.
class FlatMap64 {
 public:
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  void clear();
  [[nodiscard]] std::uint32_t* find(std::uint64_t key);
  [[nodiscard]] const std::uint32_t* find(std::uint64_t key) const;
  /// `key` must be absent.
  void insert(std::uint64_t key, std::uint32_t value);
  [[nodiscard]] std::size_t bytes() const {
    return keys_.capacity() * sizeof(std::uint64_t) +
           values_.capacity() * sizeof(std::uint32_t);
  }

 private:
  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const;
  void grow();

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> values_;
  std::size_t size_ = 0;
};

/// Hash-consed AS paths with parent-pointer prepend.  Id 0 is the empty
/// path; every other id names an interned (front AS, parent) node.  Only
/// valid between `clear()` calls of the owning state.
class PathTable {
 public:
  static constexpr std::uint32_t kEmptyPath = 0;

  PathTable() { clear(); }

  void clear();

  /// The interned path `front . parent` (prepend).  Interning by content
  /// means any two equal path values share an id.
  [[nodiscard]] std::uint32_t prepend(std::uint32_t parent, AsNumber front);

  [[nodiscard]] std::uint32_t length(std::uint32_t path) const {
    return length_[path];
  }
  /// Front (next-hop) AS; `path` must not be empty.
  [[nodiscard]] AsNumber front(std::uint32_t path) const {
    return AsNumber(front_[path]);
  }
  /// Parent node (the path without its front hop); kEmptyPath-terminated.
  [[nodiscard]] std::uint32_t parent(std::uint32_t path) const {
    return parent_[path];
  }
  /// Origin (rightmost) AS; `path` must not be empty.
  [[nodiscard]] AsNumber origin(std::uint32_t path) const {
    return AsNumber(origin_[path]);
  }
  /// BGP loop detection: walks the parent chain.
  [[nodiscard]] bool contains(std::uint32_t path, AsNumber as) const;
  /// Rebuilds the value-typed AsPath (front first).
  [[nodiscard]] bgp::AsPath materialize(std::uint32_t path) const;

  [[nodiscard]] std::size_t node_count() const { return front_.size(); }
  [[nodiscard]] std::size_t bytes() const {
    return (front_.capacity() + parent_.capacity() + length_.capacity() +
            origin_.capacity()) *
               sizeof(std::uint32_t) +
           intern_.bytes();
  }

 private:
  // Column `i` describes node id `i`; slot 0 is the empty-path dummy.
  std::vector<std::uint32_t> front_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> length_;
  std::vector<std::uint32_t> origin_;
  FlatMap64 intern_;  // (parent << 32 | front) -> id, exact key
};

/// Community sets interned by content with Route::add_community semantics
/// (sorted, deduplicated).  Id 0 is the empty set.  Member arrays live in
/// the owning state's arena; `add` results are memoized per (set,
/// community) so repeated tagging along a propagation wave is one probe.
class CommunityTable {
 public:
  static constexpr std::uint32_t kEmptySet = 0;

  explicit CommunityTable(util::MonotonicArena& arena) : arena_(&arena) {
    clear();
  }

  void clear();

  /// The interned set `set + {community}`.
  [[nodiscard]] std::uint32_t add(std::uint32_t set, bgp::Community community);

  [[nodiscard]] bool contains(std::uint32_t set,
                              bgp::Community community) const;
  [[nodiscard]] std::span<const bgp::Community> members(
      std::uint32_t set) const {
    return {data_[set], size_[set]};
  }

  /// Deep copy preserving every interned id: member storage is
  /// re-allocated from this table's own arena (the caller has already
  /// reset it), never aliased from `other` — what makes a warm
  /// `FlatRoutingState` clonable.
  void assign_from(const CommunityTable& other);

  [[nodiscard]] std::size_t bytes() const {
    return (data_.capacity() * sizeof(const bgp::Community*)) +
           (size_.capacity() + next_same_hash_.capacity()) *
               sizeof(std::uint32_t) +
           memo_.bytes() + by_content_.bytes();
  }

 private:
  [[nodiscard]] std::uint32_t intern(std::span<const bgp::Community> set);

  util::MonotonicArena* arena_;
  std::vector<const bgp::Community*> data_;  // per set id; slot 0 empty
  std::vector<std::uint32_t> size_;
  std::vector<std::uint32_t> next_same_hash_;  // content-hash chain
  FlatMap64 memo_;        // (set << 32 | community raw) -> result id
  FlatMap64 by_content_;  // content hash -> chain head (compared on walk)
  std::vector<bgp::Community> scratch_;
};

/// Everything `compute_prefix_flat` needs that depends only on the
/// (graph, policies) pair: the dense-id CSR view and per-id policy
/// pointers.  Build once per scenario and share across any number of
/// concurrent propagations — read-only while any propagation is in
/// flight.  Both references must outlive the context.
class FlatSimContext {
 public:
  FlatSimContext(const topo::AsGraph& graph, const PolicySet& policies);

  [[nodiscard]] const topo::GraphView& view() const { return view_; }

  /// Policy of the AS with dense id `id`; throws exactly like
  /// `PolicySet::at` when the AS has no policy (resolved lazily so ASes
  /// that never touch a route keep the seed's don't-ask-don't-throw
  /// behavior).
  [[nodiscard]] const AsPolicy& policy(topo::GraphView::Id id) const {
    const AsPolicy* p = policy_[id];
    return p != nullptr ? *p : policies_->at(view_.as_of(id));
  }

  /// Non-throwing policy probe (the delta engine's frontier seeding asks
  /// about ASes that may have no policy at all).
  [[nodiscard]] const AsPolicy* policy_if_present(
      topo::GraphView::Id id) const;

  /// Re-resolves the policy pointers of `changed` ASes against the owning
  /// PolicySet after it mutated in place (new `by_as` entries, removed
  /// ones, or rules edited behind an existing pointer).  Cheap — O(changed)
  /// — so per-step churn patches the shared context instead of rebuilding
  /// the CSR view.  Must not run concurrently with any propagation using
  /// this context (same contract as mutating the PolicySet itself).
  void refresh_policies(std::span<const AsNumber> changed);

 private:
  topo::GraphView view_;
  std::vector<const AsPolicy*> policy_;
  const PolicySet* policies_;
};

/// The warm half of a propagation: interning tables, SoA best-route
/// columns, and the fixpoint event queue, all indexed by dense AS id.
/// `compute_prefix_flat` resets one per prefix; `sim::DeltaEngine` keeps
/// one converged per origination and re-seeds only the dirty frontier.
/// Members are engine internals — mutate only through the propagation
/// entry points below (the delta engine is the one other writer).
/// Non-copyable because community member storage lives in the arena; use
/// `assign_from` for an explicit deep copy.
struct FlatRoutingState {
  FlatRoutingState() : comms(arena) {}
  FlatRoutingState(const FlatRoutingState&) = delete;
  FlatRoutingState& operator=(const FlatRoutingState&) = delete;

  util::MonotonicArena arena;
  PathTable paths;
  CommunityTable comms;

  // Routing state, indexed by dense AS id.
  std::vector<std::uint8_t> has_best;
  std::vector<std::uint8_t> best_rel;  // RelKind: learned_from as seen by
                                       // the owning AS; valid when the
                                       // best route is not self-originated
  std::vector<std::uint32_t> best_path;
  std::vector<std::uint32_t> best_learned;  // dense id of learned_from
  std::vector<std::uint32_t> best_lp;
  std::vector<std::uint32_t> best_router;
  std::vector<std::uint32_t> best_comms;

  // Fixpoint bookkeeping.  The queue is a ring of capacity n + 1; it is
  // empty (head == tail) whenever no fixpoint is mid-flight.
  std::vector<std::uint8_t> in_queue;
  std::vector<std::uint32_t> processed;
  std::vector<std::uint32_t> queue;
  std::size_t q_head = 0;
  std::size_t q_tail = 0;

  /// Number of dense ids this state covers (0 before the first reset).
  [[nodiscard]] std::size_t size() const { return has_best.size(); }

  /// Clears everything for a cold start over `n` dense ids (keeps
  /// capacity; the arena keeps its blocks).
  void reset(std::size_t n);

  /// Prepares a converged state for another fixpoint wave: zeroes the
  /// per-AS processed counters (the non-convergence cap is per wave).  The
  /// queue must be empty.
  void begin_wave();

  /// Enqueues `id` if not already queued.
  void enqueue(topo::GraphView::Id id) {
    if (in_queue[id] != 0) return;
    in_queue[id] = 1;
    queue[q_tail] = id;
    q_tail = (q_tail + 1) % queue.size();
  }

  [[nodiscard]] bool queue_empty() const { return q_head == q_tail; }

  /// Deep copy: every interned id and best column is preserved, all
  /// storage (including arena-backed community members) is owned by this
  /// state.  `other` must not be mid-fixpoint.
  void assign_from(const FlatRoutingState& other);

  [[nodiscard]] std::size_t bytes() const;
};

/// Reusable decision-process candidate columns (one set per concurrent
/// fixpoint runner).
struct CandidateColumns {
  std::vector<std::uint32_t> lp;
  std::vector<std::uint32_t> plen;
  std::vector<std::uint8_t> origin;
  std::vector<std::uint32_t> nh;
  std::vector<std::uint32_t> med;
  std::vector<std::uint8_t> ebgp;
  std::vector<std::uint32_t> igp;
  std::vector<std::uint32_t> router;
  std::vector<std::uint32_t> path;
  std::vector<std::uint32_t> comms;
  std::vector<std::uint32_t> sender;  // dense id
  std::vector<std::uint8_t> rel;      // RelKind: sender as seen by receiver

  void clear();
  [[nodiscard]] std::size_t bytes() const;
};

/// Outcome of one drained event queue.
struct FixpointStats {
  std::size_t events = 0;
  bool converged = true;
  /// Selections where a non-customer-learned route won while a
  /// customer-learned candidate was on the table.  Under typical
  /// (band-separated) preferences this never happens; a non-zero count
  /// means an atypical assignment was exercised, i.e. the instance may
  /// admit more than one stable fixpoint (an RFC 4264 "wedgie") and a
  /// warm-started replay is not guaranteed to land on the same one as a
  /// cold run.  `sim::DeltaEngine` uses this as its exact-replay trigger.
  std::size_t inversion_selections = 0;
};

/// Installs the origin's self route (kSelfLocalPref, empty path) and
/// enqueues its neighbors — the cold seed program.  `state` must be
/// freshly reset and the origin present in the view.
void seed_origin(const FlatSimContext& context, const Origination& origination,
                 FlatRoutingState& state);

/// Drains the event queue until quiescent — the one fixpoint loop shared
/// by `compute_prefix_flat` (cold seed) and `sim::DeltaEngine` (dirty
/// frontier seed).  The caller has already seeded the queue; per-AS
/// processed counters count against `options.max_process_per_as` for this
/// wave only (zero them via reset/begin_wave first).
///
/// `filtered_enqueue` prunes the change fan-out: instead of enqueueing
/// every neighbor of a changed AS, each arc is tested with a sound
/// optimistic bound (exact import preference, path one hop longer than
/// the sender's, prepends/denies/loops ignored) against the neighbor's
/// stored best, and the neighbor is enqueued only when the sender's offer
/// could win the decision process, the neighbor's best was learned from
/// the sender, or the neighbor holds no route.  A pruned offer can never
/// be missed later: any worsening of a neighbor's best happens inside a
/// full pull that rescans all of its arcs.  Pruning changes the
/// processing ORDER, so it is only safe when the fixpoint is unique —
/// `sim::DeltaEngine` enables it for frontier waves on prefixes its
/// static wedgie oracle proved order-insensitive; the cold entry points
/// keep the unfiltered trajectory.
[[nodiscard]] FixpointStats run_flat_fixpoint(const FlatSimContext& context,
                                              const Origination& origination,
                                              const FailedEdges* failed,
                                              const PropagationOptions& options,
                                              FlatRoutingState& state,
                                              CandidateColumns& cands,
                                              bool filtered_enqueue = false);

/// Materializes the public value-typed result from a converged state.
[[nodiscard]] PrefixRouting materialize_routing(const FlatSimContext& context,
                                                const Origination& origination,
                                                const FlatRoutingState& state,
                                                bool converged,
                                                std::size_t process_events);

/// Best route of one AS from a converged state without materializing the
/// whole table; nullopt when the AS is unknown or holds no route.
[[nodiscard]] std::optional<bgp::Route> flat_route_at(
    const FlatSimContext& context, const Origination& origination,
    const FlatRoutingState& state, AsNumber as);

/// The reusable cold-propagation workspace: one routing state + candidate
/// columns, reset (never freed) between prefixes.  Not thread-safe; one
/// propagation at a time.
class FlatScratch {
 public:
  FlatScratch() = default;

  /// High-water mark of scratch memory across this scratch's lifetime.
  [[nodiscard]] std::size_t peak_bytes() const { return peak_bytes_; }

 private:
  friend PrefixRouting compute_prefix_flat(const FlatSimContext& context,
                                           const Origination& origination,
                                           const FailedEdges* failed,
                                           const PropagationOptions& options,
                                           FlatScratch& scratch);

  void note_peak();

  FlatRoutingState state_;
  CandidateColumns cands_;
  std::size_t peak_bytes_ = 0;
};

/// The flat fixpoint: byte-identical results to `compute_prefix_reference`
/// for every input (golden-tested in tests/sim/flat_equivalence_test.cc).
/// Reentrant across distinct scratches: the context is read-only, so any
/// number of concurrent calls may share it.
[[nodiscard]] PrefixRouting compute_prefix_flat(
    const FlatSimContext& context, const Origination& origination,
    const FailedEdges* failed, const PropagationOptions& options,
    FlatScratch& scratch);

/// A mutex-guarded free list of FlatScratch instances for parallel
/// shard-and-merge callers: workers lease a warmed scratch per prefix
/// (acquisition cost is negligible against a fixpoint) so scratch memory
/// scales with worker count, not prefix count, and nothing leaks into
/// thread-locals on long-lived pool threads.
class FlatScratchPool {
 public:
  class Lease {
   public:
    Lease(FlatScratchPool* pool, std::unique_ptr<FlatScratch> scratch)
        : pool_(pool), scratch_(std::move(scratch)) {}
    ~Lease() {
      if (scratch_ != nullptr) pool_->release(std::move(scratch_));
    }
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    [[nodiscard]] FlatScratch& operator*() const { return *scratch_; }

   private:
    FlatScratchPool* pool_;
    std::unique_ptr<FlatScratch> scratch_;
  };

  [[nodiscard]] Lease acquire();

  /// Max peak_bytes() across every scratch ever leased from this pool.
  [[nodiscard]] std::size_t peak_bytes() const;

 private:
  void release(std::unique_ptr<FlatScratch> scratch);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<FlatScratch>> free_;
  std::size_t peak_bytes_ = 0;
};

}  // namespace bgpolicy::sim
