#include "sim/policy.h"

#include <algorithm>
#include <stdexcept>

#include "util/ensure.h"

namespace bgpolicy::sim {

const ExportRule* ExportPolicy::match(AsNumber neighbor,
                                      const bgp::Prefix& prefix,
                                      AsNumber origin) const {
  for (const auto& rule : any_neighbor) {
    if (rule.matches(prefix, origin)) return &rule;
  }
  const auto it = per_neighbor.find(neighbor);
  if (it == per_neighbor.end()) return nullptr;
  for (const auto& rule : it->second) {
    if (rule.matches(prefix, origin)) return &rule;
  }
  return nullptr;
}

std::size_t ExportPolicy::remove_prefix_rules(AsNumber neighbor,
                                              const bgp::Prefix& prefix) {
  const auto it = per_neighbor.find(neighbor);
  if (it == per_neighbor.end()) return 0;
  auto& rules = it->second;
  const auto new_end =
      std::remove_if(rules.begin(), rules.end(), [&](const ExportRule& rule) {
        return rule.prefix && *rule.prefix == prefix;
      });
  const auto removed = static_cast<std::size_t>(rules.end() - new_end);
  rules.erase(new_end, rules.end());
  if (rules.empty()) per_neighbor.erase(it);
  return removed;
}

namespace {

// Stable neighbor -> slot hash (splitmix64 finalizer).
std::uint16_t slot_of(AsNumber neighbor, std::uint16_t slots) {
  std::uint64_t z = neighbor.value() + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<std::uint16_t>((z ^ (z >> 31)) %
                                    (slots == 0 ? 1 : slots));
}

}  // namespace

bgp::Community CommunityProfile::tag(AsNumber self, AsNumber neighbor,
                                     RelKind kind) const {
  const std::uint16_t base = base_for(kind);
  const std::uint16_t slot =
      slot_of(neighbor, values_per_class) ;
  return bgp::Community(static_cast<std::uint16_t>(self.value()),
                        static_cast<std::uint16_t>(base + slot * 10));
}

std::optional<RelKind> CommunityProfile::classify(bgp::Community community,
                                                  AsNumber self) const {
  if (community.asn() != self.value()) return std::nullopt;
  const std::uint16_t v = community.value();
  const std::uint16_t width =
      static_cast<std::uint16_t>(values_per_class * 10);
  const auto in_range = [&](std::uint16_t base) {
    return v >= base && v < base + width;
  };
  if (in_range(peer_base)) return RelKind::kPeer;
  if (in_range(provider_base)) return RelKind::kProvider;
  if (in_range(customer_base)) return RelKind::kCustomer;
  return std::nullopt;
}

std::uint16_t AsPolicy::no_export_slot_for(AsNumber target) {
  for (std::size_t i = 0; i < no_export_targets.size(); ++i) {
    if (no_export_targets[i] == target) {
      return static_cast<std::uint16_t>(kNoExportToBase + i);
    }
  }
  util::ensure_state(no_export_targets.size() < kNoExportToSlots,
                     "AsPolicy: no-export-to slot space exhausted");
  no_export_targets.push_back(target);
  return static_cast<std::uint16_t>(kNoExportToBase +
                                    no_export_targets.size() - 1);
}

const AsPolicy& PolicySet::at(AsNumber as) const {
  const auto it = by_as.find(as);
  if (it == by_as.end()) {
    throw std::out_of_range("PolicySet: no policy for " + util::to_string(as));
  }
  return it->second;
}

}  // namespace bgpolicy::sim
