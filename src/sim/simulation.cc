#include "sim/simulation.h"

#include "util/parallel.h"

namespace bgpolicy::sim {

void record_prefix(const PropagationEngine& engine, const PrefixRouting& state,
                   const VantageSpec& spec, SimResult& result) {
  const auto& origination = state.origination;

  for (const AsNumber peer : spec.collector_peers) {
    const bgp::Route* best = state.best_at(peer);
    if (best == nullptr) continue;
    bgp::Route record = *best;
    record.path = best->path.prepend(peer);
    record.learned_from = peer;
    record.local_pref = 100;  // LOCAL_PREF is not transmitted over eBGP
    record.router_id = peer.value();
    result.collector.add(std::move(record));
  }

  for (const AsNumber lg : spec.looking_glass) {
    auto& table = result.looking_glass[lg];
    for (const auto& n : engine.graph().neighbors(lg)) {
      auto received =
          engine.route_as_received(n.as, state.best_at(n.as), origination, lg);
      if (received) table.add(std::move(*received));
    }
  }

  for (const AsNumber as : spec.best_only) {
    const bgp::Route* best = state.best_at(as);
    if (best != nullptr) result.best_only[as].add(*best);
  }
}

SimResult run_simulation(const topo::AsGraph& graph, const PolicySet& policies,
                         std::span<const Origination> originations,
                         const VantageSpec& spec,
                         const PropagationOptions& options,
                         const util::Executor* executor) {
  PropagationEngine engine(graph, policies);
  SimResult result;
  result.collector = bgp::BgpTable(spec.collector_as);
  for (const AsNumber lg : spec.looking_glass) {
    result.looking_glass.emplace(lg, bgp::BgpTable(lg));
  }
  for (const AsNumber as : spec.best_only) {
    result.best_only.emplace(as, bgp::BgpTable(as));
  }

  const auto record = [&](const PrefixRouting& state) {
    if (!state.converged) ++result.unconverged_prefixes;
    result.process_events += state.process_events;
    record_prefix(engine, state, spec, result);
    ++result.origination_count;
  };

  // Sharded execution: workers compute prefix fixpoints into index-addressed
  // slots which the calling thread merges in origination order, so every
  // table and counter is byte-identical to the sequential run (see
  // util::shard_and_merge).
  std::unique_ptr<util::Executor> owned;
  const util::Executor& exec =
      util::executor_or(executor, options.threads, originations.size(), owned);
  util::shard_and_merge(
      exec, originations.size(),
      [&](std::size_t i) {
        return compute_prefix(graph, policies, originations[i], nullptr,
                              options);
      },
      [&](std::size_t, const PrefixRouting& state) { record(state); });
  return result;
}

}  // namespace bgpolicy::sim
