#include "sim/simulation.h"

#include "sim/flat_engine.h"
#include "util/parallel.h"

namespace bgpolicy::sim {

void record_prefix(const PropagationEngine& engine, const PrefixRouting& state,
                   const VantageSpec& spec, SimResult& result) {
  const auto& origination = state.origination;

  for (const AsNumber peer : spec.collector_peers) {
    const bgp::Route* best = state.best_at(peer);
    if (best == nullptr) continue;
    bgp::Route record = *best;
    record.path = best->path.prepend(peer);
    record.learned_from = peer;
    record.local_pref = 100;  // LOCAL_PREF is not transmitted over eBGP
    record.router_id = peer.value();
    result.collector.add(std::move(record));
  }

  for (const AsNumber lg : spec.looking_glass) {
    auto& table = result.looking_glass[lg];
    for (const auto& n : engine.graph().neighbors(lg)) {
      auto received =
          engine.route_as_received(n.as, state.best_at(n.as), origination, lg);
      if (received) table.add(std::move(*received));
    }
  }

  for (const AsNumber as : spec.best_only) {
    const bgp::Route* best = state.best_at(as);
    if (best != nullptr) result.best_only[as].add(*best);
  }
}

SimResult init_sim_result(const VantageSpec& spec) {
  SimResult result;
  result.collector = bgp::BgpTable(spec.collector_as);
  for (const AsNumber lg : spec.looking_glass) {
    result.looking_glass.emplace(lg, bgp::BgpTable(lg));
  }
  for (const AsNumber as : spec.best_only) {
    result.best_only.emplace(as, bgp::BgpTable(as));
  }
  return result;
}

SimResult simulate_chunk(const topo::AsGraph& graph, const PolicySet& policies,
                         std::span<const Origination> originations,
                         const VantageSpec& spec,
                         const PropagationOptions& options,
                         util::IndexRange range) {
  PropagationEngine engine(graph, policies);
  SimResult result = init_sim_result(spec);
  // One flat context + one warmed scratch for the whole chunk: after the
  // first prefix the fixpoints run allocation-free.
  const FlatSimContext context(graph, policies);
  FlatScratch scratch;
  for (std::size_t i = range.begin; i < range.end; ++i) {
    const PrefixRouting state = compute_prefix_flat(
        context, originations[i], nullptr, options, scratch);
    if (!state.converged) ++result.unconverged_prefixes;
    result.process_events += state.process_events;
    record_prefix(engine, state, spec, result);
    ++result.origination_count;
  }
  return result;
}

namespace {

/// Replays every route of `from` into `to` in first-insertion prefix order
/// (routes in stored order within a prefix) — the add-sequence of the
/// sequential program restricted to the chunk's originations.
void replay_table(bgp::BgpTable& to, const bgp::BgpTable& from) {
  from.for_each([&](const bgp::Prefix&, std::span<const bgp::Route> routes) {
    for (const bgp::Route& route : routes) to.add(route);
  });
}

}  // namespace

void merge_sim_chunk(SimResult& into, const SimResult& chunk) {
  replay_table(into.collector, chunk.collector);
  for (auto& [as, table] : into.looking_glass) {
    const auto it = chunk.looking_glass.find(as);
    if (it != chunk.looking_glass.end()) replay_table(table, it->second);
  }
  for (auto& [as, table] : into.best_only) {
    const auto it = chunk.best_only.find(as);
    if (it != chunk.best_only.end()) replay_table(table, it->second);
  }
  into.origination_count += chunk.origination_count;
  into.unconverged_prefixes += chunk.unconverged_prefixes;
  into.process_events += chunk.process_events;
}

SimResult run_simulation(const topo::AsGraph& graph, const PolicySet& policies,
                         std::span<const Origination> originations,
                         const VantageSpec& spec,
                         const PropagationOptions& options,
                         const util::Executor* executor) {
  PropagationEngine engine(graph, policies);
  SimResult result = init_sim_result(spec);
  // One shared read-only flat context; workers lease warmed scratches from
  // the pool per prefix, so scratch memory scales with worker count.
  const FlatSimContext context(graph, policies);
  FlatScratchPool scratches;

  const auto record = [&](const PrefixRouting& state) {
    if (!state.converged) ++result.unconverged_prefixes;
    result.process_events += state.process_events;
    record_prefix(engine, state, spec, result);
    ++result.origination_count;
  };

  // Sharded execution: workers compute prefix fixpoints into index-addressed
  // slots which the calling thread merges in origination order, so every
  // table and counter is byte-identical to the sequential run (see
  // util::shard_and_merge).
  std::unique_ptr<util::Executor> owned;
  const util::Executor& exec =
      util::executor_or(executor, options.threads, originations.size(), owned);
  util::shard_and_merge(
      exec, originations.size(),
      [&](std::size_t i) {
        const auto lease = scratches.acquire();
        return compute_prefix_flat(context, originations[i], nullptr, options,
                                   *lease);
      },
      [&](std::size_t, const PrefixRouting& state) { record(state); });
  return result;
}

}  // namespace bgpolicy::sim
