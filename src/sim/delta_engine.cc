#include "sim/delta_engine.h"

#include <algorithm>

#include "util/ensure.h"

namespace bgpolicy::sim {

Perturbation Perturbation::edge_delta(const FailedEdges& from,
                                      const FailedEdges& to) {
  Perturbation out;
  for (const auto& [a, b] : to.edges()) {
    if (!from.is_failed(a, b)) out.fail_edges.emplace_back(a, b);
  }
  for (const auto& [a, b] : from.edges()) {
    if (!to.is_failed(a, b)) out.restore_edges.emplace_back(a, b);
  }
  return out;
}

void DeltaState::assign_from(const DeltaState& other) {
  origination_ = other.origination_;
  failed_ = other.failed_;
  state_.assign_from(other.state_);
  initialized_ = other.initialized_;
  converged_ = other.converged_;
  order_sensitive_ = other.order_sensitive_;
  process_events_ = other.process_events_;
}

// --------------------------------------------------------- DeltaWorkspacePool

DeltaWorkspacePool::Lease DeltaWorkspacePool::acquire() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      std::unique_ptr<DeltaWorkspace> ws = std::move(free_.back());
      free_.pop_back();
      return {this, std::move(ws)};
    }
  }
  return {this, std::make_unique<DeltaWorkspace>()};
}

void DeltaWorkspacePool::release(std::unique_ptr<DeltaWorkspace> ws) {
  const std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(ws));
}

// ----------------------------------------------------------------- DeltaEngine

bool DeltaEngine::static_order_sensitive(const Origination& origination,
                                         DeltaWorkspace& ws) const {
  using Id = topo::GraphView::Id;
  const topo::GraphView& view = context_->view();
  const Id origin = view.id_of(origination.origin);
  if (origin == topo::GraphView::kInvalidId) return false;

  // Uphill cone: the ASes that can ever hold a customer-learned route for
  // this prefix (closure of the origin over provider edges).
  ws.cone_.clear();
  ws.cone_.push_back(origin);
  ws.in_cone_.assign(view.size(), 0);
  ws.in_cone_[origin] = 1;
  for (std::size_t i = 0; i < ws.cone_.size(); ++i) {
    const Id c = ws.cone_[i];
    for (std::uint32_t s = view.arcs_begin(c); s < view.arcs_end(c); ++s) {
      if (static_cast<RelKind>(view.arc_rel(s)) != RelKind::kProvider) {
        continue;
      }
      const Id p = view.arc_to(s);
      if (ws.in_cone_[p] == 0) {
        ws.in_cone_[p] = 1;
        ws.cone_.push_back(p);
      }
    }
  }

  const auto eff = [](const ImportPolicy& imp, AsNumber n, RelKind rel) {
    const auto it = imp.neighbor_override.find(n);
    return it != imp.neighbor_override.end() ? it->second : imp.base_for(rel);
  };

  for (const Id c : ws.cone_) {
    const AsNumber c_as = view.as_of(c);
    for (std::uint32_t s = view.arcs_begin(c); s < view.arcs_end(c); ++s) {
      if (static_cast<RelKind>(view.arc_rel(s)) != RelKind::kProvider) {
        continue;
      }
      // X is a provider of cone member c: the only place a customer-learned
      // candidate (c's offer) can meet a non-customer rival.
      const Id x = view.arc_to(s);
      const AsPolicy* pol = context_->policy_if_present(x);
      if (pol == nullptr) continue;
      const ImportPolicy& imp = pol->import;
      const bool pinned = !imp.prefix_override.empty() &&
                          imp.prefix_override.count(origination.prefix) > 0;
      const std::uint32_t cust =
          pinned ? 0 : eff(imp, c_as, RelKind::kCustomer);
      for (std::uint32_t t = view.arcs_begin(x); t < view.arcs_end(x); ++t) {
        const RelKind rel = static_cast<RelKind>(view.arc_rel(t));
        if (rel == RelKind::kCustomer) continue;
        const Id n = view.arc_to(t);
        // Valley-free gate: a peer of X offers this prefix only when it
        // holds a customer-learned route itself, i.e. it is in the cone.
        // A provider of X can offer whatever it holds.
        if (rel == RelKind::kPeer && ws.in_cone_[n] == 0) continue;
        if (pinned || eff(imp, view.as_of(n), rel) >= cust) return true;
      }
    }
  }
  return false;
}

void DeltaEngine::converge(const Origination& origination,
                           const FailedEdges* failed, DeltaState& st,
                           DeltaWorkspace& ws) const {
  const topo::GraphView& view = context_->view();
  util::ensure(view.id_of(origination.origin) != topo::GraphView::kInvalidId,
               "delta: origin AS not in graph");
  st.origination_ = origination;
  st.failed_ = failed != nullptr ? *failed : FailedEdges{};
  st.state_.reset(view.size());
  seed_origin(*context_, origination, st.state_);
  const FixpointStats stats = run_flat_fixpoint(
      *context_, origination, &st.failed_, options_, st.state_, ws.cands_);
  st.initialized_ = true;
  st.converged_ = stats.converged;
  st.order_sensitive_ = static_order_sensitive(origination, ws) ||
                        stats.inversion_selections > 0;
  st.process_events_ = stats.events;
}

FixpointStats DeltaEngine::exact_replay(DeltaState& st,
                                        DeltaWorkspace& ws) const {
  FlatRoutingState& s = st.state_;
  s.reset(context_->view().size());
  seed_origin(*context_, st.origination_, s);
  const FixpointStats stats = run_flat_fixpoint(
      *context_, st.origination_, &st.failed_, options_, s, ws.cands_);
  st.converged_ = stats.converged;
  if (stats.inversion_selections > 0) st.order_sensitive_ = true;
  return stats;
}

DeltaWave DeltaEngine::apply(DeltaState& st, const Perturbation& p,
                             DeltaWorkspace& ws) const {
  util::ensure_state(st.initialized_, "delta: apply before converge");
  using Id = topo::GraphView::Id;
  const topo::GraphView& view = context_->view();
  FlatRoutingState& s = st.state_;

  DeltaWave wave;
  if (p.empty()) return wave;

  // Fold the session changes into the state's failure set first: frontier
  // seeding and the replay both consult the *new* world.
  for (const auto& [a, b] : p.fail_edges) st.failed_.fail(a, b);
  for (const auto& [a, b] : p.restore_edges) st.failed_.restore(a, b);

  const auto finish_exact = [&](const FixpointStats& stats) {
    wave.exact = true;
    wave.events = stats.events;
    wave.converged = stats.converged;
    st.process_events_ += stats.events;
    for (Id id = 0; id < static_cast<Id>(s.size()); ++id) {
      if (s.processed[id] > 0) wave.touched.push_back(id);
    }
    return wave;
  };

  // A coarse policy change may have edited import preferences, which the
  // static oracle depends on: re-evaluate (the mark stays sticky — a state
  // that ever risked a non-cold attractor keeps replaying exactly).
  if (!p.policy_changed.empty() && !st.order_sensitive_) {
    st.order_sensitive_ = static_order_sensitive(st.origination_, ws);
  }

  // An order-sensitive state may hold one of several stable fixpoints; a
  // frontier-seeded replay could converge to a different one than a cold
  // run.  Only the exact cold trajectory is guaranteed identical.
  if (st.order_sensitive_) return finish_exact(exact_replay(st, ws));

  s.begin_wave();

  const auto seed = [&](Id id) {
    if (id == topo::GraphView::kInvalidId) return;
    if (s.in_queue[id] != 0) return;
    s.enqueue(id);
    wave.frontier.push_back(id);
  };

  // A conditional advertisement watching the toggled session flips its
  // suppression, so the backup target's candidate set changes even though
  // no route of its own crossed the session.
  const auto seed_conditional_targets = [&](AsNumber endpoint,
                                            AsNumber other) {
    const Id id = view.id_of(endpoint);
    if (id == topo::GraphView::kInvalidId) return;
    const AsPolicy* policy = context_->policy_if_present(id);
    if (policy == nullptr) return;
    for (const auto& cond : policy->conditional) {
      if (cond.watch_provider == other &&
          cond.prefix == st.origination_.prefix) {
        seed(view.id_of(cond.advertise_to));
      }
    }
  };

  // Canonical undirected consecutive-hop key for the stale-path scan.
  const auto pair_key = [](AsNumber a, AsNumber b) {
    const auto [lo, hi] = std::minmax(a.value(), b.value());
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  };

  // Edges whose loss/change invalidates paths crossing them (restored
  // edges only *add* candidates — existing best paths stay valid).
  std::vector<std::uint64_t> dirty_pairs;
  // ASes any of whose policy knobs changed: paths through them are stale.
  std::vector<std::uint32_t> dirty_ases;

  for (const auto& [a, b] : p.fail_edges) {
    seed(view.id_of(a));
    seed(view.id_of(b));
    seed_conditional_targets(a, b);
    seed_conditional_targets(b, a);
    dirty_pairs.push_back(pair_key(a, b));
  }
  for (const auto& [a, b] : p.restore_edges) {
    seed(view.id_of(a));
    seed(view.id_of(b));
    seed_conditional_targets(a, b);
    seed_conditional_targets(b, a);
  }
  for (const auto& [sender, neighbor] : p.export_changed) {
    // The neighbor re-pulls from the sender; routes built across the pair
    // are invalidated via the path scan.  The sender's own route is
    // untouched by its export policy.
    seed(view.id_of(neighbor));
    dirty_pairs.push_back(pair_key(sender, neighbor));
  }
  for (const AsNumber x : p.policy_changed) {
    const Id ix = view.id_of(x);
    seed(ix);
    if (ix != topo::GraphView::kInvalidId) {
      for (std::uint32_t slot = view.arcs_begin(ix); slot < view.arcs_end(ix);
           ++slot) {
        seed(view.arc_to(slot));
      }
      // A policy edit can add/remove conditional advertisements; their
      // targets re-evaluate (removed ones are covered by the path scan —
      // the stale route carries x as a hop).
      if (const AsPolicy* policy = context_->policy_if_present(ix)) {
        for (const auto& cond : policy->conditional) {
          if (cond.prefix == st.origination_.prefix) {
            seed(view.id_of(cond.advertise_to));
          }
        }
      }
    }
    dirty_ases.push_back(x.value());
  }

  std::sort(dirty_pairs.begin(), dirty_pairs.end());
  dirty_pairs.erase(std::unique(dirty_pairs.begin(), dirty_pairs.end()),
                    dirty_pairs.end());
  std::sort(dirty_ases.begin(), dirty_ases.end());
  dirty_ases.erase(std::unique(dirty_ases.begin(), dirty_ases.end()),
                   dirty_ases.end());

  // Seed every AS whose current best path is stale: it contains a dirty AS
  // or crosses a dirty pair as consecutive hops.  (An AS whose *first* hop
  // crosses a dirty pair is one of the pair's endpoints and already
  // seeded.)  The walk is memoized per interned path node, so shared path
  // suffixes are classified once.
  if (!dirty_pairs.empty() || !dirty_ases.empty()) {
    ws.mark_.resize(s.paths.node_count(), 0);
    ++ws.epoch_;
    const auto path_dirty = [&](std::uint32_t node) {
      ws.chain_.clear();
      std::uint32_t cur = node;
      bool dirty = false;
      while (cur != PathTable::kEmptyPath) {
        const std::uint64_t mark = ws.mark_[cur];
        if ((mark >> 1) == ws.epoch_) {
          dirty = (mark & 1) != 0;
          break;
        }
        ws.chain_.push_back(cur);
        cur = s.paths.parent(cur);
      }
      for (auto it = ws.chain_.rbegin(); it != ws.chain_.rend(); ++it) {
        const std::uint32_t id = *it;
        if (!dirty) {
          const std::uint32_t hop = s.paths.front(id).value();
          if (std::binary_search(dirty_ases.begin(), dirty_ases.end(), hop)) {
            dirty = true;
          } else {
            const std::uint32_t parent = s.paths.parent(id);
            if (parent != PathTable::kEmptyPath &&
                std::binary_search(
                    dirty_pairs.begin(), dirty_pairs.end(),
                    pair_key(AsNumber(hop), s.paths.front(parent)))) {
              dirty = true;
            }
          }
        }
        ws.mark_[id] = (ws.epoch_ << 1) | (dirty ? 1 : 0);
      }
      return dirty;
    };
    for (Id id = 0; id < static_cast<Id>(s.size()); ++id) {
      if (s.has_best[id] == 0) continue;
      const std::uint32_t path = s.best_path[id];
      if (path == PathTable::kEmptyPath) continue;
      if (path_dirty(path)) seed(id);
    }
  }

  // Replay the standard event loop to quiescence.  The oracle proved this
  // prefix's fixpoint unique, so the pruned fan-out (filtered_enqueue)
  // lands on the same state as the unfiltered cold trajectory.
  const FixpointStats stats =
      run_flat_fixpoint(*context_, st.origination_, &st.failed_, options_, s,
                        ws.cands_, /*filtered_enqueue=*/true);

  // The replay exercised an atypical preference (or tripped the per-wave
  // cap): the result may be a different stable fixpoint than cold's.
  // Discard it and redo the exact trajectory; the mark is sticky, so
  // later waves skip the doomed frontier attempt.
  if (stats.inversion_selections > 0 || !stats.converged) {
    st.order_sensitive_ = true;
    return finish_exact(exact_replay(st, ws));
  }

  wave.events = stats.events;
  wave.converged = stats.converged;
  st.converged_ = st.converged_ && stats.converged;
  st.process_events_ += stats.events;

  for (Id id = 0; id < static_cast<Id>(s.size()); ++id) {
    if (s.processed[id] > 0) wave.touched.push_back(id);
  }
  return wave;
}

PrefixRouting DeltaEngine::materialize(const DeltaState& st) const {
  util::ensure_state(st.initialized_, "delta: materialize before converge");
  return materialize_routing(*context_, st.origination_, st.state_,
                             st.converged_, st.process_events_);
}

std::optional<bgp::Route> DeltaEngine::route_at(const DeltaState& st,
                                                AsNumber as) const {
  util::ensure_state(st.initialized_, "delta: route_at before converge");
  return flat_route_at(*context_, st.origination_, st.state_, as);
}

}  // namespace bgpolicy::sim
