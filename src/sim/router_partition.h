// Multi-router vantage views (Fig. 2b substitute).
//
// The paper checks local-preference consistency *within* one AS using
// AT&T's table combined from 30 backbone routers.  We model that by
// partitioning a looking-glass AS's neighbors across N border routers and
// giving some routers small per-prefix configuration deviations from the
// AS-wide policy.  All randomness is hash-based on (seed, router, prefix),
// so views are independent of table iteration order.
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/table.h"
#include "util/ids.h"

namespace bgpolicy::sim {

struct RouterPartitionParams {
  std::uint64_t seed = 30042002;
  std::size_t router_count = 30;
  /// Fraction of routers whose configuration deviates from the AS default.
  double deviant_router_prob = 0.3;
  /// A deviant router overrides the preference of up to this fraction of
  /// its prefixes.
  double max_deviation_rate = 0.25;
};

struct RouterView {
  util::RouterId router;
  bgp::BgpTable table;
};

/// Splits `lg_table` (a full Adj-RIB-In) into per-router views.  Every
/// neighbor is owned by exactly one router; deviant routers rewrite the
/// local preference of a hash-selected subset of their prefixes.
[[nodiscard]] std::vector<RouterView> partition_routers(
    const bgp::BgpTable& lg_table, const RouterPartitionParams& params);

}  // namespace bgpolicy::sim
