// Full-Internet simulation runs: propagate every origination and record the
// routing tables the paper's data sources would have exposed.
//
//  * A RouteViews-style collector table: each collector peer contributes its
//    best route per prefix; AS paths visible, local preference not
//    (reset to the default 100).
//  * Looking-glass tables: the full Adj-RIB-In of selected ASes with true
//    local preference and communities (the paper's 15 LG vantages).
//  * Best-only tables: just the converged best route per prefix at selected
//    ASes (enough for the SA-prefix algorithm, per the paper's observation
//    in Section 5.1.1 that best routes suffice).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/table.h"
#include "sim/policy.h"
#include "sim/propagation.h"
#include "topology/as_graph.h"
#include "util/parallel.h"

namespace bgpolicy::sim {

struct VantageSpec {
  /// Pseudo-AS number for the collector (the paper's Oregon view, AS6664).
  AsNumber collector_as{6664};
  std::vector<AsNumber> collector_peers;
  std::vector<AsNumber> looking_glass;
  std::vector<AsNumber> best_only;
};

struct SimResult {
  bgp::BgpTable collector;
  std::unordered_map<AsNumber, bgp::BgpTable> looking_glass;
  std::unordered_map<AsNumber, bgp::BgpTable> best_only;
  std::size_t origination_count = 0;
  std::size_t unconverged_prefixes = 0;
  std::size_t process_events = 0;
};

/// Runs the propagation engine over every origination and records the
/// requested vantage tables.  Prefix-sharded across
/// `options.threads` workers (0 = hardware concurrency, 1 = sequential
/// seed behavior); per-prefix results are merged on the calling thread in
/// origination order, so the output — tables and counters — is
/// byte-identical for every thread count.  When `executor` is given it
/// supplies the (long-lived, shared) worker pool and `options.threads` is
/// ignored; otherwise a one-shot pool sized from the knob is used.
[[nodiscard]] SimResult run_simulation(const topo::AsGraph& graph,
                                       const PolicySet& policies,
                                       std::span<const Origination> originations,
                                       const VantageSpec& spec,
                                       const PropagationOptions& options = {},
                                       const util::Executor* executor = nullptr);

/// Records one converged prefix into the vantage tables (exposed for the
/// churn engine, which re-records single prefixes after policy flips).
void record_prefix(const PropagationEngine& engine, const PrefixRouting& state,
                   const VantageSpec& spec, SimResult& result);

/// An empty SimResult with every vantage table pre-created (owners set) —
/// the shared starting state of run_simulation, chunk computation, and
/// chunk merging, so partial and merged results agree byte-for-byte on
/// table identity.
[[nodiscard]] SimResult init_sim_result(const VantageSpec& spec);

/// Computes the converged vantage recording for the origination slice
/// [range.begin, range.end) — one Simulate *chunk*, the unit the staged
/// task graph schedules and the artifact store persists individually
/// (core/experiment.h).  Pure: sequential over its slice, no shared
/// mutable state, so any number of chunks run concurrently.  Recording
/// order inside a chunk is origination order, exactly the sequential
/// program restricted to the slice.
[[nodiscard]] SimResult simulate_chunk(const topo::AsGraph& graph,
                                       const PolicySet& policies,
                                       std::span<const Origination> originations,
                                       const VantageSpec& spec,
                                       const PropagationOptions& options,
                                       util::IndexRange range);

/// Appends a chunk's recordings onto `into`.  Replaying chunks in range
/// order reproduces the sequential run byte-for-byte: chunks partition the
/// origination list contiguously, tables iterate in first-insertion order,
/// and per-(prefix, neighbor) implicit-withdraw semantics are preserved by
/// replaying through BgpTable::add — so first-insertion prefix order,
/// per-prefix route order, and all counters match the unchunked program at
/// any chunk size.
void merge_sim_chunk(SimResult& into, const SimResult& chunk);

}  // namespace bgpolicy::sim
