// Per-AS routing-policy model: the ground truth the simulator executes and
// the inference algorithms (src/core) are later scored against.
//
// Import policies assign local preference (Section 2.2.1): a per-class base
// (customer/peer/provider), per-neighbor overrides (including atypical
// assignments), and per-prefix overrides (the deviations Fig. 2 quantifies).
//
// Export policies start from the Gao-Rexford relationship rules (Section
// 2.2.2) and layer the paper's traffic-engineering behaviors on top:
// selective announcement (deny rules), "announce but do not propagate
// further" community tags (Section 5.1.5 Case 3), provider aggregation
// (Case 2), and prefix splitting (Case 1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/community.h"
#include "bgp/prefix.h"
#include "bgp/route.h"
#include "topology/as_graph.h"
#include "util/ids.h"

namespace bgpolicy::sim {

using topo::RelKind;
using util::AsNumber;

/// Local preference an AS uses for routes it originates itself; above any
/// imported preference so self routes always win.
inline constexpr std::uint32_t kSelfLocalPref = 200;

/// Import policy: how an AS sets LOCAL_PREF on received routes.
struct ImportPolicy {
  std::uint32_t customer_pref = 120;
  std::uint32_t peer_pref = 100;
  std::uint32_t provider_pref = 80;

  /// Per-neighbor overrides (e.g. an atypical assignment that ranks one
  /// peer at customer level).  Applied before per-prefix overrides.
  std::unordered_map<AsNumber, std::uint32_t> neighbor_override;

  /// Per-prefix overrides: traffic engineering pins these prefixes to a
  /// specific preference regardless of neighbor.  These are what make a
  /// local-pref assignment *not* "based on next hop AS" (Fig. 2).
  std::unordered_map<bgp::Prefix, std::uint32_t> prefix_override;

  [[nodiscard]] std::uint32_t base_for(RelKind kind) const {
    switch (kind) {
      case RelKind::kCustomer: return customer_pref;
      case RelKind::kPeer: return peer_pref;
      case RelKind::kProvider: return provider_pref;
    }
    return peer_pref;  // unreachable
  }

  /// The preference assigned to a route for `prefix` learned from
  /// `neighbor` whose relationship (from this AS's perspective) is `kind`.
  /// The empty() guards matter: most ASes carry no overrides, and hashing
  /// the prefix to probe an always-empty map was the hottest line of the
  /// import path.
  [[nodiscard]] std::uint32_t preference(AsNumber neighbor, RelKind kind,
                                         const bgp::Prefix& prefix) const {
    if (!prefix_override.empty()) {
      if (const auto it = prefix_override.find(prefix);
          it != prefix_override.end()) {
        return it->second;
      }
    }
    if (!neighbor_override.empty()) {
      if (const auto it = neighbor_override.find(neighbor);
          it != neighbor_override.end()) {
        return it->second;
      }
    }
    return base_for(kind);
  }
};

/// What an export rule does when it matches.
enum class ExportAction : std::uint8_t {
  /// Do not announce at all (selective announcement).
  kDeny,
  /// Announce, tagged with a community telling the receiving neighbor not
  /// to propagate the route to *its* providers.
  kTagNoExportUpstream,
  /// Announce, tagged with a community telling the receiving neighbor not
  /// to propagate the route to one specific AS (rule.target).
  kTagNoExportTo,
  /// Announce with the sender's AS number prepended `prepend_times` extra
  /// times — the inbound-deprioritization knob of Section 2.2.2.
  kPrepend,
};

/// One export rule.  Matches a route when (prefix empty or equal) AND
/// (origin empty or equal to the route's origin AS).
struct ExportRule {
  std::optional<bgp::Prefix> prefix;
  std::optional<AsNumber> origin;
  ExportAction action = ExportAction::kDeny;
  AsNumber target;                 ///< only for kTagNoExportTo
  std::uint8_t prepend_times = 2;  ///< only for kPrepend (extra copies)

  [[nodiscard]] bool matches(const bgp::Prefix& p, AsNumber route_origin) const {
    if (prefix && *prefix != p) return false;
    if (origin && *origin != route_origin) return false;
    return true;
  }
};

/// Community bases for the action communities the sim understands.  An
/// action community is addressed to the AS in its high half: seeing
/// (X : kNoExportUpstreamValue) instructs AS X not to export upward.
inline constexpr std::uint16_t kNoExportUpstreamValue = 3100;
inline constexpr std::uint16_t kNoExportToBase = 3000;  // 3000 + slot
inline constexpr std::uint16_t kNoExportToSlots = 100;

/// Export policy: Gao-Rexford base rules (hard-coded in the engine) plus
/// per-neighbor rule lists.
struct ExportPolicy {
  /// Rules applying when exporting to one specific neighbor.
  std::unordered_map<AsNumber, std::vector<ExportRule>> per_neighbor;
  /// Rules applying to exports toward any neighbor (e.g. a provider that
  /// aggregates a customer-assigned prefix announces it to nobody).
  std::vector<ExportRule> any_neighbor;

  void add_rule_for(AsNumber neighbor, ExportRule rule) {
    per_neighbor[neighbor].push_back(rule);
  }
  void add_rule_any(ExportRule rule) { any_neighbor.push_back(rule); }

  /// Removes every per-neighbor rule for `neighbor` whose exact-prefix
  /// matcher equals `prefix` (used by the churn engine to flip selective
  /// announcements on and off).  Returns the number of rules removed.
  std::size_t remove_prefix_rules(AsNumber neighbor, const bgp::Prefix& prefix);

  /// The first matching rule for exporting (`prefix`, `origin`) to
  /// `neighbor`, or nullptr.
  [[nodiscard]] const ExportRule* match(AsNumber neighbor,
                                        const bgp::Prefix& prefix,
                                        AsNumber origin) const;
};

/// Relationship-tagging community scheme (Appendix, Table 11): when this AS
/// imports a route from a neighbor, it tags the route with a value that
/// encodes the neighbor's relationship class.  Value layout mirrors the
/// AS12859 example: peers 1000+, providers ("transit") 2000+, customers
/// 4000+.
struct CommunityProfile {
  bool enabled = false;
  /// Publishes the value semantics (e.g. in IRR), letting the verifier skip
  /// the gap-inference step.
  bool published = false;
  std::uint16_t peer_base = 1000;
  std::uint16_t provider_base = 2000;
  std::uint16_t customer_base = 4000;
  /// Distinct values per class; the slot for a neighbor is a stable hash of
  /// the neighbor AS so "12859:1010 and 12859:1020 are the same" cases
  /// (paper Appendix) occur.
  std::uint16_t values_per_class = 3;

  [[nodiscard]] std::uint16_t base_for(RelKind kind) const {
    switch (kind) {
      case RelKind::kCustomer: return customer_base;
      case RelKind::kPeer: return peer_base;
      case RelKind::kProvider: return provider_base;
    }
    return peer_base;  // unreachable
  }

  /// The tag this AS (`self`) applies to routes from `neighbor`.
  [[nodiscard]] bgp::Community tag(AsNumber self, AsNumber neighbor,
                                   RelKind kind) const;

  /// Decodes a community tagged by `self` back to a relationship class;
  /// nullopt when the value is not one of this profile's relationship tags.
  [[nodiscard]] std::optional<RelKind> classify(bgp::Community community,
                                                AsNumber self) const;
};

/// BGP conditional advertisement (paper Section 5.1.5, reference [18]):
/// advertise `prefix` to `advertise_to` only while the session to
/// `watch_provider` is down.  Used by multihomed ASes to keep a backup
/// announcement path without carrying inbound traffic on it normally.
struct ConditionalAdvertisement {
  bgp::Prefix prefix;
  AsNumber advertise_to;
  AsNumber watch_provider;
};

/// Everything one AS is configured with.
struct AsPolicy {
  ImportPolicy import;
  ExportPolicy export_;
  CommunityProfile community;
  /// Slot -> target mapping for kTagNoExportTo communities this AS honors.
  std::vector<AsNumber> no_export_targets;
  /// Conditional advertisements this AS runs.
  std::vector<ConditionalAdvertisement> conditional;

  /// Registers (or reuses) a no-export-to slot for `target`; returns the
  /// community value this AS publishes for it.
  std::uint16_t no_export_slot_for(AsNumber target);
};

/// The full policy configuration of the simulated Internet.
struct PolicySet {
  std::unordered_map<AsNumber, AsPolicy> by_as;

  [[nodiscard]] const AsPolicy& at(AsNumber as) const;
  [[nodiscard]] AsPolicy& at_mut(AsNumber as) { return by_as[as]; }
};

}  // namespace bgpolicy::sim
