#include "sim/router_partition.h"

#include "util/rng.h"

namespace bgpolicy::sim {

namespace {

// Order-independent pseudo-random double in [0,1) from mixed words.
double hash01(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t state = a * 0x9E3779B97F4A7C15ULL ^ b;
  (void)util::splitmix64(state);
  state ^= c * 0xD1B54A32D192ED03ULL;
  const std::uint64_t z = util::splitmix64(state);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

std::vector<RouterView> partition_routers(const bgp::BgpTable& lg_table,
                                          const RouterPartitionParams& params) {
  std::vector<RouterView> views;
  views.reserve(params.router_count);
  for (std::size_t r = 0; r < params.router_count; ++r) {
    views.push_back({util::RouterId(static_cast<std::uint32_t>(r)),
                     bgp::BgpTable(lg_table.owner())});
  }
  if (params.router_count == 0) return views;

  // Per-router deviation rates, decided once.
  std::vector<double> deviation(params.router_count, 0.0);
  for (std::size_t r = 0; r < params.router_count; ++r) {
    if (hash01(params.seed, r, 1) < params.deviant_router_prob) {
      deviation[r] = hash01(params.seed, r, 2) * params.max_deviation_rate;
    }
  }

  std::vector<std::vector<bgp::Route>> batches(params.router_count);
  lg_table.for_each([&](const bgp::Prefix& prefix,
                        std::span<const bgp::Route> routes) {
    for (const bgp::Route& route : routes) {
      // Each neighbor session terminates on exactly one border router.
      std::uint64_t mix = params.seed ^ route.learned_from.value();
      const std::size_t r = static_cast<std::size_t>(util::splitmix64(mix)) %
                            params.router_count;
      bgp::Route copy = route;
      copy.router_id = static_cast<std::uint32_t>(r);
      if (deviation[r] > 0.0 &&
          hash01(params.seed ^ r, prefix.network(), prefix.length()) <
              deviation[r]) {
        copy.local_pref =
            60 + static_cast<std::uint32_t>(
                     hash01(params.seed ^ 0xBEEF, prefix.network(), r) * 70.0);
      }
      batches[r].push_back(std::move(copy));
    }
  });
  for (std::size_t r = 0; r < params.router_count; ++r) {
    views[r].table.add_batch(std::move(batches[r]));
  }
  return views;
}

}  // namespace bgpolicy::sim
