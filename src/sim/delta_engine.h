// Incremental delta propagation: warm-start fixpoints for churn stepping,
// event timelines, and what-if queries.
//
// A cold `compute_prefix_flat` pays the full fixpoint even when one export
// rule flipped or one session failed.  `DeltaEngine` instead keeps the
// converged `FlatRoutingState` of an origination alive (`DeltaState`) and,
// given a perturbation, seeds the event queue with only the *dirty
// frontier* — the ASes whose best route can possibly change first:
//
//   * both endpoints of every failed/restored session (their candidate
//     sets gained or lost an edge);
//   * the `advertise_to` target of every conditional advertisement
//     watching a failed/restored session (the backup announcement toggles
//     with the watched session's health);
//   * the neighbor of every changed (sender, neighbor) export pair, plus
//     the ASes whose current best path crosses that pair as consecutive
//     hops (their route was built from the now-changed export);
//   * for a coarse "anything about X's policy changed", X itself, X's
//     neighbors, and every AS whose best path contains X;
//   * every AS whose current best path crosses a failed session as
//     consecutive hops — found by walking the interned `PathTable` parent
//     chains once per distinct path node (memoized per wave), so the scan
//     is O(live path nodes), not O(ASes x path length).
//
// Then the *standard* event loop (`run_flat_fixpoint` — the same code the
// cold entry point runs) replays until quiescent.  Seeding is a superset
// heuristic: processing an AS whose inputs did not change re-selects the
// same route and propagates nothing, so extra seeds cost one event each,
// never correctness.  An AS whose route must change is either seeded
// directly (its in-edges changed or its current path is stale) or hears
// about it transitively from a seeded AS — exactly how BGP itself
// converges after a localized change.
//
// Determinism: when every AS prefers customer-learned routes (the
// Gao-Rexford condition) the per-origination fixpoint is *unique*, so the
// warm replay provably lands on state value-identical to a cold
// recomputation under the same failure set.  The synthesized policies,
// however, deliberately include atypical assignments (the paper's Fig. 2
// deviations) that violate that condition, and such instances can admit
// several stable fixpoints (RFC 4264 "wedgies") — a warm start may then
// legitimately converge to a different one than a cold run, with no local
// signal: the wedgie pivot may be exercised only in the *cold* trajectory
// while every warm selection looks typical.  The engine therefore decides
// order-sensitivity *statically*, per origination, at converge time:
//
//   1. BFS the origin's uphill cone — the closure over provider edges.
//      By valley-free export these are exactly the ASes that can ever
//      hold a customer-learned route for the prefix (a customer exports
//      to its provider only what it learned from its own customers).
//   2. For every provider X of a cone member c, compare c's effective
//      import preference at X (neighbor override or customer base)
//      against every neighbor of X that can offer the prefix as a
//      non-customer candidate: any provider of X, or a peer of X that is
//      itself in the cone.  If any such rival ranks >= c, a non-customer
//      route can beat an available customer route at X.
//   3. A traffic-engineering `prefix_override` at such an X pins all
//      senders to one preference, so any rival can win on tie-break;
//      it flags whenever X has both a cone customer and a possible
//      non-customer offerer.
//
// If no clause fires, the Gao-Rexford preference condition holds at every
// AS *for this prefix's reachable candidates* (peer-vs-provider and
// intra-band ordering are unconstrained by the safety theorem, and route
// filtering/failures only remove candidates), so the fixpoint is unique
// and the frontier replay is provably cold-identical.  Otherwise the
// state is marked order-sensitive and every wave replays the *exact cold
// trajectory* in place (reset + origin seed + full event loop, reusing
// the state's arena and interned tables), which is cold-identical by
// construction.  As defense in depth the engine also watches
// `FixpointStats::inversion_selections` (an exercised atypical
// preference); a wave that trips it is discarded and redone exactly, and
// the mark is sticky.  Equivalence is golden-tested route-for-route and
// digest-compared at several thread counts
// (tests/sim/delta_equivalence_test.cc); only the trajectory counters
// (`process_events`, the non-convergence flag's wave scope) differ from a
// cold run, which is why equivalence is defined over the best-route map.
//
// Concurrency: a DeltaEngine is immutable and shareable; each DeltaState
// is owned by exactly one caller at a time (the churn simulator shards
// states across workers, each with a leased DeltaWorkspace).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "sim/flat_engine.h"
#include "sim/propagation.h"

namespace bgpolicy::sim {

/// A batch of world changes applied between two converged states.
/// Origination announce/withdraw is structural, not a Perturbation: a
/// withdrawn origination's DeltaState is dropped, an announced one is
/// cold-converged on first use (see the Timeline in core/spec_verify.cc).
struct Perturbation {
  /// Sessions that went down (no route crosses them; conditional
  /// advertisements watching them become active).
  std::vector<std::pair<AsNumber, AsNumber>> fail_edges;
  /// Sessions that came back up.
  std::vector<std::pair<AsNumber, AsNumber>> restore_edges;
  /// Export policy of `first` toward the specific neighbor `second`
  /// changed (the selective-announcement toggle): invalidates exactly the
  /// routes crossing that adjacency.
  std::vector<std::pair<AsNumber, AsNumber>> export_changed;
  /// Coarse: anything about this AS's policy may have changed (import
  /// preferences, community handling, export rules toward anyone).
  std::vector<AsNumber> policy_changed;

  [[nodiscard]] bool empty() const {
    return fail_edges.empty() && restore_edges.empty() &&
           export_changed.empty() && policy_changed.empty();
  }

  /// The edge-set delta turning the world `from` into `to`: fail every
  /// edge in `to` missing from `from`, restore the reverse.  How a cached
  /// state whose failure set drifted from the current world is re-synced
  /// without replaying an event log.
  [[nodiscard]] static Perturbation edge_delta(const FailedEdges& from,
                                               const FailedEdges& to);
};

/// What one incremental wave did: the seeded dirty frontier, every AS the
/// replay actually processed (a superset of the ASes whose route changed —
/// the containment the unit tests pin), and the loop stats.
struct DeltaWave {
  std::vector<topo::GraphView::Id> frontier;  // seeds, in seeding order
  std::vector<topo::GraphView::Id> touched;   // processed >= once, id order
  std::size_t events = 0;
  bool converged = true;
  /// True when the wave replayed the exact cold trajectory (the state is
  /// order-sensitive, or the frontier replay tripped the inversion
  /// trigger and was redone).  `events` then counts the exact replay.
  bool exact = false;
};

/// One origination's persistent converged routing state plus the failure
/// set it converged under.  Create empty, then DeltaEngine::converge.
class DeltaState {
 public:
  DeltaState() = default;
  DeltaState(const DeltaState&) = delete;
  DeltaState& operator=(const DeltaState&) = delete;

  [[nodiscard]] const Origination& origination() const { return origination_; }
  [[nodiscard]] const FailedEdges& failed() const { return failed_; }
  [[nodiscard]] bool initialized() const { return initialized_; }
  /// False once any wave (or the initial converge) tripped the per-AS cap.
  [[nodiscard]] bool converged() const { return converged_; }
  /// Cumulative process events across the initial converge and every wave.
  [[nodiscard]] std::size_t process_events() const { return process_events_; }
  /// True when the static oracle found an atypical preference reachable
  /// for this prefix, or any trajectory exercised one (see the
  /// determinism note in the header comment): waves on such a state
  /// always replay the exact cold trajectory.
  [[nodiscard]] bool order_sensitive() const { return order_sensitive_; }

  /// Deep copy: the clone owns all of its storage (interned tables
  /// included) and can be perturbed independently — how what-if queries
  /// branch off a shared base state without touching it.
  void assign_from(const DeltaState& other);

 private:
  friend class DeltaEngine;

  Origination origination_{};
  FailedEdges failed_;
  FlatRoutingState state_;
  bool initialized_ = false;
  bool converged_ = true;
  bool order_sensitive_ = false;  // sticky across waves
  std::size_t process_events_ = 0;
};

/// Per-caller scratch for converge/apply: candidate columns plus the
/// memoized dirty-path walk marks.  Reusable across states and waves; one
/// workspace per concurrent caller.
class DeltaWorkspace {
 public:
  DeltaWorkspace() = default;

 private:
  friend class DeltaEngine;

  CandidateColumns cands_;
  /// Per path-table node: (epoch << 1) | dirty.  Stale epochs read as
  /// unvisited, so no per-wave clearing of the whole array.
  std::vector<std::uint64_t> mark_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint32_t> chain_;  // parent-chain walk scratch
  std::vector<topo::GraphView::Id> cone_;  // static-oracle BFS scratch
  std::vector<char> in_cone_;
};

/// A mutex-guarded free list of DeltaWorkspace instances, mirroring
/// FlatScratchPool: parallel churn stepping leases one per worker.
class DeltaWorkspacePool {
 public:
  class Lease {
   public:
    Lease(DeltaWorkspacePool* pool, std::unique_ptr<DeltaWorkspace> ws)
        : pool_(pool), ws_(std::move(ws)) {}
    ~Lease() {
      if (ws_ != nullptr) pool_->release(std::move(ws_));
    }
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    [[nodiscard]] DeltaWorkspace& operator*() const { return *ws_; }

   private:
    DeltaWorkspacePool* pool_;
    std::unique_ptr<DeltaWorkspace> ws_;
  };

  [[nodiscard]] Lease acquire();

 private:
  void release(std::unique_ptr<DeltaWorkspace> ws);

  std::mutex mutex_;
  std::vector<std::unique_ptr<DeltaWorkspace>> free_;
};

class DeltaEngine {
 public:
  /// The context must outlive the engine.  `options.threads` is not used
  /// here — each state's waves are sequential; callers shard *states*
  /// across workers (churn.cc) exactly like cold per-prefix fixpoints.
  DeltaEngine(const FlatSimContext& context, PropagationOptions options)
      : context_(&context), options_(options) {}

  [[nodiscard]] const FlatSimContext& context() const { return *context_; }
  [[nodiscard]] const PropagationOptions& options() const { return options_; }

  /// Cold-converges `state` for `origination` under `failed` (copied into
  /// the state; nullptr = healthy).  Runs the exact cold seed program into
  /// a warm state, so materialize() afterwards equals compute_prefix_flat.
  void converge(const Origination& origination, const FailedEdges* failed,
                DeltaState& state, DeltaWorkspace& ws) const;

  /// Applies a perturbation to a converged state: folds the edge changes
  /// into the state's failure set, seeds the dirty frontier, and replays
  /// the standard event loop to quiescence.  Order-sensitive states (and
  /// waves that trip the inversion trigger) replay the exact cold
  /// trajectory instead — see the determinism note.  The caller has
  /// already applied any policy changes to the owning PolicySet (and
  /// refreshed the shared context via FlatSimContext::refresh_policies).
  DeltaWave apply(DeltaState& state, const Perturbation& perturbation,
                  DeltaWorkspace& ws) const;

  /// Full value-typed routing of the state's world.  The best map equals a
  /// cold compute_prefix_flat under state.failed(); converged /
  /// process_events reflect the state's incremental history (see the
  /// determinism note in the header comment).
  [[nodiscard]] PrefixRouting materialize(const DeltaState& state) const;

  /// Best route of one AS without materializing the whole table.
  [[nodiscard]] std::optional<bgp::Route> route_at(const DeltaState& state,
                                                   AsNumber as) const;

 private:
  /// In-place cold-trajectory replay under the state's current inputs:
  /// reset (arena and interned-table capacity kept) + origin seed + full
  /// event loop.  Cold-identical by construction.
  FixpointStats exact_replay(DeltaState& state, DeltaWorkspace& ws) const;

  /// The static wedgie oracle of the determinism note: true when an
  /// atypical preference (or a TE prefix pin) could let a non-customer
  /// candidate beat a customer candidate somewhere in the origin's uphill
  /// cone for this prefix.  False proves the fixpoint unique.
  [[nodiscard]] bool static_order_sensitive(const Origination& origination,
                                            DeltaWorkspace& ws) const;

  const FlatSimContext* context_;
  PropagationOptions options_;
};

}  // namespace bgpolicy::sim
