#include "sim/churn.h"

#include "util/ensure.h"

namespace bgpolicy::sim {

ChurnSimulator::ChurnSimulator(const topo::AsGraph& graph, PolicySet policies,
                               std::vector<Origination> originations,
                               GroundTruth truth, std::vector<AsNumber> watch,
                               ChurnParams params)
    : graph_(&graph),
      policies_(std::move(policies)),
      originations_(std::move(originations)),
      truth_(std::move(truth)),
      watch_(std::move(watch)),
      rng_(params.seed),
      params_(params) {
  for (const auto& origination : originations_) {
    by_prefix_.emplace(origination.prefix, origination);
  }
  for (std::size_t i = 0; i < truth_.origin_units.size(); ++i) {
    if (!truth_.origin_units[i].via_community) toggleable_.push_back(i);
  }
  for (const AsNumber as : watch_) watched_[as];
}

void ChurnSimulator::repropagate(const bgp::Prefix& prefix) {
  const auto it = by_prefix_.find(prefix);
  util::ensure(it != by_prefix_.end(), "churn: unknown prefix");
  const PropagationEngine engine(*graph_, policies_);
  const PrefixRouting state = engine.propagate(it->second);
  for (const AsNumber as : watch_) {
    auto& table = watched_.at(as);
    const bgp::Route* best = state.best_at(as);
    if (best == nullptr) {
      table.erase(prefix);
    } else {
      table.insert_or_assign(prefix, *best);
    }
  }
}

void ChurnSimulator::run_initial() {
  util::ensure_state(!initialized_, "churn: run_initial called twice");
  initialized_ = true;
  const PropagationEngine engine(*graph_, policies_);
  for (const auto& origination : originations_) {
    const PrefixRouting state = engine.propagate(origination);
    for (const AsNumber as : watch_) {
      const bgp::Route* best = state.best_at(as);
      if (best != nullptr) watched_.at(as).emplace(origination.prefix, *best);
    }
  }
}

std::vector<bgp::Prefix> ChurnSimulator::step() {
  util::ensure_state(initialized_, "churn: step before run_initial");
  std::unordered_set<bgp::Prefix> changed;
  if (!toggleable_.empty()) {
    const auto flips = std::max<std::size_t>(
        1, static_cast<std::size_t>(params_.flip_fraction *
                                    static_cast<double>(toggleable_.size())));
    for (std::size_t f = 0; f < flips; ++f) {
      SelectiveUnit& unit =
          truth_.origin_units[toggleable_[rng_.index(toggleable_.size())]];
      AsPolicy& policy = policies_.at_mut(unit.origin);
      if (unit.withheld) {
        policy.export_.remove_prefix_rules(unit.provider, unit.prefix);
        unit.withheld = false;
      } else {
        ExportRule rule;
        rule.prefix = unit.prefix;
        rule.action = ExportAction::kDeny;
        policy.export_.add_rule_for(unit.provider, rule);
        unit.withheld = true;
      }
      changed.insert(unit.prefix);
    }
  }
  std::vector<bgp::Prefix> out(changed.begin(), changed.end());
  for (const auto& prefix : out) repropagate(prefix);
  return out;
}

const std::unordered_map<bgp::Prefix, bgp::Route>& ChurnSimulator::watched(
    AsNumber as) const {
  const auto it = watched_.find(as);
  util::ensure(it != watched_.end(), "churn: AS not watched");
  return it->second;
}

}  // namespace bgpolicy::sim
