#include "sim/churn.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/ensure.h"

namespace bgpolicy::sim {

ChurnSimulator::ChurnSimulator(const topo::AsGraph& graph, PolicySet policies,
                               std::vector<Origination> originations,
                               GroundTruth truth, std::vector<AsNumber> watch,
                               ChurnParams params)
    : graph_(&graph),
      policies_(std::make_unique<PolicySet>(std::move(policies))),
      originations_(std::move(originations)),
      truth_(std::move(truth)),
      watch_(std::move(watch)),
      rng_(params.seed),
      params_(params),
      context_(std::make_unique<FlatSimContext>(graph, *policies_)),
      delta_(std::make_unique<DeltaEngine>(*context_, params.propagation)) {
  for (const auto& origination : originations_) {
    by_prefix_.emplace(origination.prefix, origination);
  }
  for (std::size_t i = 0; i < truth_.origin_units.size(); ++i) {
    if (!truth_.origin_units[i].via_community) toggleable_.push_back(i);
  }
  for (const std::size_t i : toggleable_) {
    auto& bits = units_of_[truth_.origin_units[i].prefix];
    util::ensure(bits.size() < 64,
                 "churn: too many toggleable units for one prefix");
    bits.push_back(i);
  }
  for (const AsNumber as : watch_) watched_[as];
}

std::uint64_t ChurnSimulator::world_of(const bgp::Prefix& prefix) const {
  const auto it = units_of_.find(prefix);
  if (it == units_of_.end()) return 0;
  std::uint64_t world = 0;
  for (std::size_t b = 0; b < it->second.size(); ++b) {
    if (truth_.origin_units[it->second[b]].withheld) world |= 1ull << b;
  }
  return world;
}

std::vector<std::optional<bgp::Route>> ChurnSimulator::watch_rows(
    const DeltaState& state) const {
  std::vector<std::optional<bgp::Route>> rows;
  rows.reserve(watch_.size());
  for (const AsNumber as : watch_) rows.push_back(delta_->route_at(state, as));
  return rows;
}

void ChurnSimulator::repropagate(
    std::span<const bgp::Prefix> prefixes,
    const std::unordered_map<bgp::Prefix, Perturbation>* perturbations) {
  // util::shard_and_merge computes the fixpoints on the executor and applies
  // watched-table updates sequentially in `prefixes` order — deterministic
  // for every thread count (propagation.h "Concurrency model").  The
  // executor is either shared by the caller (set_executor) or created once
  // here and reused across steps.
  const util::Executor* executor = executor_;
  if (executor == nullptr) {
    const std::size_t threads =
        util::resolve_threads(params_.propagation.threads);
    if (threads > 1 && prefixes.size() > 1 && owned_executor_ == nullptr) {
      // Sized to the knob, not this call's prefix count: later steps may
      // carry more prefixes than the call that first triggers creation.
      owned_executor_ = std::make_unique<util::Executor>(threads);
    }
    executor = owned_executor_.get();
  }
  util::ThreadPool* pool = executor == nullptr ? nullptr : executor->pool();

  const auto apply_watch = [&](std::size_t i,
                               std::span<const std::optional<bgp::Route>>
                                   rows) {
    for (std::size_t w = 0; w < watch_.size(); ++w) {
      auto& table = watched_.at(watch_[w]);
      if (!rows[w].has_value()) {
        table.erase(prefixes[i]);
      } else {
        table.insert_or_assign(prefixes[i], *rows[w]);
      }
    }
  };

  if (params_.incremental && perturbations != nullptr) {
    // Memo probes and warm-state lookup/creation happen here on the
    // calling thread (no shared map is touched inside the parallel
    // region); each worker then owns exactly one prefix's state for the
    // duration of its task.  The perturbation is derived from the world
    // drift between the state's baked flags and the current flags, not
    // from this step's flip list: a memo hit leaves the state unsynced on
    // purpose, so the next miss replays every toggled pair at once.
    struct Job {
      const Origination* origination;
      DeltaState* state;         // untouched on a memo hit
      Perturbation perturbation;  // world diff; empty + fresh = converge
      std::uint64_t world = 0;
      bool fresh = false;
      const std::vector<std::optional<bgp::Route>>* cached = nullptr;
    };
    std::vector<Job> jobs;
    jobs.reserve(prefixes.size());
    for (const bgp::Prefix& prefix : prefixes) {
      const auto it = by_prefix_.find(prefix);
      util::ensure(it != by_prefix_.end(), "churn: unknown prefix");
      Job job;
      job.origination = &it->second;
      job.world = world_of(prefix);
      const auto& worlds = memo_[prefix];
      if (const auto hit = worlds.find(job.world); hit != worlds.end()) {
        ++memo_hits_;
        job.cached = &hit->second;
        job.state = nullptr;
        jobs.push_back(std::move(job));
        continue;
      }
      auto& slot = warm_[prefix];
      job.fresh = slot == nullptr;
      if (job.fresh) {
        // Cold-converges against the already-mutated policies, baking the
        // current world in.
        slot = std::make_unique<DeltaState>();
      } else {
        const std::uint64_t baked = state_world_.at(prefix);
        const auto& bits = units_of_.at(prefix);
        for (std::size_t b = 0; b < bits.size(); ++b) {
          if (((baked ^ job.world) >> b) & 1) {
            const SelectiveUnit& unit = truth_.origin_units[bits[b]];
            job.perturbation.export_changed.emplace_back(unit.origin,
                                                         unit.provider);
          }
        }
      }
      state_world_[prefix] = job.world;
      job.state = slot.get();
      jobs.push_back(std::move(job));
    }
    util::shard_and_merge(
        pool, jobs.size(),
        [&](std::size_t i) {
          const Job& job = jobs[i];
          if (job.cached != nullptr) return *job.cached;
          const auto lease = workspaces_->acquire();
          if (job.fresh) {
            delta_->converge(*job.origination, nullptr, *job.state, *lease);
          } else {
            (void)delta_->apply(*job.state, job.perturbation, *lease);
          }
          return watch_rows(*job.state);
        },
        [&](std::size_t i, const std::vector<std::optional<bgp::Route>>& rows) {
          if (jobs[i].cached == nullptr) {
            memo_[prefixes[i]][jobs[i].world] = rows;
          }
          apply_watch(i, rows);
        });
    return;
  }

  // The cold path: non-incremental mode is the faithful pre-delta baseline
  // (what bench_delta_propagation measures against), so it rebuilds the
  // context from the mutated policies on every call exactly like the old
  // simulator did.  Incremental mode reuses the shared patched context;
  // its run_initial lands here too (perturbations == nullptr).
  std::optional<FlatSimContext> fresh;
  if (!params_.incremental) fresh.emplace(*graph_, *policies_);
  const FlatSimContext& context = fresh ? *fresh : *context_;
  util::shard_and_merge(
      pool, prefixes.size(),
      [&](std::size_t i) {
        const auto it = by_prefix_.find(prefixes[i]);
        util::ensure(it != by_prefix_.end(), "churn: unknown prefix");
        const auto lease = scratches_->acquire();
        const PrefixRouting state = compute_prefix_flat(
            context, it->second, nullptr, params_.propagation, *lease);
        std::vector<std::optional<bgp::Route>> rows;
        rows.reserve(watch_.size());
        for (const AsNumber as : watch_) {
          const bgp::Route* best = state.best_at(as);
          rows.push_back(best == nullptr ? std::nullopt
                                         : std::optional<bgp::Route>(*best));
        }
        return rows;
      },
      [&](std::size_t i, const std::vector<std::optional<bgp::Route>>& rows) {
        apply_watch(i, rows);
      });
}

void ChurnSimulator::run_initial() {
  util::ensure_state(!initialized_, "churn: run_initial called twice");
  initialized_ = true;
  std::vector<bgp::Prefix> all;
  all.reserve(originations_.size());
  for (const auto& origination : originations_) {
    all.push_back(origination.prefix);
  }
  // Always the cold path: warm states are created lazily for the churned
  // population only, so memory scales with what actually flips.
  repropagate(all, nullptr);
}

std::vector<bgp::Prefix> ChurnSimulator::step() {
  util::ensure_state(initialized_, "churn: step before run_initial");
  std::unordered_set<bgp::Prefix> changed;
  std::unordered_map<bgp::Prefix, Perturbation> perturbations;
  std::vector<AsNumber> dirty_origins;
  if (!toggleable_.empty()) {
    const auto flips = std::max<std::size_t>(
        1, static_cast<std::size_t>(params_.flip_fraction *
                                    static_cast<double>(toggleable_.size())));
    for (std::size_t f = 0; f < flips; ++f) {
      SelectiveUnit& unit =
          truth_.origin_units[toggleable_[rng_.index(toggleable_.size())]];
      AsPolicy& policy = policies_->at_mut(unit.origin);
      if (unit.withheld) {
        policy.export_.remove_prefix_rules(unit.provider, unit.prefix);
        unit.withheld = false;
      } else {
        ExportRule rule;
        rule.prefix = unit.prefix;
        rule.action = ExportAction::kDeny;
        policy.export_.add_rule_for(unit.provider, rule);
        unit.withheld = true;
      }
      changed.insert(unit.prefix);
      // Exactly what changed: the origin's export toward this provider.
      // The delta engine re-seeds the provider plus every AS routing
      // across that pair — not the whole prefix fixpoint.
      perturbations[unit.prefix].export_changed.emplace_back(unit.origin,
                                                             unit.provider);
      dirty_origins.push_back(unit.origin);
    }
  }
  // Patch the shared context in place (satellite of the delta-engine work:
  // the CSR view never changes, so rebuilding it per step was pure waste).
  context_->refresh_policies(dirty_origins);
  std::vector<bgp::Prefix> out(changed.begin(), changed.end());
  repropagate(out, &perturbations);
  return out;
}

const std::unordered_map<bgp::Prefix, bgp::Route>& ChurnSimulator::watched(
    AsNumber as) const {
  const auto it = watched_.find(as);
  util::ensure(it != watched_.end(), "churn: AS not watched");
  return it->second;
}

}  // namespace bgpolicy::sim
