#include "sim/churn.h"

#include <algorithm>

#include "util/ensure.h"

namespace bgpolicy::sim {

ChurnSimulator::ChurnSimulator(const topo::AsGraph& graph, PolicySet policies,
                               std::vector<Origination> originations,
                               GroundTruth truth, std::vector<AsNumber> watch,
                               ChurnParams params)
    : graph_(&graph),
      policies_(std::move(policies)),
      originations_(std::move(originations)),
      truth_(std::move(truth)),
      watch_(std::move(watch)),
      rng_(params.seed),
      params_(params) {
  for (const auto& origination : originations_) {
    by_prefix_.emplace(origination.prefix, origination);
  }
  for (std::size_t i = 0; i < truth_.origin_units.size(); ++i) {
    if (!truth_.origin_units[i].via_community) toggleable_.push_back(i);
  }
  for (const AsNumber as : watch_) watched_[as];
}

void ChurnSimulator::repropagate(std::span<const bgp::Prefix> prefixes) {
  // util::shard_and_merge computes the fixpoints on the executor and applies
  // watched-table updates sequentially in `prefixes` order — deterministic
  // for every thread count (propagation.h "Concurrency model").  The
  // executor is either shared by the caller (set_executor) or created once
  // here and reused across steps.
  const util::Executor* executor = executor_;
  if (executor == nullptr) {
    const std::size_t threads =
        util::resolve_threads(params_.propagation.threads);
    if (threads > 1 && prefixes.size() > 1 && owned_executor_ == nullptr) {
      // Sized to the knob, not this call's prefix count: later steps may
      // carry more prefixes than the call that first triggers creation.
      owned_executor_ = std::make_unique<util::Executor>(threads);
    }
    executor = owned_executor_.get();
  }
  // Fresh context per call (step() just mutated policies_); the scratch pool
  // keeps warmed propagation workspaces across steps.
  const FlatSimContext context(*graph_, policies_);
  util::shard_and_merge(
      executor == nullptr ? nullptr : executor->pool(), prefixes.size(),
      [&](std::size_t i) {
        const auto it = by_prefix_.find(prefixes[i]);
        util::ensure(it != by_prefix_.end(), "churn: unknown prefix");
        const auto lease = scratches_->acquire();
        return compute_prefix_flat(context, it->second, nullptr,
                                   params_.propagation, *lease);
      },
      [&](std::size_t i, const PrefixRouting& state) {
        for (const AsNumber as : watch_) {
          auto& table = watched_.at(as);
          const bgp::Route* best = state.best_at(as);
          if (best == nullptr) {
            table.erase(prefixes[i]);
          } else {
            table.insert_or_assign(prefixes[i], *best);
          }
        }
      });
}

void ChurnSimulator::run_initial() {
  util::ensure_state(!initialized_, "churn: run_initial called twice");
  initialized_ = true;
  std::vector<bgp::Prefix> all;
  all.reserve(originations_.size());
  for (const auto& origination : originations_) {
    all.push_back(origination.prefix);
  }
  repropagate(all);
}

std::vector<bgp::Prefix> ChurnSimulator::step() {
  util::ensure_state(initialized_, "churn: step before run_initial");
  std::unordered_set<bgp::Prefix> changed;
  if (!toggleable_.empty()) {
    const auto flips = std::max<std::size_t>(
        1, static_cast<std::size_t>(params_.flip_fraction *
                                    static_cast<double>(toggleable_.size())));
    for (std::size_t f = 0; f < flips; ++f) {
      SelectiveUnit& unit =
          truth_.origin_units[toggleable_[rng_.index(toggleable_.size())]];
      AsPolicy& policy = policies_.at_mut(unit.origin);
      if (unit.withheld) {
        policy.export_.remove_prefix_rules(unit.provider, unit.prefix);
        unit.withheld = false;
      } else {
        ExportRule rule;
        rule.prefix = unit.prefix;
        rule.action = ExportAction::kDeny;
        policy.export_.add_rule_for(unit.provider, rule);
        unit.withheld = true;
      }
      changed.insert(unit.prefix);
    }
  }
  std::vector<bgp::Prefix> out(changed.begin(), changed.end());
  repropagate(out);
  return out;
}

const std::unordered_map<bgp::Prefix, bgp::Route>& ChurnSimulator::watched(
    AsNumber as) const {
  const auto it = watched_.find(as);
  util::ensure(it != watched_.end(), "churn: AS not watched");
  return it->second;
}

}  // namespace bgpolicy::sim
