#include "asrel/gao_inference.h"

#include <algorithm>
#include <memory>

#include "util/parallel.h"

namespace bgpolicy::asrel {

void GaoInference::add_path(std::span<const AsNumber> path) {
  if (path.size() < 2) return;
  // Collapse prepending and reject loops.
  std::vector<AsNumber> cleaned;
  cleaned.reserve(path.size());
  for (const AsNumber as : path) {
    if (!cleaned.empty() && cleaned.back() == as) continue;  // prepending
    if (std::find(cleaned.begin(), cleaned.end(), as) != cleaned.end()) {
      return;  // loop: discard the whole path
    }
    cleaned.push_back(as);
  }
  if (cleaned.size() < 2) return;
  for (std::size_t i = 0; i + 1 < cleaned.size(); ++i) {
    adjacency_[cleaned[i]].insert(cleaned[i + 1]);
    adjacency_[cleaned[i + 1]].insert(cleaned[i]);
  }
  paths_.push_back(std::move(cleaned));
  ++path_count_;
}

void GaoInference::add_table_paths(const bgp::BgpTable& table,
                                   std::optional<AsNumber> prepend) {
  table.for_each([&](const bgp::Prefix&, std::span<const bgp::Route> routes) {
    for (const bgp::Route& route : routes) {
      if (prepend) {
        add_path(route.path.prepend(*prepend));
      } else {
        add_path(route.path);
      }
    }
  });
}

std::size_t GaoInference::degree(AsNumber as) const {
  const auto it = adjacency_.find(as);
  return it == adjacency_.end() ? 0 : it->second.size();
}

std::vector<AsNumber> GaoInference::top_clique(const GaoParams& params) const {
  // Core extraction after Subramanian et al.: the default-free core is a
  // dense mutual-peering clique among the top-degree ASes.  A single
  // degree-ordered greedy pass can be contaminated by a high-degree
  // customer of the top AS, so we grow one greedy clique per seed from the
  // candidate pool and keep the largest (true Tier-1s are mutually
  // adjacent, so the genuine clique outgrows contaminated ones).
  std::vector<AsNumber> ordered;
  ordered.reserve(adjacency_.size());
  std::size_t max_degree = 0;
  for (const auto& [as, neighbors] : adjacency_) {
    ordered.push_back(as);
    max_degree = std::max(max_degree, neighbors.size());
  }
  std::sort(ordered.begin(), ordered.end(), [&](AsNumber a, AsNumber b) {
    const std::size_t da = degree(a);
    const std::size_t db = degree(b);
    return da != db ? da > db : a < b;
  });

  const auto min_degree = std::max<std::size_t>(
      2, static_cast<std::size_t>(params.clique_degree_fraction *
                                  static_cast<double>(max_degree)));
  std::vector<AsNumber> candidates;
  for (const AsNumber as : ordered) {
    if (degree(as) < min_degree) break;
    candidates.push_back(as);
    if (candidates.size() >= 40) break;  // candidate pool cap
  }

  std::vector<AsNumber> best;
  for (std::size_t seed = 0; seed < candidates.size(); ++seed) {
    std::vector<AsNumber> clique{candidates[seed]};
    for (const AsNumber candidate : candidates) {
      if (candidate == candidates[seed]) continue;
      const auto& neighbors = adjacency_.at(candidate);
      const bool adjacent_to_all = std::all_of(
          clique.begin(), clique.end(),
          [&](AsNumber member) { return neighbors.contains(member); });
      if (adjacent_to_all) clique.push_back(candidate);
    }
    if (clique.size() > best.size()) best = std::move(clique);
  }
  return best;
}

InferredRelationships GaoInference::infer(const GaoParams& params,
                                          const util::Executor* executor) const {
  using VoteMap = std::unordered_map<PairKey, EdgeVotes, AsPairHash>;

  // Parallel layout: the two per-path passes (vote accumulation here, the
  // valley-free disqualification below) shard contiguous path ranges across
  // the pool and reduce per-range results in range order.  Votes are summed
  // and disqualifications unioned — both order-insensitive — so the final
  // classification is identical at every thread count; threads <= 1 runs
  // the pre-sharding loops directly (the exact seed program, no pool).
  // A caller-supplied executor replaces the one-shot pool (params.threads
  // is then ignored); products are identical either way.
  std::unique_ptr<util::Executor> owned;
  const util::Executor& exec = util::executor_or(
      executor, params.threads, std::max<std::size_t>(1, paths_.size()), owned);
  const std::size_t threads =
      std::min(exec.threads(), std::max<std::size_t>(1, paths_.size()));
  util::ThreadPool* pool = threads > 1 ? exec.pool() : nullptr;
  std::vector<util::IndexRange> ranges;
  if (pool != nullptr) {
    ranges = util::split_ranges(paths_.size(), threads * 4);
  }

  // Phase 1: every path votes on the transit direction of its edges.
  const auto accumulate_votes = [&](std::size_t begin, std::size_t end,
                                    VoteMap& votes) {
    const auto vote = [&](AsNumber provider, AsNumber customer) {
      const PairKey key = InferredRelationships::key(provider, customer);
      EdgeVotes& v = votes[key];
      if (provider == key.first) {
        ++v.lo_provider;
      } else {
        ++v.hi_provider;
      }
    };
    for (std::size_t pi = begin; pi < end; ++pi) {
      const auto& path = paths_[pi];
      // The highest-degree AS is taken as the path's top.
      std::size_t top = 0;
      for (std::size_t i = 1; i < path.size(); ++i) {
        if (degree(path[i]) > degree(path[top])) top = i;
      }
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        // Reading the table path left (observer) to right (origin): edges
        // left of the top climb toward it (the right AS is the provider),
        // edges right of it descend (the left AS is the provider).
        if (i + 1 <= top) {
          vote(path[i + 1], path[i]);
        } else {
          vote(path[i], path[i + 1]);
        }
      }
      // Path crests nominate peer candidates: the edge between the top and
      // its larger-degree path neighbor.  Boundary tops are included (a
      // vantage's own peer routes put the crest at position 0); the
      // valley-free disqualification pass below weeds out the false
      // nominations this admits.
      if (params.detect_peers) {
        std::size_t mate;
        if (top == 0) {
          mate = 1;
        } else if (top + 1 == path.size()) {
          mate = top - 1;
        } else {
          mate = degree(path[top - 1]) >= degree(path[top + 1]) ? top - 1
                                                                : top + 1;
        }
        ++votes[InferredRelationships::key(path[top], path[mate])].top_pair;
      }
    }
  };

  VoteMap votes;
  if (pool == nullptr) {
    accumulate_votes(0, paths_.size(), votes);
  } else {
    util::shard_and_merge(
        pool, ranges.size(),
        [&](std::size_t r) {
          VoteMap local;
          accumulate_votes(ranges[r].begin, ranges[r].end, local);
          return local;
        },
        [&](std::size_t, VoteMap& local) {
          for (const auto& [key, v] : local) {
            EdgeVotes& merged = votes[key];
            merged.lo_provider += v.lo_provider;
            merged.hi_provider += v.hi_provider;
            merged.top_pair += v.top_pair;
          }
        });
  }

  // Phase 2: the default-free core.
  std::unordered_set<AsNumber> clique;
  if (params.detect_clique) {
    for (const AsNumber as : top_clique(params)) clique.insert(as);
  }

  // Phase 3a: preliminary vote-based classification (no peers yet); the
  // clique overrides votes where it applies.
  InferredRelationships prelim;
  const auto classify_votes = [&](const PairKey& /*key*/,
                                  const EdgeVotes& v) -> EdgeType {
    if (v.lo_provider > 0 && v.hi_provider > 0) {
      const double lesser =
          static_cast<double>(std::min(v.lo_provider, v.hi_provider));
      const double greater =
          static_cast<double>(std::max(v.lo_provider, v.hi_provider));
      if (lesser / greater > params.sibling_balance) return EdgeType::kSibling;
      return v.lo_provider > v.hi_provider ? EdgeType::kLoProviderOfHi
                                           : EdgeType::kHiProviderOfLo;
    }
    return v.lo_provider > 0 ? EdgeType::kLoProviderOfHi
                             : EdgeType::kHiProviderOfLo;
  };
  const auto clique_type = [&](const PairKey& key) -> std::optional<EdgeType> {
    const bool lo_core = clique.contains(key.first);
    const bool hi_core = clique.contains(key.second);
    if (lo_core && hi_core) return EdgeType::kPeer;
    // Era assumption (paper Section 2): the default-free core does not peer
    // downward, so a core/non-core adjacency is provider-to-customer.
    if (lo_core) return EdgeType::kLoProviderOfHi;
    if (hi_core) return EdgeType::kHiProviderOfLo;
    return std::nullopt;
  };
  for (const auto& [key, v] : votes) {
    const auto forced = clique_type(key);
    prelim.set(key.first, key.second, forced ? *forced : classify_votes(key, v));
  }

  if (!params.detect_peers) return prelim;

  // Phases 3b/4, iterated: peer disqualification by valley-freeness
  // against the current classification, then re-classification.  If any
  // path shows an AS that is not a customer of u immediately before the
  // edge (u,v), then u was providing transit across it, so (u,v) cannot be
  // a peer link.  Two rounds let corrections (e.g. a clique edge flipping
  // to peer) propagate into the disqualification evidence.
  const auto pack = [](const PairKey& key) {
    return (static_cast<std::uint64_t>(key.first.value()) << 32) |
           key.second.value();
  };
  InferredRelationships current = std::move(prelim);
  for (int round = 0; round < 2; ++round) {
    // Sharded like the voting pass: per-range disqualification sets are
    // unioned in range order (`current` is read-only for the whole pass).
    const auto disqualify = [&](std::size_t begin, std::size_t end,
                                std::unordered_set<std::uint64_t>& out) {
      for (std::size_t pi = begin; pi < end; ++pi) {
        const auto& path = paths_[pi];
        for (std::size_t i = 1; i + 1 < path.size(); ++i) {
          const AsNumber u = path[i];
          const AsNumber v = path[i + 1];
          const auto outer_rel = current.relationship(u, path[i - 1]);
          if (outer_rel != RelKind::kCustomer) {
            out.insert(pack(InferredRelationships::key(u, v)));
          }
        }
      }
    };
    std::unordered_set<std::uint64_t> disqualified;
    if (pool == nullptr) {
      disqualify(0, paths_.size(), disqualified);
    } else {
      util::shard_and_merge(
          pool, ranges.size(),
          [&](std::size_t r) {
            std::unordered_set<std::uint64_t> local;
            disqualify(ranges[r].begin, ranges[r].end, local);
            return local;
          },
          [&](std::size_t, std::unordered_set<std::uint64_t>& local) {
            disqualified.merge(local);
          });
    }
    // Visible peer links connect transit ASes: a peer route propagates only
    // to customers, so an AS with no customers can never show anyone its
    // peer edges.  A candidate whose endpoint has no inferred customers is
    // a vantage's own customer link seen from the inside, not a peering.
    std::unordered_set<AsNumber> has_customers;
    current.for_each([&](AsNumber lo, AsNumber hi, EdgeType type) {
      if (type == EdgeType::kLoProviderOfHi) has_customers.insert(lo);
      if (type == EdgeType::kHiProviderOfLo) has_customers.insert(hi);
    });

    InferredRelationships next;
    for (const auto& [key, v] : votes) {
      const auto forced = clique_type(key);
      if (forced) {
        next.set(key.first, key.second, *forced);
        continue;
      }
      EdgeType type = classify_votes(key, v);
      const double total_votes =
          static_cast<double>(v.lo_provider + v.hi_provider);
      if (v.top_pair > 0 && !disqualified.contains(pack(key)) &&
          static_cast<double>(v.top_pair) >=
              params.peer_candidate_min_share * total_votes &&
          has_customers.contains(key.first) &&
          has_customers.contains(key.second)) {
        const double deg_lo =
            static_cast<double>(std::max<std::size_t>(1, degree(key.first)));
        const double deg_hi =
            static_cast<double>(std::max<std::size_t>(1, degree(key.second)));
        const double ratio =
            std::max(deg_lo, deg_hi) / std::min(deg_lo, deg_hi);
        if (ratio < params.peer_degree_ratio) type = EdgeType::kPeer;
      }
      next.set(key.first, key.second, type);
    }
    current = std::move(next);
  }
  return current;
}

}  // namespace bgpolicy::asrel
