// Community-based verification of inferred AS relationships — the paper's
// Appendix, driving Table 4 and Fig. 9.
//
// Many ASes tag imported routes with communities encoding the announcing
// neighbor's relationship class (Table 11).  Given a looking-glass table of
// such an AS, we (step 1) collect the dominant vantage-tagged community per
// next-hop AS, (step 2) recover the value semantics — directly when
// published, otherwise via the prefix-count gap heuristic (providers
// announce nearly full tables, customers a handful of prefixes; Fig. 9) —
// and (step 3) map each neighbor to a relationship, then measure agreement
// with the relationships inferred from AS paths.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "asrel/relationships.h"
#include "bgp/community.h"
#include "bgp/table.h"
#include "util/stats.h"

namespace bgpolicy::asrel {

struct CommunityVerifyParams {
  /// Hint that the vantage AS has providers (non-Tier-1); the paper uses
  /// this exact external knowledge ("Because AS1 and AS3549 do not have
  /// providers...").
  bool has_providers = false;
  /// A neighbor announcing at least this share of the table's prefixes is
  /// labelled provider when has_providers is set.
  double provider_min_share = 0.5;
  /// Neighbors announcing at most max(customer_max_prefixes,
  /// customer_max_share * table size) prefixes are the customer group.
  /// The absolute floor matches the paper's "1 or 2 prefixes"; the relative
  /// part keeps the test meaningful at small table sizes.
  std::size_t customer_max_prefixes = 2;
  double customer_max_share = 0.02;
  /// Two community values within this distance are "the same" (belong to
  /// one class range, as in the 12859:1000-12859:2000 example).
  std::uint16_t same_range_window = 500;
};

struct NeighborObservation {
  AsNumber neighbor;
  std::size_t prefix_count = 0;
  std::optional<bgp::Community> dominant_tag;
  std::optional<RelKind> community_rel;  ///< decoded from the tag
  std::optional<RelKind> inferred_rel;   ///< from the AS-path inference
};

struct CommunityVerification {
  AsNumber vantage;
  /// Sorted by prefix count, non-increasing (Fig. 9 order).
  std::vector<NeighborObservation> neighbors;
  std::size_t neighbor_count = 0;
  std::size_t comparable = 0;  ///< both community and inferred class known
  std::size_t agree = 0;
  double percent_verified = 0.0;
  util::RankSeries rank_series;
};

/// `published_semantics`, when available, maps a community *value* (the low
/// half; the high half is the vantage AS) to the relationship class the
/// vantage advertises for it, e.g. from an IRR registration.
[[nodiscard]] CommunityVerification verify_with_communities(
    const bgp::BgpTable& lg_table,
    const std::optional<std::unordered_map<std::uint16_t, RelKind>>&
        published_semantics,
    const InferredRelationships& inferred,
    const CommunityVerifyParams& params = {});

}  // namespace bgpolicy::asrel
