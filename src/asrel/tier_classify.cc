#include "asrel/tier_classify.h"

#include <algorithm>
#include <unordered_set>

namespace bgpolicy::asrel {

TierAssignment classify_tiers(const InferredRelationships& rels,
                              const TierParams& params) {
  // Build adjacency views from the inferred edges.
  std::unordered_map<AsNumber, std::vector<AsNumber>> customers;
  std::unordered_map<AsNumber, std::size_t> provider_count;
  std::unordered_map<AsNumber, std::size_t> degree;
  std::unordered_map<AsNumber, std::unordered_set<AsNumber>> peers;

  rels.for_each([&](AsNumber lo, AsNumber hi, EdgeType type) {
    ++degree[lo];
    ++degree[hi];
    switch (type) {
      case EdgeType::kLoProviderOfHi:
        customers[lo].push_back(hi);
        ++provider_count[hi];
        break;
      case EdgeType::kHiProviderOfLo:
        customers[hi].push_back(lo);
        ++provider_count[lo];
        break;
      case EdgeType::kPeer:
      case EdgeType::kSibling:
        peers[lo].insert(hi);
        peers[hi].insert(lo);
        break;
    }
  });

  // Tier-1: greedy clique over provider-free, high-degree ASes.
  std::vector<AsNumber> candidates;
  for (const auto& [as, d] : degree) {
    if (d < params.tier1_min_degree) continue;
    if (provider_count.contains(as)) continue;
    candidates.push_back(as);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](AsNumber a, AsNumber b) {
              const std::size_t da = degree.at(a);
              const std::size_t db = degree.at(b);
              return da != db ? da > db : a < b;
            });

  TierAssignment out;
  for (const AsNumber candidate : candidates) {
    std::size_t connected = 0;
    const auto peer_it = peers.find(candidate);
    if (peer_it != peers.end()) {
      for (const AsNumber member : out.tier1) {
        if (peer_it->second.contains(member)) ++connected;
      }
    }
    const auto required = static_cast<std::size_t>(
        params.clique_fraction * static_cast<double>(out.tier1.size()));
    if (out.tier1.empty() || connected >= std::max<std::size_t>(1, required)) {
      out.tier1.push_back(candidate);
      out.level[candidate] = 1;
    }
  }

  // Customer-cone sizes via DFS over inferred p2c edges.
  const auto cone_size = [&](AsNumber root) {
    std::unordered_set<AsNumber> seen{root};
    std::vector<AsNumber> stack{root};
    std::size_t size = 0;
    while (!stack.empty()) {
      const AsNumber current = stack.back();
      stack.pop_back();
      const auto it = customers.find(current);
      if (it == customers.end()) continue;
      for (const AsNumber c : it->second) {
        if (seen.insert(c).second) {
          ++size;
          stack.push_back(c);
        }
      }
    }
    return size;
  };

  for (const auto& [as, d] : degree) {
    if (out.level.contains(as)) continue;
    const auto it = customers.find(as);
    if (it == customers.end() || it->second.empty()) {
      out.level[as] = 4;
      continue;
    }
    out.level[as] = cone_size(as) >= params.tier2_min_cone ? 2 : 3;
  }
  return out;
}

std::string canonical_serialize(const TierAssignment& tiers) {
  std::string out = "tier1:";
  for (const AsNumber as : tiers.tier1) {
    out += ' ';
    out += std::to_string(as.value());
  }
  out += '\n';
  std::vector<std::pair<std::uint32_t, int>> rows;
  rows.reserve(tiers.level.size());
  for (const auto& [as, level] : tiers.level) {
    rows.emplace_back(as.value(), level);
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& [as, level] : rows) {
    out += std::to_string(as);
    out += ' ';
    out += std::to_string(level);
    out += '\n';
  }
  return out;
}

}  // namespace bgpolicy::asrel
