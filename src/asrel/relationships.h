// Inferred AS-relationship store shared by the asrel algorithms and the
// core inference pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "topology/as_graph.h"
#include "util/ids.h"

namespace bgpolicy::asrel {

using topo::RelKind;
using util::AsNumber;

/// Undirected edge type between a normalized pair (lo, hi).
enum class EdgeType : std::uint8_t {
  kLoProviderOfHi,  ///< lo is the provider of hi
  kHiProviderOfLo,  ///< hi is the provider of lo
  kPeer,
  kSibling,  ///< mutual transit observed (paper [12] category)
};

[[nodiscard]] std::string to_string(EdgeType type);

struct AsPairHash {
  std::size_t operator()(const std::pair<AsNumber, AsNumber>& p) const noexcept {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(p.first.value()) << 32) | p.second.value();
    std::uint64_t z = packed + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// The result of an inference pass: an annotation per observed AS pair.
class InferredRelationships {
 public:
  /// Normalizes (a, b) so the smaller AS number comes first.
  [[nodiscard]] static std::pair<AsNumber, AsNumber> key(AsNumber a,
                                                         AsNumber b);

  void set(AsNumber a, AsNumber b, EdgeType type);

  /// What `other` is to `as` (mirrors topo::AsGraph::relationship);
  /// siblings are reported as peers for policy purposes.  nullopt when the
  /// pair was never classified.
  [[nodiscard]] std::optional<RelKind> relationship(AsNumber as,
                                                    AsNumber other) const;

  [[nodiscard]] std::optional<EdgeType> edge(AsNumber a, AsNumber b) const;
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  void for_each(const std::function<void(AsNumber, AsNumber, EdgeType)>& fn)
      const;

  /// Fraction of classified pairs that agree with the ground-truth graph
  /// (scoring hook for tests; the original paper had no ground truth).
  [[nodiscard]] double accuracy_against(const topo::AsGraph& truth) const;

  /// Materializes the inferred relationships as an annotated AS graph
  /// (siblings become peer edges), so graph algorithms like the customer-
  /// cone DFS of Fig. 4 can run on *inferred* data exactly as they would on
  /// ground truth.
  [[nodiscard]] topo::AsGraph to_graph() const;

 private:
  std::unordered_map<std::pair<AsNumber, AsNumber>, EdgeType, AsPairHash>
      edges_;
};

/// Stable textual serialization of a classification: one "lo hi type" line
/// per pair, sorted by (lo, hi).  Independent of construction and hash-map
/// iteration order, so two inference runs produced at different thread
/// counts serialize byte-identically iff they classified identically — the
/// comparison hook for the inference determinism test and the
/// bench_inference_scaling product digest.
[[nodiscard]] std::string canonical_serialize(
    const InferredRelationships& rels);

}  // namespace bgpolicy::asrel
