// AS-relationship inference from AS paths, after Gao (IEEE/ACM ToN 2001,
// the paper's reference [12]), with the top-clique refinement of
// Subramanian et al. (INFOCOM 2002, reference [8]).  The paper's Section 3
// builds on exactly these two algorithms.
//
// Sketch:
//  1. Every observed table path is valley-free: it climbs
//     customer-to-provider edges, crosses at most one peer-peer edge at the
//     top, then descends.  The highest-degree AS on a path is taken as its
//     top; edges left of the top vote "right AS provides transit", edges
//     right of it vote the reverse.
//  2. The default-free core is recovered as a greedy clique over the
//     adjacency graph, seeded at the highest-degree AS.  Clique-internal
//     edges are peer-to-peer; clique-to-outside edges are
//     provider-to-customer (Tier-1s of the era did not peer downward).
//  3. Remaining edges are classified by vote majority (balanced mutual
//     votes => sibling).  Interior path crests nominate peer candidates; a
//     candidate (u,v) survives unless some path shows an AS that is *not a
//     customer of u* immediately before u — valley-freeness then proves u
//     was providing transit across the edge, so it cannot be a peer link.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asrel/relationships.h"
#include "bgp/aspath.h"
#include "bgp/table.h"
#include "util/parallel.h"

namespace bgpolicy::asrel {

struct GaoParams {
  /// Max degree ratio between peer candidates (Gao's R; 60 in her paper).
  double peer_degree_ratio = 60.0;
  /// Vote-balance threshold above which mutual transit means sibling.
  double sibling_balance = 0.5;
  /// Run the peer-detection refinement (ablated in benches).
  bool detect_peers = true;
  /// Run the top-clique phase (ablated in benches).
  bool detect_clique = true;
  /// A clique candidate must have at least this fraction of the maximum
  /// observed degree.
  double clique_degree_fraction = 0.2;
  /// A peer candidate's crest nominations must account for at least this
  /// share of the edge's total transit votes.  Peer edges are crossed only
  /// at crests (share near 1); provider-customer edges accumulate transit
  /// votes far beyond their incidental crest nominations.
  double peer_candidate_min_share = 0.33;
  /// Worker-thread count for the per-path passes of `infer` (vote
  /// accumulation and valley-free peer disqualification).  Same knob
  /// semantics as sim::PropagationOptions::threads: 0 = hardware
  /// concurrency, 1 = the exact sequential seed program.  Vote counters are
  /// summed and disqualification sets unioned in stable shard order, so the
  /// inferred relationships are identical at every value.
  std::size_t threads = 1;
};

class GaoInference {
 public:
  /// Feeds one AS path (leftmost = nearest the table owner).  Duplicate
  /// consecutive hops (prepending) are collapsed; paths with loops are
  /// ignored, mirroring the paper's data cleaning.
  void add_path(std::span<const AsNumber> path);
  void add_path(const bgp::AsPath& path) { add_path(path.hops()); }

  /// Feeds every route's path from a BGP table.  `prepend`, when set, is
  /// the vantage AS prepended to each path so looking-glass views match the
  /// shape a collector would record.
  void add_table_paths(const bgp::BgpTable& table,
                       std::optional<AsNumber> prepend = std::nullopt);

  [[nodiscard]] std::size_t path_count() const { return path_count_; }

  /// Degree (distinct observed neighbors) of an AS.
  [[nodiscard]] std::size_t degree(AsNumber as) const;

  /// Runs the classification over everything fed so far.  When `executor`
  /// is given its shared pool runs the per-path passes and
  /// `params.threads` is ignored; otherwise a one-shot pool sized from the
  /// knob is used.  Identical products either way.
  [[nodiscard]] InferredRelationships infer(
      const GaoParams& params = {},
      const util::Executor* executor = nullptr) const;

  /// The cleaned path multiset in ingest order (prepending collapsed,
  /// loop paths dropped) — the serialization hook for io/artifact_codec:
  /// re-feeding these paths through add_path in order reconstructs an
  /// identical inference state.
  [[nodiscard]] std::span<const std::vector<AsNumber>> paths() const {
    return paths_;
  }

  /// The inferred default-free core (exposed for diagnostics/tests).
  [[nodiscard]] std::vector<AsNumber> top_clique(
      const GaoParams& params = {}) const;

 private:
  using PairKey = std::pair<AsNumber, AsNumber>;

  struct EdgeVotes {
    std::uint32_t lo_provider = 0;  ///< votes that lo provides transit to hi
    std::uint32_t hi_provider = 0;
    std::uint32_t top_pair = 0;  ///< times the edge was an interior top pair
  };

  std::vector<std::vector<AsNumber>> paths_;
  std::unordered_map<AsNumber, std::unordered_set<AsNumber>> adjacency_;
  std::size_t path_count_ = 0;
};

}  // namespace bgpolicy::asrel
