#include "asrel/community_verify.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace bgpolicy::asrel {

namespace {

struct NeighborScratch {
  std::size_t prefix_count = 0;
  /// vantage-tagged community value -> occurrences
  std::map<std::uint16_t, std::size_t> tag_counts;
};

}  // namespace

CommunityVerification verify_with_communities(
    const bgp::BgpTable& lg_table,
    const std::optional<std::unordered_map<std::uint16_t, RelKind>>&
        published_semantics,
    const InferredRelationships& inferred,
    const CommunityVerifyParams& params) {
  const AsNumber vantage = lg_table.owner();
  const auto vantage_asn = static_cast<std::uint16_t>(vantage.value());

  // Step 1: per-neighbor prefix counts and dominant vantage tags.
  std::unordered_map<AsNumber, NeighborScratch> scratch;
  lg_table.for_each([&](const bgp::Prefix&, std::span<const bgp::Route> routes) {
    for (const bgp::Route& route : routes) {
      NeighborScratch& s = scratch[route.learned_from];
      ++s.prefix_count;
      for (const bgp::Community c : route.communities) {
        if (c.asn() == vantage_asn) ++s.tag_counts[c.value()];
      }
    }
  });

  CommunityVerification out;
  out.vantage = vantage;
  out.neighbor_count = scratch.size();
  std::vector<std::uint64_t> counts;
  counts.reserve(scratch.size());
  for (const auto& [neighbor, s] : scratch) {
    NeighborObservation obs;
    obs.neighbor = neighbor;
    obs.prefix_count = s.prefix_count;
    if (!s.tag_counts.empty()) {
      const auto dominant = std::max_element(
          s.tag_counts.begin(), s.tag_counts.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      obs.dominant_tag = bgp::Community(vantage_asn, dominant->first);
    }
    obs.inferred_rel = inferred.relationship(vantage, neighbor);
    out.neighbors.push_back(obs);
    counts.push_back(s.prefix_count);
  }
  std::sort(out.neighbors.begin(), out.neighbors.end(),
            [](const NeighborObservation& a, const NeighborObservation& b) {
              return a.prefix_count != b.prefix_count
                         ? a.prefix_count > b.prefix_count
                         : a.neighbor < b.neighbor;
            });
  out.rank_series = util::RankSeries::from(
      util::to_string(vantage) + " prefixes per next-hop AS",
      std::move(counts));

  // Step 2: recover value -> class semantics.  Without published rules we
  // follow the Appendix: non-overlapping value ranges encode one class
  // each, so cluster the observed values into ranges first, then classify
  // each range from its members' prefix counts (providers announce nearly
  // full tables; customers announce a handful; the biggest remaining
  // announcers are peers).
  std::unordered_map<std::uint16_t, RelKind> semantics;
  if (published_semantics) {
    semantics = *published_semantics;
  } else if (!out.neighbors.empty()) {
    const std::size_t table_size = lg_table.prefix_count();

    // Cluster distinct dominant values into ranges.
    std::vector<std::uint16_t> values;
    for (const auto& obs : out.neighbors) {
      if (obs.dominant_tag) values.push_back(obs.dominant_tag->value());
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    std::vector<std::vector<std::uint16_t>> clusters;
    for (const std::uint16_t v : values) {
      if (clusters.empty() ||
          v - clusters.back().back() > params.same_range_window) {
        clusters.emplace_back();
      }
      clusters.back().push_back(v);
    }

    // The top announcers (out.neighbors is sorted by count already).
    std::unordered_set<AsNumber> top_announcers;
    for (std::size_t i = 0; i < out.neighbors.size() && i < 3; ++i) {
      top_announcers.insert(out.neighbors[i].neighbor);
    }
    const auto tiny_cutoff = std::max<std::size_t>(
        params.customer_max_prefixes,
        static_cast<std::size_t>(params.customer_max_share *
                                 static_cast<double>(table_size)));

    for (const auto& cluster : clusters) {
      const std::unordered_set<std::uint16_t> in_cluster(cluster.begin(),
                                                         cluster.end());
      bool provider_signal = false;
      bool peer_signal = false;
      std::size_t members = 0;
      std::size_t tiny_members = 0;
      for (const auto& obs : out.neighbors) {
        if (!obs.dominant_tag || !in_cluster.contains(obs.dominant_tag->value())) {
          continue;
        }
        ++members;
        if (obs.prefix_count <= tiny_cutoff) ++tiny_members;
        if (params.has_providers &&
            static_cast<double>(obs.prefix_count) >=
                params.provider_min_share * static_cast<double>(table_size)) {
          provider_signal = true;
        }
        if (top_announcers.contains(obs.neighbor)) peer_signal = true;
      }
      if (members == 0) continue;
      std::optional<RelKind> cls;
      if (provider_signal) {
        cls = RelKind::kProvider;
      } else if (tiny_members * 2 > members) {
        cls = RelKind::kCustomer;
      } else if (peer_signal) {
        cls = RelKind::kPeer;
      }
      if (!cls) continue;
      for (const std::uint16_t v : cluster) semantics.emplace(v, *cls);
    }
  }

  // Step 3: decode each neighbor and compare against the path inference.
  for (auto& obs : out.neighbors) {
    if (obs.dominant_tag) {
      const auto it = semantics.find(obs.dominant_tag->value());
      if (it != semantics.end()) obs.community_rel = it->second;
    }
    if (obs.community_rel && obs.inferred_rel) {
      ++out.comparable;
      if (*obs.community_rel == *obs.inferred_rel) ++out.agree;
    }
  }
  out.percent_verified = util::percent(out.agree, out.comparable);
  return out;
}

}  // namespace bgpolicy::asrel
