#include "asrel/relationships.h"

#include <algorithm>
#include <tuple>

namespace bgpolicy::asrel {

std::string to_string(EdgeType type) {
  switch (type) {
    case EdgeType::kLoProviderOfHi: return "lo-provider-of-hi";
    case EdgeType::kHiProviderOfLo: return "hi-provider-of-lo";
    case EdgeType::kPeer: return "peer";
    case EdgeType::kSibling: return "sibling";
  }
  return "?";
}

std::pair<AsNumber, AsNumber> InferredRelationships::key(AsNumber a,
                                                         AsNumber b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void InferredRelationships::set(AsNumber a, AsNumber b, EdgeType type) {
  edges_[key(a, b)] = type;
}

std::optional<EdgeType> InferredRelationships::edge(AsNumber a,
                                                    AsNumber b) const {
  const auto it = edges_.find(key(a, b));
  if (it == edges_.end()) return std::nullopt;
  return it->second;
}

std::optional<RelKind> InferredRelationships::relationship(
    AsNumber as, AsNumber other) const {
  const auto type = edge(as, other);
  if (!type) return std::nullopt;
  const bool as_is_lo = as < other;
  switch (*type) {
    case EdgeType::kPeer:
    case EdgeType::kSibling:
      return RelKind::kPeer;
    case EdgeType::kLoProviderOfHi:
      // lo is the provider; so from lo's perspective the other is a
      // customer, and vice versa.
      return as_is_lo ? RelKind::kCustomer : RelKind::kProvider;
    case EdgeType::kHiProviderOfLo:
      return as_is_lo ? RelKind::kProvider : RelKind::kCustomer;
  }
  return std::nullopt;
}

void InferredRelationships::for_each(
    const std::function<void(AsNumber, AsNumber, EdgeType)>& fn) const {
  for (const auto& [pair, type] : edges_) fn(pair.first, pair.second, type);
}

topo::AsGraph InferredRelationships::to_graph() const {
  topo::AsGraph graph;
  for (const auto& [pair, type] : edges_) {
    graph.add_as(pair.first);
    graph.add_as(pair.second);
    switch (type) {
      case EdgeType::kLoProviderOfHi:
        graph.add_provider_customer(pair.first, pair.second);
        break;
      case EdgeType::kHiProviderOfLo:
        graph.add_provider_customer(pair.second, pair.first);
        break;
      case EdgeType::kPeer:
      case EdgeType::kSibling:
        graph.add_peer_peer(pair.first, pair.second);
        break;
    }
  }
  return graph;
}

double InferredRelationships::accuracy_against(
    const topo::AsGraph& truth) const {
  std::size_t comparable = 0;
  std::size_t correct = 0;
  for (const auto& [pair, type] : edges_) {
    const auto truth_rel = truth.relationship(pair.first, pair.second);
    if (!truth_rel) continue;
    ++comparable;
    const auto inferred_rel = relationship(pair.first, pair.second);
    if (inferred_rel && *inferred_rel == *truth_rel) ++correct;
  }
  if (comparable == 0) return 0.0;
  return static_cast<double>(correct) / static_cast<double>(comparable);
}

std::string canonical_serialize(const InferredRelationships& rels) {
  std::vector<std::tuple<std::uint32_t, std::uint32_t, EdgeType>> rows;
  rels.for_each([&](AsNumber lo, AsNumber hi, EdgeType type) {
    rows.emplace_back(lo.value(), hi.value(), type);
  });
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& [lo, hi, type] : rows) {
    out += std::to_string(lo);
    out += ' ';
    out += std::to_string(hi);
    out += ' ';
    out += to_string(type);
    out += '\n';
  }
  return out;
}

}  // namespace bgpolicy::asrel
