// AS tier classification in the spirit of Subramanian et al. (INFOCOM
// 2002), the paper's reference [8] ("we classified each AS to its tier
// using the method described in [8]").
//
// Works from inferred relationships only: Tier-1 is a greedy
// densely-peered clique of provider-free high-degree ASes; other transit
// ASes are split by customer-cone size; the rest are stubs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "asrel/relationships.h"

namespace bgpolicy::asrel {

struct TierParams {
  std::size_t tier1_min_degree = 15;
  /// A Tier-1 candidate must peer with at least this fraction of the
  /// already-accepted clique (tables are incomplete; demanding a perfect
  /// clique would be brittle).
  double clique_fraction = 0.5;
  std::size_t tier2_min_cone = 12;
};

struct TierAssignment {
  /// 1 = Tier-1 core, 2 = large transit, 3 = small transit, 4 = stub.
  std::unordered_map<AsNumber, int> level;
  std::vector<AsNumber> tier1;

  [[nodiscard]] int level_of(AsNumber as) const {
    const auto it = level.find(as);
    return it == level.end() ? 4 : it->second;
  }
};

[[nodiscard]] TierAssignment classify_tiers(const InferredRelationships& rels,
                                            const TierParams& params = {});

/// Stable textual serialization: the Tier-1 list in clique order followed
/// by one "as level" line per AS, sorted by AS number.  The
/// byte-comparison hook for the inference determinism test.
[[nodiscard]] std::string canonical_serialize(const TierAssignment& tiers);

}  // namespace bgpolicy::asrel
