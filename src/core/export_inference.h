// Export-policy inference toward providers: the SA-prefix algorithm of
// Fig. 4 (paper Section 5.1).
//
// From the viewpoint of a provider u, a prefix p originated by a direct or
// indirect customer o is a *selectively announced (SA) prefix* when u's
// best route to p is not a customer route — u reaches its own customer
// through a peer or provider, because someone between o and u withheld the
// announcement on the customer side.
//
//   Phase 1: start from u.
//   Phase 2: decide whether o is in u's customer cone (DFS down
//            provider-to-customer edges only).
//   Phase 3: classify u's best route to each of o's prefixes by the
//            relationship of its next-hop AS; non-customer next hop => SA.
//
// The paper's observation that best routes suffice (a customer route, when
// present, wins by typical local preference) is what lets the algorithm
// run on best-only tables; `sa_from_full_rib` cross-checks that claim on a
// full Adj-RIB-In (ablation).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/table.h"
#include "core/relationship_oracle.h"
#include "topology/as_graph.h"

namespace bgpolicy::core {

/// One selectively announced prefix at a provider.
struct SaPrefix {
  bgp::Prefix prefix;
  AsNumber origin;
  AsNumber next_hop;
  RelKind next_hop_rel = RelKind::kPeer;  ///< peer or provider
};

struct SaAnalysis {
  AsNumber provider;
  /// Prefixes in the table originated by (direct or indirect) customers.
  std::size_t customer_prefixes = 0;
  std::size_t sa_count = 0;
  double percent_sa = 0.0;
  std::vector<SaPrefix> sa_prefixes;
};

/// Runs the Fig. 4 algorithm over the provider's table (best routes are
/// used; extra routes per prefix are reduced with the decision process).
/// `annotated` must be an AS graph annotated with (typically inferred)
/// relationships — it supplies the Phase-2 customer-cone DFS; `rels`
/// supplies the Phase-3 next-hop classification.
[[nodiscard]] SaAnalysis infer_sa_prefixes(const bgp::BgpTable& table,
                                           AsNumber provider,
                                           const topo::AsGraph& annotated,
                                           const RelationshipOracle& rels);

/// Per-customer restriction of the SA analysis (paper Table 6): for each
/// origin AS in `customers`, how many of its prefixes are SA with respect
/// to *every* provider in `providers` simultaneously.
struct CustomerSa {
  AsNumber customer;
  std::size_t prefix_count = 0;
  std::size_t sa_count = 0;  ///< SA w.r.t. all listed providers
  double percent_sa = 0.0;
};

[[nodiscard]] std::vector<CustomerSa> sa_per_customer(
    const std::vector<const bgp::BgpTable*>& provider_tables,
    const std::vector<AsNumber>& providers,
    const std::vector<AsNumber>& customers, const topo::AsGraph& annotated,
    const RelationshipOracle& rels);

/// Ablation helper: SA classification using every route in a full
/// Adj-RIB-In (a prefix is non-SA if *any* customer route exists).  With
/// typical preferences this matches infer_sa_prefixes on the same AS.
[[nodiscard]] SaAnalysis sa_from_full_rib(const bgp::BgpTable& full_rib,
                                          AsNumber provider,
                                          const topo::AsGraph& annotated,
                                          const RelationshipOracle& rels);

}  // namespace bgpolicy::core
