#include "core/spec_verify.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "bgp/decision.h"
#include "core/analysis_suite.h"
#include "core/artifact_store.h"
#include "io/artifact_codec.h"
#include "sim/delta_engine.h"
#include "sim/propagation.h"

namespace bgpolicy::core {

std::size_t VerifyReport::failure_count() const {
  return static_cast<std::size_t>(
      std::count_if(results.begin(), results.end(),
                    [](const CheckResult& r) { return !r.passed; }));
}

namespace {

std::string fmt_pct(double value) {
  std::ostringstream out;
  out.precision(4);
  out << value;
  return out.str();
}

std::string path_to_string(std::span<const std::uint32_t> path) {
  std::string out;
  for (const std::uint32_t as : path) {
    if (!out.empty()) out += ' ';
    out += std::to_string(as);
  }
  return out;
}

// ------------------------------------------------------ event timeline --

/// Steps the spec's event script, exposing the world (failed edges +
/// active originations) after the first k events.
///
/// Converged per-origination states are cached across `advance_to` calls:
/// the first query of an origination cold-converges a warm
/// `sim::DeltaState`; later timeline points re-sync it by applying only
/// the edge-set delta between the state's failure world and the current
/// one (sim/delta_engine.h) instead of re-running the full fixpoint.  A
/// withdraw drops the cached state; a re-announce cold-converges afresh.
class Timeline {
 public:
  Timeline(const ScenarioSpec& spec, const GroundTruth& truth)
      : spec_(spec),
        context_(truth.topo.graph, truth.gen.policies),
        engine_(context_, spec.scenario.propagation),
        active_(truth.originations) {}

  /// Advances to the world after `k` events; `k` must be non-decreasing
  /// across calls (the evaluator sorts checks by timeline point).
  void advance_to(std::size_t k) {
    while (applied_ < k && applied_ < spec_.events.size()) {
      apply(spec_.events[applied_]);
      ++applied_;
    }
  }

  /// The winning route for `prefix` at `vantage` in the current world, or
  /// nullopt when unreachable.  Candidates come from every active
  /// origination of the prefix (independent fixpoints; decision-process
  /// tie-break across them — the MOAS approximation).
  [[nodiscard]] std::optional<bgp::Route> best_route(std::uint32_t vantage,
                                                     const bgp::Prefix& prefix) {
    std::vector<bgp::Route> candidates;
    for (const sim::Origination& origination : active_) {
      if (origination.prefix != prefix) continue;
      const sim::DeltaState& state = state_for(origination);
      if (auto route = engine_.route_at(state, util::AsNumber(vantage))) {
        candidates.push_back(std::move(*route));
      }
    }
    if (candidates.empty()) return std::nullopt;
    const auto winner = bgp::select_best(candidates);
    return candidates[winner.value_or(0)];
  }

 private:
  // (network << 8 | length, origin) — the cache key of one origination.
  using StateKey = std::pair<std::uint64_t, std::uint32_t>;

  static StateKey key_of(const sim::Origination& o) {
    return {(static_cast<std::uint64_t>(o.prefix.network()) << 8) |
                o.prefix.length(),
            o.origin.value()};
  }

  /// The cached converged state of `origination`, re-synced to the current
  /// failure world via the edge-set delta.
  const sim::DeltaState& state_for(const sim::Origination& origination) {
    auto& slot = states_[key_of(origination)];
    if (slot == nullptr) {
      slot = std::make_unique<sim::DeltaState>();
      engine_.converge(origination, &failed_, *slot, ws_);
    } else {
      const sim::Perturbation delta =
          sim::Perturbation::edge_delta(slot->failed(), failed_);
      if (!delta.empty()) (void)engine_.apply(*slot, delta, ws_);
    }
    return *slot;
  }

  void apply(const SpecEvent& event) {
    switch (event.kind) {
      case SpecEvent::Kind::kWithdraw: {
        const sim::Origination o{event.prefix, util::AsNumber(event.as_a)};
        std::erase_if(active_, [&](const sim::Origination& a) {
          return a.prefix == o.prefix && a.origin == o.origin;
        });
        states_.erase(key_of(o));
        break;
      }
      case SpecEvent::Kind::kAnnounce: {
        const sim::Origination o{event.prefix, util::AsNumber(event.as_a)};
        if (std::find(active_.begin(), active_.end(), o) == active_.end()) {
          active_.push_back(o);
        }
        break;
      }
      case SpecEvent::Kind::kFailLink:
        failed_.fail(util::AsNumber(event.as_a), util::AsNumber(event.as_b));
        break;
      case SpecEvent::Kind::kRestoreLink:
        failed_.restore(util::AsNumber(event.as_a),
                        util::AsNumber(event.as_b));
        break;
    }
  }

  const ScenarioSpec& spec_;
  sim::FlatSimContext context_;
  sim::DeltaEngine engine_;
  sim::FailedEdges failed_;
  std::vector<sim::Origination> active_;
  std::map<StateKey, std::unique_ptr<sim::DeltaState>> states_;
  sim::DeltaWorkspace ws_;
  std::size_t applied_ = 0;
};

bool is_route_check(const SpecCheck& check) {
  switch (check.kind) {
    case SpecCheck::Kind::kRouteVia:
    case SpecCheck::Kind::kRouteOrigin:
    case SpecCheck::Kind::kRoutePath:
    case SpecCheck::Kind::kUnreachable:
      return true;
    default:
      return false;
  }
}

CheckResult eval_route_check(const SpecCheck& check, Timeline& timeline) {
  CheckResult result{check, false, ""};
  const std::optional<bgp::Route> route =
      timeline.best_route(check.vantage, check.prefix);

  if (check.kind == SpecCheck::Kind::kUnreachable) {
    result.passed = !route.has_value();
    result.detail =
        result.passed
            ? "no route, as asserted"
            : "expected no route, but AS " + std::to_string(check.vantage) +
                  " holds one via " +
                  std::to_string(
                      route->next_hop_as().value_or(route->learned_from)
                          .value());
    return result;
  }
  if (!route) {
    result.detail = "AS " + std::to_string(check.vantage) +
                    " has no route to " + check.prefix.to_string();
    return result;
  }
  switch (check.kind) {
    case SpecCheck::Kind::kRouteVia: {
      const std::uint32_t via =
          route->next_hop_as().value_or(route->learned_from).value();
      result.passed = via == check.expect_as;
      result.detail = "expected via " + std::to_string(check.expect_as) +
                      ", observed via " + std::to_string(via);
      break;
    }
    case SpecCheck::Kind::kRouteOrigin: {
      const std::uint32_t origin = route->origin_as().value();
      result.passed = origin == check.expect_as;
      result.detail = "expected origin " + std::to_string(check.expect_as) +
                      ", observed origin " + std::to_string(origin);
      break;
    }
    case SpecCheck::Kind::kRoutePath: {
      std::vector<std::uint32_t> hops;
      hops.reserve(route->path.length());
      for (const util::AsNumber as : route->path.hops()) {
        hops.push_back(as.value());
      }
      result.passed = hops == check.expect_path;
      result.detail = "expected path [" + path_to_string(check.expect_path) +
                      "], observed [" + path_to_string(hops) + "]";
      break;
    }
    default:
      break;
  }
  return result;
}

// ------------------------------------------------- analysis assertions --

CheckResult eval_bounds(const SpecCheck& check, const char* metric,
                        std::optional<double> observed) {
  CheckResult result{check, false, ""};
  if (!observed) {
    result.detail = std::string(metric) + " unavailable at vantage " +
                    std::to_string(check.vantage) +
                    " (no recorded table, or not a looking glass)";
    return result;
  }
  result.passed = *observed >= check.lo && *observed <= check.hi;
  result.detail = std::string(metric) + " = " + fmt_pct(*observed) +
                  "%, bounds [" + fmt_pct(check.lo) + ", " +
                  fmt_pct(check.hi) + "]";
  return result;
}

CheckResult eval_analysis_check(const SpecCheck& check,
                                Experiment& experiment) {
  const VantageAnalysis* analysis =
      experiment.analyses().find(util::AsNumber(check.vantage));
  std::optional<double> observed;
  const char* metric = "";
  switch (check.kind) {
    case SpecCheck::Kind::kSaPrevalence:
      metric = "SA prevalence";
      if (analysis) observed = analysis->sa.percent_sa;
      break;
    case SpecCheck::Kind::kHomingMultihomed:
      metric = "multihomed share";
      if (analysis) observed = analysis->homing.percent_multihomed;
      break;
    case SpecCheck::Kind::kImportTypical:
      metric = "import typicality";
      if (analysis && analysis->import_typicality) {
        observed = analysis->import_typicality->percent_typical;
      }
      break;
    default:
      break;
  }
  return eval_bounds(check, metric, observed);
}

CheckResult eval_digest_check(const SpecCheck& check, Experiment& experiment) {
  CheckResult result{check, false, ""};
  std::vector<std::uint8_t> bytes;
  switch (check.stage) {
    case Stage::kSynthesize: bytes = io::encode(experiment.truth()); break;
    case Stage::kSimulate: bytes = io::encode(experiment.sim()); break;
    case Stage::kObserve: bytes = io::encode(experiment.observations()); break;
    case Stage::kInfer: bytes = io::encode(experiment.inference()); break;
    case Stage::kAnalyze: bytes = io::encode(experiment.analyses()); break;
  }
  const std::string observed =
      stable_digest_hex(std::span<const std::uint8_t>(bytes));
  result.passed = observed == check.digest;
  result.detail = std::string(to_string(check.stage)) +
                  " digest = " + observed + ", pinned " + check.digest;
  return result;
}

}  // namespace

std::string describe_check(const SpecCheck& check) {
  const auto at_suffix = [&]() -> std::string {
    return check.at_event == SpecCheck::kAtEnd
               ? ""
               : " at " + std::to_string(check.at_event);
  };
  switch (check.kind) {
    case SpecCheck::Kind::kConverged:
      return "converged";
    case SpecCheck::Kind::kRouteVia:
      return "route " + std::to_string(check.vantage) + " " +
             check.prefix.to_string() + " via " +
             std::to_string(check.expect_as) + at_suffix();
    case SpecCheck::Kind::kRouteOrigin:
      return "route " + std::to_string(check.vantage) + " " +
             check.prefix.to_string() + " origin " +
             std::to_string(check.expect_as) + at_suffix();
    case SpecCheck::Kind::kRoutePath:
      return "route " + std::to_string(check.vantage) + " " +
             check.prefix.to_string() + " path " +
             path_to_string(check.expect_path) + at_suffix();
    case SpecCheck::Kind::kUnreachable:
      return "unreachable " + std::to_string(check.vantage) + " " +
             check.prefix.to_string() + at_suffix();
    case SpecCheck::Kind::kSaPrevalence:
      return "sa_prevalence " + std::to_string(check.vantage) + " [" +
             fmt_pct(check.lo) + ", " + fmt_pct(check.hi) + "]";
    case SpecCheck::Kind::kHomingMultihomed:
      return "homing_multihomed " + std::to_string(check.vantage) + " [" +
             fmt_pct(check.lo) + ", " + fmt_pct(check.hi) + "]";
    case SpecCheck::Kind::kImportTypical:
      return "import_typical " + std::to_string(check.vantage) + " [" +
             fmt_pct(check.lo) + ", " + fmt_pct(check.hi) + "]";
    case SpecCheck::Kind::kInferenceAccuracy:
      return "inference_accuracy >= " + fmt_pct(check.lo);
    case SpecCheck::Kind::kDigest:
      return std::string("digest ") + to_string(check.stage) + " " +
             check.digest;
  }
  return "?";
}

VerifyReport run_spec_checks(const ScenarioSpec& spec,
                             Experiment& experiment) {
  VerifyReport report;
  report.source = spec.source;
  report.results.resize(spec.checks.size());

  // Route-level checks are evaluated along the (single, forward-stepping)
  // event timeline, grouped by timeline point; everything else is
  // evaluated directly against the experiment's artifacts.
  std::map<std::size_t, std::vector<std::size_t>> by_point;
  for (std::size_t i = 0; i < spec.checks.size(); ++i) {
    const SpecCheck& check = spec.checks[i];
    if (is_route_check(check)) {
      const std::size_t point = check.at_event == SpecCheck::kAtEnd
                                    ? spec.events.size()
                                    : check.at_event;
      by_point[point].push_back(i);
      continue;
    }
    CheckResult result{check, false, ""};
    switch (check.kind) {
      case SpecCheck::Kind::kConverged: {
        const std::size_t unconverged = experiment.sim().sim.unconverged_prefixes;
        result.passed = unconverged == 0;
        result.detail = result.passed
                            ? "all prefixes converged"
                            : std::to_string(unconverged) +
                                  " prefix(es) failed to converge";
        break;
      }
      case SpecCheck::Kind::kSaPrevalence:
      case SpecCheck::Kind::kHomingMultihomed:
      case SpecCheck::Kind::kImportTypical:
        result = eval_analysis_check(check, experiment);
        break;
      case SpecCheck::Kind::kInferenceAccuracy: {
        const double accuracy =
            experiment.inference().inferred.accuracy_against(
                experiment.truth().topo.graph) *
            100.0;
        result.passed = accuracy >= check.lo;
        result.detail = "relationship accuracy = " + fmt_pct(accuracy) +
                        "%, floor " + fmt_pct(check.lo) + "%";
        break;
      }
      case SpecCheck::Kind::kDigest:
        result = eval_digest_check(check, experiment);
        break;
      default:
        break;
    }
    report.results[i] = std::move(result);
  }

  if (!by_point.empty()) {
    Timeline timeline(spec, experiment.truth());
    for (const auto& [point, indices] : by_point) {
      timeline.advance_to(point);
      for (const std::size_t i : indices) {
        report.results[i] = eval_route_check(spec.checks[i], timeline);
      }
    }
  }
  return report;
}

}  // namespace bgpolicy::core
