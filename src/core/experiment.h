// Staged experiment API: the paper's workflow as composable pipeline
// stages with value-typed, independently reusable artifacts.
//
//   Synthesize ──► Simulate ──► Observe ──► Infer ──► Analyze
//   GroundTruth    SimArtifact  Observations InferenceProducts AnalysisSuite
//
// Each stage is a pure function of the scenario plus its upstream
// artifact(s); each artifact is an immutable value the next stage consumes
// or a caller swaps independently — e.g. re-run Infer with different
// GaoParams against cached Observations, or fan many Analyze runs off one
// SimArtifact.  `Experiment` drives the stages lazily with memoized
// artifacts and stage-run counters; `sweep` runs many scenario/parameter
// variants sharded across the util/parallel pool with stage-level caching
// keyed by the upstream-relevant scenario parameters and a deterministic
// request-order merge.
//
// Determinism contract (docs/ARCHITECTURE.md): every stage honors the
// shared `threads` knob (0 = hardware concurrency, 1 = the exact
// sequential seed program) with byte-identical artifacts at any value, so
// caching and sweep sharding never change any product.
// `core::run_pipeline` remains as a thin compatibility wrapper that runs
// the stages and moves their artifacts into the flat `Pipeline` struct.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis_suite.h"
#include "core/pipeline.h"
#include "util/parallel.h"

namespace bgpolicy::core {

class ArtifactStore;  // core/artifact_store.h

// ---------------------------------------------------------------- stages --

enum class Stage : std::uint8_t {
  kSynthesize = 0,
  kSimulate = 1,
  kObserve = 2,
  kInfer = 3,
  kAnalyze = 4,
};

[[nodiscard]] const char* to_string(Stage stage);

/// One span of a task-graph node's execution — bench/diagnostic
/// instrumentation (bench_pipeline_stages computes stage-overlap windows
/// from these).  Times are seconds since StageTrace::origin.
struct TraceSpan {
  std::string name;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

/// Thread-safe trace sink an Experiment writes node spans into when
/// RunOptions::trace points at one.  Purely diagnostic: wall-clock spans
/// are (like all timings) outside the determinism contract.
struct StageTrace {
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  std::mutex mutex;
  std::vector<TraceSpan> spans;

  void record(std::string name, std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end);
};

/// Unifies the knobs every stage runner takes: the worker-thread count and
/// how far down the stage chain to run.
struct RunOptions {
  /// Overrides scenario.propagation.threads for every stage when set
  /// (same semantics: 0 = hardware concurrency, 1 = sequential).
  std::optional<std::size_t> threads;
  /// Inference parameters for the Infer stage; GaoParams{} (with the
  /// effective thread count) when unset.
  std::optional<asrel::GaoParams> gao;
  /// Vantages for the Analyze stage; every recorded vantage when empty.
  std::vector<AsNumber> analysis_vantages;
  /// Last stage Experiment::run() executes.
  Stage until = Stage::kAnalyze;
  /// On-disk artifact cache (core/artifact_store.h), non-owning; must
  /// outlive the experiment.  When set, every stage probes the store
  /// before computing (a hit bumps loads(), not counters()) and persists
  /// its artifact after computing.  Keys chain scenario_cache_key, the
  /// upstream artifact digests, and stage parameters — never worker-thread
  /// knobs, preserving the byte-identical-at-any-thread-count contract —
  /// so a second process over the same store resumes instead of re-running
  /// (docs/ARCHITECTURE.md "Artifact store").
  ArtifactStore* store = nullptr;
  /// Originations per Simulate chunk task on the task-graph path
  /// (0 = auto, aiming at ~32 near-equal chunks).  Chunk boundaries
  /// are deterministic in (origination count, this knob) alone — never in
  /// thread counts — so a killed run resumes mid-Simulate at any thread
  /// setting; the merged SimArtifact is byte-identical at every value.
  std::size_t sim_chunk_prefixes = 0;
  /// Optional node-span trace sink (non-owning; must outlive the
  /// experiment).  See StageTrace.
  StageTrace* trace = nullptr;
};

// -------------------------------------------------------------- artifacts --

/// Synthesize: the ground truth the paper could not see.
struct GroundTruth {
  topo::Topology topo;
  topo::PrefixPlan plan;
  sim::GeneratedPolicies gen;
  std::vector<sim::Origination> originations;
};

/// Simulate: converged vantage tables plus the spec that recorded them.
struct SimArtifact {
  sim::VantageSpec vantage;
  sim::SimResult sim;
};

/// One persisted slice of the Simulate stage: the vantage recordings of
/// originations [begin, end) out of `total`.  Chunks are the unit the
/// staged task graph schedules in parallel and the artifact store persists
/// individually, so a killed run resumes *mid-Simulate* — a restarted
/// process recomputes only the chunks that never hit disk
/// (sim::simulate_chunk computes one, sim::merge_sim_chunk replays them in
/// range order into a byte-identical SimResult).
struct SimChunk {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t total = 0;
  sim::SimResult partial;
};

/// Deterministic Simulate chunk boundaries for `n` originations:
/// contiguous ranges of `chunk_prefixes` originations each (0 = auto: n
/// split toward ~32 near-equal chunks).  Depends only on (n,
/// chunk_prefixes) — never on thread counts — so chunk store keys are
/// stable across resume runs at any threading.
[[nodiscard]] std::vector<util::IndexRange> sim_chunk_ranges(
    std::size_t n, std::size_t chunk_prefixes);

/// Store key of one Simulate chunk: scenario identity + GroundTruth
/// digest + the chunk's range within the origination list.  Exposed so
/// tests and tools can reconstruct (or erase) the exact mid-stage resume
/// state an interrupted run leaves behind.
[[nodiscard]] std::string sim_chunk_store_key(std::string_view scenario_key,
                                              std::string_view truth_digest,
                                              util::IndexRange range,
                                              std::size_t total);

/// Observe: everything the paper *had* — the observed path set (cleaned
/// and ready for relationship inference), the path index over it, and the
/// registry — all parameter-free w.r.t. inference, so one Observations
/// serves any number of Infer variants.
struct Observations {
  /// Looking glasses in ascending AS order: the canonical ingest order.
  std::vector<AsNumber> lg_order;
  std::string irr_text;
  std::vector<rpsl::AutNum> irr_objects;
  /// Ingested path multiset (collector first, then each looking glass in
  /// lg_order with the vantage AS prepended); `infer(params)` on it is
  /// const and reusable.
  asrel::GaoInference observed_paths;
  PathIndex paths;

  /// The AutNum registered for `as`, if the IRR has one.
  [[nodiscard]] const rpsl::AutNum* irr_for(AsNumber as) const;
};

/// Infer: the relationship products of Section 3.
struct InferenceProducts {
  asrel::InferredRelationships inferred;
  topo::AsGraph inferred_graph;
  asrel::TierAssignment tiers;
};

// (Analyze's artifact is core::AnalysisSuite, analysis_suite.h.)

// ---------------------------------------------------------- stage runners --
// Pure, freestanding stage functions — the composable layer `Experiment`
// and `run_pipeline` are assembled from.  `threads` follows the shared
// knob semantics; every output is byte-identical at any value.

[[nodiscard]] GroundTruth synthesize(const Scenario& scenario);

/// The canonical vantage configuration: collector peers are the Tier-1s
/// plus the scenario's leading Tier-2/Tier-3 ASes, looking glasses and
/// best-only views filtered to ASes present in the topology.
[[nodiscard]] sim::VantageSpec derive_vantage(const Scenario& scenario,
                                              const topo::Topology& topo);

[[nodiscard]] SimArtifact simulate(const Scenario& scenario,
                                   const GroundTruth& truth,
                                   std::size_t threads,
                                   const util::Executor* executor = nullptr);

[[nodiscard]] Observations observe(const Scenario& scenario,
                                   const GroundTruth& truth,
                                   const SimArtifact& sim,
                                   std::size_t threads,
                                   const util::Executor* executor = nullptr);

[[nodiscard]] InferenceProducts infer_relationships(
    const Observations& observations, const asrel::GaoParams& params,
    const util::Executor* executor = nullptr);

/// Analyze is run_analysis_suite (analysis_suite.h) over a view assembled
/// from the artifacts:
[[nodiscard]] ExperimentView make_view(const SimArtifact& sim,
                                       const Observations& observations,
                                       const InferenceProducts& inference);

// -------------------------------------------------------------- experiment --

/// How many times each stage actually executed — the cache-verification
/// hook for artifact-reuse tests and sweeps.
struct StageCounters {
  std::size_t synthesize = 0;
  std::size_t simulate = 0;
  std::size_t observe = 0;
  std::size_t infer = 0;
  std::size_t analyze = 0;
};

/// The Simulate-chunk ledger of one Experiment: how many chunk tasks the
/// task-graph path scheduled, and of those how many were computed vs.
/// served from the store — the mid-Simulate resume assertion hook
/// (tests/core/artifact_store_test.cc).  All zero when Simulate was served
/// whole (full-artifact store hit) or ran on the sequential seed path.
struct SimChunkLedger {
  std::size_t total = 0;
  std::size_t computed = 0;
  std::size_t loaded = 0;
};

/// Lazily-staged experiment with memoized artifacts.  Accessors run the
/// requested stage (and everything upstream of it) on first use; re-running
/// a downstream stage with new parameters reuses every cached upstream
/// artifact.  Not thread-safe for concurrent mutation; a fully-run
/// Experiment is safe to read from many threads.
class Experiment {
 public:
  explicit Experiment(Scenario scenario, RunOptions options = {});

  /// Runs stages up to options.until (run()) or `until` (run(until)).
  void run() { run(options_.until); }
  void run(Stage until);

  // Artifact accessors; each runs its stage (and upstream) if not cached.
  const GroundTruth& truth();
  const SimArtifact& sim();
  const Observations& observations();
  const InferenceProducts& inference();
  const AnalysisSuite& analyses();

  // Read-only accessors for already-materialized artifacts (throws
  // std::logic_error when the stage has not run).
  [[nodiscard]] const GroundTruth& truth() const;
  [[nodiscard]] const SimArtifact& sim() const;
  [[nodiscard]] const Observations& observations() const;
  [[nodiscard]] const InferenceProducts& inference() const;
  [[nodiscard]] const AnalysisSuite& analyses() const;

  /// Re-runs Infer with new parameters against the cached Observations
  /// (upstream stages are NOT re-run); drops any cached Analyze artifact.
  const InferenceProducts& rerun_infer(const asrel::GaoParams& params);

  /// Swaps in an externally built artifact (e.g. deserialized tables or a
  /// modified registry) and invalidates everything downstream of it.
  void set_observations(Observations observations);

  /// Drops the artifact of `stage` and every stage after it; the next
  /// accessor re-runs them.
  void invalidate(Stage from);

  /// Handles into a task graph the upstream stages were appended to:
  /// `sim_done` / `observe_done` are the nodes after which sim() /
  /// observations() are materialized (empty when the artifact already
  /// existed, so nothing was appended for it).
  struct UpstreamNodes {
    std::optional<util::TaskGraph::NodeId> sim_done;
    std::optional<util::TaskGraph::NodeId> observe_done;
  };

  /// Appends this experiment's not-yet-materialized upstream stages
  /// (Synthesize/Simulate/Observe, clamped by `until`) to `graph` as task
  /// nodes with sub-stage granularity: Simulate fans out into per-
  /// prefix-shard chunk tasks (individually persisted when a store is
  /// attached — the mid-Simulate resume unit), and Observe splits into
  /// IRR-generation → IRR-parsing and path-ingest / path-index nodes that
  /// overlap with each other and with late Simulate chunks.  Stage
  /// internals run sequentially inside their nodes (the graph is the
  /// parallelism), which never changes artifact bytes.  The orchestration
  /// hook `core::sweep` uses to interleave many experiments' graphs on one
  /// executor; `this` must outlive the graph run, and the graph must run
  /// to completion before any artifact accessor is used.
  UpstreamNodes add_stage_nodes(util::TaskGraph& graph, Stage until);

  [[nodiscard]] const Scenario& scenario() const { return scenario_; }
  [[nodiscard]] const RunOptions& options() const { return options_; }
  [[nodiscard]] const StageCounters& counters() const { return counters_; }
  /// The Simulate-chunk ledger of the task-graph path (see SimChunkLedger).
  [[nodiscard]] const SimChunkLedger& sim_chunks() const {
    return sim_chunks_;
  }
  /// How many times each stage's artifact was loaded from the store
  /// instead of computed (always zero without a store).  counters() +
  /// loads() together account for every stage materialization.
  [[nodiscard]] const StageCounters& loads() const { return loads_; }
  /// Content digest of a stage's encoded artifact — the value downstream
  /// cache keys chain on.  Empty when the stage has not materialized with
  /// a store attached.
  [[nodiscard]] const std::string& stage_digest(Stage stage) const {
    return digests_[static_cast<std::size_t>(stage)];
  }
  /// The effective worker-thread knob every stage runs with.
  [[nodiscard]] std::size_t threads() const {
    return scenario_.propagation.threads;
  }

  /// Non-owning analysis view over the Simulate/Observe/Infer artifacts
  /// (runs them if needed); `this` must outlive the view.
  [[nodiscard]] ExperimentView view();

  /// The staged artifacts of an experiment, moved out wholesale for a
  /// long-lived consumer — the serving layer's snapshot builder
  /// (serve/snapshot.h) takes a fully-run experiment's products without
  /// copying multi-hundred-MB tables.  Each slot is set iff its stage had
  /// materialized; the experiment is left empty (every stage invalidated).
  struct StageArtifacts {
    std::optional<GroundTruth> truth;
    std::optional<SimArtifact> sim;
    std::optional<Observations> observations;
    std::optional<InferenceProducts> inference;
    std::optional<AnalysisSuite> analyses;
  };
  [[nodiscard]] StageArtifacts take_artifacts() &&;

  /// Assembles the flat compatibility struct from the staged artifacts,
  /// running stages up to Infer if needed.  `to_pipeline` copies;
  /// `into_pipeline` moves the artifacts out and leaves the experiment
  /// empty (only Synthesize..Infer artifacts transfer; a cached
  /// AnalysisSuite is discarded).
  [[nodiscard]] Pipeline to_pipeline();
  [[nodiscard]] Pipeline into_pipeline() &&;

 private:
  struct UpstreamScratch;  // per-graph-run staging state (experiment.cc)

  [[nodiscard]] asrel::GaoParams effective_gao_params() const;
  /// The experiment's long-lived worker pool, created once (lazily) and
  /// shared by every stage — the task graph schedules on it and Infer/
  /// Analyze shard their internals over it; stage internals never spin
  /// private pools.
  [[nodiscard]] const util::Executor& executor();
  /// Store-key material for a stage (empty store handled by callers); see
  /// RunOptions::store for the key discipline.
  [[nodiscard]] std::string stage_key_material(
      Stage stage, const asrel::GaoParams& gao) const;
  [[nodiscard]] std::string& digest_slot(Stage stage) {
    return digests_[static_cast<std::size_t>(stage)];
  }
  /// Materializes upstream stages (≤ kObserve) through a task graph on
  /// this experiment's executor; with a sequential executor and no store,
  /// falls back to the direct stage calls (the exact seed program).
  void run_upstream(Stage until);
  /// The direct (pre-task-graph) stage path; byte-identical to the graph.
  void run_upstream_serial(Stage until);
  /// The Synthesize probe-or-compute-and-persist body (shared by both
  /// paths; Synthesize has no internal parallelism to lose).
  void materialize_truth();
  /// Probes the store for the whole Observations artifact (decoding it, so
  /// corruption stays a miss); requires upstream digests to be known.
  void probe_observe(UpstreamScratch& scratch);
  /// The Simulate task-graph body: probe/compute/persist chunk tasks
  /// nested-submitted into `graph`, merged in range order.
  void simulate_chunked(util::TaskGraph& graph);
  /// Wraps a node body with StageTrace recording when enabled.
  template <typename Fn>
  void traced(const char* name, Fn&& fn);

  Scenario scenario_;
  RunOptions options_;
  StageCounters counters_;
  StageCounters loads_;
  SimChunkLedger sim_chunks_;
  std::array<std::string, 5> digests_;
  std::unique_ptr<util::Executor> executor_;
  std::optional<GroundTruth> truth_;
  std::optional<SimArtifact> sim_;
  std::optional<Observations> observations_;
  std::optional<InferenceProducts> inference_;
  std::optional<AnalysisSuite> analyses_;
};

// ------------------------------------------------------------------ sweep --

/// One scenario/parameter variant of a sweep.
struct SweepVariant {
  std::string label;
  Scenario scenario;
  /// Per-variant inference/analysis knobs.  `options.threads` is ignored
  /// inside sweeps (stage-internal threading is forced to 1; the sweep
  /// `threads` argument is the parallelism knob) and `options.until` is
  /// always treated as kAnalyze.
  RunOptions options;
};

/// One finished variant, in request order.
struct SweepRun {
  std::string label;
  /// Upstream cache key this variant resolved to (diagnostics; equal keys
  /// shared one Synthesize/Simulate/Observe execution).
  std::string scenario_key;
  /// Index into SweepReport::upstream of the shared artifacts this run
  /// consumed.
  std::size_t scenario_index = 0;
  InferenceProducts inference;
  AnalysisSuite analyses;
  /// Store keys this run's Infer/Analyze artifacts live under (empty when
  /// the sweep ran without a store) — the handle for invalidating one
  /// variant (ArtifactStore::erase) without touching its siblings.  The
  /// infer key excludes the vantage list, so variants differing only in
  /// analysis vantages share one InferenceProducts entry.
  std::string store_infer_key;
  std::string store_analyze_key;
  /// Which artifacts were served from the store rather than computed
  /// (each probes independently: an erased analyze entry recomputes only
  /// Analyze against the still-cached inference).
  bool inference_loaded = false;
  bool analyses_loaded = false;
  /// A full resume hit: nothing was computed for this variant.
  [[nodiscard]] bool loaded_from_store() const {
    return inference_loaded && analyses_loaded;
  }
  /// Position in the sweep's *completion* stream: variant results finish
  /// as their graph nodes complete (no all-variants barrier), and this
  /// records the order they streamed in.  Diagnostic only — like
  /// wall-clock it is outside the determinism contract (at threads == 1
  /// it equals the request order; under parallelism it varies run to
  /// run).  The report itself is still merged in request order.
  std::size_t completion_index = 0;
};

struct SweepReport {
  /// One run per variant, merged in request order.
  std::vector<SweepRun> runs;
  /// The shared upstream experiments (run through Observe), one per
  /// distinct scenario in first-appearance order — runs reference them via
  /// scenario_index, and callers can read ground truth / simulation
  /// artifacts from them (e.g. to score inference accuracy).
  std::vector<std::unique_ptr<Experiment>> upstream;
  /// Actual stage executions across the whole sweep: synthesize/simulate/
  /// observe count distinct upstream scenarios, infer/analyze count
  /// variants — the artifact-reuse ledger.
  StageCounters counters;
  /// Stage artifacts served from the store instead of executing (always
  /// zero without a store): the cross-process resume ledger.  For every
  /// stage, counters + loads equals what an uncached sweep would execute.
  StageCounters loads;
  std::size_t distinct_scenarios = 0;
};

/// The upstream cache identity of a scenario: every parameter that feeds
/// the Synthesize/Simulate/Observe artifacts, serialized stably.  Worker
/// thread counts are deliberately excluded (they never change artifact
/// bytes), so variants differing only in threading share upstream work.
[[nodiscard]] std::string scenario_cache_key(const Scenario& scenario);

/// Runs every variant's full stage chain with upstream artifacts built
/// once per distinct scenario_cache_key and shared across variants.
/// Every variant's stages are submitted into **one task graph on one
/// executor** (util::TaskGraph): upstream scenarios build concurrently
/// with sub-stage granularity (Simulate chunk tasks, overlapped Observe
/// nodes), each variant's Infer/Analyze nodes start the moment their
/// group's upstream nodes finish (no per-variant or per-phase barrier),
/// and results stream into their request-order slots as they complete
/// (SweepRun::completion_index records the streaming order).  The merged
/// report is byte-identical at any `threads` (0 = hardware concurrency).
///
/// With a `store`, the sweep resumes across processes: upstream stages and
/// per-variant Infer/Analyze artifacts are probed before computing and
/// persisted after, so a killed sweep re-run against the same store loads
/// what finished and recomputes only the missing variants — with products
/// byte-identical to an uninterrupted run (the store never changes bytes,
/// only who computes them).  `store` is non-owning and must outlive the
/// call.
[[nodiscard]] SweepReport sweep(std::span<const SweepVariant> variants,
                                std::size_t threads = 0,
                                ArtifactStore* store = nullptr);

}  // namespace bgpolicy::core
