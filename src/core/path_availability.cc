#include "core/path_availability.h"

#include <unordered_map>

namespace bgpolicy::core {

PathAvailability analyze_path_availability(const bgp::BgpTable& full_rib,
                                           AsNumber vantage,
                                           const topo::AsGraph& annotated) {
  PathAvailability out;
  out.vantage = vantage;

  // Cone-membership cache per (neighbor, origin).
  std::unordered_map<std::uint64_t, bool> cone_cache;
  const auto in_cone = [&](AsNumber root, AsNumber origin) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(root.value()) << 32) | origin.value();
    const auto it = cone_cache.find(key);
    if (it != cone_cache.end()) return it->second;
    const bool result = annotated.contains(root) &&
                        annotated.in_customer_cone(root, origin);
    cone_cache.emplace(key, result);
    return result;
  };

  std::size_t total_available = 0;
  std::size_t total_potential = 0;

  full_rib.for_each([&](const bgp::Prefix& prefix,
                        std::span<const bgp::Route> routes) {
    const bgp::Route* best = full_rib.best(prefix);
    if (best == nullptr) return;
    const AsNumber origin = best->origin_as();
    if (origin == vantage) return;
    // Scope: customer prefixes, as in the SA analysis (Phase 2).
    if (!in_cone(vantage, origin)) return;
    ++out.customer_prefixes;

    const std::size_t available = routes.size();
    total_available += available;
    out.available_histogram.add(static_cast<std::int64_t>(available));
    if (available == 1) ++out.single_path_prefixes;

    std::size_t potential = 0;
    for (const auto& n : annotated.neighbors(vantage)) {
      switch (n.kind) {
        case RelKind::kCustomer:
          if (n.as == origin || in_cone(n.as, origin)) ++potential;
          break;
        case RelKind::kPeer:
          if (n.as == origin || in_cone(n.as, origin)) ++potential;
          break;
        case RelKind::kProvider:
          // A provider can always supply *some* route to the prefix.
          ++potential;
          break;
      }
    }
    total_potential += potential;
  });

  if (out.customer_prefixes > 0) {
    out.mean_available = static_cast<double>(total_available) /
                         static_cast<double>(out.customer_prefixes);
    out.mean_potential = static_cast<double>(total_potential) /
                         static_cast<double>(out.customer_prefixes);
  }
  if (out.mean_potential > 0) {
    out.availability_ratio = out.mean_available / out.mean_potential;
  }
  return out;
}

}  // namespace bgpolicy::core
