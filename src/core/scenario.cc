#include "core/scenario.h"

#include "util/rng.h"

namespace bgpolicy::core {

namespace {

// The paper's vantage sets (Tables 1, 4, 5).
const std::vector<std::uint32_t> kLookingGlass = {
    1, 3549, 7018,                      // Tier-1 looking glasses
    5511, 7474, 6762,                   // Tier-2
    577, 6539, 6667, 2578, 513, 559,    // Tier-3 / regional
    12359, 12859, 8262};

const std::vector<std::uint32_t> kBestOnly = {
    701, 1239, 2914, 6453, 209, 6461, 3561, 6538};

const std::vector<std::uint32_t> kVerification = {
    1, 577, 3549, 5511, 6539, 6667, 7018, 12359, 12859};

}  // namespace

Scenario Scenario::internet2002(std::uint64_t seed) {
  Scenario s;
  s.name = "internet2002";
  s.topo_params.seed = seed;
  s.topo_params.tier1_count = 10;
  s.topo_params.tier2_count = 40;
  s.topo_params.tier3_count = 160;
  s.topo_params.stub_count = 1400;

  s.alloc_params.seed = seed ^ 0xA11C;
  s.policy_params.seed = seed ^ 0x90C1;
  s.irr_params.seed = seed ^ 0x1212;

  // Full propagation is the scenario's hot path; shard it across all
  // hardware threads (output is byte-identical at any thread count).
  s.propagation.threads = 0;

  s.looking_glass = kLookingGlass;
  s.best_only = kBestOnly;
  s.verification_ases = kVerification;
  for (const std::uint32_t as : kVerification) {
    s.policy_params.force_tagging.emplace_back(as);
  }
  return s;
}

Scenario Scenario::small(std::uint64_t seed) {
  Scenario s;
  s.name = "small";
  s.topo_params.seed = seed;
  s.topo_params.tier1_count = 5;
  s.topo_params.tier2_count = 12;
  s.topo_params.tier3_count = 40;
  s.topo_params.stub_count = 180;

  s.alloc_params.seed = seed ^ 0xA11C;
  s.alloc_params.max_stub_prefixes = 8;
  s.policy_params.seed = seed ^ 0x90C1;
  s.irr_params.seed = seed ^ 0x1212;
  s.propagation.threads = 0;

  s.looking_glass = {1, 3549, 7018, 5511, 577, 6667, 12859};
  s.best_only = {701, 1239};
  s.verification_ases = {1, 3549, 7018, 5511, 12859};
  for (const std::uint32_t as : s.verification_ases) {
    s.policy_params.force_tagging.emplace_back(as);
  }
  s.collector_tier2_peers = 8;
  s.collector_tier3_peers = 4;
  return s;
}

std::string region_of(util::AsNumber as) {
  std::uint64_t state = as.value() * 0x7E57ULL + 13;
  const std::uint64_t roll = util::splitmix64(state) % 80;
  if (roll < 42) return "NA";
  if (roll < 75) return "Eu";
  if (roll < 78) return "Au";
  return "As";
}

}  // namespace bgpolicy::core
