// Consistency of local preference with next-hop AS (paper Section 4.2,
// Fig. 2).
//
// For each next-hop AS in a table, find its modal local-preference value;
// a route is "next-hop keyed" when its preference equals the mode for its
// neighbor.  The reported percentage is the share of routes that are
// next-hop keyed — near 100% for ASes that configure per-neighbor, lower
// for ASes with per-prefix traffic engineering.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/table.h"
#include "util/ids.h"

namespace bgpolicy::core {

struct NextHopConsistency {
  util::AsNumber vantage;
  std::size_t total_routes = 0;
  std::size_t consistent_routes = 0;
  double percent_consistent = 0.0;
  /// Modal local preference per next-hop AS.
  std::unordered_map<util::AsNumber, std::uint32_t> modal_pref;
};

[[nodiscard]] NextHopConsistency analyze_nexthop_consistency(
    const bgp::BgpTable& table);

}  // namespace bgpolicy::core
