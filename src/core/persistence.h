// Persistence of SA prefixes over time (paper Section 5.1.4, Figs. 6-7).
//
// Drives the churn simulator for a number of steps (days or hours), tracks
// the SA status of every customer prefix at a watched provider per step,
// and produces (a) the Fig. 6 time series of total vs SA prefixes and
// (b) the Fig. 7 uptime histograms splitting ever-SA prefixes into
// "remained SA whenever present" vs "shifted from SA to non-SA".
//
// Concurrency model: churn stepping is inherently sequential (each step
// mutates the simulator), so the driver records one compact observation
// list per step while stepping, then shards the per-snapshot SA analysis
// across `threads` workers and merges snapshots in step order — the same
// shard-and-merge contract as every other parallel stage, so the study is
// byte-identical at any thread count and `threads = 1` reproduces the
// sequential seed program exactly.
#pragma once

#include <string>
#include <vector>

#include "core/relationship_oracle.h"
#include "sim/churn.h"
#include "topology/as_graph.h"

namespace bgpolicy::core {

struct Snapshot {
  std::size_t step = 0;
  std::size_t total_prefixes = 0;     ///< all prefixes in the watched table
  std::size_t customer_prefixes = 0;  ///< originated inside the customer cone
  std::size_t sa_prefixes = 0;
};

struct UptimeBucket {
  std::size_t uptime = 0;        ///< steps the prefix was present
  std::size_t remaining_sa = 0;  ///< SA in every step it was present
  std::size_t shifted = 0;       ///< SA in some steps, not in others
};

struct PersistenceStudy {
  AsNumber provider;
  std::vector<Snapshot> series;
  std::vector<UptimeBucket> uptime_histogram;  ///< sorted by uptime
  std::size_t ever_sa = 0;
  std::size_t shifted_total = 0;
  double percent_shifted = 0.0;  ///< the paper's "about one sixth"
};

/// Runs `steps` churn steps after the simulator's initial propagation
/// (run_initial is called here; pass a freshly constructed simulator).
/// `threads` shards the per-snapshot SA analysis over collected snapshots
/// (0 = hardware concurrency, 1 = sequential); churn stepping itself stays
/// sequential, and the study is identical at any thread count.  One
/// executor — the caller's, or a single one created here from `threads` —
/// is shared between churn re-propagation and the snapshot analyses
/// (churn.set_executor), so the study never spins nested pools.
[[nodiscard]] PersistenceStudy run_persistence_study(
    sim::ChurnSimulator& churn, AsNumber provider,
    const topo::AsGraph& annotated, const RelationshipOracle& rels,
    std::size_t steps, std::size_t threads = 1,
    const util::Executor* executor = nullptr);

/// Stable textual serialization of every counter in the study, in step /
/// uptime order — the byte-comparison hook for the persistence-sharding
/// determinism test.
[[nodiscard]] std::string canonical_serialize(const PersistenceStudy& study);

}  // namespace bgpolicy::core
