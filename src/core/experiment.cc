#include "core/experiment.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/artifact_store.h"
#include "io/artifact_codec.h"
#include "rpsl/generator.h"
#include "rpsl/parser.h"
#include "util/parallel.h"

namespace bgpolicy::core {

void StageTrace::record(std::string name,
                        std::chrono::steady_clock::time_point start,
                        std::chrono::steady_clock::time_point end) {
  const std::lock_guard<std::mutex> lock(mutex);
  spans.push_back({std::move(name),
                   std::chrono::duration<double>(start - origin).count(),
                   std::chrono::duration<double>(end - origin).count()});
}

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kSynthesize: return "synthesize";
    case Stage::kSimulate: return "simulate";
    case Stage::kObserve: return "observe";
    case Stage::kInfer: return "infer";
    case Stage::kAnalyze: return "analyze";
  }
  return "?";
}

// ------------------------------------------------------------ key helpers --

namespace {

/// Appends one key=value field; doubles are emitted as exact bit patterns
/// so near-equal parameters never alias to one cache entry.
void field(std::string& key, const char* name, double value) {
  key += name;
  key += '=';
  key += std::to_string(std::bit_cast<std::uint64_t>(value));
  key += ';';
}

void field(std::string& key, const char* name, std::uint64_t value) {
  key += name;
  key += '=';
  key += std::to_string(value);
  key += ';';
}

void field(std::string& key, const char* name,
           const std::vector<std::uint32_t>& values) {
  key += name;
  key += '=';
  for (const std::uint32_t v : values) {
    key += std::to_string(v);
    key += ',';
  }
  key += ';';
}

/// The Infer-stage parameter identity: every GaoParams knob that can
/// change the classification.  `threads` is deliberately excluded
/// (products are byte-identical at any thread count).
std::string gao_params_key(const asrel::GaoParams& params) {
  std::string key;
  field(key, "g.ratio", params.peer_degree_ratio);
  field(key, "g.sibling", params.sibling_balance);
  field(key, "g.peers", std::uint64_t{params.detect_peers});
  field(key, "g.clique", std::uint64_t{params.detect_clique});
  field(key, "g.clique_frac", params.clique_degree_fraction);
  field(key, "g.share", params.peer_candidate_min_share);
  return key;
}

void vantage_field(std::string& key, std::span<const AsNumber> vantages) {
  key += "vantages=";
  for (const AsNumber as : vantages) {
    key += std::to_string(as.value());
    key += ',';
  }
  key += ';';
}

/// Every artifact key starts with the codec version, so a codec bump
/// retires the whole cache at the key level too (stale entries would be
/// rejected by the header check anyway — this just avoids probing them).
constexpr const char* kKeyPrefix = "bgpolicy-artifact/v1|";

/// The probe-or-compute-and-persist discipline every stage runs when a
/// store is attached.  A load failure of any flavor — missing file,
/// truncation, corruption, codec-version mismatch — is a miss: `compute`
/// runs and its artifact replaces the bad entry.  `digest_out` receives
/// the content digest of the encoded artifact (what downstream keys chain
/// on); `loaded` reports whether the store served the artifact.
template <typename T, typename DecodeFn, typename ComputeFn>
T stage_artifact(const ArtifactStore* store, const std::string& key,
                 std::string& digest_out, bool& loaded, DecodeFn&& decode,
                 ComputeFn&& compute) {
  if (store != nullptr) {
    if (const auto bytes = store->load(key)) {
      try {
        T artifact = decode(std::span<const std::uint8_t>(*bytes));
        digest_out = stable_digest_hex(std::span<const std::uint8_t>(*bytes));
        loaded = true;
        return artifact;
      } catch (const std::invalid_argument&) {
        // Corrupted, truncated, or version-mismatched: a miss, never an
        // error (artifact_codec.h).
      }
    }
  }
  T artifact = compute();
  loaded = false;
  if (store != nullptr) {
    const std::vector<std::uint8_t> bytes = io::encode(artifact);
    digest_out = stable_digest_hex(std::span<const std::uint8_t>(bytes));
    store->put(key, bytes);
  } else {
    digest_out.clear();
  }
  return artifact;
}

}  // namespace

// ---------------------------------------------------------- stage runners --

namespace {

[[noreturn]] void scenario_error(const Scenario& scenario,
                                 const std::string& what) {
  throw std::invalid_argument("scenario '" + scenario.name + "': " + what);
}

/// Builds the Topology for an explicit world: ASes in declaration order,
/// edges in declaration order (AsGraph::add_* validate endpoints and
/// duplicates), tier lists from the declared tiers.
topo::Topology build_explicit_topology(const Scenario& scenario) {
  const ExplicitWorld& world = *scenario.explicit_world;
  if (world.ases.empty()) scenario_error(scenario, "explicit world has no ASes");
  topo::Topology topo;
  for (const ExplicitWorld::As& as : world.ases) {
    const AsNumber number(as.number);
    if (topo.graph.contains(number)) {
      scenario_error(scenario,
                     "explicit AS " + std::to_string(as.number) +
                         " declared twice");
    }
    topo.graph.add_as(number);
    topo.tier.emplace(number, as.tier);
    switch (as.tier) {
      case topo::Tier::kTier1: topo.tier1.push_back(number); break;
      case topo::Tier::kTier2: topo.tier2.push_back(number); break;
      case topo::Tier::kTier3: topo.tier3.push_back(number); break;
      case topo::Tier::kStub: topo.stubs.push_back(number); break;
    }
  }
  for (const ExplicitWorld::Link& link : world.links) {
    for (const std::uint32_t end : {link.a, link.b}) {
      if (!topo.graph.contains(AsNumber(end))) {
        scenario_error(scenario, "explicit link references undeclared AS " +
                                     std::to_string(end));
      }
    }
    if (link.peer) {
      topo.graph.add_peer_peer(AsNumber(link.a), AsNumber(link.b));
    } else {
      topo.graph.add_provider_customer(AsNumber(link.a), AsNumber(link.b));
    }
  }
  return topo;
}

/// The PrefixPlan of an explicit world: exactly the declared originations,
/// in declaration order (MOAS allowed: the same prefix may appear under
/// several origins).
topo::PrefixPlan build_explicit_plan(const Scenario& scenario,
                                     const topo::Topology& topo) {
  const ExplicitWorld& world = *scenario.explicit_world;
  topo::PrefixPlan plan;
  plan.prefixes.reserve(world.originations.size());
  for (const ExplicitWorld::Origination& o : world.originations) {
    const AsNumber origin(o.origin);
    if (!topo.graph.contains(origin)) {
      scenario_error(scenario, "origination " + o.prefix.to_string() +
                                   " references undeclared AS " +
                                   std::to_string(o.origin));
    }
    plan.by_origin[origin].push_back(plan.prefixes.size());
    plan.prefixes.push_back({o.prefix, origin, std::nullopt});
  }
  return plan;
}

/// Every AS id a scenario references must exist in the synthesized
/// topology.  Absent ids previously slipped through derive_vantage's
/// filter and silently yielded empty observations; now they are a
/// synthesize-time error naming the role and the id.
void validate_scenario_ases(const Scenario& scenario,
                            const topo::Topology& topo) {
  const auto check = [&](const char* role, std::uint32_t as) {
    if (!topo.graph.contains(AsNumber(as))) {
      scenario_error(scenario, std::string(role) + " AS " +
                                   std::to_string(as) +
                                   " is not in the synthesized topology");
    }
  };
  for (const std::uint32_t as : scenario.looking_glass) {
    check("looking_glass", as);
  }
  for (const std::uint32_t as : scenario.best_only) check("best_only", as);
  for (const std::uint32_t as : scenario.verification_ases) {
    check("verification", as);
  }
  for (const PolicyOverride& o : scenario.overrides) {
    check("override", o.as);
    switch (o.kind) {
      case PolicyOverride::Kind::kPreferNeighbor:
      case PolicyOverride::Kind::kDeny:
      case PolicyOverride::Kind::kPrepend:
      case PolicyOverride::Kind::kNoExportUpstream:
        check("override neighbor", o.neighbor);
        break;
      case PolicyOverride::Kind::kConditional:
        check("override neighbor", o.neighbor);
        check("override watch", o.watch);
        break;
      case PolicyOverride::Kind::kPreferPrefix:
      case PolicyOverride::Kind::kTagging:
        break;
    }
  }
}

/// Applies the scenario's per-AS policy edits on top of the generated
/// policies, in declaration order.  Export overrides are inserted at the
/// *front* of the neighbor's rule list so they take precedence over any
/// generated rule for the same prefix.
void apply_overrides(const Scenario& scenario, sim::PolicySet& policies) {
  for (const PolicyOverride& o : scenario.overrides) {
    sim::AsPolicy& policy = policies.at_mut(AsNumber(o.as));
    const auto require_prefix = [&]() -> const bgp::Prefix& {
      if (!o.prefix) {
        scenario_error(scenario, "override on AS " + std::to_string(o.as) +
                                     " requires a prefix");
      }
      return *o.prefix;
    };
    const auto front_rule = [&](sim::ExportRule rule) {
      auto& rules = policy.export_.per_neighbor[AsNumber(o.neighbor)];
      rules.insert(rules.begin(), std::move(rule));
    };
    switch (o.kind) {
      case PolicyOverride::Kind::kPreferNeighbor:
        policy.import.neighbor_override[AsNumber(o.neighbor)] = o.value;
        break;
      case PolicyOverride::Kind::kPreferPrefix:
        policy.import.prefix_override[require_prefix()] = o.value;
        break;
      case PolicyOverride::Kind::kDeny: {
        sim::ExportRule rule;
        rule.prefix = o.prefix;
        rule.action = sim::ExportAction::kDeny;
        front_rule(std::move(rule));
        break;
      }
      case PolicyOverride::Kind::kPrepend: {
        sim::ExportRule rule;
        rule.prefix = o.prefix;
        rule.action = sim::ExportAction::kPrepend;
        rule.prepend_times = static_cast<std::uint8_t>(o.value);
        front_rule(std::move(rule));
        break;
      }
      case PolicyOverride::Kind::kConditional:
        policy.conditional.push_back(
            {require_prefix(), AsNumber(o.neighbor), AsNumber(o.watch)});
        break;
      case PolicyOverride::Kind::kTagging:
        policy.community.enabled = o.value != 0;
        break;
      case PolicyOverride::Kind::kNoExportUpstream: {
        sim::ExportRule rule;
        rule.prefix = o.prefix;
        rule.action = sim::ExportAction::kTagNoExportUpstream;
        front_rule(std::move(rule));
        break;
      }
    }
  }
}

}  // namespace

GroundTruth synthesize(const Scenario& scenario) {
  GroundTruth truth;
  if (scenario.explicit_world) {
    truth.topo = build_explicit_topology(scenario);
    truth.plan = build_explicit_plan(scenario, truth.topo);
  } else {
    truth.topo = topo::generate_topology(scenario.topo_params);
    truth.plan = topo::allocate_prefixes(truth.topo, scenario.alloc_params);
  }
  validate_scenario_ases(scenario, truth.topo);
  truth.gen =
      sim::generate_policies(truth.topo, truth.plan, scenario.policy_params);
  apply_overrides(scenario, truth.gen.policies);
  truth.originations = sim::all_originations(truth.plan, truth.gen);
  return truth;
}

sim::VantageSpec derive_vantage(const Scenario& scenario,
                                const topo::Topology& topo) {
  sim::VantageSpec vantage;
  // Collector peers are the Tier-1s plus leading Tier-2/Tier-3 ASes (the
  // paper's 56-peer Oregon view).
  for (const auto as : topo.tier1) vantage.collector_peers.push_back(as);
  for (std::size_t i = 0;
       i < std::min(scenario.collector_tier2_peers, topo.tier2.size()); ++i) {
    vantage.collector_peers.push_back(topo.tier2[i]);
  }
  for (std::size_t i = 0;
       i < std::min(scenario.collector_tier3_peers, topo.tier3.size()); ++i) {
    vantage.collector_peers.push_back(topo.tier3[i]);
  }
  for (const std::uint32_t as : scenario.looking_glass) {
    if (topo.graph.contains(AsNumber(as))) {
      vantage.looking_glass.emplace_back(as);
    }
  }
  for (const std::uint32_t as : scenario.best_only) {
    const AsNumber number(as);
    if (topo.graph.contains(number) &&
        std::find(vantage.looking_glass.begin(), vantage.looking_glass.end(),
                  number) == vantage.looking_glass.end()) {
      vantage.best_only.push_back(number);
    }
  }
  return vantage;
}

SimArtifact simulate(const Scenario& scenario, const GroundTruth& truth,
                     std::size_t threads, const util::Executor* executor) {
  SimArtifact artifact;
  artifact.vantage = derive_vantage(scenario, truth.topo);
  sim::PropagationOptions options = scenario.propagation;
  options.threads = threads;
  artifact.sim =
      sim::run_simulation(truth.topo.graph, truth.gen.policies,
                          truth.originations, artifact.vantage, options,
                          executor);
  return artifact;
}

// -------------------------------------------------------------- sim chunks --

namespace {

/// Auto chunking aims here: enough chunks for load balance and a useful
/// mid-stage resume grain, few enough that per-chunk encode/persist stays
/// negligible next to the fixpoint work.
constexpr std::size_t kAutoSimChunkTarget = 32;

}  // namespace

std::vector<util::IndexRange> sim_chunk_ranges(std::size_t n,
                                               std::size_t chunk_prefixes) {
  if (chunk_prefixes == 0) return util::split_ranges(n, kAutoSimChunkTarget);
  std::vector<util::IndexRange> ranges;
  ranges.reserve(n / chunk_prefixes + 1);
  for (std::size_t begin = 0; begin < n; begin += chunk_prefixes) {
    ranges.push_back({begin, std::min(begin + chunk_prefixes, n)});
  }
  return ranges;
}

std::string sim_chunk_store_key(std::string_view scenario_key,
                                std::string_view truth_digest,
                                util::IndexRange range, std::size_t total) {
  std::string key = kKeyPrefix;
  key += "sim-chunk|";
  key += scenario_key;
  key += '|';
  key += truth_digest;
  key += "|range=";
  key += std::to_string(range.begin);
  key += '-';
  key += std::to_string(range.end);
  key += '/';
  key += std::to_string(total);
  key += ';';
  return key;
}

namespace {

// The Observe sub-steps, shared verbatim between the monolithic observe()
// below and the task-graph nodes Experiment::add_stage_nodes builds (so
// the two paths can never drift).  The IRR pair consumes only the ground
// truth; the path pair consumes only the recorded tables — the disjoint
// halves the task graph overlaps.

std::string observe_irr_text(const Scenario& scenario,
                             const GroundTruth& truth, std::size_t threads,
                             const util::Executor* executor) {
  rpsl::IrrGenParams irr_params = scenario.irr_params;
  irr_params.threads = threads;
  return rpsl::generate_irr(truth.topo, truth.gen.policies, irr_params,
                            executor);
}

/// Observed path multiset (RouteViews + LGs; a looking glass sees paths
/// without the vantage itself, so its AS is prepended to match the
/// collector's shape).  Fills lg_order and observed_paths.
void observe_ingest_paths(Observations& obs, const SimArtifact& sim) {
  obs.lg_order = sorted_looking_glass(sim.sim);
  obs.observed_paths.add_table_paths(sim.sim.collector);
  for (const AsNumber as : obs.lg_order) {
    obs.observed_paths.add_table_paths(sim.sim.looking_glass.at(as), as);
  }
}

}  // namespace

Observations observe(const Scenario& scenario, const GroundTruth& truth,
                     const SimArtifact& sim, std::size_t threads,
                     const util::Executor* executor) {
  Observations obs;
  obs.irr_text = observe_irr_text(scenario, truth, threads, executor);
  obs.irr_objects = rpsl::parse_aut_nums(obs.irr_text, threads, executor);
  observe_ingest_paths(obs, sim);
  // The path index over the same table sources.
  obs.paths.add_tables(inference_table_sources(sim.sim), threads, executor);
  return obs;
}

const rpsl::AutNum* Observations::irr_for(AsNumber as) const {
  for (const auto& aut_num : irr_objects) {
    if (aut_num.as == as) return &aut_num;
  }
  return nullptr;
}

InferenceProducts infer_relationships(const Observations& observations,
                                      const asrel::GaoParams& params,
                                      const util::Executor* executor) {
  InferenceProducts products;
  products.inferred = observations.observed_paths.infer(params, executor);
  products.inferred_graph = products.inferred.to_graph();
  products.tiers = asrel::classify_tiers(products.inferred);
  return products;
}

ExperimentView make_view(const SimArtifact& sim,
                         const Observations& observations,
                         const InferenceProducts& inference) {
  ExperimentView view;
  view.sim = &sim.sim;
  view.irr_objects = &observations.irr_objects;
  view.inferred = &inference.inferred;
  view.inferred_graph = &inference.inferred_graph;
  view.tiers = &inference.tiers;
  view.paths = &observations.paths;
  return view;
}

// -------------------------------------------------------------- experiment --

Experiment::Experiment(Scenario scenario, RunOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {
  // Fold the override into the scenario so one knob drives every stage and
  // the assembled Pipeline reports it, exactly like pre-staging
  // run_pipeline.
  if (options_.threads) scenario_.propagation.threads = *options_.threads;
}

const util::Executor& Experiment::executor() {
  if (!executor_) {
    executor_ = std::make_unique<util::Executor>(threads());
  }
  return *executor_;
}

std::string Experiment::stage_key_material(
    Stage stage, const asrel::GaoParams& gao) const {
  std::string key = kKeyPrefix;
  key += to_string(stage);
  key += '|';
  switch (stage) {
    case Stage::kSynthesize:
      key += scenario_cache_key(scenario_);
      break;
    case Stage::kSimulate:
      key += scenario_cache_key(scenario_);
      key += '|';
      key += stage_digest(Stage::kSynthesize);
      break;
    case Stage::kObserve:
      key += scenario_cache_key(scenario_);
      key += '|';
      key += stage_digest(Stage::kSynthesize);
      key += '|';
      key += stage_digest(Stage::kSimulate);
      break;
    case Stage::kInfer:
      key += stage_digest(Stage::kObserve);
      key += '|';
      key += gao_params_key(gao);
      break;
    case Stage::kAnalyze:
      key += stage_digest(Stage::kSimulate);
      key += '|';
      key += stage_digest(Stage::kObserve);
      key += '|';
      key += stage_digest(Stage::kInfer);
      key += '|';
      vantage_field(key, options_.analysis_vantages);
      break;
  }
  return key;
}

void Experiment::run(Stage until) {
  // One task graph covers every missing upstream stage, so Observe
  // sub-tasks overlap late Simulate chunks; Infer/Analyze keep their
  // internal executor sharding (they are a strictly serial chain).
  run_upstream(until < Stage::kObserve ? until : Stage::kObserve);
  if (until >= Stage::kInfer) inference();
  if (until >= Stage::kAnalyze) analyses();
}

const GroundTruth& Experiment::truth() {
  if (!truth_) run_upstream(Stage::kSynthesize);
  return *truth_;
}

const SimArtifact& Experiment::sim() {
  if (!sim_) run_upstream(Stage::kSimulate);
  return *sim_;
}

const Observations& Experiment::observations() {
  if (!observations_) run_upstream(Stage::kObserve);
  return *observations_;
}

void Experiment::materialize_truth() {
  bool loaded = false;
  truth_ = stage_artifact<GroundTruth>(
      options_.store, stage_key_material(Stage::kSynthesize, {}),
      digest_slot(Stage::kSynthesize), loaded,
      [](std::span<const std::uint8_t> bytes) {
        return io::decode_ground_truth(bytes);
      },
      [&] { return synthesize(scenario_); });
  ++(loaded ? loads_ : counters_).synthesize;
}

void Experiment::run_upstream(Stage until) {
  if (until > Stage::kObserve) until = Stage::kObserve;
  const bool need_sim = until >= Stage::kSimulate && !sim_;
  const bool need_observe = until >= Stage::kObserve && !observations_;
  if (truth_ && !need_sim && !need_observe) return;
  // The exact sequential seed program: no graph, no chunking, stages run
  // back to back with their internal sharding (inline at threads == 1).
  // The graph path is for a real pool (overlap + chunk parallelism) or a
  // store (per-chunk persistence is what makes mid-Simulate resume work).
  if (executor().pool() == nullptr && options_.store == nullptr) {
    run_upstream_serial(until);
    return;
  }
  util::TaskGraph graph;
  add_stage_nodes(graph, until);
  graph.run(executor());
}

void Experiment::run_upstream_serial(Stage until) {
  if (!truth_) materialize_truth();
  if (until >= Stage::kSimulate && !sim_) {
    bool loaded = false;
    sim_ = stage_artifact<SimArtifact>(
        options_.store, stage_key_material(Stage::kSimulate, {}),
        digest_slot(Stage::kSimulate), loaded,
        [](std::span<const std::uint8_t> bytes) {
          return io::decode_sim_artifact(bytes);
        },
        [&] { return simulate(scenario_, *truth_, threads(), &executor()); });
    ++(loaded ? loads_ : counters_).simulate;
  }
  if (until >= Stage::kObserve && !observations_) {
    bool loaded = false;
    observations_ = stage_artifact<Observations>(
        options_.store, stage_key_material(Stage::kObserve, {}),
        digest_slot(Stage::kObserve), loaded,
        [](std::span<const std::uint8_t> bytes) {
          return io::decode_observations(bytes);
        },
        [&] {
          return observe(scenario_, *truth_, *sim_, threads(), &executor());
        });
    ++(loaded ? loads_ : counters_).observe;
  }
}

// ----------------------------------------------------- task-graph stages --

/// Staging state shared by one graph run's nodes (kept alive by
/// shared_ptr captures; node edges order every access).
struct Experiment::UpstreamScratch {
  /// Observe sub-results assembled across the irr/path nodes, moved into
  /// observations_ by the finish node.
  Observations obs;
  /// Set when the whole Observations artifact was found (and decoded — a
  /// corrupt entry is a miss, never a hit) in the store; sub-nodes that
  /// see it skip their work and the finish node installs loaded_obs.
  /// Atomic because the IRR nodes (unordered w.r.t. the Simulate compute
  /// node, which may set the flag after recomputing the sim digest) read
  /// it concurrently; a sub-node that missed the flag merely does work
  /// the finish node discards wholesale — never a torn artifact.
  std::atomic<bool> observe_hit{false};
  std::optional<Observations> loaded_obs;
  std::vector<std::uint8_t> observe_bytes;  // for the digest chain
};

template <typename Fn>
void Experiment::traced(const char* name, Fn&& fn) {
  if (options_.trace == nullptr) {
    fn();
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  fn();
  options_.trace->record(name, start, std::chrono::steady_clock::now());
}

void Experiment::probe_observe(UpstreamScratch& scratch) {
  if (options_.store == nullptr ||
      scratch.observe_hit.load(std::memory_order_acquire)) {
    return;
  }
  if (auto bytes =
          options_.store->load(stage_key_material(Stage::kObserve, {}))) {
    try {
      scratch.loaded_obs =
          io::decode_observations(std::span<const std::uint8_t>(*bytes));
      scratch.observe_bytes = std::move(*bytes);  // kept for the digest
      // Release so an IRR node acquiring `true` concurrently is ordered
      // after loaded_obs/observe_bytes are fully written (nodes ordered
      // by graph edges get this ordering from the scheduler mutex anyway).
      scratch.observe_hit.store(true, std::memory_order_release);
    } catch (const std::invalid_argument&) {
      // Corrupt, truncated, or version-mismatched: a miss, never an error.
    }
  }
}

void Experiment::simulate_chunked(util::TaskGraph& graph) {
  const auto vantage =
      std::make_shared<sim::VantageSpec>(derive_vantage(scenario_, truth_->topo));
  const std::size_t n = truth_->originations.size();
  const std::vector<util::IndexRange> ranges =
      sim_chunk_ranges(n, options_.sim_chunk_prefixes);
  // Fresh ledger per chunked run (an invalidate-and-rerun would otherwise
  // accumulate): computed + loaded always equals total afterwards.
  sim_chunks_ = SimChunkLedger{};
  sim_chunks_.total = ranges.size();

  // Index-addressed slots: chunk tasks run in any order on any thread, the
  // merge below replays them in range order — the shard-and-merge
  // discipline expressed as nested graph tasks.
  const auto slots =
      std::make_shared<std::vector<sim::SimResult>>(ranges.size());
  const auto loaded_flags =
      std::make_shared<std::vector<std::uint8_t>>(ranges.size(), 0);
  std::vector<std::string> chunk_keys(ranges.size());
  if (options_.store != nullptr) {
    const std::string scenario_key = scenario_cache_key(scenario_);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      chunk_keys[i] = sim_chunk_store_key(
          scenario_key, stage_digest(Stage::kSynthesize), ranges[i], n);
    }
  }

  std::vector<util::TaskGraph::NodeId> chunk_nodes;
  chunk_nodes.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    chunk_nodes.push_back(graph.submit([this, vantage, slots, loaded_flags, i,
                                        range = ranges[i], n,
                                        key = chunk_keys[i]] {
      traced("simulate.chunk", [&] {
        ArtifactStore* store = options_.store;
        if (store != nullptr) {
          if (const auto bytes = store->load(key)) {
            try {
              SimChunk chunk = io::decode_sim_chunk(
                  std::span<const std::uint8_t>(*bytes));
              if (chunk.begin == range.begin && chunk.end == range.end &&
                  chunk.total == n) {
                (*slots)[i] = std::move(chunk.partial);
                (*loaded_flags)[i] = 1;
                return;
              }
            } catch (const std::invalid_argument&) {
              // Corrupt chunk: a miss, recompute below.
            }
          }
        }
        (*slots)[i] = sim::simulate_chunk(
            truth_->topo.graph, truth_->gen.policies, truth_->originations,
            *vantage, scenario_.propagation, range);
        if (store != nullptr) {
          // Persist-and-pin as each chunk completes: a kill from here on
          // resumes mid-Simulate, and a concurrent gc() cannot evict what
          // this run still needs (the pin falls with the merged artifact).
          SimChunk chunk;
          chunk.begin = range.begin;
          chunk.end = range.end;
          chunk.total = n;
          chunk.partial = std::move((*slots)[i]);
          // Pin first: a pin needs no entry behind it, and pinning after
          // the put would leave a window where a concurrent gc() evicts
          // the just-persisted chunk this run still needs.
          store->pin(key);
          store->put(key, io::encode(chunk));
          (*slots)[i] = std::move(chunk.partial);
        }
      });
    }));
  }
  graph.wait(chunk_nodes);

  traced("simulate.merge", [&] {
    SimArtifact artifact;
    artifact.vantage = std::move(*vantage);
    artifact.sim = sim::init_sim_result(artifact.vantage);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      sim::merge_sim_chunk(artifact.sim, (*slots)[i]);
      ++((*loaded_flags)[i] != 0 ? sim_chunks_.loaded : sim_chunks_.computed);
      (*slots)[i] = sim::SimResult{};  // bound peak memory
    }
    sim_ = std::move(artifact);
    ++counters_.simulate;
    if (options_.store != nullptr) {
      const std::vector<std::uint8_t> bytes = io::encode(*sim_);
      digest_slot(Stage::kSimulate) =
          stable_digest_hex(std::span<const std::uint8_t>(bytes));
      options_.store->put(stage_key_material(Stage::kSimulate, {}), bytes);
      // The merged artifact supersedes its chunks: erase them so
      // long-lived stores do not carry both representations, and drop the
      // gc pins with them.
      for (const std::string& key : chunk_keys) {
        options_.store->unpin(key);
        options_.store->erase(key);
      }
    } else {
      digest_slot(Stage::kSimulate).clear();
    }
  });
}

Experiment::UpstreamNodes Experiment::add_stage_nodes(util::TaskGraph& graph,
                                                      Stage until) {
  if (until > Stage::kObserve) until = Stage::kObserve;
  UpstreamNodes handles;
  const bool need_truth = !truth_;
  const bool need_sim = until >= Stage::kSimulate && !sim_;
  const bool need_observe = until >= Stage::kObserve && !observations_;
  if (!need_truth && !need_sim && !need_observe) return handles;

  using NodeId = util::TaskGraph::NodeId;
  const auto deps_of = [](std::initializer_list<std::optional<NodeId>> ids) {
    std::vector<NodeId> deps;
    for (const auto& id : ids) {
      if (id) deps.push_back(*id);
    }
    return deps;
  };

  auto scratch = std::make_shared<UpstreamScratch>();
  util::TaskGraph* graph_ptr = &graph;

  std::optional<NodeId> n_synth;
  if (need_truth) {
    n_synth = graph.add(
        [this] { traced("synthesize", [&] { materialize_truth(); }); });
  }

  std::optional<NodeId> n_sim_probe;
  std::optional<NodeId> n_sim;
  if (need_sim) {
    // Probe first (cheap): a full-artifact hit short-circuits the chunk
    // fan-out and lets the Observe sub-nodes discover a whole-Observations
    // hit before doing any work.
    n_sim_probe = graph.add(
        [this, scratch, need_observe] {
          traced("simulate.probe", [&] {
            if (options_.store == nullptr) return;
            if (const auto bytes = options_.store->load(
                    stage_key_material(Stage::kSimulate, {}))) {
              try {
                SimArtifact artifact = io::decode_sim_artifact(
                    std::span<const std::uint8_t>(*bytes));
                digest_slot(Stage::kSimulate) =
                    stable_digest_hex(std::span<const std::uint8_t>(*bytes));
                sim_ = std::move(artifact);
                ++loads_.simulate;
              } catch (const std::invalid_argument&) {
                // Corrupt: a miss; the compute node fans out chunks.
              }
            }
            if (sim_ && need_observe) probe_observe(*scratch);
          });
        },
        deps_of({n_synth}));
    n_sim = graph.add(
        [this, scratch, graph_ptr, need_observe] {
          if (sim_) return;  // probe hit
          simulate_chunked(*graph_ptr);
          // The recomputed digest matches what a previous run persisted,
          // so the whole Observations artifact may still be on disk even
          // though the sim entry was lost (gc, corruption).  Probing here
          // lets the path nodes (edge-ordered after this one) and the
          // finish node reuse it; IRR nodes racing ahead merely did work
          // the finish node discards.
          if (need_observe) probe_observe(*scratch);
        },
        deps_of({n_sim_probe}));
    handles.sim_done = n_sim;
  } else if (need_observe && options_.store != nullptr) {
    // Simulate (and its digest) already materialized before this graph:
    // the Observations store entry is probeable right now.
    probe_observe(*scratch);
  }

  if (need_observe) {
    // The IRR pair consumes only ground truth, so it runs concurrently
    // with every Simulate chunk; ordering it after the cheap store probe
    // only lets a fully store-served run skip the work.
    const auto n_irr_gen = graph.add(
        [this, scratch] {
          traced("observe.irr_gen", [&] {
            if (scratch->observe_hit.load(std::memory_order_acquire)) return;
            scratch->obs.irr_text =
                observe_irr_text(scenario_, *truth_, 1, nullptr);
          });
        },
        deps_of({n_synth, n_sim_probe}));
    const auto n_irr_parse = graph.add(
        [this, scratch] {
          traced("observe.irr_parse", [&] {
            if (scratch->observe_hit.load(std::memory_order_acquire)) return;
            scratch->obs.irr_objects =
                rpsl::parse_aut_nums(scratch->obs.irr_text, 1, nullptr);
          });
        },
        {n_irr_gen});
    const auto n_ingest = graph.add(
        [this, scratch] {
          traced("observe.path_ingest", [&] {
            if (scratch->observe_hit.load(std::memory_order_acquire)) return;
            observe_ingest_paths(scratch->obs, *sim_);
          });
        },
        deps_of({n_sim}));
    const auto n_index = graph.add(
        [this, scratch] {
          traced("observe.path_index", [&] {
            if (scratch->observe_hit.load(std::memory_order_acquire)) return;
            scratch->obs.paths.add_tables(inference_table_sources(sim_->sim),
                                          1, nullptr);
          });
        },
        deps_of({n_sim}));
    handles.observe_done = graph.add(
        [this, scratch] {
          traced("observe.finish", [&] {
            if (scratch->observe_hit.load(std::memory_order_acquire)) {
              observations_ = std::move(*scratch->loaded_obs);
              digest_slot(Stage::kObserve) = stable_digest_hex(
                  std::span<const std::uint8_t>(scratch->observe_bytes));
              ++loads_.observe;
              return;
            }
            observations_ = std::move(scratch->obs);
            ++counters_.observe;
            if (options_.store != nullptr) {
              const std::vector<std::uint8_t> bytes =
                  io::encode(*observations_);
              digest_slot(Stage::kObserve) =
                  stable_digest_hex(std::span<const std::uint8_t>(bytes));
              options_.store->put(stage_key_material(Stage::kObserve, {}),
                                  bytes);
            } else {
              digest_slot(Stage::kObserve).clear();
            }
          });
        },
        {n_irr_parse, n_ingest, n_index});
  }
  return handles;
}

const InferenceProducts& Experiment::inference() {
  if (!inference_) {
    observations();
    const asrel::GaoParams params = effective_gao_params();
    bool loaded = false;
    inference_ = stage_artifact<InferenceProducts>(
        options_.store, stage_key_material(Stage::kInfer, params),
        digest_slot(Stage::kInfer), loaded,
        [](std::span<const std::uint8_t> bytes) {
          return io::decode_inference(bytes);
        },
        [&] { return infer_relationships(*observations_, params, &executor()); });
    ++(loaded ? loads_ : counters_).infer;
  }
  return *inference_;
}

const AnalysisSuite& Experiment::analyses() {
  if (!analyses_) {
    // Ensure the view's inputs exist.  sim() is requested explicitly:
    // after set_observations, inference() is satisfied by the injected
    // artifact alone and would leave the Simulate stage (whose tables
    // Analyze reads) unmaterialized.
    sim();
    inference();
    bool loaded = false;
    analyses_ = stage_artifact<AnalysisSuite>(
        options_.store,
        stage_key_material(Stage::kAnalyze, effective_gao_params()),
        digest_slot(Stage::kAnalyze), loaded,
        [](std::span<const std::uint8_t> bytes) {
          return io::decode_analysis_suite(bytes);
        },
        [&] {
          std::vector<AsNumber> vantages = options_.analysis_vantages;
          if (vantages.empty()) vantages = recorded_vantages(sim_->sim);
          return run_analysis_suite(view(), vantages, threads(), &executor());
        });
    ++(loaded ? loads_ : counters_).analyze;
  }
  return *analyses_;
}

namespace {

template <typename T>
const T& materialized(const std::optional<T>& artifact, const char* stage) {
  if (!artifact) {
    throw std::logic_error(std::string("Experiment: the ") + stage +
                           " stage has not run");
  }
  return *artifact;
}

}  // namespace

const GroundTruth& Experiment::truth() const {
  return materialized(truth_, "synthesize");
}
const SimArtifact& Experiment::sim() const {
  return materialized(sim_, "simulate");
}
const Observations& Experiment::observations() const {
  return materialized(observations_, "observe");
}
const InferenceProducts& Experiment::inference() const {
  return materialized(inference_, "infer");
}
const AnalysisSuite& Experiment::analyses() const {
  return materialized(analyses_, "analyze");
}

const InferenceProducts& Experiment::rerun_infer(
    const asrel::GaoParams& params) {
  observations();  // cached upstream is reused, never re-run
  bool loaded = false;
  inference_ = stage_artifact<InferenceProducts>(
      options_.store, stage_key_material(Stage::kInfer, params),
      digest_slot(Stage::kInfer), loaded,
      [](std::span<const std::uint8_t> bytes) {
        return io::decode_inference(bytes);
      },
      [&] { return infer_relationships(*observations_, params, &executor()); });
  ++(loaded ? loads_ : counters_).infer;
  analyses_.reset();
  digest_slot(Stage::kAnalyze).clear();
  return *inference_;
}

void Experiment::set_observations(Observations observations) {
  observations_ = std::move(observations);
  inference_.reset();
  analyses_.reset();
  digest_slot(Stage::kInfer).clear();
  digest_slot(Stage::kAnalyze).clear();
  // An externally supplied artifact is not this scenario's Observe product
  // — never store it under the scenario-derived observe key.  Digest it so
  // downstream Infer/Analyze keys still chain correctly (and distinctly).
  if (options_.store != nullptr) {
    const std::vector<std::uint8_t> bytes = io::encode(*observations_);
    digest_slot(Stage::kObserve) =
        stable_digest_hex(std::span<const std::uint8_t>(bytes));
  } else {
    digest_slot(Stage::kObserve).clear();
  }
}

void Experiment::invalidate(Stage from) {
  switch (from) {
    case Stage::kSynthesize:
      truth_.reset();
      digest_slot(Stage::kSynthesize).clear();
      [[fallthrough]];
    case Stage::kSimulate:
      sim_.reset();
      digest_slot(Stage::kSimulate).clear();
      // The chunk ledger describes the dropped artifact's materialization;
      // a rerun served whole from the store must report all-zero again.
      sim_chunks_ = SimChunkLedger{};
      [[fallthrough]];
    case Stage::kObserve:
      observations_.reset();
      digest_slot(Stage::kObserve).clear();
      [[fallthrough]];
    case Stage::kInfer:
      inference_.reset();
      digest_slot(Stage::kInfer).clear();
      [[fallthrough]];
    case Stage::kAnalyze:
      analyses_.reset();
      digest_slot(Stage::kAnalyze).clear();
  }
}

asrel::GaoParams Experiment::effective_gao_params() const {
  if (options_.gao) return *options_.gao;
  asrel::GaoParams params;
  params.threads = threads();
  return params;
}

ExperimentView Experiment::view() {
  sim();  // not implied by inference() when observations were injected
  inference();
  return make_view(*sim_, *observations_, *inference_);
}

Experiment::StageArtifacts Experiment::take_artifacts() && {
  StageArtifacts artifacts;
  artifacts.truth = std::move(truth_);
  artifacts.sim = std::move(sim_);
  artifacts.observations = std::move(observations_);
  artifacts.inference = std::move(inference_);
  artifacts.analyses = std::move(analyses_);
  invalidate(Stage::kSynthesize);
  return artifacts;
}

Pipeline Experiment::to_pipeline() {
  run(Stage::kInfer);
  Pipeline p;
  p.scenario = scenario_;
  p.topo = truth_->topo;
  p.plan = truth_->plan;
  p.gen = truth_->gen;
  p.originations = truth_->originations;
  p.vantage = sim_->vantage;
  p.sim = sim_->sim;
  p.irr_text = observations_->irr_text;
  p.irr_objects = observations_->irr_objects;
  p.inferred = inference_->inferred;
  p.inferred_graph = inference_->inferred_graph;
  p.tiers = inference_->tiers;
  p.paths = observations_->paths;
  return p;
}

Pipeline Experiment::into_pipeline() && {
  run(Stage::kInfer);
  Pipeline p;
  p.scenario = std::move(scenario_);
  p.topo = std::move(truth_->topo);
  p.plan = std::move(truth_->plan);
  p.gen = std::move(truth_->gen);
  p.originations = std::move(truth_->originations);
  p.vantage = std::move(sim_->vantage);
  p.sim = std::move(sim_->sim);
  p.irr_text = std::move(observations_->irr_text);
  p.irr_objects = std::move(observations_->irr_objects);
  p.inferred = std::move(inference_->inferred);
  p.inferred_graph = std::move(inference_->inferred_graph);
  p.tiers = std::move(inference_->tiers);
  p.paths = std::move(observations_->paths);
  invalidate(Stage::kSynthesize);
  return p;
}

// ------------------------------------------------------------------ sweep --

std::string scenario_cache_key(const Scenario& scenario) {
  // Every parameter below feeds the Synthesize/Simulate/Observe artifacts;
  // keep this list in sync when Scenario or its parameter structs grow.
  // Deliberately excluded: `name` (a label) and every worker-thread knob
  // (artifacts are byte-identical at any thread count).
  std::string key;
  key.reserve(1024);

  const auto& t = scenario.topo_params;
  field(key, "t.seed", t.seed);
  field(key, "t.t1", t.tier1_count);
  field(key, "t.t2", t.tier2_count);
  field(key, "t.t3", t.tier3_count);
  field(key, "t.stubs", t.stub_count);
  field(key, "t.multihome", t.stub_multihome_prob);
  field(key, "t.max_providers", t.max_stub_providers);
  field(key, "t.t2_peer_mean", t.tier2_peer_mean);
  field(key, "t.t3_peer_mean", t.tier3_peer_mean);
  field(key, "t.stub_peer", t.stub_peer_prob);
  field(key, "t.t3_direct_t1", t.tier3_direct_tier1_prob);
  field(key, "t.stub_t1_frac", t.stub_tier1_frac);
  field(key, "t.stub_t2_frac", t.stub_tier2_frac);
  field(key, "t.skew", t.provider_popularity_skew);

  const auto& a = scenario.alloc_params;
  field(key, "a.seed", a.seed);
  field(key, "a.provider_space", a.provider_space_prob);
  field(key, "a.count_alpha", a.count_alpha);
  field(key, "a.max_stub", a.max_stub_prefixes);
  field(key, "a.max_transit", a.max_transit_extra);

  const auto& p = scenario.policy_params;
  field(key, "p.seed", p.seed);
  field(key, "p.atypical", p.atypical_neighbor_prob);
  field(key, "p.te_as", p.te_as_prob);
  field(key, "p.te_rate", p.te_prefix_max_rate);
  field(key, "p.selective", p.origin_selective_as_prob);
  field(key, "p.withhold", p.withhold_prefix_prob);
  field(key, "p.single", p.single_announce_prob);
  field(key, "p.community", p.community_flavor_prob);
  field(key, "p.target", p.community_target_prob);
  field(key, "p.prepend", p.prepend_as_prob);
  field(key, "p.max_prepend", std::uint64_t{p.max_prepend});
  field(key, "p.intermediate", p.intermediate_selective_prob);
  field(key, "p.victim", p.intermediate_victim_prob);
  field(key, "p.splitting", p.splitting_as_prob);
  field(key, "p.aggregation", p.aggregation_prob);
  field(key, "p.peer_withhold", p.peer_withhold_prob);
  field(key, "p.peer_total", p.peer_withhold_total_prob);
  field(key, "p.tagging", p.tagging_as_prob);
  field(key, "p.publish", p.publish_prob);
  key += "p.force=";
  for (const AsNumber as : p.force_tagging) {
    key += std::to_string(as.value());
    key += ',';
  }
  key += ';';

  const auto& i = scenario.irr_params;
  field(key, "i.seed", i.seed);
  field(key, "i.coverage", i.coverage);
  field(key, "i.stale", i.stale_prob);
  field(key, "i.wrong", i.wrong_pref_prob);
  field(key, "i.missing", i.missing_pref_prob);
  field(key, "i.fresh_date", std::uint64_t{i.fresh_date});
  field(key, "i.stale_date", std::uint64_t{i.stale_date});

  field(key, "s.max_process", scenario.propagation.max_process_per_as);
  field(key, "s.lg", scenario.looking_glass);
  field(key, "s.best", scenario.best_only);
  field(key, "s.verify", scenario.verification_ases);
  field(key, "s.t2_peers", scenario.collector_tier2_peers);
  field(key, "s.t3_peers", scenario.collector_tier3_peers);

  // Spec-language extensions (scenario_spec.h).  Appended only when
  // present so pre-existing scenarios keep their store keys.
  if (scenario.explicit_world) {
    const ExplicitWorld& w = *scenario.explicit_world;
    key += "x.ases=";
    for (const ExplicitWorld::As& as : w.ases) {
      key += std::to_string(as.number);
      key += ':';
      key += std::to_string(static_cast<int>(as.tier));
      key += ',';
    }
    key += ";x.links=";
    for (const ExplicitWorld::Link& link : w.links) {
      key += std::to_string(link.a);
      key += link.peer ? '~' : '>';
      key += std::to_string(link.b);
      key += ',';
    }
    key += ";x.orig=";
    for (const ExplicitWorld::Origination& o : w.originations) {
      key += std::to_string(o.origin);
      key += '@';
      key += o.prefix.to_string();
      key += ',';
    }
    key += ';';
  }
  if (!scenario.overrides.empty()) {
    key += "o=";
    for (const PolicyOverride& o : scenario.overrides) {
      key += std::to_string(static_cast<int>(o.kind));
      key += ':';
      key += std::to_string(o.as);
      key += ':';
      key += std::to_string(o.neighbor);
      key += ':';
      key += std::to_string(o.watch);
      key += ':';
      key += std::to_string(o.value);
      key += ':';
      if (o.prefix) key += o.prefix->to_string();
      key += ',';
    }
    key += ';';
  }
  return key;
}

SweepReport sweep(std::span<const SweepVariant> variants, std::size_t threads,
                  ArtifactStore* store) {
  SweepReport report;
  if (variants.empty()) return report;

  // One long-lived executor drives one task graph holding *every*
  // variant's stages: upstream scenarios build concurrently with sub-stage
  // granularity (Simulate chunk tasks, overlapped Observe nodes), and each
  // variant's Infer/Analyze nodes fire the moment their group's upstream
  // nodes finish — cross-variant work interleaves instead of barriering
  // per phase, and results stream into request-order slots as they
  // complete.  Stage internals stay sequential inside their nodes (the
  // graph is the unit of parallelism), which never changes artifact bytes.
  const util::Executor executor(threads);

  // 1. Distinct upstream scenarios, in first-appearance order.
  std::vector<std::size_t> group_of_variant(variants.size());
  std::vector<std::string> keys;
  std::vector<std::size_t> representative;  // group -> first variant index
  std::unordered_map<std::string, std::size_t> group_by_key;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::string key = scenario_cache_key(variants[i].scenario);
    const auto [it, inserted] =
        group_by_key.try_emplace(std::move(key), keys.size());
    if (inserted) {
      keys.push_back(it->first);
      representative.push_back(i);
    }
    group_of_variant[i] = it->second;
  }
  report.distinct_scenarios = keys.size();

  // 2. Upstream stage nodes: one Experiment per distinct scenario, its
  //    Synthesize/Simulate/Observe appended to the shared graph.  With a
  //    store, each stage probes before computing — the cross-process half
  //    of sweep resume, now at chunk granularity inside Simulate.
  util::TaskGraph graph;
  report.upstream.resize(keys.size());
  std::vector<Experiment::UpstreamNodes> upstream_nodes(keys.size());
  for (std::size_t group = 0; group < keys.size(); ++group) {
    RunOptions options;
    options.threads = 1;  // the graph parallelizes; bytes never change
    options.until = Stage::kObserve;
    options.store = store;
    report.upstream[group] = std::make_unique<Experiment>(
        variants[representative[group]].scenario, options);
    upstream_nodes[group] =
        report.upstream[group]->add_stage_nodes(graph, Stage::kObserve);
  }

  // 3. Per-variant Infer + Analyze nodes against the shared (immutable
  //    once their nodes ran) upstream artifacts.  Each variant's results
  //    land in its request-order slot; completion_index records the order
  //    they actually streamed in.  With a store, each artifact probes
  //    independently: a variant whose Analyze entry was lost recomputes
  //    only Analyze.
  std::vector<SweepRun> runs(variants.size());
  std::atomic<std::size_t> completion{0};
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const std::size_t group = group_of_variant[i];
    const Experiment* up = report.upstream[group].get();
    SweepRun& run = runs[i];

    std::vector<util::TaskGraph::NodeId> infer_deps;
    if (upstream_nodes[group].observe_done) {
      infer_deps.push_back(*upstream_nodes[group].observe_done);
    }
    const auto infer_node = graph.add(
        [&run, up, store, &variants, &keys, group, i] {
          const SweepVariant& variant = variants[i];
          run.label = variant.label;
          run.scenario_key = keys[group];
          run.scenario_index = group;
          asrel::GaoParams gao =
              variant.options.gao.value_or(asrel::GaoParams{});
          gao.threads = 1;  // see SweepVariant: the graph parallelizes

          if (store != nullptr) {
            // Variant artifact keys chain on the upstream artifact digests
            // (stage parameters included, thread knobs excluded) — the
            // same per-stage granularity as Experiment's keys: inference
            // depends only on the observations and the Gao knobs, so
            // variants differing in vantages (and the Analyze entry)
            // reuse it.
            std::string infer_key = kKeyPrefix;
            infer_key += "sweep-variant|";
            infer_key += up->stage_digest(Stage::kObserve);
            infer_key += '|';
            infer_key += gao_params_key(gao);
            std::string analyze_key = infer_key;
            analyze_key += '|';
            analyze_key += up->stage_digest(Stage::kSimulate);
            analyze_key += '|';
            vantage_field(analyze_key, variant.options.analysis_vantages);
            run.store_infer_key = infer_key + "|infer";
            run.store_analyze_key = analyze_key + "|analyze";

            if (const auto bytes = store->load(run.store_infer_key)) {
              try {
                run.inference = io::decode_inference(
                    std::span<const std::uint8_t>(*bytes));
                run.inference_loaded = true;
              } catch (const std::invalid_argument&) {
                run.inference = InferenceProducts{};
              }
            }
          }
          if (!run.inference_loaded) {
            run.inference = infer_relationships(up->observations(), gao);
            if (store != nullptr) {
              store->put(run.store_infer_key, io::encode(run.inference));
            }
          }
        },
        infer_deps);

    // Analyze depends on the variant's inference and (transitively through
    // the observe node) the group's Simulate artifact.
    graph.add(
        [&run, up, store, &variants, &completion, i] {
          const SweepVariant& variant = variants[i];
          if (store != nullptr) {
            if (const auto bytes = store->load(run.store_analyze_key)) {
              try {
                run.analyses = io::decode_analysis_suite(
                    std::span<const std::uint8_t>(*bytes));
                run.analyses_loaded = true;
              } catch (const std::invalid_argument&) {
                run.analyses = AnalysisSuite{};
              }
            }
          }
          if (!run.analyses_loaded) {
            const ExperimentView view =
                make_view(up->sim(), up->observations(), run.inference);
            std::vector<AsNumber> vantages = variant.options.analysis_vantages;
            if (vantages.empty()) vantages = recorded_vantages(up->sim().sim);
            run.analyses = run_analysis_suite(view, vantages, 1);
            if (store != nullptr) {
              store->put(run.store_analyze_key, io::encode(run.analyses));
            }
          }
          run.completion_index = completion.fetch_add(1);
        },
        {infer_node});
  }

  graph.run(executor);

  // 4. Deterministic ledgers and the request-order merge, after the graph
  //    drained: upstream stage counts in group order, variant counts in
  //    request order — byte-identical at any thread count.
  for (const auto& up : report.upstream) {
    const StageCounters& c = up->counters();
    report.counters.synthesize += c.synthesize;
    report.counters.simulate += c.simulate;
    report.counters.observe += c.observe;
    const StageCounters& l = up->loads();
    report.loads.synthesize += l.synthesize;
    report.loads.simulate += l.simulate;
    report.loads.observe += l.observe;
  }
  report.runs.reserve(variants.size());
  for (SweepRun& run : runs) {
    ++(run.inference_loaded ? report.loads : report.counters).infer;
    ++(run.analyses_loaded ? report.loads : report.counters).analyze;
    report.runs.push_back(std::move(run));
  }
  return report;
}

// ------------------------------------------------- run_pipeline wrapper --

Pipeline run_pipeline(const Scenario& scenario,
                      std::optional<std::size_t> threads_override) {
  RunOptions options;
  options.threads = threads_override;
  options.until = Stage::kInfer;
  Experiment experiment(scenario, std::move(options));
  return std::move(experiment).into_pipeline();
}

}  // namespace bgpolicy::core
