// Batched, sharded execution of the paper's independent per-table analyses.
//
// Sections 4-5 of the paper run one analysis per vantage table: SA-prefix
// inference (Fig. 4 / Table 5), homing distribution (Table 8), cause
// classification (Table 9), and — for looking glasses, where local-pref and
// communities are visible — import typicality (Table 2) and the two-step SA
// verification (Table 7).  Each vantage's bundle is a pure function of the
// (immutable) pipeline, so the suite shards vantages across the
// util/parallel thread pool and merges results in vantage order: identical
// output at any thread count, `threads = 1` is the exact sequential
// program (the same calls the bench binaries previously made one by one).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/causes.h"
#include "core/export_inference.h"
#include "core/homing.h"
#include "core/import_inference.h"
#include "core/pipeline.h"
#include "core/sa_verification.h"
#include "util/parallel.h"

namespace bgpolicy::core {

/// Every per-table analysis the paper runs against one vantage AS.
struct VantageAnalysis {
  AsNumber vantage;
  bool looking_glass = false;
  SaAnalysis sa;
  HomingDistribution homing;
  CausesAnalysis causes;
  /// Looking-glass vantages only (local preference visible).
  std::optional<ImportTypicality> import_typicality;
  /// Looking-glass vantages only (community verification needs the LG).
  std::optional<SaVerification> sa_verification;
};

struct AnalysisSuite {
  /// One bundle per requested vantage, in request order.
  std::vector<VantageAnalysis> vantages;

  [[nodiscard]] const VantageAnalysis* find(AsNumber as) const;
};

/// Every AS with a recorded table (looking glass or best-only), sorted by
/// AS number — the canonical vantage list for whole-suite runs.
[[nodiscard]] std::vector<AsNumber> recorded_vantages(const sim::SimResult& sim);
[[nodiscard]] std::vector<AsNumber> recorded_vantages(const Pipeline& pipe);

/// Runs the full analysis bundle for each vantage, sharded across
/// `threads` workers (0 = hardware concurrency, 1 = sequential seed
/// behavior).  When `executor` is given it supplies the shared pool and
/// `threads` is ignored.  The view's products must stay immutable for the
/// duration of the call.  This is the Analyze stage of the staged
/// experiment API (experiment.h); the Pipeline overload is the
/// compatibility spelling.
[[nodiscard]] AnalysisSuite run_analysis_suite(
    const ExperimentView& view, std::span<const AsNumber> vantages,
    std::size_t threads, const util::Executor* executor = nullptr);
[[nodiscard]] AnalysisSuite run_analysis_suite(
    const Pipeline& pipe, std::span<const AsNumber> vantages,
    std::size_t threads, const util::Executor* executor = nullptr);

/// Stable textual serialization of every integer counter in the suite, in
/// vantage order — the byte-comparison hook for the inference determinism
/// test and the bench_inference_scaling product digest.
[[nodiscard]] std::string canonical_serialize(const AnalysisSuite& suite);

}  // namespace bgpolicy::core
