#include "core/persistence.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/stats.h"

namespace bgpolicy::core {

PersistenceStudy run_persistence_study(sim::ChurnSimulator& churn,
                                       AsNumber provider,
                                       const topo::AsGraph& annotated,
                                       const RelationshipOracle& rels,
                                       std::size_t steps) {
  PersistenceStudy out;
  out.provider = provider;

  struct PrefixHistory {
    std::size_t present = 0;
    std::size_t sa = 0;
  };
  std::unordered_map<bgp::Prefix, PrefixHistory> history;

  // Memoized customer-cone membership.
  std::unordered_map<AsNumber, bool> cone_cache;
  const auto in_cone = [&](AsNumber origin) {
    const auto it = cone_cache.find(origin);
    if (it != cone_cache.end()) return it->second;
    const bool result = annotated.contains(origin) &&
                        annotated.in_customer_cone(provider, origin);
    cone_cache.emplace(origin, result);
    return result;
  };

  const auto snapshot = [&](std::size_t step) {
    Snapshot snap;
    snap.step = step;
    for (const auto& [prefix, route] : churn.watched(provider)) {
      ++snap.total_prefixes;
      const AsNumber origin = route.origin_as();
      if (origin == provider || !in_cone(origin)) continue;
      ++snap.customer_prefixes;
      PrefixHistory& h = history[prefix];
      ++h.present;
      if (rels(provider, route.learned_from) != RelKind::kCustomer) {
        ++snap.sa_prefixes;
        ++h.sa;
      }
    }
    out.series.push_back(snap);
  };

  churn.run_initial();
  snapshot(0);
  for (std::size_t step = 1; step < steps; ++step) {
    churn.step();
    snapshot(step);
  }

  // Fig. 7: uptime histogram over ever-SA prefixes.
  std::map<std::size_t, UptimeBucket> buckets;
  for (const auto& [prefix, h] : history) {
    if (h.sa == 0) continue;
    ++out.ever_sa;
    UptimeBucket& bucket = buckets[h.present];
    bucket.uptime = h.present;
    if (h.sa == h.present) {
      ++bucket.remaining_sa;
    } else {
      ++bucket.shifted;
      ++out.shifted_total;
    }
  }
  out.uptime_histogram.reserve(buckets.size());
  for (const auto& [uptime, bucket] : buckets) {
    out.uptime_histogram.push_back(bucket);
  }
  out.percent_shifted = util::percent(out.shifted_total, out.ever_sa);
  return out;
}

}  // namespace bgpolicy::core
