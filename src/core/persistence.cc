#include "core/persistence.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/parallel.h"
#include "util/stats.h"

namespace bgpolicy::core {

namespace {

/// The slice of one watched-table route the SA analysis needs — recorded
/// per step while churn runs so snapshots can be analyzed after (and in
/// parallel with respect to) each other.
struct RouteObservation {
  bgp::Prefix prefix;
  AsNumber origin;
  AsNumber learned_from;
};

/// Per-snapshot analysis output: the Fig. 6 counters plus the (prefix,
/// was-SA) pairs feeding the cross-step prefix histories.
struct SnapshotAnalysis {
  Snapshot snap;
  std::vector<std::pair<bgp::Prefix, bool>> customer_observations;
};

}  // namespace

PersistenceStudy run_persistence_study(sim::ChurnSimulator& churn,
                                       AsNumber provider,
                                       const topo::AsGraph& annotated,
                                       const RelationshipOracle& rels,
                                       std::size_t steps, std::size_t threads,
                                       const util::Executor* executor) {
  PersistenceStudy out;
  out.provider = provider;

  // One executor for the whole study: churn re-propagation below and the
  // sharded snapshot analysis reuse the same workers.  The simulator only
  // borrows it — unhook before returning (on every path), since `exec` may
  // be the function-local one-shot.
  std::unique_ptr<util::Executor> owned;
  const util::Executor& exec =
      util::executor_or(executor, threads, std::max<std::size_t>(steps, 1),
                        owned);
  churn.set_executor(&exec);
  struct ExecutorLease {
    sim::ChurnSimulator& churn;
    ~ExecutorLease() { churn.set_executor(nullptr); }
  } lease{churn};

  // Phase 1 (sequential): drive the churn simulator and record the compact
  // observation list per step.  Stepping mutates the simulator, so this
  // phase cannot shard; everything downstream of it can.
  std::vector<std::vector<RouteObservation>> recorded;
  recorded.reserve(steps);
  const auto record = [&] {
    std::vector<RouteObservation> observations;
    const auto& watched = churn.watched(provider);
    observations.reserve(watched.size());
    for (const auto& [prefix, route] : watched) {
      observations.push_back({prefix, route.origin_as(), route.learned_from});
    }
    recorded.push_back(std::move(observations));
  };
  churn.run_initial();
  record();
  for (std::size_t step = 1; step < steps; ++step) {
    churn.step();
    record();
  }

  // Memoized customer-cone membership, computed once per distinct origin in
  // step order so the sharded analysis only reads it.
  std::unordered_map<AsNumber, bool> cone;
  for (const auto& observations : recorded) {
    for (const RouteObservation& obs : observations) {
      if (cone.contains(obs.origin)) continue;
      cone.emplace(obs.origin,
                   annotated.contains(obs.origin) &&
                       annotated.in_customer_cone(provider, obs.origin));
    }
  }

  // Phase 2 (sharded over snapshots): each step's SA analysis is a pure
  // function of its recorded observations; snapshots merge in step order.
  struct PrefixHistory {
    std::size_t present = 0;
    std::size_t sa = 0;
  };
  std::unordered_map<bgp::Prefix, PrefixHistory> history;
  out.series.reserve(recorded.size());
  util::shard_and_merge(
      exec, recorded.size(),
      [&](std::size_t step) {
        SnapshotAnalysis analysis;
        analysis.snap.step = step;
        for (const RouteObservation& obs : recorded[step]) {
          ++analysis.snap.total_prefixes;
          if (obs.origin == provider || !cone.at(obs.origin)) continue;
          ++analysis.snap.customer_prefixes;
          const bool sa = rels(provider, obs.learned_from) != RelKind::kCustomer;
          if (sa) ++analysis.snap.sa_prefixes;
          analysis.customer_observations.emplace_back(obs.prefix, sa);
        }
        return analysis;
      },
      [&](std::size_t, SnapshotAnalysis& analysis) {
        out.series.push_back(analysis.snap);
        for (const auto& [prefix, sa] : analysis.customer_observations) {
          PrefixHistory& h = history[prefix];
          ++h.present;
          if (sa) ++h.sa;
        }
      });

  // Fig. 7: uptime histogram over ever-SA prefixes.
  std::map<std::size_t, UptimeBucket> buckets;
  for (const auto& [prefix, h] : history) {
    if (h.sa == 0) continue;
    ++out.ever_sa;
    UptimeBucket& bucket = buckets[h.present];
    bucket.uptime = h.present;
    if (h.sa == h.present) {
      ++bucket.remaining_sa;
    } else {
      ++bucket.shifted;
      ++out.shifted_total;
    }
  }
  out.uptime_histogram.reserve(buckets.size());
  for (const auto& [uptime, bucket] : buckets) {
    out.uptime_histogram.push_back(bucket);
  }
  out.percent_shifted = util::percent(out.shifted_total, out.ever_sa);
  return out;
}

std::string canonical_serialize(const PersistenceStudy& study) {
  std::string out = "provider=" + util::to_string(study.provider) + "\n";
  for (const Snapshot& snap : study.series) {
    out += "step=" + std::to_string(snap.step) +
           " total=" + std::to_string(snap.total_prefixes) +
           " customer=" + std::to_string(snap.customer_prefixes) +
           " sa=" + std::to_string(snap.sa_prefixes) + "\n";
  }
  for (const UptimeBucket& bucket : study.uptime_histogram) {
    out += "uptime=" + std::to_string(bucket.uptime) +
           " remaining=" + std::to_string(bucket.remaining_sa) +
           " shifted=" + std::to_string(bucket.shifted) + "\n";
  }
  out += "ever_sa=" + std::to_string(study.ever_sa) +
         " shifted_total=" + std::to_string(study.shifted_total) + "\n";
  return out;
}

}  // namespace bgpolicy::core
