// AS-path prepending analysis (paper Section 2.2.2 lists prepending among
// the export-policy knobs; this module measures how often it shows up in
// observed tables).
//
// A prepended path carries consecutive duplicates of one AS
// ("701 701 701 64512"); the duplicate count minus one is the prepend
// depth.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "bgp/table.h"
#include "util/ids.h"
#include "util/stats.h"

namespace bgpolicy::core {

struct PrependingAnalysis {
  util::AsNumber vantage;
  std::size_t total_routes = 0;
  std::size_t prepended_routes = 0;
  double percent_prepended = 0.0;
  /// ASes observed prepending anywhere in a path.
  std::unordered_set<util::AsNumber> prepending_ases;
  /// Prepend depth (extra copies) -> number of routes.
  util::Histogram depth_histogram;
};

[[nodiscard]] PrependingAnalysis analyze_prepending(const bgp::BgpTable& table);

/// The maximum consecutive-duplicate run length minus one ("prepend
/// depth") of a path; 0 for unprepended paths.  Exposed for tests.
[[nodiscard]] std::size_t prepend_depth(const bgp::AsPath& path);

}  // namespace bgpolicy::core
