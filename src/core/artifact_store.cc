#include "core/artifact_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <system_error>
#include <vector>

namespace bgpolicy::core {

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x00000100000001B3ULL;  // FNV prime
  }
  return hash;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
/// A second, independent basis so the two 64-bit halves of the 128-bit
/// digest never cancel each other.
constexpr std::uint64_t kFnvOffsetAlt = 0x6c62272e07bb0142ULL;

void append_hex64(std::string& out, std::uint64_t value) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kHex[(value >> shift) & 0xF];
  }
}

}  // namespace

std::string stable_digest_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(32);
  append_hex64(out, fnv1a64(bytes, kFnvOffset));
  append_hex64(out, fnv1a64(bytes, kFnvOffsetAlt));
  return out;
}

std::string stable_digest_hex(std::string_view text) {
  return stable_digest_hex(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

ArtifactStore::ArtifactStore(std::filesystem::path root)
    : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

std::filesystem::path ArtifactStore::path_for(std::string_view key) const {
  return root_ / (stable_digest_hex(key) + ".art");
}

std::optional<std::vector<std::uint8_t>> ArtifactStore::load(
    std::string_view key) const {
  const std::filesystem::path path = path_for(key);
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size < 0) return std::nullopt;
    in.seekg(0, std::ios::beg);
    bytes.resize(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!in) return std::nullopt;
  }
  // Best-effort access-time bump: gc() orders eviction by this timestamp
  // (filesystem atime is unreliable — often mounted noatime), so a read
  // counts as recent use.  Failure is harmless.
  std::error_code ignored;
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now(), ignored);
  return bytes;
}

bool ArtifactStore::put(std::string_view key,
                        std::span<const std::uint8_t> bytes) const {
  const std::filesystem::path target = path_for(key);
  // Temp name unique per writer: a concurrent writer of the same key races
  // only at the final rename, which atomically installs one of two
  // identical files.  (Even a pathological temp collision only yields
  // bytes the codec checksum rejects — a miss, never an error.)
  std::filesystem::path temp = target;
  temp += ".tmp" +
          std::to_string(static_cast<unsigned long long>(
              std::chrono::steady_clock::now().time_since_epoch().count())) +
          "." + std::to_string(static_cast<unsigned long long>(
                    reinterpret_cast<std::uintptr_t>(this)));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      out.close();
      std::error_code ignored;
      std::filesystem::remove(temp, ignored);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, target, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(temp, ignored);
    return false;
  }
  return true;
}

bool ArtifactStore::contains(std::string_view key) const {
  std::error_code ec;
  return std::filesystem::exists(path_for(key), ec);
}

bool ArtifactStore::erase(std::string_view key) const {
  std::error_code ec;
  return std::filesystem::remove(path_for(key), ec);
}

std::size_t ArtifactStore::size() const {
  std::size_t count = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(root_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".art") ++count;
  }
  return count;
}

std::uint64_t ArtifactStore::total_bytes() const {
  std::uint64_t total = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(root_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() != ".art") continue;
    std::error_code size_ec;
    const std::uintmax_t size = it->file_size(size_ec);
    if (!size_ec) total += size;
  }
  return total;
}

// ------------------------------------------------------------------- pins --

namespace {

std::filesystem::path pin_path_for(const std::filesystem::path& art_path);

}  // namespace

std::vector<ArtifactStore::Entry> ArtifactStore::list() const {
  std::vector<Entry> entries;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(root_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() != ".art") continue;
    std::error_code entry_ec;
    Entry entry;
    entry.path = it->path();
    entry.bytes = it->file_size(entry_ec);
    if (entry_ec) continue;
    entry.accessed = it->last_write_time(entry_ec);
    if (entry_ec) continue;
    std::error_code pin_ec;
    entry.pinned = std::filesystem::exists(pin_path_for(entry.path), pin_ec);
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.path.filename() < b.path.filename();
            });
  return entries;
}

namespace {

std::filesystem::path pin_path_for(const std::filesystem::path& art_path) {
  std::filesystem::path pin = art_path;
  pin.replace_extension(".pin");
  return pin;
}

}  // namespace

bool ArtifactStore::pin(std::string_view key) const {
  std::ofstream out(pin_path_for(path_for(key)),
                    std::ios::binary | std::ios::trunc);
  return static_cast<bool>(out);
}

bool ArtifactStore::unpin(std::string_view key) const {
  std::error_code ec;
  return std::filesystem::remove(pin_path_for(path_for(key)), ec);
}

bool ArtifactStore::pinned(std::string_view key) const {
  std::error_code ec;
  return std::filesystem::exists(pin_path_for(path_for(key)), ec);
}

std::size_t ArtifactStore::clear_stale_pins(std::chrono::seconds max_age) const {
  const auto now = std::filesystem::file_time_type::clock::now();
  std::size_t cleared = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(root_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() != ".pin") continue;
    std::error_code entry_ec;
    const auto written = it->last_write_time(entry_ec);
    if (entry_ec) continue;
    if (now - written >= max_age) {
      std::error_code remove_ec;
      if (std::filesystem::remove(it->path(), remove_ec)) ++cleared;
    }
  }
  return cleared;
}

// --------------------------------------------------------------------- gc --

ArtifactStore::GcResult ArtifactStore::gc(std::uint64_t max_bytes,
                                          std::chrono::seconds min_age) const {
  struct Entry {
    std::filesystem::path path;
    std::uint64_t bytes = 0;
    std::filesystem::file_time_type accessed;
  };

  GcResult result;
  const auto now = std::filesystem::file_time_type::clock::now();
  std::vector<Entry> evictable;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(root_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() != ".art") continue;
    std::error_code entry_ec;
    const std::uintmax_t bytes = it->file_size(entry_ec);
    if (entry_ec) continue;
    const auto accessed = it->last_write_time(entry_ec);
    if (entry_ec) continue;
    ++result.scanned;
    result.bytes_before += bytes;
    std::error_code pin_ec;
    if (std::filesystem::exists(pin_path_for(it->path()), pin_ec)) {
      ++result.pinned_kept;
      continue;
    }
    if (now - accessed < min_age) continue;
    evictable.push_back({it->path(), bytes, accessed});
  }
  result.bytes_after = result.bytes_before;
  if (result.bytes_before <= max_bytes) return result;

  // Oldest access first; file-name tie-break keeps the order stable when
  // timestamps collide (coarse filesystem clocks).
  std::sort(evictable.begin(), evictable.end(),
            [](const Entry& a, const Entry& b) {
              if (a.accessed != b.accessed) return a.accessed < b.accessed;
              return a.path.filename() < b.path.filename();
            });
  for (const Entry& entry : evictable) {
    if (result.bytes_after <= max_bytes) break;
    std::error_code remove_ec;
    if (std::filesystem::remove(entry.path, remove_ec)) {
      ++result.evicted;
      result.bytes_after -= entry.bytes;
    }
  }
  return result;
}

}  // namespace bgpolicy::core
