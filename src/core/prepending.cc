#include "core/prepending.h"

namespace bgpolicy::core {

std::size_t prepend_depth(const bgp::AsPath& path) {
  const auto hops = path.hops();
  std::size_t best = 0;
  std::size_t run = 0;
  for (std::size_t i = 1; i < hops.size(); ++i) {
    if (hops[i] == hops[i - 1]) {
      ++run;
      best = std::max(best, run);
    } else {
      run = 0;
    }
  }
  return best;
}

PrependingAnalysis analyze_prepending(const bgp::BgpTable& table) {
  PrependingAnalysis out;
  out.vantage = table.owner();
  table.for_each([&](const bgp::Prefix&, std::span<const bgp::Route> routes) {
    for (const bgp::Route& route : routes) {
      if (route.path.empty()) continue;
      ++out.total_routes;
      const std::size_t depth = prepend_depth(route.path);
      if (depth == 0) continue;
      ++out.prepended_routes;
      out.depth_histogram.add(static_cast<std::int64_t>(depth));
      const auto hops = route.path.hops();
      for (std::size_t i = 1; i < hops.size(); ++i) {
        if (hops[i] == hops[i - 1]) out.prepending_ases.insert(hops[i]);
      }
    }
  });
  out.percent_prepended =
      util::percent(out.prepended_routes, out.total_routes);
  return out;
}

}  // namespace bgpolicy::core
