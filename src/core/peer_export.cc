#include "core/peer_export.h"

#include <unordered_map>
#include <unordered_set>

#include "util/stats.h"

namespace bgpolicy::core {

PeerExportAnalysis analyze_peer_export(const bgp::BgpTable& table,
                                       AsNumber provider,
                                       const std::vector<AsNumber>& peers) {
  PeerExportAnalysis out;
  out.provider = provider;
  out.peer_count = peers.size();

  const std::unordered_set<AsNumber> peer_set(peers.begin(), peers.end());
  std::unordered_map<AsNumber, PeerExportRow> rows;
  for (const AsNumber peer : peers) rows[peer].peer = peer;

  table.for_each([&](const bgp::Prefix& prefix, std::span<const bgp::Route>) {
    const bgp::Route* best = table.best(prefix);
    if (best == nullptr) return;
    const AsNumber origin = best->origin_as();
    if (!peer_set.contains(origin)) return;
    PeerExportRow& row = rows.at(origin);
    ++row.own_prefixes;
    if (best->path.length() == 1 && best->learned_from == origin) ++row.direct;
  });

  for (const AsNumber peer : peers) {
    PeerExportRow& row = rows.at(peer);
    row.announces_all = row.own_prefixes > 0 && row.direct == row.own_prefixes;
    row.announces_most =
        row.own_prefixes > 0 &&
        static_cast<double>(row.direct) >=
            0.8 * static_cast<double>(row.own_prefixes);
    if (row.announces_all) ++out.announcing_all;
    if (row.announces_most) ++out.announcing_most;
    out.rows.push_back(row);
  }
  out.percent_announcing = util::percent(out.announcing_all, out.peer_count);
  return out;
}

}  // namespace bgpolicy::core
