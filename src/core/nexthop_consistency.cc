#include "core/nexthop_consistency.h"

#include <algorithm>
#include <map>

#include "util/stats.h"

namespace bgpolicy::core {

NextHopConsistency analyze_nexthop_consistency(const bgp::BgpTable& table) {
  NextHopConsistency out;
  out.vantage = table.owner();

  // Pass 1: local-pref histogram per next-hop AS.
  std::unordered_map<util::AsNumber, std::map<std::uint32_t, std::size_t>>
      histograms;
  table.for_each([&](const bgp::Prefix&, std::span<const bgp::Route> routes) {
    for (const bgp::Route& route : routes) {
      ++histograms[route.learned_from][route.local_pref];
    }
  });
  for (const auto& [neighbor, histogram] : histograms) {
    const auto mode = std::max_element(
        histogram.begin(), histogram.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    out.modal_pref.emplace(neighbor, mode->first);
  }

  // Pass 2: score each route against its neighbor's mode.
  table.for_each([&](const bgp::Prefix&, std::span<const bgp::Route> routes) {
    for (const bgp::Route& route : routes) {
      ++out.total_routes;
      if (route.local_pref == out.modal_pref.at(route.learned_from)) {
        ++out.consistent_routes;
      }
    }
  });
  out.percent_consistent =
      util::percent(out.consistent_routes, out.total_routes);
  return out;
}

}  // namespace bgpolicy::core
