// Canonical experiment scenarios.
//
// `internet2002()` is the workload every bench runs: a synthetic Internet
// sized to keep a full propagation under ~10s while preserving the paper's
// structure (Tier-1 clique of 10 named after the real Tier-1s, the paper's
// vantage and vantage-peer sets, heavy-tailed prefix counts).  `small()` is
// the fast variant the test suite uses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/prefix.h"
#include "rpsl/generator.h"
#include "sim/policy_gen.h"
#include "sim/propagation.h"
#include "topology/prefix_alloc.h"
#include "topology/topology_gen.h"

namespace bgpolicy::core {

/// One per-AS policy edit applied on top of the generated policies during
/// Synthesize (after sim::generate_policies, before originations are
/// flattened).  Overrides are part of the scenario's upstream cache
/// identity (scenario_cache_key), so two scenarios differing only in an
/// override are distinct worlds.  The spec language's `override` block
/// (docs/SCENARIOS.md) parses into these; they can equally be pushed onto
/// a constructor-built Scenario in code.
struct PolicyOverride {
  enum class Kind : std::uint8_t {
    /// Import: `as` ranks routes from `neighbor` at local-pref `value`.
    kPreferNeighbor = 0,
    /// Import: `as` pins `prefix` to local-pref `value` for any neighbor.
    kPreferPrefix = 1,
    /// Export: `as` does not announce `prefix` (or, when absent, any
    /// route) to `neighbor` — selective announcement.
    kDeny = 2,
    /// Export: `as` prepends itself `value` extra times toward `neighbor`.
    kPrepend = 3,
    /// `as` conditionally advertises `prefix` to `neighbor` only while its
    /// session to `watch` is down (failover backup announcement).
    kConditional = 4,
    /// Enables (`value` != 0) or disables the relationship-tagging
    /// community scheme at `as`.
    kTagging = 5,
    /// Export: `as` announces `prefix` (or any route when absent) to
    /// `neighbor` tagged "do not propagate to your providers".
    kNoExportUpstream = 6,
  };

  Kind kind = Kind::kPreferNeighbor;
  std::uint32_t as = 0;
  std::uint32_t neighbor = 0;
  std::uint32_t watch = 0;
  std::optional<bgp::Prefix> prefix;
  std::uint32_t value = 0;

  friend bool operator==(const PolicyOverride&, const PolicyOverride&) =
      default;
};

/// A hand-written topology replacing the synthetic generator: the ASes,
/// their relationships, and the originated prefixes are listed explicitly
/// (the spec language's `topology { explicit ... }` mode).  Synthesize
/// builds the Topology/PrefixPlan directly from these instead of running
/// topo::generate_topology / topo::allocate_prefixes; policy generation
/// still runs over the explicit graph with the scenario's policy_params.
/// The same prefix may be originated by several ASes (anycast / MOAS —
/// see docs/SCENARIOS.md for how verification treats it).
struct ExplicitWorld {
  struct As {
    std::uint32_t number = 0;
    topo::Tier tier = topo::Tier::kStub;
    friend bool operator==(const As&, const As&) = default;
  };
  /// Provider->customer edge, or a peering when `peer` is set.
  struct Link {
    std::uint32_t a = 0;  ///< provider (or first peer)
    std::uint32_t b = 0;  ///< customer (or second peer)
    bool peer = false;
    friend bool operator==(const Link&, const Link&) = default;
  };
  struct Origination {
    std::uint32_t origin = 0;
    bgp::Prefix prefix;
    friend bool operator==(const Origination&, const Origination&) = default;
  };

  std::vector<As> ases;
  std::vector<Link> links;
  std::vector<Origination> originations;

  friend bool operator==(const ExplicitWorld&, const ExplicitWorld&) = default;
};

struct Scenario {
  std::string name;
  topo::GeneratorParams topo_params;
  topo::PrefixAllocParams alloc_params;
  sim::PolicyGenParams policy_params;
  rpsl::IrrGenParams irr_params;
  sim::PropagationOptions propagation;

  /// Looking-glass vantages (full Adj-RIB-In recorded) — the paper's 15.
  std::vector<std::uint32_t> looking_glass;
  /// Additional best-route-only vantages (the rest of Table 5's 16 ASes).
  std::vector<std::uint32_t> best_only;
  /// The 9 ASes whose relationships get community-verified (Table 4).
  std::vector<std::uint32_t> verification_ases;
  /// Collector peering breadth beyond the Tier-1s.
  std::size_t collector_tier2_peers = 25;
  std::size_t collector_tier3_peers = 10;

  /// Hand-written topology + originations replacing the generator (spec
  /// `topology { explicit ... }`); topo_params/alloc_params are ignored
  /// when set.
  std::optional<ExplicitWorld> explicit_world;
  /// Per-AS policy edits applied after policy generation, in order.
  std::vector<PolicyOverride> overrides;

  friend bool operator==(const Scenario&, const Scenario&) = default;

  /// The three Tier-1s the export-policy sections focus on.
  [[nodiscard]] static std::vector<std::uint32_t> focus_tier1() {
    return {1, 3549, 7018};
  }

  [[nodiscard]] static Scenario internet2002(std::uint64_t seed = 2002);
  [[nodiscard]] static Scenario small(std::uint64_t seed = 42);
};

/// Deterministic region label for Table 1 flavor (NA/Eu/Au/As with roughly
/// the paper's 42/33/3/2 split).
[[nodiscard]] std::string region_of(util::AsNumber as);

}  // namespace bgpolicy::core
