// Canonical experiment scenarios.
//
// `internet2002()` is the workload every bench runs: a synthetic Internet
// sized to keep a full propagation under ~10s while preserving the paper's
// structure (Tier-1 clique of 10 named after the real Tier-1s, the paper's
// vantage and vantage-peer sets, heavy-tailed prefix counts).  `small()` is
// the fast variant the test suite uses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpsl/generator.h"
#include "sim/policy_gen.h"
#include "sim/propagation.h"
#include "topology/prefix_alloc.h"
#include "topology/topology_gen.h"

namespace bgpolicy::core {

struct Scenario {
  std::string name;
  topo::GeneratorParams topo_params;
  topo::PrefixAllocParams alloc_params;
  sim::PolicyGenParams policy_params;
  rpsl::IrrGenParams irr_params;
  sim::PropagationOptions propagation;

  /// Looking-glass vantages (full Adj-RIB-In recorded) — the paper's 15.
  std::vector<std::uint32_t> looking_glass;
  /// Additional best-route-only vantages (the rest of Table 5's 16 ASes).
  std::vector<std::uint32_t> best_only;
  /// The 9 ASes whose relationships get community-verified (Table 4).
  std::vector<std::uint32_t> verification_ases;
  /// Collector peering breadth beyond the Tier-1s.
  std::size_t collector_tier2_peers = 25;
  std::size_t collector_tier3_peers = 10;

  /// The three Tier-1s the export-policy sections focus on.
  [[nodiscard]] static std::vector<std::uint32_t> focus_tier1() {
    return {1, 3549, 7018};
  }

  [[nodiscard]] static Scenario internet2002(std::uint64_t seed = 2002);
  [[nodiscard]] static Scenario small(std::uint64_t seed = 42);
};

/// Deterministic region label for Table 1 flavor (NA/Eu/Au/As with roughly
/// the paper's 42/33/3/2 split).
[[nodiscard]] std::string region_of(util::AsNumber as);

}  // namespace bgpolicy::core
