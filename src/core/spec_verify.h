// Executable verification of scenario specs: evaluates a parsed
// `verify` block (core/scenario_spec.h) against a materialized
// Experiment, replaying the spec's `events` script through the
// propagation engine for the route-level assertions.
//
// Route checks and the event timeline
// -----------------------------------
// `route`/`unreachable` assertions carry an optional `at <k>` clause
// selecting a timeline point: the world after the first k events of the
// spec's script (k = 0 is the initial converged world; no clause means
// "after the whole script").  The evaluator steps through the events
// once, maintaining the failed-edge set and the active origination list,
// and at each requested point runs per-prefix fixpoints for exactly the
// prefixes under assertion.  When several active originations share the
// asserted prefix (anycast / MOAS / hijack), each origination's fixpoint
// is computed independently and the vantage's winner is chosen with the
// full decision process across the candidates — an approximation that is
// exact for single-origin prefixes (see docs/SCENARIOS.md).
//
// Analysis assertions (sa_prevalence, homing_multihomed, import_typical,
// inference_accuracy) read the Experiment's Analyze/Infer artifacts;
// `digest` assertions re-encode the pinned stage's artifact with the
// store codec and compare `stable_digest_hex`, so a digest pin in a .scn
// file fails exactly when the artifact-store digest would change.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/scenario_spec.h"

namespace bgpolicy::core {

/// Outcome of one verify assertion.
struct CheckResult {
  SpecCheck check;
  bool passed = false;
  /// Human-readable evidence: expected vs. observed, ready for a
  /// "<source>:<line>: <detail>" report line.
  std::string detail;
};

/// Outcome of a whole verify block, in file order.
struct VerifyReport {
  /// The spec's source label (file path) — report prefixes.
  std::string source;
  std::vector<CheckResult> results;

  [[nodiscard]] std::size_t failure_count() const;
  [[nodiscard]] bool all_passed() const { return failure_count() == 0; }
};

/// One-line rendering of an assertion in spec syntax (for reports).
[[nodiscard]] std::string describe_check(const SpecCheck& check);

/// Evaluates every assertion of `spec` against `experiment`, running
/// whatever stages the assertions need (the experiment's scenario must be
/// the spec's scenario).  Never throws on a failing assertion — failures
/// are data in the report; throws only on infrastructure errors
/// (stage execution itself failing).
[[nodiscard]] VerifyReport run_spec_checks(const ScenarioSpec& spec,
                                           Experiment& experiment);

}  // namespace bgpolicy::core
