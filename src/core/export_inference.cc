#include "core/export_inference.h"

#include <unordered_set>

#include "util/stats.h"

namespace bgpolicy::core {

namespace {

// Shared Phase 2/3 loop: `classify(route)` returns true when the route is a
// customer route (non-SA evidence).
SaAnalysis analyze(const bgp::BgpTable& table, AsNumber provider,
                   const topo::AsGraph& annotated,
                   const RelationshipOracle& rels, bool use_full_rib) {
  SaAnalysis out;
  out.provider = provider;

  // Memoized Phase 2: origin -> in customer cone of `provider`?
  std::unordered_map<AsNumber, bool> cone_cache;
  const auto in_cone = [&](AsNumber origin) {
    const auto it = cone_cache.find(origin);
    if (it != cone_cache.end()) return it->second;
    const bool result =
        annotated.contains(origin) && annotated.in_customer_cone(provider, origin);
    cone_cache.emplace(origin, result);
    return result;
  };

  table.for_each([&](const bgp::Prefix& prefix,
                     std::span<const bgp::Route> routes) {
    if (routes.empty()) return;
    const bgp::Route* best = table.best(prefix);
    if (best == nullptr) return;
    const AsNumber origin = best->origin_as();
    if (origin == provider) return;
    if (!in_cone(origin)) return;  // Phase 2: not a customer's prefix
    ++out.customer_prefixes;

    // Phase 3: next-hop relationship of the best route (or, for the
    // full-RIB ablation, of every route).
    bool has_customer_route = false;
    if (use_full_rib) {
      for (const bgp::Route& route : routes) {
        const auto rel = rels(provider, route.learned_from);
        if (rel == RelKind::kCustomer) {
          has_customer_route = true;
          break;
        }
      }
    } else {
      const auto rel = rels(provider, best->learned_from);
      has_customer_route = (rel == RelKind::kCustomer);
    }
    if (!has_customer_route) {
      SaPrefix sa;
      sa.prefix = prefix;
      sa.origin = origin;
      sa.next_hop = best->learned_from;
      sa.next_hop_rel =
          rels(provider, best->learned_from).value_or(RelKind::kPeer);
      out.sa_prefixes.push_back(sa);
      ++out.sa_count;
    }
  });

  out.percent_sa = util::percent(out.sa_count, out.customer_prefixes);
  return out;
}

}  // namespace

SaAnalysis infer_sa_prefixes(const bgp::BgpTable& table, AsNumber provider,
                             const topo::AsGraph& annotated,
                             const RelationshipOracle& rels) {
  return analyze(table, provider, annotated, rels, /*use_full_rib=*/false);
}

SaAnalysis sa_from_full_rib(const bgp::BgpTable& full_rib, AsNumber provider,
                            const topo::AsGraph& annotated,
                            const RelationshipOracle& rels) {
  return analyze(full_rib, provider, annotated, rels, /*use_full_rib=*/true);
}

std::vector<CustomerSa> sa_per_customer(
    const std::vector<const bgp::BgpTable*>& provider_tables,
    const std::vector<AsNumber>& providers,
    const std::vector<AsNumber>& customers, const topo::AsGraph& annotated,
    const RelationshipOracle& rels) {
  // SA sets per provider, then intersect per customer prefix.
  std::vector<std::unordered_set<bgp::Prefix>> sa_sets;
  std::vector<std::unordered_set<bgp::Prefix>> seen_sets;
  sa_sets.reserve(providers.size());
  for (std::size_t i = 0; i < providers.size(); ++i) {
    const SaAnalysis analysis =
        infer_sa_prefixes(*provider_tables[i], providers[i], annotated, rels);
    std::unordered_set<bgp::Prefix> sa;
    for (const auto& p : analysis.sa_prefixes) sa.insert(p.prefix);
    sa_sets.push_back(std::move(sa));
    std::unordered_set<bgp::Prefix> seen;
    provider_tables[i]->for_each(
        [&](const bgp::Prefix& prefix, std::span<const bgp::Route>) {
          seen.insert(prefix);
        });
    seen_sets.push_back(std::move(seen));
  }

  std::vector<CustomerSa> out;
  for (const AsNumber customer : customers) {
    CustomerSa row;
    row.customer = customer;
    // Every prefix this customer originates, as seen by any provider table.
    std::unordered_set<bgp::Prefix> prefixes;
    for (std::size_t i = 0; i < providers.size(); ++i) {
      provider_tables[i]->for_each([&](const bgp::Prefix& prefix,
                                       std::span<const bgp::Route> routes) {
        const bgp::Route* best = provider_tables[i]->best(prefix);
        if (best != nullptr && best->origin_as() == customer) {
          prefixes.insert(prefix);
        }
        (void)routes;
      });
    }
    row.prefix_count = prefixes.size();
    for (const auto& prefix : prefixes) {
      bool sa_everywhere = true;
      for (std::size_t i = 0; i < providers.size(); ++i) {
        // A prefix is SA w.r.t. provider i when it is in the SA set, or
        // absent from the table entirely (never reached the provider at
        // all); a visible customer route clears it.
        if (seen_sets[i].contains(prefix) && !sa_sets[i].contains(prefix)) {
          sa_everywhere = false;
          break;
        }
      }
      if (sa_everywhere) ++row.sa_count;
    }
    row.percent_sa = util::percent(row.sa_count, row.prefix_count);
    out.push_back(row);
  }
  return out;
}

}  // namespace bgpolicy::core
