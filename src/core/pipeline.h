// End-to-end experiment pipeline.
//
// Mirrors the paper's workflow: synthesize the Internet (substituting for
// the Nov-2002 snapshots, DESIGN.md §2), collect vantage tables, infer AS
// relationships from the observed paths [12], classify tiers [8], generate
// and parse the IRR, and expose everything the per-table analyses consume.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asrel/community_verify.h"
#include "asrel/gao_inference.h"
#include "asrel/relationships.h"
#include "asrel/tier_classify.h"
#include "core/path_index.h"
#include "core/relationship_oracle.h"
#include "core/scenario.h"
#include "rpsl/parser.h"
#include "sim/simulation.h"

namespace bgpolicy::core {

/// Non-owning view over the products the per-table analyses consume.
/// Assembled either from a finished `Pipeline` (Pipeline::view) or directly
/// from staged experiment artifacts (core::Experiment, experiment.h), so
/// every analysis runs identically against both representations.  All
/// pointers must outlive the view; all methods are const reads, safe to
/// call concurrently.
struct ExperimentView {
  const sim::SimResult* sim = nullptr;
  const std::vector<rpsl::AutNum>* irr_objects = nullptr;
  const asrel::InferredRelationships* inferred = nullptr;
  const topo::AsGraph* inferred_graph = nullptr;
  const asrel::TierAssignment* tiers = nullptr;
  const PathIndex* paths = nullptr;

  /// A vantage table for `as`: the looking-glass table when recorded, else
  /// the best-only table.  Throws std::out_of_range when neither exists.
  [[nodiscard]] const bgp::BgpTable& table_for(AsNumber as) const;

  [[nodiscard]] bool has_table(AsNumber as) const;

  /// Oracle over inferred relationships (what the paper used).
  [[nodiscard]] RelationshipOracle inferred_oracle() const {
    return oracle_from(*inferred);
  }

  /// Runs the Appendix community verification for one vantage (see
  /// Pipeline::community_verification).
  [[nodiscard]] asrel::CommunityVerification community_verification(
      AsNumber vantage_as) const;

  /// Neighbors of `vantage_as` whose relationship the community method
  /// confirms — Step 1 input of the Table 7 verification.
  [[nodiscard]] std::unordered_set<AsNumber> community_verified_neighbors(
      AsNumber vantage_as) const;

  /// The AutNum registered for `as`, if the IRR has one.
  [[nodiscard]] const rpsl::AutNum* irr_for(AsNumber as) const;
};

struct Pipeline {
  Scenario scenario;

  // Ground truth (what the paper could not see).
  topo::Topology topo;
  topo::PrefixPlan plan;
  sim::GeneratedPolicies gen;
  std::vector<sim::Origination> originations;

  // Observations (what the paper had).
  sim::VantageSpec vantage;
  sim::SimResult sim;
  std::string irr_text;
  std::vector<rpsl::AutNum> irr_objects;

  // Inference products.
  asrel::InferredRelationships inferred;
  topo::AsGraph inferred_graph;
  asrel::TierAssignment tiers;
  PathIndex paths;

  /// A vantage table for `as`: the looking-glass table when recorded, else
  /// the best-only table.  Throws std::out_of_range when neither exists.
  [[nodiscard]] const bgp::BgpTable& table_for(AsNumber as) const;

  [[nodiscard]] bool has_table(AsNumber as) const;

  /// Oracle over inferred relationships (what the paper used).
  [[nodiscard]] RelationshipOracle inferred_oracle() const {
    return oracle_from(inferred);
  }
  /// Oracle over ground truth (for scoring).
  [[nodiscard]] RelationshipOracle truth_oracle() const {
    return oracle_from(topo.graph);
  }

  /// Runs the Appendix community verification for one vantage, using its
  /// published IRR semantics when available and the prefix-count gap
  /// heuristic otherwise.
  [[nodiscard]] asrel::CommunityVerification community_verification(
      AsNumber vantage_as) const;

  /// Neighbors of `vantage_as` whose relationship the community method
  /// confirms (community class agrees with the path-inferred class) —
  /// Step 1 input of the Table 7 verification.
  [[nodiscard]] std::unordered_set<AsNumber> community_verified_neighbors(
      AsNumber vantage_as) const;

  /// The AutNum registered for `as`, if the IRR has one.
  [[nodiscard]] const rpsl::AutNum* irr_for(AsNumber as) const;

  /// Non-owning analysis view over this pipeline's products; the pipeline
  /// must outlive it.
  [[nodiscard]] ExperimentView view() const;
};

/// Runs the full pipeline.  Deterministic in the scenario seeds alone —
/// `scenario.propagation.threads` (overridable here) shards the simulation
/// over prefixes AND the inference stages (Gao relationship voting over
/// observed paths, path-index construction) over paths and tables, all
/// with thread-count-independent output: every product — tables, inferred
/// relationships, tiers, path index — is identical at any thread count,
/// and `threads = 1` runs the exact sequential seed program.
///
/// Compatibility wrapper: since the staged-experiment redesign this is a
/// thin assembly over core::Experiment (experiment.h) — it runs the
/// Synthesize → Simulate → Observe → Infer stages (as overlapped
/// util::TaskGraph nodes at threads >= 2, as the exact sequential seed
/// program at threads == 1) and moves their artifacts into the flat
/// Pipeline struct, byte-identical to the pre-staging monolithic run.
/// New code that wants artifact reuse, mid-stage resume, or scenario
/// sweeps should use Experiment directly.
///
/// The per-table analyses of Sections 4-5 are NOT part of the pipeline
/// run; they execute over a finished Pipeline via core::run_analysis_suite
/// (analysis_suite.h), which takes the same threads knob explicitly (or
/// through Experiment's Analyze stage).
[[nodiscard]] Pipeline run_pipeline(
    const Scenario& scenario,
    std::optional<std::size_t> threads_override = std::nullopt);

/// Looking-glass vantages of a simulation in ascending AS order — the
/// canonical ingest order of the inference stages.  run_pipeline and
/// bench_inference_scaling must consume tables in the same order for their
/// products to be comparable.
[[nodiscard]] std::vector<AsNumber> sorted_looking_glass(
    const sim::SimResult& sim);

/// The canonical PathIndex table-source list for a simulation: collector
/// first, then each looking glass (ascending AS order) with its vantage AS
/// prepended.  `sim` must outlive the returned pointers.
[[nodiscard]] std::vector<PathIndex::TableSource> inference_table_sources(
    const sim::SimResult& sim);

}  // namespace bgpolicy::core
