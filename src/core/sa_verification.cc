#include "core/sa_verification.h"

#include "util/stats.h"

namespace bgpolicy::core {

namespace {

// True when some observed path of `origin`'s runs provider -> ... -> origin
// strictly downhill, with the provider's first hop community-verified.
bool has_active_customer_path(
    AsNumber provider, AsNumber origin, const PathIndex& paths,
    const std::unordered_set<AsNumber>& verified_neighbors,
    const RelationshipOracle& rels) {
  for (const auto path : paths.paths_from_origin(origin)) {
    // Locate the provider on the path.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] != provider) continue;
      // Direct adjacency provider -> origin?
      if (i + 1 == path.size() - 1 && path[i + 1] == origin) {
        if (verified_neighbors.contains(origin)) return true;
        continue;
      }
      // First edge must be community-verified, and every subsequent edge
      // must descend provider-to-customer (export-rule constraint from
      // Section 2.2: an AS cannot announce a peer/provider path upward).
      if (!verified_neighbors.contains(path[i + 1])) continue;
      bool downhill = true;
      for (std::size_t j = i; j + 1 < path.size(); ++j) {
        if (rels(path[j], path[j + 1]) != RelKind::kCustomer) {
          downhill = false;
          break;
        }
      }
      if (downhill) return true;
    }
  }
  return false;
}

}  // namespace

SaVerification verify_sa_prefixes(
    const SaAnalysis& analysis, const PathIndex& paths,
    const std::unordered_set<AsNumber>& community_verified_neighbors,
    const RelationshipOracle& rels) {
  SaVerification out;
  out.provider = analysis.provider;
  out.sa_total = analysis.sa_prefixes.size();

  for (const SaPrefix& sa : analysis.sa_prefixes) {
    // Step 1: next-hop relationship confirmed by communities.
    if (!community_verified_neighbors.contains(sa.next_hop)) {
      ++out.step1_failures;
      continue;
    }
    // Step 2: direct customers are settled by Step 1; indirect ones need an
    // active, verified customer path.
    const bool direct =
        rels(analysis.provider, sa.origin) == RelKind::kCustomer &&
        community_verified_neighbors.contains(sa.origin);
    if (!direct &&
        !has_active_customer_path(analysis.provider, sa.origin, paths,
                                  community_verified_neighbors, rels)) {
      ++out.step2_failures;
      continue;
    }
    ++out.verified;
  }
  out.percent_verified = util::percent(out.verified, out.sa_total);
  return out;
}

}  // namespace bgpolicy::core
