// Export policies toward peers (paper Section 5.2, Table 10).
//
// For a provider u and each of its peers P: do P's own prefixes arrive at
// u directly from P (best-route path exactly [P]), or only via third
// parties / not at all?  The paper counts a peer as "announcing its
// prefixes" when all of its own prefixes arrive directly, and notes that
// most of the exceptions still announce the majority.
#pragma once

#include <vector>

#include "bgp/table.h"
#include "core/relationship_oracle.h"
#include "topology/as_graph.h"

namespace bgpolicy::core {

struct PeerExportRow {
  AsNumber peer;
  std::size_t own_prefixes = 0;   ///< prefixes originated by the peer, seen at u
  std::size_t direct = 0;         ///< arriving with path == [peer]
  bool announces_all = false;
  bool announces_most = false;  ///< >= 80% direct
};

struct PeerExportAnalysis {
  AsNumber provider;
  std::size_t peer_count = 0;
  std::size_t announcing_all = 0;
  std::size_t announcing_most = 0;  ///< includes the announcing_all peers
  double percent_announcing = 0.0;  ///< the Table 10 number (all-direct)
  std::vector<PeerExportRow> rows;
};

/// `peers` is the provider's peer list (from the annotated graph or
/// inferred relationships); `table` is the provider's table (full RIB or
/// best-only — best routes are what get classified).
[[nodiscard]] PeerExportAnalysis analyze_peer_export(
    const bgp::BgpTable& table, AsNumber provider,
    const std::vector<AsNumber>& peers);

}  // namespace bgpolicy::core
