// Connectivity vs reachability (the paper's impact claim, Sections 1 and
// 5.1: "the selective announcement routing policies imply that there are
// much less available paths in the Internet than shown in the AS
// connectivity graph").
//
// For every customer prefix in a vantage AS's full Adj-RIB-In we compare:
//   available — the neighbors actually offering a route (RIB-in entries);
//   potential — the neighbors that *could* offer one under export rules
//               alone: customers whose cone contains the origin, peers
//               whose cone contains the origin, and all providers.
// The shortfall (ratio < 1) quantifies how many graph paths policy has
// withdrawn from service.
#pragma once

#include <cstdint>

#include "bgp/table.h"
#include "core/relationship_oracle.h"
#include "topology/as_graph.h"
#include "util/stats.h"

namespace bgpolicy::core {

struct PathAvailability {
  AsNumber vantage;
  std::size_t customer_prefixes = 0;
  double mean_available = 0.0;
  double mean_potential = 0.0;
  /// mean_available / mean_potential; < 1 means policy removed paths.
  double availability_ratio = 0.0;
  /// Customer prefixes with exactly one available route — no failover
  /// margin at this vantage at all.
  std::size_t single_path_prefixes = 0;
  /// available-routes-per-prefix histogram.
  util::Histogram available_histogram;
};

/// `full_rib` must be a looking-glass (full Adj-RIB-In) table; `annotated`
/// carries the (typically inferred) relationships.
[[nodiscard]] PathAvailability analyze_path_availability(
    const bgp::BgpTable& full_rib, AsNumber vantage,
    const topo::AsGraph& annotated);

}  // namespace bgpolicy::core
