#include "core/analysis_suite.h"

#include <algorithm>

#include "util/parallel.h"

namespace bgpolicy::core {

namespace {

VantageAnalysis analyze_vantage(const ExperimentView& view, AsNumber as) {
  VantageAnalysis out;
  out.vantage = as;
  const bgp::BgpTable& table = view.table_for(as);
  const RelationshipOracle rels = view.inferred_oracle();

  out.sa = infer_sa_prefixes(table, as, *view.inferred_graph, rels);
  out.homing = analyze_homing(out.sa, *view.inferred_graph);
  out.causes =
      analyze_causes(out.sa, table, *view.paths, *view.inferred_graph, rels);

  if (view.sim->looking_glass.contains(as)) {
    out.looking_glass = true;
    out.import_typicality = analyze_import_typicality(table, rels);
    out.sa_verification = verify_sa_prefixes(
        out.sa, *view.paths, view.community_verified_neighbors(as), rels);
  }
  return out;
}

void append_counter(std::string& out, const char* name, std::size_t value) {
  out += ' ';
  out += name;
  out += '=';
  out += std::to_string(value);
}

}  // namespace

const VantageAnalysis* AnalysisSuite::find(AsNumber as) const {
  for (const VantageAnalysis& v : vantages) {
    if (v.vantage == as) return &v;
  }
  return nullptr;
}

std::vector<AsNumber> recorded_vantages(const sim::SimResult& sim) {
  std::vector<AsNumber> out;
  out.reserve(sim.looking_glass.size() + sim.best_only.size());
  for (const auto& [as, table] : sim.looking_glass) out.push_back(as);
  for (const auto& [as, table] : sim.best_only) out.push_back(as);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<AsNumber> recorded_vantages(const Pipeline& pipe) {
  return recorded_vantages(pipe.sim);
}

AnalysisSuite run_analysis_suite(const ExperimentView& view,
                                 std::span<const AsNumber> vantages,
                                 std::size_t threads,
                                 const util::Executor* executor) {
  AnalysisSuite suite;
  suite.vantages.reserve(vantages.size());
  // Each vantage's bundle reads only the immutable view; merging in
  // vantage order makes the suite independent of scheduling.
  std::unique_ptr<util::Executor> owned;
  const util::Executor& exec =
      util::executor_or(executor, threads, vantages.size(), owned);
  util::shard_and_merge(
      exec, vantages.size(),
      [&](std::size_t i) { return analyze_vantage(view, vantages[i]); },
      [&](std::size_t, VantageAnalysis& bundle) {
        suite.vantages.push_back(std::move(bundle));
      });
  return suite;
}

AnalysisSuite run_analysis_suite(const Pipeline& pipe,
                                 std::span<const AsNumber> vantages,
                                 std::size_t threads,
                                 const util::Executor* executor) {
  return run_analysis_suite(pipe.view(), vantages, threads, executor);
}

std::string canonical_serialize(const AnalysisSuite& suite) {
  std::string out;
  for (const VantageAnalysis& v : suite.vantages) {
    out += "as=";
    out += std::to_string(v.vantage.value());
    append_counter(out, "lg", v.looking_glass ? 1 : 0);
    append_counter(out, "sa_customer_prefixes", v.sa.customer_prefixes);
    append_counter(out, "sa_count", v.sa.sa_count);
    append_counter(out, "homing_multi", v.homing.multihomed_ases);
    append_counter(out, "homing_single", v.homing.singlehomed_ases);
    append_counter(out, "causes_splitting", v.causes.splitting);
    append_counter(out, "causes_aggregating", v.causes.aggregating);
    append_counter(out, "causes_identified", v.causes.identified);
    append_counter(out, "causes_announce", v.causes.announce_to_direct);
    append_counter(out, "causes_withheld", v.causes.withheld_from_direct);
    if (v.import_typicality) {
      append_counter(out, "import_comparable",
                     v.import_typicality->comparable_prefixes);
      append_counter(out, "import_typical",
                     v.import_typicality->typical_prefixes);
    }
    if (v.sa_verification) {
      append_counter(out, "verify_total", v.sa_verification->sa_total);
      append_counter(out, "verify_ok", v.sa_verification->verified);
      append_counter(out, "verify_step1_fail",
                     v.sa_verification->step1_failures);
      append_counter(out, "verify_step2_fail",
                     v.sa_verification->step2_failures);
    }
    out += '\n';
  }
  return out;
}

}  // namespace bgpolicy::core
