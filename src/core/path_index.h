// An index over all AS paths observed in one or more BGP tables.
//
// Backs the paper's "by searching all paths in BGP routing tables"
// operations: the active-customer-path check of the SA verification
// (Section 5.1.3, Step 2) and the direct-provider adjacency scan of the
// Case-3 cause analysis (Section 5.1.5).
//
// Construction parallelism: `add_tables` shards per-table ingest across a
// thread pool — each table's (prefix, path) observations are extracted,
// prepended, and locally deduplicated on a worker, then merged into the
// index on the calling thread *in table order* with the global dedup
// applied at merge time.  The indexed path set, adjacency set, and every
// query answer are therefore identical at any thread count (threads = 1
// runs the exact sequential ingest).  All queries are set-membership or
// any-of scans, so consumers are insensitive to path-id assignment order.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/table.h"
#include "util/ids.h"
#include "util/parallel.h"

namespace bgpolicy::core {

class PathIndex {
 public:
  /// One table to ingest; `prepend`, when set, is the vantage AS prepended
  /// to every path so looking-glass views line up with the collector's.
  struct TableSource {
    const bgp::BgpTable* table = nullptr;
    std::optional<util::AsNumber> prepend;
  };

  /// Ingests every route's AS path from `table` (deduplicated).
  void add_table(const bgp::BgpTable& table);

  /// Ingests one (prefix, path) observation directly — used for vantage
  /// tables whose own AS must be prepended to match the collector's view.
  void add_path(const bgp::Prefix& prefix,
                std::span<const util::AsNumber> path);

  /// Ingests many tables with per-table extraction sharded across
  /// `threads` workers (0 = hardware concurrency, 1 = sequential seed
  /// behavior) and a stable table-order merge — index contents are
  /// identical at any thread count.  When `executor` is given it supplies
  /// the shared pool and `threads` is ignored.
  void add_tables(std::span<const TableSource> tables, std::size_t threads,
                  const util::Executor* executor = nullptr);

  [[nodiscard]] std::size_t path_count() const { return paths_.size(); }

  /// The i-th indexed observation, in insertion order — the serialization
  /// hook for io/artifact_codec: re-feeding every (prefix, path) entry
  /// through add_path in order reconstructs an identical index.
  [[nodiscard]] const bgp::Prefix& prefix_at(std::size_t i) const {
    return entry_prefix_[i];
  }
  [[nodiscard]] std::span<const util::AsNumber> path_at(std::size_t i) const {
    return paths_[i];
  }

  /// Distinct ordered AS adjacencies across all indexed paths.
  [[nodiscard]] std::size_t adjacency_count() const {
    return adjacency_.size();
  }

  /// All distinct paths whose origin (rightmost hop) is `origin`.
  [[nodiscard]] std::vector<std::span<const util::AsNumber>>
  paths_from_origin(util::AsNumber origin) const;

  /// All distinct paths observed for a specific prefix.
  [[nodiscard]] std::vector<std::span<const util::AsNumber>> paths_for_prefix(
      const bgp::Prefix& prefix) const;

  /// True when some observed path contains `left` immediately followed by
  /// `right` (reading observer -> origin).
  [[nodiscard]] bool has_adjacency(util::AsNumber left,
                                   util::AsNumber right) const;

 private:
  /// One extracted observation, hashed and ready to merge.
  struct Extracted {
    bgp::Prefix prefix;
    std::vector<util::AsNumber> path;
    std::uint64_t key = 0;  ///< (prefix, path) dedup key
  };

  /// Installs an extracted observation unless its key was already seen.
  void install(Extracted&& entry);

  std::vector<std::vector<util::AsNumber>> paths_;
  /// Prefix of each indexed observation, parallel to paths_ (prefix_at).
  std::vector<bgp::Prefix> entry_prefix_;
  std::unordered_map<util::AsNumber, std::vector<std::size_t>> by_origin_;
  std::unordered_map<bgp::Prefix, std::vector<std::size_t>> by_prefix_;
  std::unordered_set<std::uint64_t> adjacency_;
  /// (prefix, path-hash) dedup guard.
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace bgpolicy::core
