// An index over all AS paths observed in one or more BGP tables.
//
// Backs the paper's "by searching all paths in BGP routing tables"
// operations: the active-customer-path check of the SA verification
// (Section 5.1.3, Step 2) and the direct-provider adjacency scan of the
// Case-3 cause analysis (Section 5.1.5).
#pragma once

#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/table.h"
#include "util/ids.h"

namespace bgpolicy::core {

class PathIndex {
 public:
  /// Ingests every route's AS path from `table` (deduplicated).
  void add_table(const bgp::BgpTable& table);

  /// Ingests one (prefix, path) observation directly — used for vantage
  /// tables whose own AS must be prepended to match the collector's view.
  void add_path(const bgp::Prefix& prefix,
                std::span<const util::AsNumber> path);

  [[nodiscard]] std::size_t path_count() const { return paths_.size(); }

  /// All distinct paths whose origin (rightmost hop) is `origin`.
  [[nodiscard]] std::vector<std::span<const util::AsNumber>>
  paths_from_origin(util::AsNumber origin) const;

  /// All distinct paths observed for a specific prefix.
  [[nodiscard]] std::vector<std::span<const util::AsNumber>> paths_for_prefix(
      const bgp::Prefix& prefix) const;

  /// True when some observed path contains `left` immediately followed by
  /// `right` (reading observer -> origin).
  [[nodiscard]] bool has_adjacency(util::AsNumber left,
                                   util::AsNumber right) const;

 private:
  std::vector<std::vector<util::AsNumber>> paths_;
  std::unordered_map<util::AsNumber, std::vector<std::size_t>> by_origin_;
  std::unordered_map<bgp::Prefix, std::vector<std::size_t>> by_prefix_;
  std::unordered_set<std::uint64_t> adjacency_;
  /// (prefix, path-hash) dedup guard.
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace bgpolicy::core
