// Multihomed vs single-homed distribution of SA-prefix origins
// (paper Section 5.1.5, Table 8 and Fig. 8).
#pragma once

#include <vector>

#include "core/export_inference.h"
#include "topology/as_graph.h"

namespace bgpolicy::core {

struct HomingDistribution {
  AsNumber provider;
  std::size_t multihomed_ases = 0;
  std::size_t singlehomed_ases = 0;
  double percent_multihomed = 0.0;
  double percent_singlehomed = 0.0;
};

/// Groups the SA prefixes by origin AS and classifies each origin by its
/// provider count in the annotated graph (>= 2 providers = multihomed).
[[nodiscard]] HomingDistribution analyze_homing(const SaAnalysis& analysis,
                                                const topo::AsGraph& annotated);

}  // namespace bgpolicy::core
