// Content-addressed on-disk cache for stage artifacts.
//
// The paper's methodology re-runs inference many times over one fixed
// observation corpus; the staged experiment API (experiment.h) already
// caches stage artifacts in memory, and this store extends that cache
// across process boundaries: a killed sweep re-run against the same store
// loads the artifacts it already produced and recomputes only what is
// missing.
//
// The store is a flat directory of `<digest>.art` files.  Callers address
// entries by an arbitrary key string (Experiment builds keys from the
// scenario cache key, upstream artifact digests, and stage parameters —
// see docs/ARCHITECTURE.md); the store hashes the key into the file name,
// so keys never need escaping and collisions are as unlikely as a 128-bit
// hash makes them.  Writes go through a temp file plus an atomic rename,
// so concurrent writers of the same key are safe (both write identical
// bytes) and a killed process never leaves a half-written entry under a
// live name.  Loads never throw on bad content: a missing or unreadable
// file is a miss, and decoding (io/artifact_codec.h) treats corrupted or
// version-mismatched bytes as misses upstream.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bgpolicy::core {

/// 64-bit FNV-1a over `bytes`, folded over `seed` (exposed for tests; use
/// stable_digest_hex for store-facing digests).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                                    std::uint64_t seed);

/// Stable 128-bit content digest as 32 lowercase hex characters — the
/// content address for store entries and the upstream-artifact digest the
/// staged cache keys chain on.  Depends only on the bytes, never on the
/// process or platform.
[[nodiscard]] std::string stable_digest_hex(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::string stable_digest_hex(std::string_view text);

class ArtifactStore {
 public:
  /// Opens (and creates, including parents) the store directory.  Throws
  /// std::filesystem::filesystem_error when the path cannot be created.
  explicit ArtifactStore(std::filesystem::path root);

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

  /// The file a key resolves to (whether or not it exists yet).
  [[nodiscard]] std::filesystem::path path_for(std::string_view key) const;

  /// The bytes stored under `key`, or nullopt when absent or unreadable.
  /// Content integrity is the codec's job (header magic/version/checksum).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load(
      std::string_view key) const;

  /// Atomically stores `bytes` under `key` (temp file + rename), replacing
  /// any previous entry.  Failures are swallowed: the store is a cache, a
  /// failed write only costs a future recompute.  Returns false on failure.
  bool put(std::string_view key, std::span<const std::uint8_t> bytes) const;

  [[nodiscard]] bool contains(std::string_view key) const;

  /// Removes the entry for `key`; returns true when something was removed.
  bool erase(std::string_view key) const;

  /// Number of artifacts currently on disk (diagnostics/tests).
  [[nodiscard]] std::size_t size() const;

  /// Total bytes of all artifacts currently on disk.
  [[nodiscard]] std::uint64_t total_bytes() const;

  /// One on-disk artifact as seen by a directory scan.  Keys are hashed
  /// into file names, so entries are addressed by path, not key.
  struct Entry {
    std::filesystem::path path;
    std::uint64_t bytes = 0;
    bool pinned = false;
    std::filesystem::file_time_type accessed{};
  };

  /// Every artifact currently on disk, sorted by file name (stable across
  /// runs).  Unreadable entries are skipped — the census, like gc(), is
  /// best-effort over a live directory.
  [[nodiscard]] std::vector<Entry> list() const;

  // ---- pinning: in-progress-run protection for gc() -------------------
  // A pin is a `<digest>.pin` sidecar next to the entry's file.  Runs pin
  // the Simulate chunk entries they are writing (core::Experiment) and
  // unpin when the merged stage artifact supersedes them, so a concurrent
  // gc() — possibly in another process (tools/store_gc) — never evicts the
  // chunks an in-progress run still needs for resume.  A killed run can
  // leave stale pins behind; clear_stale_pins() ages them out.

  /// Marks `key` as not-evictable; idempotent.  Returns false on IO error.
  bool pin(std::string_view key) const;
  /// Removes the pin for `key` (the entry itself is untouched).
  bool unpin(std::string_view key) const;
  [[nodiscard]] bool pinned(std::string_view key) const;
  /// Removes every pin sidecar older than `max_age`; returns how many.
  std::size_t clear_stale_pins(std::chrono::seconds max_age) const;

  // ---- gc: LRU eviction ----------------------------------------------
  struct GcResult {
    std::size_t scanned = 0;
    std::size_t evicted = 0;
    std::size_t pinned_kept = 0;
    std::uint64_t bytes_before = 0;
    std::uint64_t bytes_after = 0;
  };

  /// Evicts least-recently-accessed artifacts until the store holds at
  /// most `max_bytes` (load() bumps an entry's timestamp, so "accessed"
  /// means read or written — filesystem atime is too unreliable to trust).
  /// Never evicts pinned entries or entries younger than `min_age` (both
  /// guards protect in-progress runs; entries are immutable files, so an
  /// evicted entry only ever costs a recompute).  Safe to run while
  /// writers are active and from a different process than the writers.
  GcResult gc(std::uint64_t max_bytes,
              std::chrono::seconds min_age = std::chrono::seconds(0)) const;

 private:
  std::filesystem::path root_;
};

}  // namespace bgpolicy::core
