#include "core/path_index.h"

#include "util/parallel.h"

namespace bgpolicy::core {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_path(std::span<const util::AsNumber> path) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto as : path) h = mix(h, as.value());
  return h;
}

std::uint64_t entry_key(const bgp::Prefix& prefix,
                        std::span<const util::AsNumber> path) {
  return mix(mix(hash_path(path), prefix.network()), prefix.length());
}

std::uint64_t pack_pair(util::AsNumber a, util::AsNumber b) {
  return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
}

}  // namespace

void PathIndex::install(Extracted&& entry) {
  if (entry.path.empty()) return;
  if (!seen_.insert(entry.key).second) return;

  const std::size_t id = paths_.size();
  by_origin_[entry.path.back()].push_back(id);
  by_prefix_[entry.prefix].push_back(id);
  for (std::size_t i = 0; i + 1 < entry.path.size(); ++i) {
    adjacency_.insert(pack_pair(entry.path[i], entry.path[i + 1]));
  }
  entry_prefix_.push_back(entry.prefix);
  paths_.push_back(std::move(entry.path));
}

void PathIndex::add_path(const bgp::Prefix& prefix,
                         std::span<const util::AsNumber> path) {
  if (path.empty()) return;
  install({prefix,
           std::vector<util::AsNumber>(path.begin(), path.end()),
           entry_key(prefix, path)});
}

void PathIndex::add_table(const bgp::BgpTable& table) {
  table.for_each([&](const bgp::Prefix& prefix,
                     std::span<const bgp::Route> routes) {
    for (const bgp::Route& route : routes) {
      add_path(prefix, route.path.hops());
    }
  });
}

void PathIndex::add_tables(std::span<const TableSource> tables,
                           std::size_t threads,
                           const util::Executor* executor) {
  // Per-table extraction (prepend + hash + local dedup) is the heavy part
  // and shards cleanly; the merge replays each table's surviving entries in
  // table order through the global dedup, so the result matches the
  // sequential per-table ingest exactly.
  std::unique_ptr<util::Executor> owned;
  const util::Executor& exec =
      util::executor_or(executor, threads, tables.size(), owned);
  util::shard_and_merge(
      exec, tables.size(),
      [&](std::size_t t) {
        const TableSource& source = tables[t];
        std::vector<Extracted> out;
        std::unordered_set<std::uint64_t> local_seen;
        if (source.table == nullptr) return out;
        source.table->for_each([&](const bgp::Prefix& prefix,
                                   std::span<const bgp::Route> routes) {
          for (const bgp::Route& route : routes) {
            const auto hops = route.path.hops();
            if (hops.empty() && !source.prepend) continue;
            std::vector<util::AsNumber> path;
            path.reserve(hops.size() + (source.prepend ? 1 : 0));
            if (source.prepend) path.push_back(*source.prepend);
            path.insert(path.end(), hops.begin(), hops.end());
            const std::uint64_t key = entry_key(prefix, path);
            if (!local_seen.insert(key).second) continue;
            out.push_back({prefix, std::move(path), key});
          }
        });
        return out;
      },
      [&](std::size_t, std::vector<Extracted>& extracted) {
        for (Extracted& entry : extracted) install(std::move(entry));
      });
}

std::vector<std::span<const util::AsNumber>> PathIndex::paths_from_origin(
    util::AsNumber origin) const {
  std::vector<std::span<const util::AsNumber>> out;
  const auto it = by_origin_.find(origin);
  if (it == by_origin_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t id : it->second) out.emplace_back(paths_[id]);
  return out;
}

std::vector<std::span<const util::AsNumber>> PathIndex::paths_for_prefix(
    const bgp::Prefix& prefix) const {
  std::vector<std::span<const util::AsNumber>> out;
  const auto it = by_prefix_.find(prefix);
  if (it == by_prefix_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t id : it->second) out.emplace_back(paths_[id]);
  return out;
}

bool PathIndex::has_adjacency(util::AsNumber left, util::AsNumber right) const {
  return adjacency_.contains(pack_pair(left, right));
}

}  // namespace bgpolicy::core
