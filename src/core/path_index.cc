#include "core/path_index.h"

namespace bgpolicy::core {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_path(std::span<const util::AsNumber> path) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto as : path) h = mix(h, as.value());
  return h;
}

std::uint64_t pack_pair(util::AsNumber a, util::AsNumber b) {
  return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
}

}  // namespace

void PathIndex::add_path(const bgp::Prefix& prefix,
                         std::span<const util::AsNumber> path) {
  if (path.empty()) return;
  const std::uint64_t key =
      mix(mix(hash_path(path), prefix.network()), prefix.length());
  if (!seen_.insert(key).second) return;

  const std::size_t id = paths_.size();
  paths_.emplace_back(path.begin(), path.end());
  by_origin_[path.back()].push_back(id);
  by_prefix_[prefix].push_back(id);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    adjacency_.insert(pack_pair(path[i], path[i + 1]));
  }
}

void PathIndex::add_table(const bgp::BgpTable& table) {
  table.for_each([&](const bgp::Prefix& prefix,
                     std::span<const bgp::Route> routes) {
    for (const bgp::Route& route : routes) {
      add_path(prefix, route.path.hops());
    }
  });
}

std::vector<std::span<const util::AsNumber>> PathIndex::paths_from_origin(
    util::AsNumber origin) const {
  std::vector<std::span<const util::AsNumber>> out;
  const auto it = by_origin_.find(origin);
  if (it == by_origin_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t id : it->second) out.emplace_back(paths_[id]);
  return out;
}

std::vector<std::span<const util::AsNumber>> PathIndex::paths_for_prefix(
    const bgp::Prefix& prefix) const {
  std::vector<std::span<const util::AsNumber>> out;
  const auto it = by_prefix_.find(prefix);
  if (it == by_prefix_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t id : it->second) out.emplace_back(paths_[id]);
  return out;
}

bool PathIndex::has_adjacency(util::AsNumber left, util::AsNumber right) const {
  return adjacency_.contains(pack_pair(left, right));
}

}  // namespace bgpolicy::core
