// SA-prefix verification (paper Section 5.1.3, Table 7).
//
// An SA classification rests on two inferred facts; both are re-checked
// against independent evidence:
//   Step 1 — the provider/next-hop relationship must be confirmed by the
//            community-based method (Appendix; the caller passes the set of
//            community-verified neighbors).
//   Step 2 — the customer relationship provider->origin must be confirmed
//            by an *active* customer path: some observed route of the
//            origin's whose path runs from the provider strictly downhill
//            (provider-to-customer edges only) to the origin, with its
//            first edge community-verified.  Direct customers are settled
//            by Step 1 alone.
#pragma once

#include <unordered_set>

#include "core/export_inference.h"
#include "core/path_index.h"
#include "core/relationship_oracle.h"

namespace bgpolicy::core {

struct SaVerification {
  AsNumber provider;
  std::size_t sa_total = 0;
  std::size_t verified = 0;
  double percent_verified = 0.0;
  std::size_t step1_failures = 0;  ///< next-hop relationship unconfirmed
  std::size_t step2_failures = 0;  ///< no active verified customer path
};

[[nodiscard]] SaVerification verify_sa_prefixes(
    const SaAnalysis& analysis, const PathIndex& paths,
    const std::unordered_set<AsNumber>& community_verified_neighbors,
    const RelationshipOracle& rels);

}  // namespace bgpolicy::core
