// The `.scn` scenario spec language: a small line-oriented declarative
// format that maps onto `core::Scenario`, plus event scripts and
// expected-property assertions — so growing scenario diversity is a
// data-file PR with an executable test, not a code PR.
//
//   scenario my-world
//   base small 42            # start from a constructor (default | small |
//                            # internet2002), optional seed
//   topology  { ... }        # generator knobs, or `explicit` AS/link lists
//   prefixes  { ... }        # allocation knobs, or explicit originations
//   policy    { ... }        # policy-generation + IRR knobs
//   vantage   { ... }        # looking-glass / best-only / verification sets
//   override  { ... }        # per-AS policy edits (core::PolicyOverride)
//   events    { ... }        # withdraw / announce / fail / restore script
//   verify    { ... }        # assertions evaluated against the experiment
//
// Full grammar and semantics: docs/SCENARIOS.md.  Parsing is strict —
// unknown keys, duplicate scalar keys, malformed values, and out-of-range
// numbers are errors carrying exact line/column positions (SpecError), so
// a failing corpus file names the offending token.  The resolved scenario
// feeds `scenario_cache_key` exactly like a constructor-built one (the
// explicit world and overrides join the key), making spec-defined worlds
// first-class citizens of the artifact store.
//
// The verify evaluator lives in core/spec_verify.h; the corpus runner is
// tools/scenario_check.cc; every `scenarios/*.scn` file is registered as
// an individual ctest case.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"

namespace bgpolicy::core {

/// 1-based position of a token in the spec text.
struct SourceLoc {
  std::size_t line = 0;
  std::size_t column = 0;
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// A parse (or spec-validation) failure.  what() is
/// "<source>:<line>:<column>: <message>"; the parts are also exposed
/// individually so tests can assert exact positions.
class SpecError : public std::runtime_error {
 public:
  SpecError(std::string source, SourceLoc loc, std::string message);

  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] SourceLoc where() const { return loc_; }
  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  std::string source_;
  SourceLoc loc_;
  std::string message_;
};

/// One line of the `events` block: a scripted change applied after the
/// initial converged world, in file order (spec_verify.h executes these).
struct SpecEvent {
  enum class Kind : std::uint8_t {
    kWithdraw = 0,     ///< `withdraw <origin> <prefix>`
    kAnnounce = 1,     ///< `announce <origin> <prefix>` (hijack/anycast ok)
    kFailLink = 2,     ///< `fail <as> <as>`
    kRestoreLink = 3,  ///< `restore <as> <as>`
  };

  Kind kind = Kind::kWithdraw;
  std::uint32_t as_a = 0;  ///< origin, or first link endpoint
  std::uint32_t as_b = 0;  ///< second link endpoint
  bgp::Prefix prefix;      ///< withdraw/announce only
  SourceLoc loc;           ///< diagnostics; excluded from equality

  [[nodiscard]] bool operator==(const SpecEvent& other) const {
    return kind == other.kind && as_a == other.as_a && as_b == other.as_b &&
           prefix == other.prefix;
  }
};

/// One assertion of the `verify` block.  Kinds and their syntax are
/// documented in docs/SCENARIOS.md; spec_verify.h evaluates them.
struct SpecCheck {
  enum class Kind : std::uint8_t {
    kConverged = 0,          ///< `converged`
    kRouteVia = 1,           ///< `route V P via A [at K]`
    kRouteOrigin = 2,        ///< `route V P origin A [at K]`
    kRoutePath = 3,          ///< `route V P path A B ... [at K]`
    kUnreachable = 4,        ///< `unreachable V P [at K]`
    kSaPrevalence = 5,       ///< `sa_prevalence V LO HI`  (percent bounds)
    kHomingMultihomed = 6,   ///< `homing_multihomed V LO HI`
    kImportTypical = 7,      ///< `import_typical V LO HI`
    kInferenceAccuracy = 8,  ///< `inference_accuracy MIN`
    kDigest = 9,             ///< `digest <stage> <32-hex>`
  };

  /// at_event value meaning "after the whole event script".
  static constexpr std::size_t kAtEnd = static_cast<std::size_t>(-1);

  Kind kind = Kind::kConverged;
  std::uint32_t vantage = 0;
  bgp::Prefix prefix;
  std::uint32_t expect_as = 0;
  std::vector<std::uint32_t> expect_path;
  double lo = 0.0;
  double hi = 0.0;
  /// Timeline point for route/unreachable checks: evaluate after the
  /// first `at_event` events (0 = the initial converged world).
  std::size_t at_event = kAtEnd;
  Stage stage = Stage::kSimulate;  ///< kDigest only
  std::string digest;              ///< kDigest only (32 lowercase hex)
  SourceLoc loc;                   ///< diagnostics; excluded from equality

  [[nodiscard]] bool operator==(const SpecCheck& other) const {
    return kind == other.kind && vantage == other.vantage &&
           prefix == other.prefix && expect_as == other.expect_as &&
           expect_path == other.expect_path && lo == other.lo &&
           hi == other.hi && at_event == other.at_event &&
           stage == other.stage && digest == other.digest;
  }
};

/// A parsed, fully resolved scenario spec: the scenario itself (base
/// constructor + block assignments already applied), the event script, and
/// the verify assertions.
struct ScenarioSpec {
  /// Where the spec came from (file path or caller label) — diagnostics
  /// only, excluded from equality.
  std::string source;
  Scenario scenario;
  std::vector<SpecEvent> events;
  std::vector<SpecCheck> checks;

  /// Parses spec text; throws SpecError with exact line/column on any
  /// malformed, unknown, duplicate, or out-of-range input.
  [[nodiscard]] static ScenarioSpec parse(std::string_view text,
                                          std::string source_name = "<spec>");
  /// Parses a .scn file; throws SpecError (std::runtime_error for an
  /// unreadable file).
  [[nodiscard]] static ScenarioSpec parse_file(
      const std::filesystem::path& path);

  /// Canonical full-form serialization: every knob emitted explicitly, in
  /// a fixed order.  `parse(dump())` reproduces this spec exactly
  /// (round-trip identity — the parser-robustness suite pins this).
  [[nodiscard]] std::string dump() const;

  /// The deepest experiment stage the verify block needs (route/event
  /// checks only need Synthesize; digest/analysis checks pull deeper).
  [[nodiscard]] Stage required_stage() const;

  /// This spec as a sweep variant (label = scenario name) — the hook for
  /// feeding a whole corpus directory into core::sweep.
  [[nodiscard]] SweepVariant to_variant() const;

  [[nodiscard]] bool operator==(const ScenarioSpec& other) const {
    return scenario == other.scenario && events == other.events &&
           checks == other.checks;
  }
};

/// Every `*.scn` file in `dir`, sorted by filename — the corpus loader
/// scenario_check and sweep ingestion share.  Throws SpecError on the
/// first malformed file; std::runtime_error when the directory is missing.
[[nodiscard]] std::vector<ScenarioSpec> load_spec_dir(
    const std::filesystem::path& dir);

/// A corpus as sweep variants, in the given order.
[[nodiscard]] std::vector<SweepVariant> spec_sweep_variants(
    std::span<const ScenarioSpec> specs);

}  // namespace bgpolicy::core
