#include "core/pipeline.h"

#include <algorithm>
#include <stdexcept>

#include "util/ensure.h"

namespace bgpolicy::core {

const bgp::BgpTable& ExperimentView::table_for(AsNumber as) const {
  if (const auto it = sim->looking_glass.find(as);
      it != sim->looking_glass.end()) {
    return it->second;
  }
  if (const auto it = sim->best_only.find(as); it != sim->best_only.end()) {
    return it->second;
  }
  throw std::out_of_range("ExperimentView: no table recorded for " +
                          util::to_string(as));
}

bool ExperimentView::has_table(AsNumber as) const {
  return sim->looking_glass.contains(as) || sim->best_only.contains(as);
}

const rpsl::AutNum* ExperimentView::irr_for(AsNumber as) const {
  for (const auto& aut_num : *irr_objects) {
    if (aut_num.as == as) return &aut_num;
  }
  return nullptr;
}

asrel::CommunityVerification ExperimentView::community_verification(
    AsNumber vantage_as) const {
  const auto lg_it = sim->looking_glass.find(vantage_as);
  util::ensure(lg_it != sim->looking_glass.end(),
               "community_verification: vantage is not a looking glass");

  // Published semantics, when the AS registered them (Step 2's easy case).
  std::optional<std::unordered_map<std::uint16_t, RelKind>> published;
  if (const rpsl::AutNum* aut_num = irr_for(vantage_as);
      aut_num != nullptr && !aut_num->community_remarks.empty()) {
    std::unordered_map<std::uint16_t, RelKind> semantics;
    for (const auto& remark : aut_num->community_remarks) {
      for (std::uint32_t v = remark.value_lo; v <= remark.value_hi; ++v) {
        semantics.emplace(static_cast<std::uint16_t>(v), remark.kind);
      }
    }
    published = std::move(semantics);
  }

  asrel::CommunityVerifyParams params;
  params.has_providers = tiers->level_of(vantage_as) != 1;
  return asrel::verify_with_communities(lg_it->second, published, *inferred,
                                        params);
}

std::unordered_set<AsNumber> ExperimentView::community_verified_neighbors(
    AsNumber vantage_as) const {
  std::unordered_set<AsNumber> out;
  const auto verification = community_verification(vantage_as);
  for (const auto& obs : verification.neighbors) {
    if (obs.community_rel && obs.inferred_rel &&
        *obs.community_rel == *obs.inferred_rel) {
      out.insert(obs.neighbor);
    }
  }
  return out;
}

ExperimentView Pipeline::view() const {
  ExperimentView v;
  v.sim = &sim;
  v.irr_objects = &irr_objects;
  v.inferred = &inferred;
  v.inferred_graph = &inferred_graph;
  v.tiers = &tiers;
  v.paths = &paths;
  return v;
}

const bgp::BgpTable& Pipeline::table_for(AsNumber as) const {
  if (const auto it = sim.looking_glass.find(as);
      it != sim.looking_glass.end()) {
    return it->second;
  }
  if (const auto it = sim.best_only.find(as); it != sim.best_only.end()) {
    return it->second;
  }
  throw std::out_of_range("Pipeline: no table recorded for " +
                          util::to_string(as));
}

bool Pipeline::has_table(AsNumber as) const {
  return sim.looking_glass.contains(as) || sim.best_only.contains(as);
}

const rpsl::AutNum* Pipeline::irr_for(AsNumber as) const {
  return view().irr_for(as);
}

asrel::CommunityVerification Pipeline::community_verification(
    AsNumber vantage_as) const {
  return view().community_verification(vantage_as);
}

std::unordered_set<AsNumber> Pipeline::community_verified_neighbors(
    AsNumber vantage_as) const {
  return view().community_verified_neighbors(vantage_as);
}

std::vector<AsNumber> sorted_looking_glass(const sim::SimResult& sim) {
  std::vector<AsNumber> out;
  out.reserve(sim.looking_glass.size());
  for (const auto& [as, table] : sim.looking_glass) out.push_back(as);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PathIndex::TableSource> inference_table_sources(
    const sim::SimResult& sim) {
  std::vector<PathIndex::TableSource> sources;
  sources.reserve(1 + sim.looking_glass.size());
  sources.push_back({&sim.collector, std::nullopt});
  for (const AsNumber as : sorted_looking_glass(sim)) {
    sources.push_back({&sim.looking_glass.at(as), as});
  }
  return sources;
}

}  // namespace bgpolicy::core
