#include "core/pipeline.h"

#include <algorithm>
#include <stdexcept>

#include "rpsl/generator.h"
#include "util/ensure.h"

namespace bgpolicy::core {

const bgp::BgpTable& Pipeline::table_for(AsNumber as) const {
  if (const auto it = sim.looking_glass.find(as);
      it != sim.looking_glass.end()) {
    return it->second;
  }
  if (const auto it = sim.best_only.find(as); it != sim.best_only.end()) {
    return it->second;
  }
  throw std::out_of_range("Pipeline: no table recorded for " +
                          util::to_string(as));
}

bool Pipeline::has_table(AsNumber as) const {
  return sim.looking_glass.contains(as) || sim.best_only.contains(as);
}

const rpsl::AutNum* Pipeline::irr_for(AsNumber as) const {
  for (const auto& aut_num : irr_objects) {
    if (aut_num.as == as) return &aut_num;
  }
  return nullptr;
}

asrel::CommunityVerification Pipeline::community_verification(
    AsNumber vantage_as) const {
  const auto lg_it = sim.looking_glass.find(vantage_as);
  util::ensure(lg_it != sim.looking_glass.end(),
               "community_verification: vantage is not a looking glass");

  // Published semantics, when the AS registered them (Step 2's easy case).
  std::optional<std::unordered_map<std::uint16_t, RelKind>> published;
  if (const rpsl::AutNum* aut_num = irr_for(vantage_as);
      aut_num != nullptr && !aut_num->community_remarks.empty()) {
    std::unordered_map<std::uint16_t, RelKind> semantics;
    for (const auto& remark : aut_num->community_remarks) {
      for (std::uint32_t v = remark.value_lo; v <= remark.value_hi; ++v) {
        semantics.emplace(static_cast<std::uint16_t>(v), remark.kind);
      }
    }
    published = std::move(semantics);
  }

  asrel::CommunityVerifyParams params;
  params.has_providers = tiers.level_of(vantage_as) != 1;
  return asrel::verify_with_communities(lg_it->second, published, inferred,
                                        params);
}

std::unordered_set<AsNumber> Pipeline::community_verified_neighbors(
    AsNumber vantage_as) const {
  std::unordered_set<AsNumber> out;
  const auto verification = community_verification(vantage_as);
  for (const auto& obs : verification.neighbors) {
    if (obs.community_rel && obs.inferred_rel &&
        *obs.community_rel == *obs.inferred_rel) {
      out.insert(obs.neighbor);
    }
  }
  return out;
}

std::vector<AsNumber> sorted_looking_glass(const sim::SimResult& sim) {
  std::vector<AsNumber> out;
  out.reserve(sim.looking_glass.size());
  for (const auto& [as, table] : sim.looking_glass) out.push_back(as);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PathIndex::TableSource> inference_table_sources(
    const sim::SimResult& sim) {
  std::vector<PathIndex::TableSource> sources;
  sources.reserve(1 + sim.looking_glass.size());
  sources.push_back({&sim.collector, std::nullopt});
  for (const AsNumber as : sorted_looking_glass(sim)) {
    sources.push_back({&sim.looking_glass.at(as), as});
  }
  return sources;
}

Pipeline run_pipeline(const Scenario& scenario,
                      std::optional<std::size_t> threads_override) {
  Pipeline p;
  p.scenario = scenario;
  if (threads_override) p.scenario.propagation.threads = *threads_override;

  // 1. Ground truth: topology, address plan, policies.
  p.topo = topo::generate_topology(scenario.topo_params);
  p.plan = topo::allocate_prefixes(p.topo, scenario.alloc_params);
  p.gen = sim::generate_policies(p.topo, p.plan, scenario.policy_params);
  p.originations = sim::all_originations(p.plan, p.gen);

  // 2. Vantage configuration: collector peers are the Tier-1s plus leading
  //    Tier-2/Tier-3 ASes (the paper's 56-peer Oregon view).
  for (const auto as : p.topo.tier1) p.vantage.collector_peers.push_back(as);
  for (std::size_t i = 0;
       i < std::min(scenario.collector_tier2_peers, p.topo.tier2.size()); ++i) {
    p.vantage.collector_peers.push_back(p.topo.tier2[i]);
  }
  for (std::size_t i = 0;
       i < std::min(scenario.collector_tier3_peers, p.topo.tier3.size()); ++i) {
    p.vantage.collector_peers.push_back(p.topo.tier3[i]);
  }
  for (const std::uint32_t as : scenario.looking_glass) {
    if (p.topo.graph.contains(AsNumber(as))) {
      p.vantage.looking_glass.emplace_back(as);
    }
  }
  for (const std::uint32_t as : scenario.best_only) {
    const AsNumber number(as);
    if (p.topo.graph.contains(number) &&
        std::find(p.vantage.looking_glass.begin(),
                  p.vantage.looking_glass.end(),
                  number) == p.vantage.looking_glass.end()) {
      p.vantage.best_only.push_back(number);
    }
  }

  // 3. Simulate and record tables.
  p.sim = sim::run_simulation(p.topo.graph, p.gen.policies, p.originations,
                              p.vantage, p.scenario.propagation);

  // Looking glasses in ascending AS order: the canonical ingest order for
  // the inference stages, so sharded and sequential runs (and reruns at any
  // thread count) consume tables identically.
  const std::vector<AsNumber> lg_order = sorted_looking_glass(p.sim);

  // 4. Infer relationships from every observed path (RouteViews + LGs; a
  //    looking glass sees paths without the vantage itself, so its AS is
  //    prepended to match the collector's shape).
  asrel::GaoInference gao;
  gao.add_table_paths(p.sim.collector);
  for (const AsNumber as : lg_order) {
    gao.add_table_paths(p.sim.looking_glass.at(as), as);
  }
  asrel::GaoParams gao_params;
  gao_params.threads = p.scenario.propagation.threads;
  p.inferred = gao.infer(gao_params);
  p.inferred_graph = p.inferred.to_graph();
  p.tiers = asrel::classify_tiers(p.inferred);

  // 5. IRR.
  p.irr_text = rpsl::generate_irr(p.topo, p.gen.policies, scenario.irr_params);
  p.irr_objects = rpsl::parse_aut_nums(p.irr_text);

  // 6. Path index for verification & cause analyses, sharded per table.
  //    Looking-glass paths are prepended with the vantage AS so their
  //    adjacencies line up with the collector's view.
  p.paths.add_tables(inference_table_sources(p.sim),
                     p.scenario.propagation.threads);

  return p;
}

}  // namespace bgpolicy::core
