// Import-policy inference (paper Section 4.1, Tables 2 and 3).
//
// From a looking-glass table (local preference visible): for every prefix
// with routes from at least two relationship classes, check whether the
// observed preferences conform to the typical ordering
// customer > peer > provider.  From an IRR aut-num object: compare the
// registered RPSL pref values across neighbor classes (pref is inverted:
// smaller = more preferred).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/table.h"
#include "core/relationship_oracle.h"
#include "rpsl/rpsl.h"

namespace bgpolicy::core {

struct ImportTypicality {
  AsNumber vantage;
  /// Prefixes whose route set spans >= 2 relationship classes.
  std::size_t comparable_prefixes = 0;
  std::size_t typical_prefixes = 0;
  double percent_typical = 0.0;
  /// Distinct local-pref values observed per relationship class (useful for
  /// reports; the paper quotes these informally).
  std::unordered_map<RelKind, std::vector<std::uint32_t>> class_values;
};

/// Table 2 analysis: typicality of local preference observed in one
/// looking-glass table.
[[nodiscard]] ImportTypicality analyze_import_typicality(
    const bgp::BgpTable& lg_table, const RelationshipOracle& rels);

struct IrrTypicality {
  AsNumber as;
  std::size_t neighbors_with_pref = 0;
  /// Cross-class (neighbor, neighbor) pairs whose registered prefs could be
  /// compared, and how many satisfied the typical ordering.
  std::size_t comparable_pairs = 0;
  std::size_t typical_pairs = 0;
  double percent_typical = 0.0;
};

/// Table 3 analysis: typicality of the pref actions registered in an IRR
/// aut-num object.  Neighbors whose relationship the oracle cannot resolve
/// are skipped, mirroring the paper ("we only consider those ASs ... most
/// of their AS relationships can be inferred").
[[nodiscard]] IrrTypicality analyze_irr_typicality(
    const rpsl::AutNum& aut_num, const RelationshipOracle& rels);

/// The paper's IRR pre-filter: keep fresh (updated during `min_year`) ASes
/// with at least `min_neighbors` registered imports.
[[nodiscard]] bool irr_object_usable(const rpsl::AutNum& aut_num,
                                     std::uint32_t min_year = 2002,
                                     std::size_t min_neighbors = 50);

}  // namespace bgpolicy::core
